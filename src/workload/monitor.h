// Workload bands and stability-interval measurement.
//
// Section II-B / III-D: the stability interval for an application at time t
// is how long its workload stays within ±b/2 of the level measured at t. The
// monitor maintains one band per application, reports band exits (which are
// what trigger a Mistral controller), and records the measured stability
// intervals that feed the ARMA predictor.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"

namespace mistral::wl {

struct band {
    req_per_sec center = 0.0;
    req_per_sec width = 0.0;  // total width b; the band is center ± width/2

    [[nodiscard]] bool contains(req_per_sec rate) const {
        return rate >= center - width / 2.0 && rate <= center + width / 2.0;
    }
};

// What one call to workload_monitor::observe found.
struct monitor_event {
    bool any_exceeded = false;             // at least one application left its band
    std::vector<std::size_t> exceeded;     // indices of applications out of band
    // Measured stability intervals that *completed* at this observation, one
    // entry per exceeded application (same order as `exceeded`).
    std::vector<seconds> completed_intervals;
};

class workload_monitor {
public:
    // `band_width`: the width b applied to every application's band. A width
    // of zero makes any rate change an exit, which is how the paper's
    // first-level controller is configured.
    workload_monitor(std::size_t app_count, req_per_sec band_width);

    // Feeds one monitoring-interval measurement (one rate per application,
    // taken at `time`). On the first call, bands are centered on the
    // measurement and nothing is exceeded.
    monitor_event observe(seconds time, const std::vector<req_per_sec>& rates);

    // Re-centers every application's band on `rates` at `time` (done after
    // the controller has adapted to the new workload level).
    void recenter(seconds time, const std::vector<req_per_sec>& rates);

    [[nodiscard]] const band& band_of(std::size_t app) const;

    // All stability intervals measured so far for `app`, oldest first.
    [[nodiscard]] const std::vector<seconds>& measured_intervals(std::size_t app) const;

    [[nodiscard]] std::size_t app_count() const { return bands_.size(); }
    [[nodiscard]] req_per_sec band_width() const { return width_; }

private:
    req_per_sec width_;
    bool initialized_ = false;
    std::vector<band> bands_;
    std::vector<seconds> band_set_at_;                 // when each band was centered
    std::vector<std::vector<seconds>> history_;        // per-app measured intervals
};

}  // namespace mistral::wl
