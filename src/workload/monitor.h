// Workload bands, stability-interval measurement, and telemetry validation.
//
// Section II-B / III-D: the stability interval for an application at time t
// is how long its workload stays within ±b/2 of the level measured at t. The
// monitor maintains one band per application, reports band exits (which are
// what trigger a Mistral controller), and records the measured stability
// intervals that feed the ARMA predictor.
//
// The telemetry_validator guards the sensing side of that loop: real
// monitoring pipelines drop windows, latch sensors, and deliver spiked or
// outright garbage counters, and a controller that feeds such a window
// straight into its optimizer adapts confidently to a workload that does not
// exist. The validator grades every observation window (finiteness, range,
// empty-window, jump, and stuck-at staleness checks) into a per-window
// quality verdict and substitutes the last healthy measurement for values
// that would poison downstream consumers (a NaN rate would abort in
// eval_memo::quantize; an empty window has no defined mean response time).
// On healthy telemetry the verdict passes the measured values through
// untouched, so a validating controller is byte-identical to a
// non-validating one until a fault actually arrives.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.h"

namespace mistral::wl {

struct band {
    req_per_sec center = 0.0;
    req_per_sec width = 0.0;  // total width b; the band is center ± width/2

    [[nodiscard]] bool contains(req_per_sec rate) const {
        return rate >= center - width / 2.0 && rate <= center + width / 2.0;
    }
};

// What one call to workload_monitor::observe found.
struct monitor_event {
    bool any_exceeded = false;             // at least one application left its band
    std::vector<std::size_t> exceeded;     // indices of applications out of band
    // Measured stability intervals that *completed* at this observation, one
    // entry per exceeded application (same order as `exceeded`).
    std::vector<seconds> completed_intervals;
};

// One monitoring interval's raw telemetry, as delivered by the measurement
// pipeline (and possibly corrupted by sim::sensor_fault_injector before the
// controller sees it). `response_times` and `samples` are optional channels:
// empty means the pipeline does not report them.
struct telemetry_window {
    seconds time = 0.0;
    seconds duration = 0.0;
    std::vector<req_per_sec> rates;         // measured per-app arrival rates
    std::vector<seconds> response_times;    // measured per-app mean RT (optional)
    std::vector<double> samples;            // completed requests per app (optional)
};

// Per-window telemetry grade. `healthy` windows are safe to optimize
// against; `degraded` windows carry suspicious but finite values (jumps,
// out-of-range clamps, empty windows, stuck sensors); `garbage` windows
// contained values no physical sensor can produce (NaN/inf/negative).
enum class window_quality { healthy, degraded, garbage };
[[nodiscard]] const char* to_string(window_quality q);

// Why a window (or one application's channel in it) was not healthy.
enum quality_flags : unsigned {
    quality_ok = 0,
    quality_nonfinite = 1u << 0,     // NaN / inf / negative measurement
    quality_out_of_range = 1u << 1,  // beyond the configured physical ceiling
    quality_empty = 1u << 2,         // zero completed requests in the window
    quality_jump = 1u << 3,          // implausible move vs. last healthy value
    quality_stale = 1u << 4,         // bit-identical readings for too long
};
[[nodiscard]] std::string describe_flags(unsigned flags);

struct quality_verdict {
    window_quality quality = window_quality::healthy;
    unsigned flags = quality_ok;           // union over applications
    std::vector<unsigned> app_flags;       // per-application flags
    // Rates safe to hand to the monitor/evaluator: the measured value where
    // trustworthy (same bits — no arithmetic touches a healthy value), the
    // last healthy measurement (or the range clamp) where not.
    std::vector<req_per_sec> rates;

    [[nodiscard]] bool healthy() const { return quality == window_quality::healthy; }
};

struct validator_options {
    // Physical ceilings; measurements beyond them are clamped and flagged.
    req_per_sec max_rate = 1.0e5;
    seconds max_response_time = 3600.0;
    // Jump check against the last healthy rate: flag when the new rate
    // exceeds factor × last + slack (or falls below last / factor − slack).
    // 0 disables the check (the default: the paper's flash-crowd workloads
    // jump legitimately, so plausibility bounds are a per-deployment opt-in;
    // the default verdict only flags values that are physically impossible).
    double max_jump_factor = 0.0;
    req_per_sec jump_slack = 50.0;
    // Stuck-at detection: flag after this many consecutive bit-identical
    // readings. 0 disables the check (the default: synthetic harnesses and
    // tests legitimately feed constant rate vectors).
    int max_stuck_windows = 0;
};

// Stateful grader for a stream of observation windows (one per monitoring
// interval). Deterministic; keeps the last healthy value per application for
// substitution and the repeat counts for staleness.
class telemetry_validator {
public:
    explicit telemetry_validator(std::size_t app_count,
                                 validator_options options = {});

    quality_verdict validate(const telemetry_window& window);

    [[nodiscard]] const validator_options& options() const { return options_; }
    [[nodiscard]] std::size_t app_count() const { return last_good_.size(); }

private:
    validator_options options_;
    std::vector<req_per_sec> last_good_;
    std::vector<bool> has_last_good_;
    std::vector<req_per_sec> last_seen_;   // for stuck-at detection
    std::vector<int> repeat_count_;
};

class workload_monitor {
public:
    // `band_width`: the width b applied to every application's band. A width
    // of zero makes any rate change an exit, which is how the paper's
    // first-level controller is configured.
    workload_monitor(std::size_t app_count, req_per_sec band_width);

    // Feeds one monitoring-interval measurement (one rate per application,
    // taken at `time`). On the first call, bands are centered on the
    // measurement and nothing is exceeded.
    monitor_event observe(seconds time, const std::vector<req_per_sec>& rates);

    // Re-centers every application's band on `rates` at `time` (done after
    // the controller has adapted to the new workload level).
    void recenter(seconds time, const std::vector<req_per_sec>& rates);

    [[nodiscard]] const band& band_of(std::size_t app) const;

    // All stability intervals measured so far for `app`, oldest first.
    [[nodiscard]] const std::vector<seconds>& measured_intervals(std::size_t app) const;

    [[nodiscard]] std::size_t app_count() const { return bands_.size(); }
    [[nodiscard]] req_per_sec band_width() const { return width_; }

    // Scales every band's effective width (≥ 1): the divergence guard widens
    // the bands while the stability predictor is drifting, so a controller
    // that cannot trust its interval predictions re-triggers less eagerly.
    // The scale applies at the next observe/recenter; 1.0 (the default) is
    // bit-exact to an unscaled monitor.
    void set_band_scale(double scale);
    [[nodiscard]] double band_scale() const { return scale_; }

private:
    req_per_sec width_;
    double scale_ = 1.0;
    bool initialized_ = false;
    std::vector<band> bands_;
    std::vector<seconds> band_set_at_;                 // when each band was centered
    std::vector<std::vector<seconds>> history_;        // per-app measured intervals
};

}  // namespace mistral::wl
