// Synthetic trace generators.
//
// The paper drives its four RUBiS applications with a day of the 1998 World
// Cup web trace (for RUBiS-1/2) and a day of an HP customer web-server trace
// (for RUBiS-3/4), both scaled and shifted into 0–100 req/s (Section V-A,
// Fig. 4). Those proprietary/archival traces are not shipped here; instead
// these generators reproduce their documented *shape* — the World Cup trace's
// evening flash crowds over a diurnal baseline, and the HP trace's smooth
// low-variance diurnal hump — which is what the evaluation's stability
// structure depends on. Additional shapes (step, single flash crowd, random
// walk, constant) support the tests and ablation benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "econ/region.h"
#include "econ/tariff.h"
#include "workload/trace.h"

namespace mistral::wl {

struct generator_options {
    seconds start = 15.0 * 3600.0;     // 15:00, the paper's experiment start
    seconds duration = 6.5 * 3600.0;   // through 21:30
    seconds period = 60.0;             // one sample per minute
    std::uint64_t seed = 1;
    double noise = 0.03;               // multiplicative noise std-dev
};

// World-Cup-shaped trace: diurnal baseline plus sharp evening flash crowds.
// `variant` shifts the crowd times and mixes the bump amplitudes so multiple
// applications driven by "the same trace" still decorrelate slightly.
trace world_cup_trace(const generator_options& opts, int variant = 0);

// HP-customer-shaped trace: smooth single-hump diurnal pattern, low variance.
trace hp_trace(const generator_options& opts, int variant = 0);

// Constant rate (plus noise if opts.noise > 0).
trace constant_trace(const std::string& name, req_per_sec rate,
                     const generator_options& opts);

// Holds `low` until `step_at` seconds after start, then `high`.
trace step_trace(const std::string& name, req_per_sec low, req_per_sec high,
                 seconds step_at, const generator_options& opts);

// Baseline rate with one flash crowd: ramp up over `ramp`, hold `hold`,
// decay back. `crowd_at` is seconds after start.
trace flash_crowd_trace(const std::string& name, req_per_sec baseline,
                        req_per_sec peak, seconds crowd_at, seconds ramp,
                        seconds hold, const generator_options& opts);

// Mean-reverting random walk within [lo, hi]; `volatility` is the per-step
// std-dev as a fraction of the range.
trace random_walk_trace(const std::string& name, req_per_sec lo, req_per_sec hi,
                        double volatility, const generator_options& opts);

// The four application workloads of Fig. 4: RUBiS-1/2 from the World-Cup
// shape and RUBiS-3/4 from the HP shape, all scaled to 0–100 req/s over
// 15:00–21:30.
std::vector<trace> paper_workloads(std::uint64_t seed = 1);

// --- Economics scenario generators (src/econ) -------------------------------
//
// The tariff/region shapes the econ benches and tests drive: deterministic
// piecewise-constant series matching the workload clock above (absolute
// seconds-of-day timestamps, 24 h wraparound).

// Day/night time-of-use tariff: `day_price` between day_start and
// night_start (seconds of day), `night_price` otherwise, wrapping every
// 24 h. Carbon intensity follows the same blocks (gCO2/Wh) — grids are
// typically dirtier at night when solar drops off.
econ::tariff_schedule day_night_tariff(dollars day_price, dollars night_price,
                                       seconds day_start = 8.0 * 3600.0,
                                       seconds night_start = 20.0 * 3600.0,
                                       double day_carbon = 300.0,
                                       double night_carbon = 450.0);

// Two regions with a constant price/carbon spread: region 0 ("cheap") at
// `cheap_price`, region 1 ("expensive") at `expensive_price`. Pair with a
// pod→region vector to build the coordinator's econ::region_map.
std::vector<econ::region_spec> two_region_spread(dollars cheap_price,
                                                 dollars expensive_price,
                                                 double cheap_carbon = 250.0,
                                                 double expensive_carbon = 550.0);

// Stepped power-cap emergency: `normal` watts, dropping to `emergency` at
// `at` for `duration` seconds, then back. No wraparound — a one-shot event.
econ::step_series stepped_power_cap(watts normal, watts emergency, seconds at,
                                    seconds duration);

}  // namespace mistral::wl
