// Trace file I/O.
//
// The paper drives its evaluation from archival web traces (1998 World Cup,
// HP customer logs). Users with access to such traces can load them here —
// a two-column CSV of `time_seconds,request_rate` — and push them through
// the same scale-and-shift pipeline the synthetic generators use. Writers
// round-trip any trace, so generated workloads can also be exported for
// external plotting.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.h"

namespace mistral::wl {

// Parses a `time,rate` CSV (optional header line; '#' comments and blank
// lines ignored). Samples must be time-sorted, rates non-negative. Throws
// invariant_error with line context on malformed input.
trace read_trace_csv(std::istream& in, const std::string& name);

// File convenience; throws if the file cannot be opened.
trace load_trace_csv(const std::string& path);

// Writes `time,rate` rows with a header.
void write_trace_csv(std::ostream& out, const trace& t);
void save_trace_csv(const std::string& path, const trace& t);

}  // namespace mistral::wl
