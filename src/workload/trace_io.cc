#include "workload/trace_io.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace mistral::wl {

trace read_trace_csv(std::istream& in, const std::string& name) {
    std::vector<trace_sample> samples;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments and whitespace-only lines.
        if (const auto hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

        std::istringstream row(line);
        std::string time_field, rate_field;
        const bool ok = static_cast<bool>(std::getline(row, time_field, ',')) &&
                        static_cast<bool>(std::getline(row, rate_field));
        MISTRAL_CHECK_MSG(ok, "trace '" << name << "' line " << line_no
                                        << ": expected `time,rate`, got: " << line);
        // A header line ("time,rate") is tolerated once at the top.
        if (samples.empty()) {
            try {
                (void)std::stod(time_field);
            } catch (const std::exception&) {
                continue;  // header
            }
        }
        try {
            const seconds t = std::stod(time_field);
            const req_per_sec r = std::stod(rate_field);
            samples.push_back({t, r});
        } catch (const std::exception&) {
            MISTRAL_CHECK_MSG(false, "trace '" << name << "' line " << line_no
                                               << ": non-numeric field in: " << line);
        }
    }
    MISTRAL_CHECK_MSG(!samples.empty(), "trace '" << name << "' has no samples");
    return trace(name, std::move(samples));
}

trace load_trace_csv(const std::string& path) {
    std::ifstream in(path);
    MISTRAL_CHECK_MSG(in.good(), "cannot open trace file " << path);
    // Name the trace after the file, without directories or extension.
    std::string name = path;
    if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
        name.erase(0, slash + 1);
    }
    if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
        name.erase(dot);
    }
    return read_trace_csv(in, name);
}

void write_trace_csv(std::ostream& out, const trace& t) {
    // Full round-trip precision: default stream precision truncates rates.
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    out << "time,rate\n";
    for (const auto& s : t.samples()) {
        out << s.time << ',' << s.rate << '\n';
    }
}

void save_trace_csv(const std::string& path, const trace& t) {
    std::ofstream out(path);
    MISTRAL_CHECK_MSG(out.good(), "cannot write trace file " << path);
    write_trace_csv(out, t);
}

}  // namespace mistral::wl
