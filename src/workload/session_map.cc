#include "workload/session_map.h"

#include "common/check.h"

namespace mistral::wl {

session_map::session_map(seconds think_time, seconds service_time)
    : cycle_(think_time + service_time) {
    MISTRAL_CHECK(think_time >= 0.0);
    MISTRAL_CHECK(service_time >= 0.0);
    MISTRAL_CHECK(cycle_ > 0.0);
}

double session_map::sessions_for_rate(req_per_sec rate) const {
    MISTRAL_CHECK(rate >= 0.0);
    return rate * cycle_;
}

req_per_sec session_map::rate_for_sessions(double sessions) const {
    MISTRAL_CHECK(sessions >= 0.0);
    return sessions / cycle_;
}

}  // namespace mistral::wl
