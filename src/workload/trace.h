// Request-rate traces.
//
// A trace is a step function of request rate over time: the rate between two
// samples is the value of the earlier sample, matching how the paper's client
// emulators hold a session count constant between adjustments. Traces support
// the scale-and-shift pipeline of Section V-A ("we scale both the World Cup
// request rates of 150 to 1200 req/sec and the HP traffic of 2 to 4.5 req/sec
// to our desired range of 0 to 100 req/sec").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace mistral::wl {

struct trace_sample {
    seconds time = 0.0;
    req_per_sec rate = 0.0;
};

class trace {
public:
    trace() = default;
    trace(std::string name, std::vector<trace_sample> samples);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::vector<trace_sample>& samples() const { return samples_; }
    [[nodiscard]] bool empty() const { return samples_.empty(); }
    [[nodiscard]] std::size_t size() const { return samples_.size(); }

    // Start/end timestamps. Require a non-empty trace.
    [[nodiscard]] seconds start_time() const;
    [[nodiscard]] seconds end_time() const;

    // Rate at `time` (step interpolation; clamped to the trace's range).
    // Requires a non-empty trace.
    [[nodiscard]] req_per_sec rate_at(seconds time) const;

    // Mean rate over [t0, t1] under step interpolation.
    [[nodiscard]] req_per_sec mean_rate(seconds t0, seconds t1) const;

    [[nodiscard]] req_per_sec peak_rate() const;
    [[nodiscard]] req_per_sec min_rate() const;

    // Affine-rescales rates so the trace's [min, max] maps onto [lo, hi].
    // A constant trace maps to lo. This is the paper's "scale and shift".
    [[nodiscard]] trace scaled_to_range(req_per_sec lo, req_per_sec hi) const;

    // Shifts all timestamps so the trace starts at `new_start`.
    [[nodiscard]] trace shifted_to_start(seconds new_start) const;

    // Re-samples onto a uniform grid of period `dt` (step semantics).
    [[nodiscard]] trace resampled(seconds dt) const;

    // Moving-average smoothing over a window of `window` samples (odd sizes
    // center the window; even sizes lag by half a sample).
    [[nodiscard]] trace smoothed(std::size_t window) const;

    // Adds AR(1)-persistent *absolute* jitter of stationary std-dev `sigma`
    // req/s (persistence per sample). Real request streams fluctuate by a
    // few req/s regardless of level — it is this absolute jitter that
    // drives workload-band exits at low rates. Rates stay non-negative.
    [[nodiscard]] trace with_additive_noise(req_per_sec sigma,
                                            std::uint64_t seed,
                                            double persistence = 0.9) const;

    // Renamed copy (transform helpers keep the source name otherwise).
    [[nodiscard]] trace renamed(std::string new_name) const;

private:
    std::string name_;
    std::vector<trace_sample> samples_;  // sorted by time
};

}  // namespace mistral::wl
