// Mapping between request rates and concurrent user sessions.
//
// The paper's client emulators control load via the number of concurrent
// simulated sessions and "create a mapping from the desired request rates to
// the number of simulated concurrent sessions" (Section V-A); its cost tables
// (Fig. 7) are indexed by session count while the controller's workload unit
// is req/s. Little's law links the two: sessions = rate × (think time + mean
// response time).
#pragma once

#include "common/units.h"

namespace mistral::wl {

class session_map {
public:
    // `think_time`: mean client think time between requests; `service_time`:
    // nominal mean response time included in the session cycle. The defaults
    // make 100 req/s correspond to the paper's ~800-session heavy load.
    explicit session_map(seconds think_time = 7.6, seconds service_time = 0.4);

    [[nodiscard]] double sessions_for_rate(req_per_sec rate) const;
    [[nodiscard]] req_per_sec rate_for_sessions(double sessions) const;

    [[nodiscard]] seconds cycle_time() const { return cycle_; }

private:
    seconds cycle_;  // think + service
};

}  // namespace mistral::wl
