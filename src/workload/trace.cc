#include "workload/trace.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace mistral::wl {

trace::trace(std::string name, std::vector<trace_sample> samples)
    : name_(std::move(name)), samples_(std::move(samples)) {
    MISTRAL_CHECK_MSG(
        std::is_sorted(samples_.begin(), samples_.end(),
                       [](const auto& a, const auto& b) { return a.time < b.time; }),
        "trace '" << name_ << "' samples must be time-sorted");
    for (const auto& s : samples_) {
        MISTRAL_CHECK_MSG(s.rate >= 0.0, "negative rate in trace '" << name_ << "'");
    }
}

seconds trace::start_time() const {
    MISTRAL_CHECK(!samples_.empty());
    return samples_.front().time;
}

seconds trace::end_time() const {
    MISTRAL_CHECK(!samples_.empty());
    return samples_.back().time;
}

req_per_sec trace::rate_at(seconds time) const {
    MISTRAL_CHECK(!samples_.empty());
    if (time <= samples_.front().time) return samples_.front().rate;
    auto it = std::upper_bound(samples_.begin(), samples_.end(), time,
                               [](seconds t, const auto& s) { return t < s.time; });
    return (it - 1)->rate;
}

req_per_sec trace::mean_rate(seconds t0, seconds t1) const {
    MISTRAL_CHECK(!samples_.empty());
    MISTRAL_CHECK(t1 >= t0);
    if (t1 == t0) return rate_at(t0);
    double area = 0.0;
    seconds cursor = t0;
    while (cursor < t1) {
        // Next sample strictly after cursor bounds the constant segment.
        auto it = std::upper_bound(samples_.begin(), samples_.end(), cursor,
                                   [](seconds t, const auto& s) { return t < s.time; });
        const seconds segment_end = (it == samples_.end()) ? t1 : std::min(t1, it->time);
        area += rate_at(cursor) * (segment_end - cursor);
        cursor = segment_end;
    }
    return area / (t1 - t0);
}

req_per_sec trace::peak_rate() const {
    MISTRAL_CHECK(!samples_.empty());
    return std::max_element(samples_.begin(), samples_.end(),
                            [](const auto& a, const auto& b) { return a.rate < b.rate; })
        ->rate;
}

req_per_sec trace::min_rate() const {
    MISTRAL_CHECK(!samples_.empty());
    return std::min_element(samples_.begin(), samples_.end(),
                            [](const auto& a, const auto& b) { return a.rate < b.rate; })
        ->rate;
}

trace trace::scaled_to_range(req_per_sec lo, req_per_sec hi) const {
    MISTRAL_CHECK(!samples_.empty());
    MISTRAL_CHECK(lo >= 0.0 && hi >= lo);
    const req_per_sec src_lo = min_rate();
    const req_per_sec src_hi = peak_rate();
    const double span = src_hi - src_lo;
    std::vector<trace_sample> out(samples_);
    for (auto& s : out) {
        const double frac = span > 0.0 ? (s.rate - src_lo) / span : 0.0;
        s.rate = lo + frac * (hi - lo);
    }
    return trace(name_, std::move(out));
}

trace trace::shifted_to_start(seconds new_start) const {
    MISTRAL_CHECK(!samples_.empty());
    const seconds delta = new_start - samples_.front().time;
    std::vector<trace_sample> out(samples_);
    for (auto& s : out) s.time += delta;
    return trace(name_, std::move(out));
}

trace trace::resampled(seconds dt) const {
    MISTRAL_CHECK(!samples_.empty());
    MISTRAL_CHECK(dt > 0.0);
    std::vector<trace_sample> out;
    for (seconds t = start_time(); t <= end_time() + 1e-9; t += dt) {
        out.push_back({t, rate_at(t)});
    }
    return trace(name_, std::move(out));
}

trace trace::smoothed(std::size_t window) const {
    MISTRAL_CHECK(window >= 1);
    if (window == 1 || samples_.size() <= 1) return *this;
    std::vector<trace_sample> out(samples_);
    const auto n = samples_.size();
    const auto half = window / 2;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t lo = i >= half ? i - half : 0;
        const std::size_t hi = std::min(n - 1, i + (window - 1 - half));
        double sum = 0.0;
        for (std::size_t j = lo; j <= hi; ++j) sum += samples_[j].rate;
        out[i].rate = sum / static_cast<double>(hi - lo + 1);
    }
    return trace(name_, std::move(out));
}

trace trace::with_additive_noise(req_per_sec sigma, std::uint64_t seed,
                                 double persistence) const {
    MISTRAL_CHECK(sigma >= 0.0);
    MISTRAL_CHECK(persistence >= 0.0 && persistence < 1.0);
    rng r(seed);
    const double innovation = sigma * std::sqrt(1.0 - persistence * persistence);
    double level = 0.0;
    std::vector<trace_sample> out(samples_);
    for (auto& s : out) {
        level = persistence * level + r.normal(0.0, innovation);
        s.rate = std::max(0.0, s.rate + level);
    }
    return trace(name_, std::move(out));
}

trace trace::renamed(std::string new_name) const {
    return trace(std::move(new_name), samples_);
}

}  // namespace mistral::wl
