#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/check.h"
#include "common/rng.h"

namespace mistral::wl {

namespace {

constexpr double pi = 3.14159265358979323846;

// An asymmetric bump: fast rise (time constant `rise`), slower exponential
// decay (`fall`). `x` is seconds since the bump's onset.
double crowd_bump(double x, double rise, double fall) {
    if (x < 0.0) return 0.0;
    if (x < rise) return 0.5 - 0.5 * std::cos(pi * x / rise);  // smooth ramp to 1
    return std::exp(-(x - rise) / fall);
}

std::vector<trace_sample> sample_shape(const generator_options& opts,
                                       const std::function<double(seconds)>& shape,
                                       rng& noise_rng) {
    MISTRAL_CHECK(opts.period > 0.0);
    MISTRAL_CHECK(opts.duration > 0.0);
    // Web traffic is bursty on multiple timescales: minute-to-minute jitter
    // rides on slowly wandering activity levels. An AR(1) noise component
    // (persistence ~0.95 per minute) reproduces that: calm stretches stay
    // calm and busy stretches stay busy, which is what makes stability
    // intervals *predictable* (Fig. 6) rather than memoryless.
    constexpr double persistence = 0.95;
    const double innovation =
        opts.noise * std::sqrt(1.0 - persistence * persistence);
    double slow = 0.0;
    std::vector<trace_sample> out;
    for (seconds t = 0.0; t <= opts.duration + 1e-9; t += opts.period) {
        double v = shape(t);
        if (opts.noise > 0.0) {
            slow = persistence * slow + noise_rng.normal(0.0, innovation);
            const double fast = noise_rng.normal(0.0, 0.3 * opts.noise);
            v *= 1.0 + slow + fast;
        }
        out.push_back({opts.start + t, std::max(0.0, v)});
    }
    return out;
}

}  // namespace

trace world_cup_trace(const generator_options& opts, int variant) {
    rng r(opts.seed + 0x57c0ULL * static_cast<std::uint64_t>(variant + 1));
    // Flash-crowd onsets as fractions of the trace duration. The first
    // crowd lands near 30% of the way in (≈16:52 for the paper window) and
    // later crowds cluster in the evening; variants shift them a little.
    const double shift = 0.02 * variant;
    const std::vector<double> onsets = {0.28 + shift, 0.52 + shift, 0.72 + shift};
    const std::vector<double> amplitudes = {0.85, 0.6, 1.0};
    const double rise = 0.03 * opts.duration;   // sharp ramp
    const double fall = 0.08 * opts.duration;   // slower decay
    auto shape = [&](seconds t) {
        const double x = t / opts.duration;
        // Baseline grows through the day (the site busied toward evening).
        double v = 0.15 + 0.25 * x + 0.05 * std::sin(2.0 * pi * 3.0 * x);
        for (std::size_t i = 0; i < onsets.size(); ++i) {
            v += amplitudes[i] * crowd_bump(t - onsets[i] * opts.duration, rise, fall);
        }
        return v;
    };
    rng noise_rng = r.fork();
    return trace("worldcup-" + std::to_string(variant),
                 sample_shape(opts, shape, noise_rng));
}

trace hp_trace(const generator_options& opts, int variant) {
    rng r(opts.seed + 0x4870ULL * static_cast<std::uint64_t>(variant + 1));
    const double phase = 0.1 * variant;
    auto shape = [&](seconds t) {
        const double x = t / opts.duration;
        // One smooth afternoon hump plus gentle secondary ripple.
        const double hump = std::sin(pi * std::clamp(x * 0.9 + 0.05 + phase, 0.0, 1.0));
        return 0.3 + 0.6 * hump + 0.06 * std::sin(2.0 * pi * 5.0 * (x + phase));
    };
    rng noise_rng = r.fork();
    return trace("hp-" + std::to_string(variant), sample_shape(opts, shape, noise_rng));
}

trace constant_trace(const std::string& name, req_per_sec rate,
                     const generator_options& opts) {
    MISTRAL_CHECK(rate >= 0.0);
    rng r(opts.seed);
    auto shape = [&](seconds) { return rate; };
    rng noise_rng = r.fork();
    return trace(name, sample_shape(opts, shape, noise_rng));
}

trace step_trace(const std::string& name, req_per_sec low, req_per_sec high,
                 seconds step_at, const generator_options& opts) {
    rng r(opts.seed);
    auto shape = [&](seconds t) { return t < step_at ? low : high; };
    rng noise_rng = r.fork();
    return trace(name, sample_shape(opts, shape, noise_rng));
}

trace flash_crowd_trace(const std::string& name, req_per_sec baseline,
                        req_per_sec peak, seconds crowd_at, seconds ramp,
                        seconds hold, const generator_options& opts) {
    MISTRAL_CHECK(peak >= baseline);
    MISTRAL_CHECK(ramp > 0.0);
    rng r(opts.seed);
    auto shape = [&](seconds t) {
        const double x = t - crowd_at;
        double level = 0.0;
        if (x >= 0.0 && x < ramp) {
            level = x / ramp;
        } else if (x >= ramp && x < ramp + hold) {
            level = 1.0;
        } else if (x >= ramp + hold) {
            level = std::exp(-(x - ramp - hold) / ramp);
        }
        return baseline + (peak - baseline) * level;
    };
    rng noise_rng = r.fork();
    return trace(name, sample_shape(opts, shape, noise_rng));
}

trace random_walk_trace(const std::string& name, req_per_sec lo, req_per_sec hi,
                        double volatility, const generator_options& opts) {
    MISTRAL_CHECK(hi > lo);
    MISTRAL_CHECK(volatility >= 0.0);
    rng r(opts.seed);
    const double range = hi - lo;
    double level = 0.5;  // normalized position within [lo, hi]
    auto shape = [&](seconds) {
        // Mean-reverting step toward the middle plus noise.
        level += 0.1 * (0.5 - level) + r.normal(0.0, volatility);
        level = std::clamp(level, 0.0, 1.0);
        return lo + range * level;
    };
    // The walk itself is the randomness; no extra multiplicative noise.
    generator_options quiet = opts;
    quiet.noise = 0.0;
    rng noise_rng = r.fork();
    return trace(name, sample_shape(quiet, shape, noise_rng));
}

std::vector<trace> paper_workloads(std::uint64_t seed) {
    generator_options opts;
    opts.seed = seed;
    std::vector<trace> out;
    out.push_back(world_cup_trace(opts, 0).scaled_to_range(0.0, 100.0).renamed("RUBiS-1"));
    out.push_back(world_cup_trace(opts, 1).scaled_to_range(0.0, 100.0).renamed("RUBiS-2"));
    out.push_back(hp_trace(opts, 0).scaled_to_range(0.0, 100.0).renamed("RUBiS-3"));
    out.push_back(hp_trace(opts, 1).scaled_to_range(0.0, 100.0).renamed("RUBiS-4"));
    return out;
}

econ::tariff_schedule day_night_tariff(dollars day_price, dollars night_price,
                                       seconds day_start, seconds night_start,
                                       double day_carbon, double night_carbon) {
    MISTRAL_CHECK(day_price > 0.0 && night_price > 0.0);
    MISTRAL_CHECK(day_carbon >= 0.0 && night_carbon >= 0.0);
    MISTRAL_CHECK(0.0 <= day_start && day_start < night_start);
    MISTRAL_CHECK(night_start < 24.0 * 3600.0);
    const seconds day = 24.0 * 3600.0;
    econ::tariff_schedule out;
    if (day_start > 0.0) {
        out.price = econ::step_series({{0.0, night_price},
                                       {day_start, day_price},
                                       {night_start, night_price}},
                                      day);
        out.carbon = econ::step_series({{0.0, night_carbon},
                                        {day_start, day_carbon},
                                        {night_start, night_carbon}},
                                       day);
    } else {
        out.price = econ::step_series(
            {{0.0, day_price}, {night_start, night_price}}, day);
        out.carbon = econ::step_series(
            {{0.0, day_carbon}, {night_start, night_carbon}}, day);
    }
    return out;
}

std::vector<econ::region_spec> two_region_spread(dollars cheap_price,
                                                 dollars expensive_price,
                                                 double cheap_carbon,
                                                 double expensive_carbon) {
    MISTRAL_CHECK(0.0 < cheap_price && cheap_price <= expensive_price);
    MISTRAL_CHECK(cheap_carbon >= 0.0 && expensive_carbon >= 0.0);
    std::vector<econ::region_spec> out(2);
    out[0].name = "cheap";
    out[0].tariff.price = econ::step_series::constant(cheap_price);
    out[0].tariff.carbon = econ::step_series::constant(cheap_carbon);
    out[1].name = "expensive";
    out[1].tariff.price = econ::step_series::constant(expensive_price);
    out[1].tariff.carbon = econ::step_series::constant(expensive_carbon);
    return out;
}

econ::step_series stepped_power_cap(watts normal, watts emergency, seconds at,
                                    seconds duration) {
    MISTRAL_CHECK(normal > 0.0 && emergency > 0.0);
    MISTRAL_CHECK(at > 0.0 && duration > 0.0);
    return econ::step_series(
        {{0.0, normal}, {at, emergency}, {at + duration, normal}});
}

}  // namespace mistral::wl
