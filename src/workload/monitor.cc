#include "workload/monitor.h"

#include <cmath>

#include "common/check.h"

namespace mistral::wl {

const char* to_string(window_quality q) {
    switch (q) {
        case window_quality::healthy: return "healthy";
        case window_quality::degraded: return "degraded";
        case window_quality::garbage: return "garbage";
    }
    return "?";
}

std::string describe_flags(unsigned flags) {
    if (flags == quality_ok) return "ok";
    std::string out;
    auto add = [&](unsigned bit, const char* name) {
        if ((flags & bit) == 0) return;
        if (!out.empty()) out += '|';
        out += name;
    };
    add(quality_nonfinite, "nonfinite");
    add(quality_out_of_range, "out_of_range");
    add(quality_empty, "empty");
    add(quality_jump, "jump");
    add(quality_stale, "stale");
    return out;
}

telemetry_validator::telemetry_validator(std::size_t app_count,
                                         validator_options options)
    : options_(options),
      last_good_(app_count, 0.0),
      has_last_good_(app_count, false),
      last_seen_(app_count, 0.0),
      repeat_count_(app_count, 0) {
    MISTRAL_CHECK(app_count > 0);
    MISTRAL_CHECK(options_.max_rate > 0.0);
    MISTRAL_CHECK(options_.max_response_time > 0.0);
    MISTRAL_CHECK(options_.max_jump_factor == 0.0 || options_.max_jump_factor > 1.0);
    MISTRAL_CHECK(options_.jump_slack >= 0.0);
    MISTRAL_CHECK(options_.max_stuck_windows >= 0);
}

quality_verdict telemetry_validator::validate(const telemetry_window& window) {
    const std::size_t n = last_good_.size();
    MISTRAL_CHECK_MSG(window.rates.size() == n,
                      "expected " << n << " rates, got " << window.rates.size());
    MISTRAL_CHECK(window.response_times.empty() || window.response_times.size() == n);
    MISTRAL_CHECK(window.samples.empty() || window.samples.size() == n);

    quality_verdict verdict;
    verdict.app_flags.assign(n, quality_ok);
    verdict.rates = window.rates;

    for (std::size_t a = 0; a < n; ++a) {
        unsigned& flags = verdict.app_flags[a];
        const req_per_sec r = window.rates[a];
        // Substitute for values no downstream consumer can digest.
        const req_per_sec fallback = has_last_good_[a] ? last_good_[a] : 0.0;

        // Staleness: exact bit repeats of the *reported* rate. Counted before
        // any substitution so a latched sensor is what is being measured.
        if (options_.max_stuck_windows > 0) {
            const bool same =
                !std::isnan(r) && !std::isnan(last_seen_[a]) && r == last_seen_[a];
            repeat_count_[a] = same ? repeat_count_[a] + 1 : 0;
            if (repeat_count_[a] >= options_.max_stuck_windows) {
                flags |= quality_stale;
            }
        }
        last_seen_[a] = r;

        if (!std::isfinite(r) || r < 0.0) {
            flags |= quality_nonfinite;
            verdict.rates[a] = fallback;
        } else if (!window.samples.empty() && window.samples[a] <= 0.0) {
            // An empty window measured nothing: its rate/RT are undefined, so
            // the last healthy level stands in (satisfying the contract that
            // zero completed requests never yields NaN downstream).
            flags |= quality_empty;
            verdict.rates[a] = fallback;
        } else {
            if (r > options_.max_rate) {
                flags |= quality_out_of_range;
                verdict.rates[a] = options_.max_rate;
            }
            if (options_.max_jump_factor > 0.0 && has_last_good_[a]) {
                const req_per_sec lg = last_good_[a];
                const bool jump_up =
                    r > lg * options_.max_jump_factor + options_.jump_slack;
                const bool jump_down =
                    r < lg / options_.max_jump_factor - options_.jump_slack;
                if (jump_up || jump_down) flags |= quality_jump;
            }
        }

        if (!window.response_times.empty()) {
            const seconds rt = window.response_times[a];
            const bool empty = (flags & quality_empty) != 0;
            if (!empty && (!std::isfinite(rt) || rt < 0.0)) {
                flags |= quality_nonfinite;
            } else if (!empty && rt > options_.max_response_time) {
                flags |= quality_out_of_range;
            }
        }

        verdict.flags |= flags;
        // A finite, in-range, non-empty reading becomes the new reference
        // even when flagged as a jump or stale: a legitimate flash crowd must
        // not pin the validator to a pre-crowd level forever.
        if ((flags & (quality_nonfinite | quality_empty)) == 0) {
            last_good_[a] = verdict.rates[a];
            has_last_good_[a] = true;
        }
    }

    if ((verdict.flags & quality_nonfinite) != 0) {
        verdict.quality = window_quality::garbage;
    } else if (verdict.flags != quality_ok) {
        verdict.quality = window_quality::degraded;
    }
    return verdict;
}

workload_monitor::workload_monitor(std::size_t app_count, req_per_sec band_width)
    : width_(band_width),
      bands_(app_count),
      band_set_at_(app_count, 0.0),
      history_(app_count) {
    MISTRAL_CHECK(app_count > 0);
    MISTRAL_CHECK(band_width >= 0.0);
}

void workload_monitor::set_band_scale(double scale) {
    MISTRAL_CHECK(scale >= 1.0);
    scale_ = scale;
}

monitor_event workload_monitor::observe(seconds time,
                                        const std::vector<req_per_sec>& rates) {
    MISTRAL_CHECK_MSG(rates.size() == bands_.size(),
                      "expected " << bands_.size() << " rates, got " << rates.size());
    for (const req_per_sec r : rates) {
        MISTRAL_CHECK_MSG(std::isfinite(r),
                          "monitor rates must be finite (validate telemetry first)");
    }
    monitor_event event;
    if (!initialized_) {
        recenter(time, rates);
        initialized_ = true;
        return event;
    }
    for (std::size_t i = 0; i < rates.size(); ++i) {
        // The divergence guard's widening applies at check time; scale 1.0
        // multiplies exactly, so an unscaled monitor is bit-identical.
        const band scaled{bands_[i].center, bands_[i].width * scale_};
        if (!scaled.contains(rates[i])) {
            event.any_exceeded = true;
            event.exceeded.push_back(i);
            const seconds interval = time - band_set_at_[i];
            event.completed_intervals.push_back(interval);
            history_[i].push_back(interval);
        }
    }
    return event;
}

void workload_monitor::recenter(seconds time, const std::vector<req_per_sec>& rates) {
    MISTRAL_CHECK(rates.size() == bands_.size());
    for (std::size_t i = 0; i < rates.size(); ++i) {
        MISTRAL_CHECK_MSG(std::isfinite(rates[i]),
                          "monitor rates must be finite (validate telemetry first)");
        bands_[i] = band{rates[i], width_};
        band_set_at_[i] = time;
    }
}

const band& workload_monitor::band_of(std::size_t app) const {
    MISTRAL_CHECK(app < bands_.size());
    return bands_[app];
}

const std::vector<seconds>& workload_monitor::measured_intervals(std::size_t app) const {
    MISTRAL_CHECK(app < history_.size());
    return history_[app];
}

}  // namespace mistral::wl
