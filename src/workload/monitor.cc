#include "workload/monitor.h"

#include "common/check.h"

namespace mistral::wl {

workload_monitor::workload_monitor(std::size_t app_count, req_per_sec band_width)
    : width_(band_width),
      bands_(app_count),
      band_set_at_(app_count, 0.0),
      history_(app_count) {
    MISTRAL_CHECK(app_count > 0);
    MISTRAL_CHECK(band_width >= 0.0);
}

monitor_event workload_monitor::observe(seconds time,
                                        const std::vector<req_per_sec>& rates) {
    MISTRAL_CHECK_MSG(rates.size() == bands_.size(),
                      "expected " << bands_.size() << " rates, got " << rates.size());
    monitor_event event;
    if (!initialized_) {
        recenter(time, rates);
        initialized_ = true;
        return event;
    }
    for (std::size_t i = 0; i < rates.size(); ++i) {
        if (!bands_[i].contains(rates[i])) {
            event.any_exceeded = true;
            event.exceeded.push_back(i);
            const seconds interval = time - band_set_at_[i];
            event.completed_intervals.push_back(interval);
            history_[i].push_back(interval);
        }
    }
    return event;
}

void workload_monitor::recenter(seconds time, const std::vector<req_per_sec>& rates) {
    MISTRAL_CHECK(rates.size() == bands_.size());
    for (std::size_t i = 0; i < rates.size(); ++i) {
        bands_[i] = band{rates[i], width_};
        band_set_at_[i] = time;
    }
}

const band& workload_monitor::band_of(std::size_t app) const {
    MISTRAL_CHECK(app < bands_.size());
    return bands_[app];
}

const std::vector<seconds>& workload_monitor::measured_intervals(std::size_t app) const {
    MISTRAL_CHECK(app < history_.size());
    return history_[app];
}

}  // namespace mistral::wl
