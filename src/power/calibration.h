// Offline power-model calibration.
//
// Section III-B: "A tuning parameter r is used to minimize the square error
// and is obtained at a model calibration phase. We use offline experiments to
// calibrate the non-linear model to fit into actual power consumption
// observed using a power meter." Given (utilization, watts) samples from a
// meter, `calibrate` recovers idle/busy endpoints and the exponent r.
#pragma once

#include <span>

#include "power/model.h"

namespace mistral::pwr {

struct meter_sample {
    fraction utilization = 0.0;
    watts power = 0.0;
};

struct calibration_result {
    host_power_model model;
    double rms_error = 0.0;  // residual RMS error against the samples
};

// Fits r by golden-section search over [r_lo, r_hi] minimizing squared error,
// with idle/busy taken from the samples' utilization extremes (the samples
// should include near-idle and near-busy points, as an offline campaign
// naturally does). Requires at least 3 samples.
calibration_result calibrate(std::span<const meter_sample> samples,
                             double r_lo = 0.5, double r_hi = 4.0);

}  // namespace mistral::pwr
