// Host power model.
//
// Section III-B: "for a physical machine, we use an empirical non-linear
// model, pwr = pwr_idle + (pwr_busy − pwr_idle) * (2ρ − ρ^r)", where ρ is the
// host's CPU utilization and r is a tuning exponent fit offline against a
// power meter. The defaults approximate the paper's Pentium-4 testbed (per-
// host draw of roughly 60 W idle to 95 W busy, matching the 150–400 W cluster
// range of Fig. 8c).
#pragma once

#include "common/units.h"

namespace mistral::pwr {

struct host_power_model {
    watts idle = 60.0;
    watts busy = 95.0;
    double r = 1.4;  // calibration exponent

    // Power draw at utilization `rho` (clamped into [0, 1]).
    [[nodiscard]] watts power(fraction rho) const;

    // Power-on transient draw (boot): the paper measured ~80 W over ~90 s.
    [[nodiscard]] watts boot_power() const { return 80.0; }
    // Shutdown transient draw: ~20 W over ~30 s.
    [[nodiscard]] watts shutdown_power() const { return 20.0; }
};

// Boot/shutdown durations from Section V-B.
inline constexpr seconds host_boot_duration = 90.0;
inline constexpr seconds host_shutdown_duration = 30.0;

}  // namespace mistral::pwr
