#include "power/calibration.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/stats.h"

namespace mistral::pwr {

calibration_result calibrate(std::span<const meter_sample> samples, double r_lo,
                             double r_hi) {
    MISTRAL_CHECK(samples.size() >= 3);
    MISTRAL_CHECK(r_lo > 0.0 && r_hi > r_lo);

    // For a fixed exponent r, the model is linear in (idle, busy):
    //   pwr = idle · (1 − g) + busy · g  with  g = 2ρ − ρ^r,
    // so the inner fit is ordinary least squares on g; the outer search over
    // r is one-dimensional and unimodal in practice.
    struct linear_fit {
        double idle = 0.0;
        double busy = 0.0;
        double sq_error = 0.0;
    };
    auto fit_for = [&](double r) {
        double s_gg = 0.0, s_g = 0.0, s_y = 0.0, s_gy = 0.0;
        const double n = static_cast<double>(samples.size());
        for (const auto& s : samples) {
            const double u = std::clamp(s.utilization, 0.0, 1.0);
            const double g = 2.0 * u - std::pow(u, r);
            s_gg += g * g;
            s_g += g;
            s_y += s.power;
            s_gy += g * s.power;
        }
        // Solve [n, s_g; s_g, s_gg] · [idle, busy−idle] = [s_y, s_gy].
        const double det = n * s_gg - s_g * s_g;
        linear_fit fit;
        if (std::abs(det) < 1e-12) {
            // Degenerate (all samples at one utilization): cannot separate
            // idle from busy.
            fit.idle = s_y / n;
            fit.busy = fit.idle;
        } else {
            const double span = (n * s_gy - s_g * s_y) / det;
            fit.idle = (s_y - span * s_g) / n;
            fit.busy = fit.idle + span;
        }
        host_power_model m{fit.idle, fit.busy, r};
        for (const auto& s : samples) {
            const double d = m.power(s.utilization) - s.power;
            fit.sq_error += d * d;
        }
        return fit;
    };

    const double best_r = golden_section_minimize(
        [&](double r) { return fit_for(r).sq_error; }, r_lo, r_hi, 1e-5);
    const auto fit = fit_for(best_r);
    MISTRAL_CHECK_MSG(fit.busy > fit.idle,
                      "samples must span idle to busy utilizations");

    calibration_result out;
    out.model = host_power_model{fit.idle, fit.busy, best_r};
    out.rms_error = std::sqrt(fit.sq_error / static_cast<double>(samples.size()));
    return out;
}

}  // namespace mistral::pwr
