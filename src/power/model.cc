#include "power/model.h"

#include <algorithm>
#include <cmath>

namespace mistral::pwr {

watts host_power_model::power(fraction rho) const {
    const double u = std::clamp(rho, 0.0, 1.0);
    // 2ρ − ρ^r: super-linear at low utilization, saturating near ρ = 1 for
    // r ≈ 1..2 (the curve passes through 0 at ρ=0 and 1 at ρ=1).
    const double shape = 2.0 * u - std::pow(u, r);
    return idle + (busy - idle) * shape;
}

}  // namespace mistral::pwr
