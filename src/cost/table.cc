#include "cost/table.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace mistral::cost {

void cost_table::add_measurement(cluster::action_kind kind, std::size_t tier,
                                 req_per_sec workload, const cost_entry& entry) {
    MISTRAL_CHECK(workload >= 0.0);
    MISTRAL_CHECK(entry.duration >= 0.0);
    samples_[{kind, tier}].push_back({workload, entry});
}

bool cost_table::has(cluster::action_kind kind, std::size_t tier) const {
    const auto it = samples_.find({kind, tier});
    return it != samples_.end() && !it->second.empty();
}

cost_entry cost_table::lookup(cluster::action_kind kind, std::size_t tier,
                              req_per_sec workload) const {
    auto it = samples_.find({kind, tier});
    if (it == samples_.end() || it->second.empty()) {
        // Tier-specific data missing: fall back to the tier-0 table for the
        // same action kind (host power and CPU tuning live there anyway).
        it = samples_.find({kind, std::size_t{0}});
    }
    MISTRAL_CHECK_MSG(it != samples_.end() && !it->second.empty(),
                      "no cost measurements for " << cluster::to_string(kind)
                                                  << " tier " << tier);
    // Closest measured workload, then the mean of its samples.
    double best = std::numeric_limits<double>::infinity();
    req_per_sec best_key = 0.0;
    for (const auto& [w, entry] : it->second) {
        const double d = std::abs(w - workload);
        if (d < best) {
            best = d;
            best_key = w;
        }
    }
    cost_entry sum;
    std::size_t n = 0;
    for (const auto& [w, entry] : it->second) {
        if (std::abs(w - best_key) > 1e-9) continue;
        sum.duration += entry.duration;
        sum.delta_rt_target += entry.delta_rt_target;
        sum.delta_rt_colocated += entry.delta_rt_colocated;
        sum.delta_power += entry.delta_power;
        ++n;
    }
    const auto scale = 1.0 / static_cast<double>(n);
    sum.duration *= scale;
    sum.delta_rt_target *= scale;
    sum.delta_rt_colocated *= scale;
    sum.delta_power *= scale;
    return sum;
}

cost_entry cost_table::lookup(const cluster::cluster_model& model,
                              const cluster::action& a,
                              const std::vector<req_per_sec>& rates) const {
    MISTRAL_CHECK(rates.size() == model.app_count());
    const auto kind = cluster::kind_of(a);
    if (kind == cluster::action_kind::power_on ||
        kind == cluster::action_kind::power_off) {
        double total = 0.0;
        for (double r : rates) total += r;
        return lookup(kind, 0, total);
    }
    const vm_id vm = std::visit(
        [](const auto& x) -> vm_id {
            using T = std::decay_t<decltype(x)>;
            if constexpr (std::is_same_v<T, cluster::power_on> ||
                          std::is_same_v<T, cluster::power_off>) {
                return vm_id{};
            } else {
                return x.vm;
            }
        },
        a);
    const auto& desc = model.vm(vm);
    return lookup(kind, desc.tier, rates[desc.app.index()]);
}

std::vector<req_per_sec> cost_table::workloads(cluster::action_kind kind,
                                               std::size_t tier) const {
    std::vector<req_per_sec> out;
    const auto it = samples_.find({kind, tier});
    if (it == samples_.end()) return out;
    for (const auto& [w, entry] : it->second) {
        if (std::find_if(out.begin(), out.end(), [&](double x) {
                return std::abs(x - w) < 1e-9;
            }) == out.end()) {
            out.push_back(w);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

void cost_table::for_each_sample(
    const std::function<void(cluster::action_kind, std::size_t, req_per_sec,
                             const cost_entry&)>& fn) const {
    for (const auto& [key, samples] : samples_) {
        for (const auto& [workload, entry] : samples) {
            fn(key.first, key.second, workload, entry);
        }
    }
}

cost_table cost_table::paper_defaults() {
    using cluster::action_kind;
    cost_table t;
    // Fig. 7: sessions 100..800 at ~8 s per session cycle → 12.5..100 req/s.
    // Tier indices follow the RUBiS factory: 0 = Apache, 1 = Tomcat, 2 = MySQL.
    for (int sessions = 100; sessions <= 800; sessions += 100) {
        const double frac = (sessions - 100) / 700.0;  // 0 at 100, 1 at 800
        const req_per_sec w = sessions / 8.0;
        // Migration delta power ~8 % → 17 % of a ~150 W affected-host pair.
        const watts dpwr = (0.08 + 0.09 * frac) * 150.0;
        // Delta response times (Fig. 7b): MySQL worst, Apache mildest.
        const seconds rt_mysql = 0.10 + 0.60 * frac;
        const seconds rt_tomcat = 0.07 + 0.42 * frac;
        const seconds rt_apache = 0.05 + 0.30 * frac;
        // Adaptation delay (Fig. 7c): ~10 s → ~70 s.
        const seconds d_base = 10.0 + 60.0 * frac;

        t.add_measurement(action_kind::migrate, 0, w,
                          {d_base * 0.9, rt_apache, rt_apache * 0.4, dpwr * 0.9});
        t.add_measurement(action_kind::migrate, 1, w,
                          {d_base, rt_tomcat, rt_tomcat * 0.4, dpwr});
        t.add_measurement(action_kind::migrate, 2, w,
                          {d_base * 1.1, rt_mysql, rt_mysql * 0.4, dpwr * 1.05});
        // Replica addition = migration from the pool plus DB sync overhead.
        // The web tier never clones in steady operation (max one replica),
        // but crash repair re-adds its VM, so it needs an entry too.
        t.add_measurement(action_kind::add_replica, 0, w,
                          {d_base, rt_apache * 1.1, rt_apache * 0.45, dpwr * 0.95});
        t.add_measurement(action_kind::add_replica, 1, w,
                          {d_base * 1.1, rt_tomcat * 1.1, rt_tomcat * 0.45, dpwr});
        t.add_measurement(action_kind::add_replica, 2, w,
                          {d_base * 1.25, rt_mysql * 1.15, rt_mysql * 0.45, dpwr * 1.1});
        // Removal migrates back to the pool with less pressure.
        t.add_measurement(action_kind::remove_replica, 0, w,
                          {d_base * 0.8, rt_apache * 0.6, rt_apache * 0.25, dpwr * 0.8});
        t.add_measurement(action_kind::remove_replica, 1, w,
                          {d_base * 0.8, rt_tomcat * 0.6, rt_tomcat * 0.25, dpwr * 0.8});
        t.add_measurement(action_kind::remove_replica, 2, w,
                          {d_base * 0.8, rt_mysql * 0.6, rt_mysql * 0.25, dpwr * 0.85});
        // CPU tuning: effectively instantaneous scheduler calls.
        for (std::size_t tier = 0; tier < 3; ++tier) {
            t.add_measurement(action_kind::increase_cpu, tier, w,
                              {1.0, 0.005, 0.0, 0.5});
            t.add_measurement(action_kind::decrease_cpu, tier, w,
                              {1.0, 0.005, 0.0, 0.0});
        }
    }
    // Section V-B: "Starting a host takes around 90 sec and consumes around
    // 80 watts while shut-down takes 30 sec and consumes 20 watts. We assume
    // that response times on other machines are not changed."
    // delta_power is relative to the steady draw of the configuration the
    // action fires from: a booting host is off in that configuration (+80 W
    // of new draw), while a host being shut down is still accounted at its
    // ~60 W idle, so drawing 20 W during shutdown is a 40 W *reduction*.
    t.add_measurement(action_kind::power_on, 0, 0.0, {90.0, 0.0, 0.0, 80.0});
    t.add_measurement(action_kind::power_off, 0, 0.0, {30.0, 0.0, 0.0, -40.0});
    return t;
}

}  // namespace mistral::cost
