// Adaptation cost tables.
//
// Section III-C: "Costs of these adaptation actions are measured
// experimentally offline for different workloads and configurations and are
// stored in tables used at runtime. ... These deltas along with the action
// duration are averaged across all random configurations, and their values
// are encoded in a cost table indexed by the workload. When Mistral requires
// an estimate of adaptation costs at runtime, it measures the current
// workload W and looks up the cost table entry with the closest workload."
//
// Table keys are (action kind, tier index) because Fig. 7 measures migration
// and replication costs per tier (Apache/Tomcat/MySQL behave differently);
// host power-cycling and CPU tuning ignore the tier dimension.
#pragma once

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "cluster/action.h"
#include "common/units.h"

namespace mistral::cost {

struct cost_entry {
    seconds duration = 0.0;
    // Response-time increase for the application being adapted and for
    // applications co-located with it, while the action runs.
    seconds delta_rt_target = 0.0;
    seconds delta_rt_colocated = 0.0;
    // Extra power drawn on the affected hosts while the action runs.
    watts delta_power = 0.0;
};

class cost_table {
public:
    // Records one offline measurement at `workload` (req/s of the adapted
    // application). Multiple samples at the same key are averaged on lookup.
    void add_measurement(cluster::action_kind kind, std::size_t tier,
                         req_per_sec workload, const cost_entry& entry);

    [[nodiscard]] bool has(cluster::action_kind kind, std::size_t tier) const;

    // The paper's runtime rule: pick the measured workload closest to
    // `workload`, return the mean of its samples. Requires has(kind, tier).
    [[nodiscard]] cost_entry lookup(cluster::action_kind kind, std::size_t tier,
                                    req_per_sec workload) const;

    // Convenience: cost of a concrete action given the per-app workload
    // vector. Resolves the action's kind, tier, and the workload of the
    // application it touches (host power actions use the total workload).
    [[nodiscard]] cost_entry lookup(const cluster::cluster_model& model,
                                    const cluster::action& a,
                                    const std::vector<req_per_sec>& rates) const;

    // All measured workload keys for (kind, tier), sorted (for reporting).
    [[nodiscard]] std::vector<req_per_sec> workloads(cluster::action_kind kind,
                                                     std::size_t tier) const;

    // Invokes `fn(kind, tier, workload, entry)` for every recorded sample in
    // deterministic (kind, tier, insertion) order — the persistence hook.
    void for_each_sample(
        const std::function<void(cluster::action_kind, std::size_t, req_per_sec,
                                 const cost_entry&)>& fn) const;

    // A table pre-populated with the paper's published measurements: Fig. 7's
    // migration/replication costs over 100–800 concurrent sessions and the
    // Section V-B host power-cycle constants. Used as a fallback and by unit
    // tests; benches measure their own tables against the testbed simulator.
    static cost_table paper_defaults();

private:
    using key = std::pair<cluster::action_kind, std::size_t>;
    // samples[key]: (workload, entry) pairs, unsorted.
    std::map<key, std::vector<std::pair<req_per_sec, cost_entry>>> samples_;
};

}  // namespace mistral::cost
