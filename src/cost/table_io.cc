#include "cost/table_io.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace mistral::cost {

cluster::action_kind parse_action_kind(const std::string& name) {
    using cluster::action_kind;
    for (const auto kind :
         {action_kind::increase_cpu, action_kind::decrease_cpu,
          action_kind::add_replica, action_kind::remove_replica,
          action_kind::migrate, action_kind::power_on, action_kind::power_off}) {
        if (name == cluster::to_string(kind)) return kind;
    }
    MISTRAL_CHECK_MSG(false, "unknown action kind '" << name << "'");
    return action_kind::migrate;  // unreachable
}

void write_cost_table_csv(std::ostream& out, const cost_table& table) {
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    out << "kind,tier,workload,duration,delta_rt_target,delta_rt_colocated,"
           "delta_power\n";
    table.for_each_sample([&](cluster::action_kind kind, std::size_t tier,
                              req_per_sec workload, const cost_entry& e) {
        out << cluster::to_string(kind) << ',' << tier << ',' << workload << ','
            << e.duration << ',' << e.delta_rt_target << ','
            << e.delta_rt_colocated << ',' << e.delta_power << '\n';
    });
}

void save_cost_table_csv(const std::string& path, const cost_table& table) {
    std::ofstream out(path);
    MISTRAL_CHECK_MSG(out.good(), "cannot write cost table " << path);
    write_cost_table_csv(out, table);
}

cost_table read_cost_table_csv(std::istream& in) {
    cost_table table;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (const auto hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        if (line.rfind("kind,", 0) == 0) continue;  // header

        std::istringstream row(line);
        std::string field;
        std::vector<std::string> fields;
        while (std::getline(row, field, ',')) fields.push_back(field);
        MISTRAL_CHECK_MSG(fields.size() == 7,
                          "cost table line " << line_no << ": expected 7 fields, got "
                                             << fields.size() << " in: " << line);
        try {
            const auto kind = parse_action_kind(fields[0]);
            const auto tier = static_cast<std::size_t>(std::stoul(fields[1]));
            const req_per_sec workload = std::stod(fields[2]);
            cost_entry e;
            e.duration = std::stod(fields[3]);
            e.delta_rt_target = std::stod(fields[4]);
            e.delta_rt_colocated = std::stod(fields[5]);
            e.delta_power = std::stod(fields[6]);
            table.add_measurement(kind, tier, workload, e);
        } catch (const invariant_error&) {
            throw;
        } catch (const std::exception&) {
            MISTRAL_CHECK_MSG(false, "cost table line " << line_no
                                                        << ": non-numeric field in: "
                                                        << line);
        }
    }
    return table;
}

cost_table load_cost_table_csv(const std::string& path) {
    std::ifstream in(path);
    MISTRAL_CHECK_MSG(in.good(), "cannot open cost table " << path);
    return read_cost_table_csv(in);
}

}  // namespace mistral::cost
