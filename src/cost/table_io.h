// Cost-table persistence.
//
// The paper's cost tables are measured once offline (hours of experiments)
// and consumed at runtime; persisting them is what makes that split real.
// The format is a plain CSV — one row per measurement sample:
//
//     kind,tier,workload,duration,delta_rt_target,delta_rt_colocated,delta_power
//
// with '#' comments and an optional header tolerated, so campaign outputs
// can be inspected, version-controlled, and hand-edited.
#pragma once

#include <iosfwd>
#include <string>

#include "cost/table.h"

namespace mistral::cost {

// Writes every sample of the table (full precision; lookup-time averaging
// re-derives identical results after a round trip).
void write_cost_table_csv(std::ostream& out, const cost_table& table);
void save_cost_table_csv(const std::string& path, const cost_table& table);

// Parses a table written by the functions above (or by hand). Throws
// invariant_error with line context on malformed rows or unknown kinds.
cost_table read_cost_table_csv(std::istream& in);
cost_table load_cost_table_csv(const std::string& path);

// Kind names used in the CSV ("migrate", "add_replica", ...). Exposed for
// tools; round-trips with cluster::to_string(action_kind).
cluster::action_kind parse_action_kind(const std::string& name);

}  // namespace mistral::cost
