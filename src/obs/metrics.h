// Metrics registry: counters, gauges, fixed-bucket histograms.
//
// The controller's hot paths (A* expansions, LQN solves) cannot afford a
// mutex or an allocation per sample, and with observability off they must
// cost nothing at all. The registry therefore splits the lifecycle:
//
//  * registration (cold) — name → handle, under a mutex, once per component
//    construction. Handles are small value types pointing at registry-owned
//    atomic cells whose addresses are stable for the registry's lifetime.
//  * recording (hot)     — one relaxed atomic add through the handle. A
//    default-constructed handle is *disabled*: recording through it is a
//    single branch on a null pointer — no lock, no allocation, no virtual
//    call — which is the cost every hook pays when observability is off
//    (bench/micro_obs.cc measures both paths).
//
// Histograms use fixed bucket bounds chosen at registration (Prometheus `le`
// semantics: bucket i counts samples ≤ bounds[i], plus a +Inf overflow), so
// observing is bound lookup + two atomic adds, still allocation-free.
//
// `write_prometheus` dumps the whole registry in the Prometheus text
// exposition format, in registration order, using the shared round-trip
// number formatter (json.h) so dumps are stable across runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mistral::obs {

class metrics_registry;

// Monotonic counter. Default-constructed handles are disabled no-ops.
class counter {
public:
    counter() = default;

    void add(std::int64_t n = 1) const {
        if (cell_) cell_->fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const {
        return cell_ ? cell_->load(std::memory_order_relaxed) : 0;
    }
    [[nodiscard]] bool live() const { return cell_ != nullptr; }

private:
    friend class metrics_registry;
    explicit counter(std::atomic<std::int64_t>* cell) : cell_(cell) {}
    std::atomic<std::int64_t>* cell_ = nullptr;
};

// Last-write-wins instantaneous value.
class gauge {
public:
    gauge() = default;

    void set(double v) const {
        if (cell_) cell_->store(v, std::memory_order_relaxed);
    }
    [[nodiscard]] double value() const {
        return cell_ ? cell_->load(std::memory_order_relaxed) : 0.0;
    }
    [[nodiscard]] bool live() const { return cell_ != nullptr; }

private:
    friend class metrics_registry;
    explicit gauge(std::atomic<double>* cell) : cell_(cell) {}
    std::atomic<double>* cell_ = nullptr;
};

namespace detail {
struct histogram_cells {
    std::vector<double> bounds;  // strictly increasing upper bounds (`le`)
    // bounds.size() + 1 cells; the last is the +Inf overflow bucket.
    std::deque<std::atomic<std::int64_t>> counts;
    std::atomic<double> sum{0.0};

    [[nodiscard]] std::size_t bucket_index(double v) const;
};
}  // namespace detail

// Fixed-bucket histogram. A sample lands in the first bucket whose upper
// bound is ≥ the value (so a sample exactly on a bound belongs to that
// bound's bucket); larger samples land in the +Inf overflow. NaN samples
// count in the overflow bucket and are excluded from the sum.
class histogram {
public:
    histogram() = default;

    void observe(double v) const {
        if (!cells_) return;
        cells_->counts[cells_->bucket_index(v)].fetch_add(
            1, std::memory_order_relaxed);
        if (v == v) cells_->sum.fetch_add(v, std::memory_order_relaxed);
    }
    [[nodiscard]] bool live() const { return cells_ != nullptr; }
    [[nodiscard]] std::int64_t count() const;
    [[nodiscard]] double sum() const;
    // Non-cumulative count of bucket i (i == bounds.size() is the overflow).
    [[nodiscard]] std::int64_t bucket_count(std::size_t i) const;

private:
    friend class metrics_registry;
    explicit histogram(detail::histogram_cells* cells) : cells_(cells) {}
    detail::histogram_cells* cells_ = nullptr;
};

// The registry. Thread-safe; registration is idempotent — re-registering a
// name returns the existing handle (the kind, and for histograms the bounds,
// must match, or registration throws invariant_error). Names must match the
// Prometheus charset [a-zA-Z_:][a-zA-Z0-9_:]*.
class metrics_registry {
public:
    metrics_registry() = default;
    metrics_registry(const metrics_registry&) = delete;
    metrics_registry& operator=(const metrics_registry&) = delete;

    counter register_counter(std::string_view name, std::string_view help = "");
    gauge register_gauge(std::string_view name, std::string_view help = "");
    histogram register_histogram(std::string_view name,
                                 std::vector<double> bounds,
                                 std::string_view help = "");

    // Current value by name (tests and summaries); 0 when unregistered.
    [[nodiscard]] std::int64_t counter_value(std::string_view name) const;
    [[nodiscard]] double gauge_value(std::string_view name) const;

    // Prometheus text exposition format, in registration order.
    void write_prometheus(std::ostream& out) const;

    [[nodiscard]] std::size_t size() const;

private:
    enum class kind { counter, gauge, histogram };
    struct row {
        kind k = kind::counter;
        std::string name;
        std::string help;
        std::atomic<std::int64_t> count{0};   // counter
        std::atomic<double> level{0.0};       // gauge
        detail::histogram_cells cells;        // histogram
    };

    mutable std::mutex mutex_;
    std::deque<row> rows_;  // deque: row addresses are stable
    std::unordered_map<std::string, row*> index_;

    row* find_or_insert(kind k, std::string_view name, std::string_view help);
};

}  // namespace mistral::obs
