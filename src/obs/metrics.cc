#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "obs/json.h"

namespace mistral::obs {

namespace detail {

std::size_t histogram_cells::bucket_index(double v) const {
    if (v != v) return bounds.size();  // NaN → overflow
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    return static_cast<std::size_t>(it - bounds.begin());
}

}  // namespace detail

namespace {

bool valid_metric_name(std::string_view name) {
    if (name.empty()) return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
               c == ':';
    };
    if (!head(name[0])) return false;
    for (const char c : name.substr(1)) {
        if (!head(c) && !(c >= '0' && c <= '9')) return false;
    }
    return true;
}

}  // namespace

std::int64_t histogram::count() const {
    if (!cells_) return 0;
    std::int64_t total = 0;
    for (const auto& c : cells_->counts) {
        total += c.load(std::memory_order_relaxed);
    }
    return total;
}

double histogram::sum() const {
    return cells_ ? cells_->sum.load(std::memory_order_relaxed) : 0.0;
}

std::int64_t histogram::bucket_count(std::size_t i) const {
    if (!cells_ || i >= cells_->counts.size()) return 0;
    return cells_->counts[i].load(std::memory_order_relaxed);
}

metrics_registry::row* metrics_registry::find_or_insert(kind k,
                                                        std::string_view name,
                                                        std::string_view help) {
    MISTRAL_CHECK_MSG(valid_metric_name(name),
                      "invalid metric name '" << name << "'");
    const auto it = index_.find(std::string(name));
    if (it != index_.end()) {
        MISTRAL_CHECK_MSG(it->second->k == k,
                          "metric '" << name << "' re-registered as a different kind");
        return it->second;
    }
    rows_.emplace_back();
    row& r = rows_.back();
    r.k = k;
    r.name = std::string(name);
    r.help = std::string(help);
    index_.emplace(r.name, &r);
    return &r;
}

counter metrics_registry::register_counter(std::string_view name,
                                           std::string_view help) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return counter(&find_or_insert(kind::counter, name, help)->count);
}

gauge metrics_registry::register_gauge(std::string_view name,
                                       std::string_view help) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return gauge(&find_or_insert(kind::gauge, name, help)->level);
}

histogram metrics_registry::register_histogram(std::string_view name,
                                               std::vector<double> bounds,
                                               std::string_view help) {
    MISTRAL_CHECK_MSG(!bounds.empty(), "histogram '" << name << "' needs bounds");
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
        MISTRAL_CHECK_MSG(bounds[i] < bounds[i + 1],
                          "histogram '" << name
                                        << "' bounds must be strictly increasing");
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    row* r = find_or_insert(kind::histogram, name, help);
    if (r->cells.counts.empty()) {
        r->cells.bounds = std::move(bounds);
        for (std::size_t i = 0; i <= r->cells.bounds.size(); ++i) {
            r->cells.counts.emplace_back(0);
        }
    } else {
        MISTRAL_CHECK_MSG(r->cells.bounds == bounds,
                          "histogram '" << name
                                        << "' re-registered with different bounds");
    }
    return histogram(&r->cells);
}

std::int64_t metrics_registry::counter_value(std::string_view name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(std::string(name));
    if (it == index_.end() || it->second->k != kind::counter) return 0;
    return it->second->count.load(std::memory_order_relaxed);
}

double metrics_registry::gauge_value(std::string_view name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(std::string(name));
    if (it == index_.end() || it->second->k != kind::gauge) return 0.0;
    return it->second->level.load(std::memory_order_relaxed);
}

std::size_t metrics_registry::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return rows_.size();
}

void metrics_registry::write_prometheus(std::ostream& out) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& r : rows_) {
        if (!r.help.empty()) {
            out << "# HELP " << r.name << ' ' << r.help << '\n';
        }
        switch (r.k) {
            case kind::counter:
                out << "# TYPE " << r.name << " counter\n"
                    << r.name << ' '
                    << r.count.load(std::memory_order_relaxed) << '\n';
                break;
            case kind::gauge:
                out << "# TYPE " << r.name << " gauge\n"
                    << r.name << ' '
                    << format_number(r.level.load(std::memory_order_relaxed))
                    << '\n';
                break;
            case kind::histogram: {
                out << "# TYPE " << r.name << " histogram\n";
                std::int64_t cumulative = 0;
                for (std::size_t i = 0; i < r.cells.bounds.size(); ++i) {
                    cumulative +=
                        r.cells.counts[i].load(std::memory_order_relaxed);
                    out << r.name << "_bucket{le=\""
                        << format_number(r.cells.bounds[i]) << "\"} "
                        << cumulative << '\n';
                }
                cumulative += r.cells.counts[r.cells.bounds.size()].load(
                    std::memory_order_relaxed);
                out << r.name << "_bucket{le=\"+Inf\"} " << cumulative << '\n'
                    << r.name << "_sum "
                    << format_number(
                           r.cells.sum.load(std::memory_order_relaxed))
                    << '\n'
                    << r.name << "_count " << cumulative << '\n';
                break;
            }
        }
    }
}

}  // namespace mistral::obs
