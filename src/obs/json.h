// Minimal JSON support for the observability subsystem.
//
// The journal emits JSONL (journal.h) and the Prometheus dump emits numbers
// (metrics.h); both must be parseable back so tests can prove the schema
// round-trips and tools can reconcile a journal against a run's final
// accounting. This header provides the two halves:
//
//  * format_number — the one double formatter every obs emitter uses:
//    shortest representation that round-trips exactly (std::to_chars), so
//    emit → parse → re-emit is the identity on every line.
//  * json::value  — a small recursive-descent parser covering the subset the
//    journal writes (null, booleans, numbers, strings with escapes, arrays,
//    objects). Object member order is preserved, which is what makes the
//    round-trip comparison a plain string equality.
//
// No external dependencies; malformed input throws invariant_error.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mistral::obs {

// Shortest round-trip decimal form of `v` ("5", "0.25", "1e+300"). Non-finite
// values are not valid JSON; they emit as quoted "inf"/"-inf"/"nan" markers.
[[nodiscard]] std::string format_number(double v);

// Escapes `s` for a JSON string literal and wraps it in quotes.
[[nodiscard]] std::string quote(std::string_view s);

namespace json {

class value {
public:
    enum class kind { null, boolean, number, text, array, object };

    value() = default;  // null

    // Parses exactly one JSON document; trailing non-whitespace throws.
    [[nodiscard]] static value parse(std::string_view text);

    [[nodiscard]] kind type() const { return kind_; }
    [[nodiscard]] bool is_null() const { return kind_ == kind::null; }
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_text() const;
    [[nodiscard]] const std::vector<value>& items() const;  // arrays
    [[nodiscard]] const std::vector<std::pair<std::string, value>>& members()
        const;  // objects, in document order

    // Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const value* find(std::string_view key) const;

    // Serializes back using format_number, preserving member order — the
    // inverse of parse for everything the journal emits.
    [[nodiscard]] std::string dump() const;

private:
    kind kind_ = kind::null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string text_;
    std::vector<value> items_;
    std::vector<std::pair<std::string, value>> members_;

    friend class parser;
};

}  // namespace json

}  // namespace mistral::obs
