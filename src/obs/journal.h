// Structured event journal: decision records, testbed/fault events, search
// profiles, all behind one sink interface.
//
// Every instrumented component (controller, search, evaluator, testbed,
// experiment harness) takes a non-owning `obs::sink*` that defaults to
// nullptr — the null sink. Hook sites guard with `journaling(sink)` before
// building an event, so with observability off a hook costs one branch and
// default behavior/outputs stay byte-identical to a build without the
// subsystem. The sink also hands out the metrics registry (metrics.h), so
// one pointer wires both the journal and the metrics of a component.
//
// Events have a *stable schema* (see DESIGN.md §10): a `type` tag, a
// timestamp `t` (simulation seconds), and typed fields emitted in a fixed
// order per type. `jsonl_sink` serializes each event as one JSON line via
// the shared round-trip number formatter, so a journal can be parsed back
// (json.h) and reconciled against the run's final accounting — the
// round-trip is tested field-for-field and string-for-string.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace mistral::obs {

// One journal entry. Fields keep their insertion order; the builder methods
// return *this so hook sites read as one expression.
struct event {
    enum class field_kind { number, integer, boolean, text, number_list, text_list };

    struct field {
        std::string key;
        field_kind kind = field_kind::number;
        double num = 0.0;
        std::int64_t integer = 0;
        bool boolean = false;
        std::string text;
        std::vector<double> numbers;
        std::vector<std::string> texts;
    };

    std::string type;
    double time = 0.0;
    std::vector<field> fields;

    event(std::string type_tag, double t) : type(std::move(type_tag)), time(t) {}

    event& num(std::string_view key, double v);
    event& integer(std::string_view key, std::int64_t v);
    event& boolean(std::string_view key, bool v);
    event& text(std::string_view key, std::string v);
    event& num_list(std::string_view key, std::vector<double> v);
    event& text_list(std::string_view key, std::vector<std::string> v);

    [[nodiscard]] const field* find(std::string_view key) const;
};

// One event as a single JSON line (no trailing newline): `{"type":...,"t":...,
// <fields in order>}`.
[[nodiscard]] std::string to_json_line(const event& e);

// Every event type an instrumented component emits, sorted. The obs
// round-trip suite iterates this registry and fails when a type lacks a
// parse∘dump round-trip sample, so a new event type cannot ship untested:
// extend this list together with the emitter and the test's sample.
[[nodiscard]] const std::vector<std::string>& known_event_types();

// The hook interface. `enabled()` gates journal emission; `metrics()` is the
// registry hooks register their handles in (nullptr = metrics off).
class sink {
public:
    virtual ~sink() = default;

    [[nodiscard]] virtual bool enabled() const = 0;
    virtual void record(const event& e) = 0;
    [[nodiscard]] virtual metrics_registry* metrics() { return nullptr; }
};

// Should this hook build and record an event? The one-branch disabled path.
[[nodiscard]] inline bool journaling(const sink* s) {
    return s != nullptr && s->enabled();
}

// Registry reachable through an optional sink (nullptr when either is off).
[[nodiscard]] inline metrics_registry* metrics_of(sink* s) {
    return s != nullptr ? s->metrics() : nullptr;
}

// Explicit do-nothing sink, for callers that want a non-null default object.
class null_sink final : public sink {
public:
    [[nodiscard]] bool enabled() const override { return false; }
    void record(const event&) override {}
};

// Writes one JSON line per event to a caller-owned stream.
class jsonl_sink : public sink {
public:
    explicit jsonl_sink(std::ostream& out, metrics_registry* metrics = nullptr)
        : out_(&out), metrics_(metrics) {}

    [[nodiscard]] bool enabled() const override { return true; }
    void record(const event& e) override { *out_ << to_json_line(e) << '\n'; }
    [[nodiscard]] metrics_registry* metrics() override { return metrics_; }

private:
    std::ostream* out_;
    metrics_registry* metrics_;
};

// jsonl_sink that owns the file it writes.
class jsonl_file_sink final : public sink {
public:
    explicit jsonl_file_sink(const std::string& path,
                             metrics_registry* metrics = nullptr);

    [[nodiscard]] bool enabled() const override { return true; }
    void record(const event& e) override { out_ << to_json_line(e) << '\n'; }
    [[nodiscard]] metrics_registry* metrics() override { return metrics_; }
    void flush() { out_.flush(); }

private:
    std::ofstream out_;
    metrics_registry* metrics_;
};

// Retains every event in memory (tests, in-process reconciliation).
class memory_sink final : public sink {
public:
    explicit memory_sink(metrics_registry* metrics = nullptr)
        : metrics_(metrics) {}

    [[nodiscard]] bool enabled() const override { return true; }
    void record(const event& e) override { events_.push_back(e); }
    [[nodiscard]] metrics_registry* metrics() override { return metrics_; }

    [[nodiscard]] const std::vector<event>& events() const { return events_; }
    [[nodiscard]] std::size_t count(std::string_view type) const;
    void clear() { events_.clear(); }

private:
    std::vector<event> events_;
    metrics_registry* metrics_;
};

}  // namespace mistral::obs
