#include "obs/profile.h"

namespace mistral::obs {

event search_profile::to_event(double now) const {
    event e("search", now);
    e.num("cw", control_window)
        .num("budget", budget)
        .num("duration", duration)
        .num("active_seconds", active_seconds)
        .num("power_cost", power_cost)
        .integer("expansions", expansions)
        .integer("generated", generated)
        .boolean("pruned", pruned)
        .integer("eval_hits", eval_hits)
        .integer("eval_misses", eval_misses)
        .num("memo_hit_rate", memo_hit_rate())
        .text("meter", meter)
        .num_list("depth_expansions", depth_expansions)
        .num_list("depth_meter_time", depth_meter_time)
        .integer("plan_actions", plan_actions)
        .num("expected_utility", expected_utility)
        .num("ideal_utility", ideal_utility);
    return e;
}

}  // namespace mistral::obs
