// Search profiler: the per-decision trace of where the A* spent its budget.
//
// `core::adaptation_search` fills one of these per `find()` call when a sink
// is attached (and skips all of it — including the per-depth vectors — when
// observability is off). Timing comes from the search meter, so under the
// deterministic model-clock meter a profile replays bit-identically across
// runs and thread counts: the per-depth "time" is modeled search cost, not
// wall clock, which is exactly what makes traces comparable in CI.
//
// The schema (event type "search") is part of the journal's stable surface;
// see DESIGN.md §10.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/journal.h"

namespace mistral::obs {

struct search_profile {
    double control_window = 0.0;     // CW the search optimized over (s)
    double budget = 0.0;             // UH handed to the self-aware meter ($)
    double duration = 0.0;           // meter-elapsed search time (s)
    double active_seconds = 0.0;     // busy worker-seconds (power base)
    double power_cost = 0.0;         // $ the search's own power drew
    std::int64_t expansions = 0;     // vertices expanded
    std::int64_t generated = 0;      // children generated
    bool pruned = false;             // self-aware pruning engaged
    std::int64_t eval_hits = 0;      // memoized evaluations reused
    std::int64_t eval_misses = 0;    // LQN solves actually paid for
    std::string meter;               // "model_clock" / "wall_clock" / custom
    // Index = vertex depth (actions on the path from the root).
    std::vector<double> depth_expansions;  // expansions per depth
    std::vector<double> depth_meter_time;  // meter seconds charged per depth
    std::int64_t plan_actions = 0;   // actions in the returned plan
    double expected_utility = 0.0;   // Eq. 3 value of the returned plan ($)
    double ideal_utility = 0.0;      // U° · CW heuristic bound ($)

    [[nodiscard]] double memo_hit_rate() const {
        const auto total = eval_hits + eval_misses;
        return total > 0
                   ? static_cast<double>(eval_hits) / static_cast<double>(total)
                   : 0.0;
    }

    // The journal record (type "search") at simulation time `now`.
    [[nodiscard]] event to_event(double now) const;
};

}  // namespace mistral::obs
