#include "obs/journal.h"

#include "common/check.h"
#include "obs/json.h"

namespace mistral::obs {

event& event::num(std::string_view key, double v) {
    field f;
    f.key = std::string(key);
    f.kind = field_kind::number;
    f.num = v;
    fields.push_back(std::move(f));
    return *this;
}

event& event::integer(std::string_view key, std::int64_t v) {
    field f;
    f.key = std::string(key);
    f.kind = field_kind::integer;
    f.integer = v;
    fields.push_back(std::move(f));
    return *this;
}

event& event::boolean(std::string_view key, bool v) {
    field f;
    f.key = std::string(key);
    f.kind = field_kind::boolean;
    f.boolean = v;
    fields.push_back(std::move(f));
    return *this;
}

event& event::text(std::string_view key, std::string v) {
    field f;
    f.key = std::string(key);
    f.kind = field_kind::text;
    f.text = std::move(v);
    fields.push_back(std::move(f));
    return *this;
}

event& event::num_list(std::string_view key, std::vector<double> v) {
    field f;
    f.key = std::string(key);
    f.kind = field_kind::number_list;
    f.numbers = std::move(v);
    fields.push_back(std::move(f));
    return *this;
}

event& event::text_list(std::string_view key, std::vector<std::string> v) {
    field f;
    f.key = std::string(key);
    f.kind = field_kind::text_list;
    f.texts = std::move(v);
    fields.push_back(std::move(f));
    return *this;
}

const event::field* event::find(std::string_view key) const {
    for (const auto& f : fields) {
        if (f.key == key) return &f;
    }
    return nullptr;
}

std::string to_json_line(const event& e) {
    std::string out = "{\"type\":";
    out += quote(e.type);
    out += ",\"t\":";
    out += format_number(e.time);
    for (const auto& f : e.fields) {
        out.push_back(',');
        out += quote(f.key);
        out.push_back(':');
        switch (f.kind) {
            case event::field_kind::number: out += format_number(f.num); break;
            case event::field_kind::integer:
                out += std::to_string(f.integer);
                break;
            case event::field_kind::boolean:
                out += f.boolean ? "true" : "false";
                break;
            case event::field_kind::text: out += quote(f.text); break;
            case event::field_kind::number_list: {
                out.push_back('[');
                for (std::size_t i = 0; i < f.numbers.size(); ++i) {
                    if (i) out.push_back(',');
                    out += format_number(f.numbers[i]);
                }
                out.push_back(']');
                break;
            }
            case event::field_kind::text_list: {
                out.push_back('[');
                for (std::size_t i = 0; i < f.texts.size(); ++i) {
                    if (i) out.push_back(',');
                    out += quote(f.texts[i]);
                }
                out.push_back(']');
                break;
            }
        }
    }
    out.push_back('}');
    return out;
}

const std::vector<std::string>& known_event_types() {
    static const std::vector<std::string> types = {
        "action_fail",    "action_finish", "action_start",
        "decision",       "econ_decision", "host_crash",
        "host_recover",   "interval",      "ladder_transition",
        "lookahead",      "pod_budget",    "pod_decision",
        "pod_migration",  "pod_reconcile", "predictor_divergence",
        "search",         "tariff_change", "telemetry_fault",
    };
    return types;
}

jsonl_file_sink::jsonl_file_sink(const std::string& path,
                                 metrics_registry* metrics)
    : out_(path), metrics_(metrics) {
    MISTRAL_CHECK_MSG(out_.is_open(), "cannot open journal file " << path);
}

std::size_t memory_sink::count(std::string_view type) const {
    std::size_t n = 0;
    for (const auto& e : events_) {
        if (e.type == type) ++n;
    }
    return n;
}

}  // namespace mistral::obs
