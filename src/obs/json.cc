#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace mistral::obs {

std::string format_number(double v) {
    if (std::isnan(v)) return "\"nan\"";
    if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    MISTRAL_CHECK(res.ec == std::errc{});
    return std::string(buf, res.ptr);
}

std::string quote(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char esc[8];
                    std::snprintf(esc, sizeof(esc), "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(ch)));
                    out += esc;
                } else {
                    out.push_back(ch);
                }
        }
    }
    out.push_back('"');
    return out;
}

namespace json {

bool value::as_bool() const {
    MISTRAL_CHECK(kind_ == kind::boolean);
    return bool_;
}

double value::as_number() const {
    MISTRAL_CHECK(kind_ == kind::number);
    return number_;
}

const std::string& value::as_text() const {
    MISTRAL_CHECK(kind_ == kind::text);
    return text_;
}

const std::vector<value>& value::items() const {
    MISTRAL_CHECK(kind_ == kind::array);
    return items_;
}

const std::vector<std::pair<std::string, value>>& value::members() const {
    MISTRAL_CHECK(kind_ == kind::object);
    return members_;
}

const value* value::find(std::string_view key) const {
    if (kind_ != kind::object) return nullptr;
    for (const auto& [k, v] : members_) {
        if (k == key) return &v;
    }
    return nullptr;
}

// Recursive-descent parser over an index cursor. The journal writes compact
// single-line documents, so there is no need for streaming.
class parser {
public:
    explicit parser(std::string_view text) : text_(text) {}

    value parse_document() {
        value v = parse_value();
        skip_ws();
        MISTRAL_CHECK_MSG(at_ == text_.size(),
                          "trailing JSON content at offset " << at_);
        return v;
    }

private:
    std::string_view text_;
    std::size_t at_ = 0;

    [[noreturn]] void fail(const char* what) const {
        MISTRAL_CHECK_MSG(false, "malformed JSON: " << what << " at offset "
                                                    << at_);
        std::abort();  // unreachable; MISTRAL_CHECK_MSG throws
    }

    void skip_ws() {
        while (at_ < text_.size() &&
               (text_[at_] == ' ' || text_[at_] == '\t' || text_[at_] == '\n' ||
                text_[at_] == '\r')) {
            ++at_;
        }
    }

    char peek() {
        if (at_ >= text_.size()) fail("unexpected end of input");
        return text_[at_];
    }

    void expect(char ch) {
        if (peek() != ch) fail("unexpected character");
        ++at_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(at_, lit.size()) != lit) return false;
        at_ += lit.size();
        return true;
    }

    value parse_value() {
        skip_ws();
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': {
                value v;
                v.kind_ = value::kind::text;
                v.text_ = parse_string();
                return v;
            }
            case 't':
            case 'f': {
                value v;
                v.kind_ = value::kind::boolean;
                if (consume_literal("true")) {
                    v.bool_ = true;
                } else if (consume_literal("false")) {
                    v.bool_ = false;
                } else {
                    fail("bad literal");
                }
                return v;
            }
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return value{};
            default: return parse_number();
        }
    }

    value parse_object() {
        expect('{');
        value v;
        v.kind_ = value::kind::object;
        skip_ws();
        if (peek() == '}') {
            ++at_;
            return v;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            v.members_.emplace_back(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++at_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    value parse_array() {
        expect('[');
        value v;
        v.kind_ = value::kind::array;
        skip_ws();
        if (peek() == ']') {
            ++at_;
            return v;
        }
        while (true) {
            v.items_.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++at_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (at_ >= text_.size()) fail("unterminated string");
            char ch = text_[at_++];
            if (ch == '"') return out;
            if (ch != '\\') {
                out.push_back(ch);
                continue;
            }
            if (at_ >= text_.size()) fail("unterminated escape");
            ch = text_[at_++];
            switch (ch) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (at_ + 4 > text_.size()) fail("short \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[at_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9') {
                            cp |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            fail("bad \\u escape");
                        }
                    }
                    // UTF-8 encode (BMP only; the journal never writes
                    // surrogate pairs — it only escapes control characters).
                    if (cp < 0x80) {
                        out.push_back(static_cast<char>(cp));
                    } else if (cp < 0x800) {
                        out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
                        out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
                    } else {
                        out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
                        out.push_back(
                            static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
                        out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
                    }
                    break;
                }
                default: fail("bad escape");
            }
        }
    }

    value parse_number() {
        const std::size_t start = at_;
        if (peek() == '-') ++at_;
        while (at_ < text_.size() &&
               ((text_[at_] >= '0' && text_[at_] <= '9') || text_[at_] == '.' ||
                text_[at_] == 'e' || text_[at_] == 'E' || text_[at_] == '+' ||
                text_[at_] == '-')) {
            ++at_;
        }
        double parsed = 0.0;
        const auto res =
            std::from_chars(text_.data() + start, text_.data() + at_, parsed);
        if (res.ec != std::errc{} || res.ptr != text_.data() + at_ ||
            at_ == start) {
            fail("bad number");
        }
        value v;
        v.kind_ = value::kind::number;
        v.number_ = parsed;
        return v;
    }
};

value value::parse(std::string_view text) {
    return parser(text).parse_document();
}

std::string value::dump() const {
    switch (kind_) {
        case kind::null: return "null";
        case kind::boolean: return bool_ ? "true" : "false";
        case kind::number: return format_number(number_);
        case kind::text: return quote(text_);
        case kind::array: {
            std::string out = "[";
            for (std::size_t i = 0; i < items_.size(); ++i) {
                if (i) out.push_back(',');
                out += items_[i].dump();
            }
            out.push_back(']');
            return out;
        }
        case kind::object: {
            std::string out = "{";
            for (std::size_t i = 0; i < members_.size(); ++i) {
                if (i) out.push_back(',');
                out += quote(members_[i].first);
                out.push_back(':');
                out += members_[i].second.dump();
            }
            out.push_back('}');
            return out;
        }
    }
    return "null";
}

}  // namespace json
}  // namespace mistral::obs
