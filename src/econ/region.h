// Pods → regions: per-region tariffs for geo-distributed clusters.
//
// A sharded cluster (core/global_coordinator) may span electricity markets:
// each pod runs in one region, and each region has its own time-of-use price
// and carbon-intensity series. The coordinator uses this map to bias budget
// redistribution and the migration broker toward cheap/green regions. An
// empty map means region-blind operation — every economic branch in the
// coordinator stays untaken and the decision stream is bit-identical to the
// pre-econ control plane.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "econ/tariff.h"

namespace mistral::econ {

struct region_spec {
    std::string name;
    tariff_schedule tariff{};
};

class region_map {
public:
    region_map() = default;  // empty: region-blind

    // `pod_region[p]` is the index into `regions` for pod p. Validates that
    // every pod maps to a real region, names are non-empty and unique, and at
    // least one pod lives in each region (an unused region is almost always a
    // mis-typed index).
    region_map(std::vector<region_spec> regions, std::vector<std::size_t> pod_region);

    [[nodiscard]] bool empty() const { return regions_.empty(); }
    [[nodiscard]] std::size_t region_count() const { return regions_.size(); }
    [[nodiscard]] std::size_t pod_count() const { return pod_region_.size(); }

    [[nodiscard]] std::size_t region_of(std::size_t pod) const;
    [[nodiscard]] const region_spec& region(std::size_t r) const;

    // Tariff lookups addressed by pod — the form the coordinator uses.
    [[nodiscard]] dollars price_of_pod(std::size_t pod, seconds now) const;
    [[nodiscard]] double carbon_of_pod(std::size_t pod, seconds now) const;

private:
    std::vector<region_spec> regions_;
    std::vector<std::size_t> pod_region_;
};

}  // namespace mistral::econ
