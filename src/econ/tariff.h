// Time-of-use tariffs: piecewise-constant price and carbon-intensity series.
//
// Real operating cost depends on *when* a watt is burned: electricity price
// and grid carbon intensity both follow the clock (day/night TOU blocks,
// wholesale spot steps, renewable availability). This header models such
// signals as right-continuous step functions of simulation time with an
// optional wraparound period, so a 24-hour tariff drives multi-day runs
// deterministically. Lookup is pure (no clocks, no state) — the same
// timestamp always yields the same value, which is what the bit-identity
// differential harness (ctest -L econ) leans on.
#pragma once

#include <vector>

#include "common/units.h"

namespace mistral::econ {

// A piecewise-constant, right-continuous function of simulation time.
//
// `at(t)` returns the value of the last breakpoint with time <= t; before the
// first breakpoint the series extends its first value backward, so lookup is
// total. With a wraparound `period` P > 0, t is first folded into
// [first.at, first.at + P) — the canonical daily-tariff shape. Construction
// validates everything (finite, strictly increasing, span < period) and
// throws invariant_error otherwise: a garbage series is rejected up front
// rather than producing NaN dollars mid-run.
class step_series {
public:
    struct breakpoint {
        seconds at = 0.0;
        double value = 0.0;

        friend bool operator==(const breakpoint&, const breakpoint&) = default;
    };

    // A constant series: one breakpoint at t=0. The degenerate-but-common
    // case (flat tariff, fixed power cap).
    static step_series constant(double value);

    step_series() : step_series(constant(0.0)) {}
    explicit step_series(std::vector<breakpoint> points, seconds period = 0.0);

    [[nodiscard]] double at(seconds t) const;

    [[nodiscard]] const std::vector<breakpoint>& points() const { return points_; }
    [[nodiscard]] seconds period() const { return period_; }

    // True when every lookup returns the same value — the flat configurations
    // the differential harness proves bit-identical to the pre-econ model.
    [[nodiscard]] bool is_constant() const;

    friend bool operator==(const step_series&, const step_series&) = default;

private:
    std::vector<breakpoint> points_;
    seconds period_ = 0.0;  // 0 = no wraparound
};

// The two grid signals the controller prices decisions against. Defaults
// reproduce the paper's economics exactly: a flat $0.01/W·interval price
// (Section V-A) and zero carbon intensity.
struct tariff_schedule {
    // $ per watt consumed over one monitoring interval, by simulation time.
    step_series price = step_series::constant(default_power_cost_per_watt_interval);
    // Grid carbon intensity in gCO2 per Wh, by simulation time.
    step_series carbon = step_series::constant(0.0);

    [[nodiscard]] dollars price_at(seconds t) const { return price.at(t); }
    [[nodiscard]] double carbon_at(seconds t) const { return carbon.at(t); }
    [[nodiscard]] bool is_flat() const {
        return price.is_constant() && carbon.is_constant();
    }

    friend bool operator==(const tariff_schedule&, const tariff_schedule&) = default;
};

}  // namespace mistral::econ
