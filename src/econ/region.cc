#include "econ/region.h"

#include <algorithm>

#include "common/check.h"

namespace mistral::econ {

region_map::region_map(std::vector<region_spec> regions,
                       std::vector<std::size_t> pod_region)
    : regions_(std::move(regions)), pod_region_(std::move(pod_region)) {
    MISTRAL_CHECK_MSG(!regions_.empty(), "a region map needs at least one region");
    MISTRAL_CHECK_MSG(!pod_region_.empty(), "a region map needs at least one pod");
    for (std::size_t r = 0; r < regions_.size(); ++r) {
        MISTRAL_CHECK_MSG(!regions_[r].name.empty(), "region names must be non-empty");
        for (std::size_t s = r + 1; s < regions_.size(); ++s) {
            MISTRAL_CHECK_MSG(regions_[r].name != regions_[s].name,
                              "duplicate region name " << regions_[r].name);
        }
        // The coordinator's regional bias divides by prices (cheapest/price):
        // a zero or negative price block would poison every weight.
        for (const auto& bp : regions_[r].tariff.price.points()) {
            MISTRAL_CHECK_MSG(bp.value > 0.0, "region " << regions_[r].name
                                  << " has a non-positive price block");
        }
        for (const auto& bp : regions_[r].tariff.carbon.points()) {
            MISTRAL_CHECK_MSG(bp.value >= 0.0, "region " << regions_[r].name
                                  << " has a negative carbon block");
        }
    }
    std::vector<bool> used(regions_.size(), false);
    for (std::size_t p = 0; p < pod_region_.size(); ++p) {
        MISTRAL_CHECK_MSG(pod_region_[p] < regions_.size(),
                          "pod " << p << " maps to unknown region " << pod_region_[p]);
        used[pod_region_[p]] = true;
    }
    MISTRAL_CHECK_MSG(std::all_of(used.begin(), used.end(), [](bool u) { return u; }),
                      "every region must host at least one pod");
}

std::size_t region_map::region_of(std::size_t pod) const {
    MISTRAL_CHECK_MSG(pod < pod_region_.size(), "pod " << pod << " out of range");
    return pod_region_[pod];
}

const region_spec& region_map::region(std::size_t r) const {
    MISTRAL_CHECK_MSG(r < regions_.size(), "region " << r << " out of range");
    return regions_[r];
}

dollars region_map::price_of_pod(std::size_t pod, seconds now) const {
    return regions_[region_of(pod)].tariff.price_at(now);
}

double region_map::carbon_of_pod(std::size_t pod, seconds now) const {
    return regions_[region_of(pod)].tariff.carbon_at(now);
}

}  // namespace mistral::econ
