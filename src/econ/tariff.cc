#include "econ/tariff.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mistral::econ {

step_series step_series::constant(double value) {
    return step_series({{0.0, value}});
}

step_series::step_series(std::vector<breakpoint> points, seconds period)
    : points_(std::move(points)), period_(period) {
    MISTRAL_CHECK_MSG(!points_.empty(), "a step series needs at least one breakpoint");
    for (const breakpoint& p : points_) {
        MISTRAL_CHECK_MSG(std::isfinite(p.at), "breakpoint time must be finite");
        MISTRAL_CHECK_MSG(std::isfinite(p.value), "breakpoint value must be finite");
    }
    for (std::size_t i = 1; i < points_.size(); ++i) {
        MISTRAL_CHECK_MSG(points_[i - 1].at < points_[i].at,
                          "breakpoint times must be strictly increasing");
    }
    MISTRAL_CHECK_MSG(std::isfinite(period_) && period_ >= 0.0,
                      "wraparound period must be finite and >= 0");
    if (period_ > 0.0) {
        MISTRAL_CHECK_MSG(points_.back().at - points_.front().at < period_,
                          "breakpoint span must fit inside the wraparound period");
    }
}

double step_series::at(seconds t) const {
    MISTRAL_CHECK_MSG(std::isfinite(t), "lookup time must be finite");
    if (period_ > 0.0 &&
        (t < points_.front().at || t >= points_.front().at + period_)) {
        // Fold into [first.at, first.at + period): fmod can return a value in
        // (-period, period), so renormalize the negative branch. Times already
        // inside the base window skip the fold entirely — the subtraction/
        // re-addition can lose an ulp, which would break right-continuity at
        // the breakpoints themselves.
        double offset = std::fmod(t - points_.front().at, period_);
        if (offset < 0.0) offset += period_;
        t = points_.front().at + offset;
    }
    // Right-continuous: value of the last breakpoint with at <= t. Before the
    // first breakpoint (only possible without wraparound) the first value
    // extends backward.
    auto it = std::upper_bound(points_.begin(), points_.end(), t,
                               [](seconds lhs, const breakpoint& rhs) { return lhs < rhs.at; });
    if (it == points_.begin()) return points_.front().value;
    return std::prev(it)->value;
}

bool step_series::is_constant() const {
    return std::all_of(points_.begin(), points_.end(), [&](const breakpoint& p) {
        return p.value == points_.front().value;
    });
}

}  // namespace mistral::econ
