// Pluggable revenue models for the SLA side of Eq. 1.
//
// The paper pays the full reward whenever response time meets the target and
// the full penalty otherwise — a cliff. Performance-based pricing (see "A
// Cloud Controller for Performance-Based Pricing", PAPERS.md) instead scales
// per-interval revenue continuously with delivered vs. target response time:
// full reward at or under the target, linearly degrading to the full penalty
// at `grace` times the target. `flat` reproduces the paper's cliff
// bit-for-bit — it is not an approximation, the econ-bound utility model
// takes the exact original code path.
#pragma once

#include "common/check.h"

namespace mistral::econ {

enum class pricing_kind {
    // The paper's Eq. 1 cliff: reward iff rt <= target, else penalty.
    flat,
    // Revenue interpolates from reward(rate) at rt <= target down to
    // penalty(rate) at rt >= grace·target (continuous and monotone in rt).
    performance_based,
};

struct pricing_options {
    pricing_kind kind = pricing_kind::flat;
    // Performance-based only: the multiple of the target at which revenue
    // bottoms out at the full penalty. Must be > 1 so the ramp has width.
    double grace = 1.5;
};

inline void validate(const pricing_options& options) {
    if (options.kind == pricing_kind::performance_based) {
        MISTRAL_CHECK_MSG(options.grace > 1.0 && options.grace < 1.0e9,
                          "performance-based pricing needs a finite grace > 1");
    }
}

}  // namespace mistral::econ
