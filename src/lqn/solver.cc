#include "lqn/solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "lqn/erlang.h"

namespace mistral::lqn {

namespace {

// Processor-sharing response with the same overload extension policy as the
// software layer: steep but finite growth past rho_max (see erlang.cc).
seconds ps_response(seconds service, fraction rho) {
    constexpr double rho_max = 0.98;
    constexpr double overload_slope = 50.0;  // services of extra delay per unit ρ
    if (rho <= rho_max) return service / (1.0 - rho);
    const double at_clamp = service / (1.0 - rho_max);
    return at_clamp + overload_slope * (rho - rho_max) * service;
}

// Per-replica pass-1 state, recomputed identically by compute_host_loads
// (which needs the offered load) and solve_app (which needs rho and the
// consumed CPU). Keeping one function guarantees the two passes can never
// disagree bit-wise.
struct replica_state {
    double arrival = 0.0;      // visits/sec routed to this replica
    double offered = 0.0;      // physical-CPU fraction demanded
    double cpu_usage = 0.0;    // physical-CPU fraction actually consumed
    fraction rho = 0.0;        // busy fraction of the replica's cap
};

replica_state replica_load(const app_deployment& app, std::size_t t,
                           std::size_t r, const model_options& options) {
    const auto& spec = *app.spec;
    const auto& tier = app.tiers[t];
    const auto n = tier.replicas.size();
    const double tier_arrival = app.rate * spec.mean_tier_visits(t);
    // Mix-weighted CPU demand per visit, with Xen overhead folded in.
    const double visits = spec.mean_tier_visits(t);
    const double demand_per_visit =
        visits > 0.0
            ? spec.mean_tier_demand(t) * (1.0 + options.xen_overhead) / visits
            : 0.0;
    replica_state st;
    st.arrival = tier_arrival / static_cast<double>(n);
    st.offered = st.arrival * demand_per_visit;
    const fraction cap = tier.replicas[r].cpu_cap;
    st.rho = st.offered / cap;
    // A capped VM cannot consume more than its cap.
    st.cpu_usage = std::min(st.offered, cap);
    return st;
}

}  // namespace

host_loads compute_host_loads(const std::vector<app_deployment>& apps,
                              std::size_t host_count,
                              const model_options& options) {
    validate(apps, host_count);

    host_loads out;
    out.demand.assign(host_count, 0.0);
    out.utilization.assign(host_count, 0.0);
    out.cap_sums.assign(host_count, 0.0);
    out.inflation.assign(host_count, 1.0);

    for (const auto& app : apps) {
        for (std::size_t t = 0; t < app.tiers.size(); ++t) {
            const auto& tier = app.tiers[t];
            for (std::size_t r = 0; r < tier.replicas.size(); ++r) {
                const auto st = replica_load(app, t, r, options);
                out.demand[tier.replicas[r].host] +=
                    st.offered * (1.0 + options.dom0_overhead);
            }
        }
    }
    for (std::size_t h = 0; h < host_count; ++h) {
        // Hosts with any work also pay the Dom-0 baseline; idle hosts are
        // accounted by the caller (it knows which hosts are powered on).
        if (out.demand[h] > 0.0) out.demand[h] += options.dom0_baseline;
        out.utilization[h] = std::min(1.0, out.demand[h]);
    }

    // Host inflation: if actual demand exceeds the physical CPU — or the
    // booked caps exceed the reservable share (see model_options) — every
    // hosted replica slows down proportionally.
    for (const auto& app : apps) {
        for (const auto& tier : app.tiers) {
            for (const auto& rep : tier.replicas) {
                out.cap_sums[rep.host] += rep.cpu_cap;
            }
        }
    }
    for (std::size_t h = 0; h < host_count; ++h) {
        double f = std::max(1.0, out.demand[h]);
        if (options.reserved_cap_fraction > 0.0) {
            f = std::max(f, out.cap_sums[h] / options.reserved_cap_fraction);
        }
        out.inflation[h] = f;
        if (out.demand[h] > 1.0) out.overcommitted = true;
    }
    return out;
}

app_result solve_app(const app_deployment& app,
                     const std::vector<double>& inflation,
                     const model_options& options) {
    const auto& spec = *app.spec;
    app_result result;
    result.tiers.resize(app.tiers.size());
    result.per_transaction.resize(spec.transactions().size(), 0.0);

    const auto tier_count = app.tiers.size();

    // Per-replica busy fractions and consumed CPU (pass-1 state, app-local).
    std::vector<std::vector<replica_state>> states(tier_count);
    for (std::size_t t = 0; t < tier_count; ++t) {
        const auto n = app.tiers[t].replicas.size();
        states[t].resize(n);
        for (std::size_t r = 0; r < n; ++r) {
            states[t][r] = replica_load(app, t, r, options);
        }
    }

    // Per-visit CPU response time at tier t for transaction x, averaged
    // over replicas weighted by their (equal) arrival shares.
    auto cpu_visit_response = [&](std::size_t t, std::size_t x) -> seconds {
        const auto& tx = spec.transactions()[x];
        const auto& tier = app.tiers[t];
        const double demand = tx.demand[t] * (1.0 + options.xen_overhead);
        seconds sum = 0.0;
        for (std::size_t r = 0; r < tier.replicas.size(); ++r) {
            const auto& rep = tier.replicas[r];
            const double service = demand / rep.cpu_cap;
            sum += ps_response(service * inflation[rep.host], states[t][r].rho);
        }
        return sum / static_cast<double>(tier.replicas.size());
    };

    // visit_response[t][x]: total per-visit response (thread wait +
    // holding, holding includes downstream). Filled bottom-up.
    std::vector<std::vector<seconds>> visit_response(
        tier_count, std::vector<seconds>(spec.transactions().size(), 0.0));
    // holding[t][x]: thread-holding time per visit.
    std::vector<std::vector<seconds>> holding = visit_response;

    for (std::size_t ti = tier_count; ti-- > 0;) {
        // Holding time per visit: own CPU response plus synchronous
        // downstream calls (the next-deeper tier this transaction
        // actually visits).
        for (std::size_t x = 0; x < spec.transactions().size(); ++x) {
            const auto& tx = spec.transactions()[x];
            if (tx.visits[ti] <= 0.0) continue;
            seconds h = cpu_visit_response(ti, x);
            for (std::size_t down = ti + 1; down < tier_count; ++down) {
                if (tx.visits[down] <= 0.0) continue;
                const double calls = tx.visits[down] / tx.visits[ti];
                h += calls * (2.0 * options.network_hop + visit_response[down][x]);
                break;  // only the first downstream tier is called directly
            }
            holding[ti][x] = std::min(h, options.max_visit_response);
        }
        // Mean holding time and thread-pool waiting at this tier.
        double flow_sum = 0.0;
        seconds holding_sum = 0.0;
        for (std::size_t x = 0; x < spec.transactions().size(); ++x) {
            const auto& tx = spec.transactions()[x];
            if (tx.visits[ti] <= 0.0) continue;
            const double flow = app.rate * tx.mix * tx.visits[ti];
            flow_sum += flow;
            holding_sum += flow * holding[ti][x];
        }
        const seconds mean_holding = flow_sum > 0.0 ? holding_sum / flow_sum : 0.0;
        const auto& tier = app.tiers[ti];
        const double replica_arrival =
            flow_sum / static_cast<double>(tier.replicas.size());
        const int threads = spec.tiers()[ti].threads;
        const seconds wait = mm_m_wait(replica_arrival, mean_holding, threads);
        if (replica_arrival * mean_holding >= static_cast<double>(threads)) {
            result.saturated = true;
        }
        for (std::size_t x = 0; x < spec.transactions().size(); ++x) {
            if (spec.transactions()[x].visits[ti] <= 0.0) continue;
            visit_response[ti][x] =
                std::min(wait + holding[ti][x], options.max_visit_response);
        }
        // Tier-level reporting.
        auto& tr = result.tiers[ti];
        double rho_sum = 0.0, usage_sum = 0.0;
        for (const auto& st : states[ti]) {
            rho_sum += st.rho;
            usage_sum += st.cpu_usage;
            if (st.rho >= 1.0) result.saturated = true;
        }
        tr.utilization = rho_sum / static_cast<double>(states[ti].size());
        tr.cpu_usage = usage_sum;
        tr.visit_response = mean_holding + wait;
    }

    // End-to-end response per transaction: client round trip into the
    // first tier the transaction visits.
    seconds mix_sum = 0.0;
    for (std::size_t x = 0; x < spec.transactions().size(); ++x) {
        const auto& tx = spec.transactions()[x];
        seconds rt = 0.0;
        for (std::size_t t = 0; t < tier_count; ++t) {
            if (tx.visits[t] > 0.0) {
                rt = tx.visits[t] * (2.0 * options.network_hop + visit_response[t][x]);
                break;
            }
        }
        result.per_transaction[x] = rt;
        mix_sum += tx.mix * rt;
    }
    result.mean_response_time = mix_sum;

    // Closed-population saturation bound (see model.h): when the offered
    // rate exceeds the bottleneck tier's capacity, the fixed client
    // population caps the queue, settling end-to-end response near
    // N / X_max − think rather than the open model's divergence.
    if (options.client_think_time > 0.0 && app.rate > 0.0) {
        double x_max = std::numeric_limits<double>::infinity();
        for (std::size_t t = 0; t < tier_count; ++t) {
            const double demand =
                spec.mean_tier_demand(t) * (1.0 + options.xen_overhead);
            if (demand <= 0.0) continue;
            double caps = 0.0;
            for (const auto& rep : app.tiers[t].replicas) caps += rep.cpu_cap;
            x_max = std::min(x_max, caps / demand);
        }
        if (x_max < app.rate) {
            const double sessions =
                app.rate *
                (options.client_think_time + options.nominal_cycle_service);
            const seconds closed_rt = std::max(
                1.0, sessions / x_max - options.client_think_time);
            if (closed_rt < result.mean_response_time) {
                const double scale = closed_rt / result.mean_response_time;
                result.mean_response_time = closed_rt;
                for (auto& rt : result.per_transaction) rt *= scale;
            }
        }
    }
    return result;
}

solve_result solve(const std::vector<app_deployment>& apps, std::size_t host_count,
                   const model_options& options) {
    auto loads = compute_host_loads(apps, host_count, options);

    solve_result out;
    out.apps.resize(apps.size());
    out.host_utilization = std::move(loads.utilization);
    out.host_demand = std::move(loads.demand);
    out.saturated = loads.overcommitted;

    for (std::size_t a = 0; a < apps.size(); ++a) {
        out.apps[a] = solve_app(apps[a], loads.inflation, options);
        if (out.apps[a].saturated) out.saturated = true;
    }
    return out;
}

}  // namespace mistral::lqn
