// Analytic solver for the layered queueing model.
//
// Two layers, solved bottom-up along each transaction's call chain:
//
//  * Hardware layer (PS): each replica's vCPU is a processor-sharing station
//    whose rate is the Xen credit cap; a visit's CPU response time is
//    (demand/cap) / (1 − ρ), where ρ is the replica's busy fraction of its
//    cap. Hosts whose *actual* CPU usage (VM work + Dom-0 mirror work)
//    exceeds the physical CPU inflate all hosted replicas proportionally.
//
//  * Software layer (FCFS): a replica holds one of its worker threads for
//    the visit's CPU time *plus* the response times of its synchronous calls
//    into downstream tiers — the defining "layered" interaction. Thread-pool
//    waiting is M/M/m (Erlang-C) on the mean holding time.
//
// Saturation is handled with a linear overload extension past 99.5 % busy
// (see erlang.h) so response times grow steeply but remain finite, matching
// the bounded queues a closed client population produces and keeping the
// optimizer's utility gradients informative.
#pragma once

#include <vector>

#include "lqn/model.h"

namespace mistral::lqn {

struct tier_result {
    // Mean busy fraction of each replica's cap (load-weighted across
    // replicas); the "utilization" the Perf-Pwr gradient search uses.
    fraction utilization = 0.0;
    // Mean per-visit response time at this tier including thread waiting and
    // all downstream call time.
    seconds visit_response = 0.0;
    // Actual physical-CPU seconds consumed per second by this tier (all
    // replicas, before Dom-0 mirroring).
    double cpu_usage = 0.0;
};

struct app_result {
    seconds mean_response_time = 0.0;           // mix-weighted end-to-end mean
    std::vector<seconds> per_transaction;       // end-to-end mean per type
    std::vector<tier_result> tiers;
    bool saturated = false;                     // some station at/over capacity
};

struct solve_result {
    std::vector<app_result> apps;
    // Physical CPU busy fraction per host (VM work + Dom-0), clamped to 1.
    std::vector<fraction> host_utilization;
    // Un-clamped demand per host; > 1 means the host is overcommitted.
    std::vector<double> host_demand;
    bool saturated = false;
};

// Solves the model for the given deployments on `host_count` hosts.
// Deployments are validated; see model.h.
//
// Thread-safety: solve() is a pure function — it reads only its arguments,
// touches no global or static mutable state, and allocates nothing shared.
// Concurrent calls from different threads are safe (the parallel utility
// evaluator relies on this), and results are a deterministic function of
// the inputs, bit-identical across threads and runs.
solve_result solve(const std::vector<app_deployment>& apps, std::size_t host_count,
                   const model_options& options = {});

}  // namespace mistral::lqn
