// Analytic solver for the layered queueing model.
//
// Two layers, solved bottom-up along each transaction's call chain:
//
//  * Hardware layer (PS): each replica's vCPU is a processor-sharing station
//    whose rate is the Xen credit cap; a visit's CPU response time is
//    (demand/cap) / (1 − ρ), where ρ is the replica's busy fraction of its
//    cap. Hosts whose *actual* CPU usage (VM work + Dom-0 mirror work)
//    exceeds the physical CPU inflate all hosted replicas proportionally.
//
//  * Software layer (FCFS): a replica holds one of its worker threads for
//    the visit's CPU time *plus* the response times of its synchronous calls
//    into downstream tiers — the defining "layered" interaction. Thread-pool
//    waiting is M/M/m (Erlang-C) on the mean holding time.
//
// Saturation is handled with a linear overload extension past 99.5 % busy
// (see erlang.h) so response times grow steeply but remain finite, matching
// the bounded queues a closed client population produces and keeping the
// optimizer's utility gradients informative.
#pragma once

#include <vector>

#include "lqn/model.h"

namespace mistral::lqn {

struct tier_result {
    // Mean busy fraction of each replica's cap (load-weighted across
    // replicas); the "utilization" the Perf-Pwr gradient search uses.
    fraction utilization = 0.0;
    // Mean per-visit response time at this tier including thread waiting and
    // all downstream call time.
    seconds visit_response = 0.0;
    // Actual physical-CPU seconds consumed per second by this tier (all
    // replicas, before Dom-0 mirroring).
    double cpu_usage = 0.0;
};

struct app_result {
    seconds mean_response_time = 0.0;           // mix-weighted end-to-end mean
    std::vector<seconds> per_transaction;       // end-to-end mean per type
    std::vector<tier_result> tiers;
    bool saturated = false;                     // some station at/over capacity
};

struct solve_result {
    std::vector<app_result> apps;
    // Physical CPU busy fraction per host (VM work + Dom-0), clamped to 1.
    std::vector<fraction> host_utilization;
    // Un-clamped demand per host; > 1 means the host is overcommitted.
    std::vector<double> host_demand;
    bool saturated = false;
};

// The hardware-layer coupling between applications: per-host demand, booked
// caps, and the resulting slowdown factor every hosted replica feels. This is
// the *only* channel through which one application's deployment affects
// another's response times, which is what makes per-app sub-solves (and the
// evaluator's delta-evaluation cache) sound: an app's result is a pure
// function of its own deployment, its rate, and the inflation factors of the
// hosts its replicas occupy.
struct host_loads {
    // Un-clamped actual demand per host (VM work + Dom-0 mirror + baseline);
    // > 1 means the host is overcommitted.
    std::vector<double> demand;
    // min(1, demand): the physical busy fraction the power model reads.
    std::vector<fraction> utilization;
    // Booked CPU caps per host (reservations, before any clamping).
    std::vector<double> cap_sums;
    // Proportional slowdown of every replica on the host: max(1, demand,
    // cap_sums / reserved_cap_fraction).
    std::vector<double> inflation;
    bool overcommitted = false;  // some host's demand exceeds 1
};

// Pass 1 of the solve, separated out so incremental re-solves can share it:
// O(total replicas) arithmetic, no queueing math. Validates the deployments
// exactly like solve().
host_loads compute_host_loads(const std::vector<app_deployment>& apps,
                              std::size_t host_count,
                              const model_options& options = {});

// Pass 2 for a single application: response times and tier reports given the
// shared per-host inflation factors. Pure and deterministic; for the same
// deployment vector, solve(apps, …).apps[a] is bit-identical to
// solve_app(apps[a], compute_host_loads(apps, …).inflation, …).
app_result solve_app(const app_deployment& app,
                     const std::vector<double>& inflation,
                     const model_options& options = {});

// Solves the model for the given deployments on `host_count` hosts.
// Deployments are validated; see model.h. Equivalent to compute_host_loads()
// followed by one solve_app() per application.
//
// Thread-safety: solve(), compute_host_loads(), and solve_app() are pure
// functions — they read only their arguments, touch no global or static
// mutable state, and allocate nothing shared. Concurrent calls from
// different threads are safe (the parallel utility evaluator relies on
// this), and results are a deterministic function of the inputs,
// bit-identical across threads and runs.
solve_result solve(const std::vector<app_deployment>& apps, std::size_t host_count,
                   const model_options& options = {});

}  // namespace mistral::lqn
