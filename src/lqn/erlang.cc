#include "lqn/erlang.h"

#include <algorithm>

#include "common/check.h"

namespace mistral::lqn {

double erlang_c(double offered_load, int servers) {
    MISTRAL_CHECK(servers >= 1);
    MISTRAL_CHECK(offered_load >= 0.0);
    const double a = offered_load;
    const double m = static_cast<double>(servers);
    if (a >= m) return 1.0;
    // inv_b accumulates 1/B(k, a) via the Erlang-B recurrence
    // B(k, a) = a·B(k−1, a) / (k + a·B(k−1, a)); B(0, a) = 1.
    double b = 1.0;
    for (int k = 1; k <= servers; ++k) {
        b = a * b / (static_cast<double>(k) + a * b);
    }
    const double rho = a / m;
    return b / (1.0 - rho + rho * b);
}

double mm_m_wait(double arrival_rate, double holding_time, int servers) {
    MISTRAL_CHECK(arrival_rate >= 0.0);
    MISTRAL_CHECK(holding_time >= 0.0);
    MISTRAL_CHECK(servers >= 1);
    if (arrival_rate == 0.0 || holding_time == 0.0) return 0.0;
    const double a = arrival_rate * holding_time;
    const double m = static_cast<double>(servers);
    // Stability cutoff: past 98 % thread occupancy, extend linearly with a
    // moderate slope instead of following the Erlang-C pole. A closed client
    // population bounds real queues the same way — only finitely many
    // requests can ever be waiting — and a finite, monotone overload branch
    // keeps the optimizer's utility gradients informative.
    constexpr double rho_max = 0.98;
    constexpr double overload_slope = 50.0;  // holding-times of extra wait per unit ρ
    const double rho = a / m;
    if (rho <= rho_max) {
        const double c = erlang_c(a, servers);
        return c * holding_time / (m - a);
    }
    const double a_clamped = rho_max * m;
    const double c = erlang_c(a_clamped, servers);
    const double wait_at_clamp = c * holding_time / (m - a_clamped);
    return wait_at_clamp + overload_slope * (rho - rho_max) * holding_time;
}

}  // namespace mistral::lqn
