// Erlang-C waiting for finite-thread software stations.
//
// A tier replica serves requests with a pool of `m` worker threads; when all
// threads are busy (holding a request while it computes or waits on a
// downstream tier), new arrivals queue FCFS. M/M/m waiting time captures
// that thread-pool contention.
#pragma once

namespace mistral::lqn {

// Erlang-C probability that an arrival must wait, for an M/M/m system with
// offered load a = lambda * holding_time (in erlangs) and m servers.
// Computed with the standard numerically stable recurrence. Requires m >= 1.
// For a >= m (unstable), returns 1.
double erlang_c(double offered_load, int servers);

// Mean queueing delay W_q for M/M/m. `holding_time` is the mean service
// (thread-holding) time. For offered loads at or beyond m, applies a linear
// overload extension (see solver notes) rather than returning infinity so
// optimizer gradients stay finite.
double mm_m_wait(double arrival_rate, double holding_time, int servers);

}  // namespace mistral::lqn
