// Layered queueing network model inputs.
//
// Section III-A: "tier servers are modeled as FCFS queues, while hardware
// resources are modeled as processor sharing (PS) queues. Interactions
// between tiers triggered by an incoming transaction are modeled as
// synchronous calls in the queuing network and our models also account for
// the resource sharing overhead imposed by Xen."
//
// The model view is deliberately independent of the controller's
// `configuration` type: it describes *where replicas run and with what CPU
// cap*, which is all the solver needs. The core library translates
// configurations into this view.
#pragma once

#include <cstddef>
#include <vector>

#include "apps/application.h"
#include "common/units.h"

namespace mistral::lqn {

struct replica_placement {
    std::size_t host = 0;     // index of the physical host
    fraction cpu_cap = 0.4;   // Xen credit-scheduler cap (fraction of a CPU)
};

struct tier_deployment {
    std::vector<replica_placement> replicas;  // at least one
};

struct app_deployment {
    const apps::application_spec* spec = nullptr;  // not owned
    req_per_sec rate = 0.0;                        // offered workload
    std::vector<tier_deployment> tiers;            // one per spec tier
};

struct model_options {
    // Multiplier on every CPU demand accounting for Xen's virtualization
    // overhead (hypercalls, page-table work) per [5] in the paper.
    double xen_overhead = 0.08;
    // Fraction of each VM's CPU work mirrored in Dom-0 (network/disk I/O is
    // proxied through the driver domain).
    double dom0_overhead = 0.06;
    // Constant Dom-0 background utilization per powered-on host.
    fraction dom0_baseline = 0.02;
    // One-way network hop added per synchronous inter-tier call.
    seconds network_hop = 0.002;
    // Absolute ceiling on any single visit's response time. A saturated
    // station's open-model queue would grow without bound; real deployments
    // bound it through the finite client population and timeouts. Keeps
    // end-to-end predictions finite and monotone under deep overload.
    seconds max_visit_response = 30.0;
    // Closed-population saturation correction. The paper's client emulators
    // hold a fixed session count N ≈ rate × (think + nominal service); when
    // a tier's capacity X_max falls below the offered rate, the closed
    // system settles at R ≈ N / X_max − think (the asymptotic bound of a
    // closed queueing network), not at the open model's runaway queue. Set
    // client_think_time <= 0 to disable.
    seconds client_think_time = 7.6;
    seconds nominal_cycle_service = 0.4;
    // CPU caps are *reservations*: the credit scheduler guarantees each VM
    // its cap, and the host keeps 1 − reserved_cap_fraction for Dom-0. When
    // the caps booked on a host exceed reserved_cap_fraction, every hosted
    // replica is slowed proportionally (Dom-0 and the VMs contend for the
    // over-promised shares) — so configurations that overbook a host are
    // predicted pessimistically even when current demand happens to be low.
    double reserved_cap_fraction = 0.8;
    // Fixed-point iteration controls.
    int max_iterations = 50;
    double tolerance = 1e-7;
};

// Validates structural consistency (replica counts within spec limits, caps
// within spec windows, host indices < host_count). Throws invariant_error on
// violations.
void validate(const std::vector<app_deployment>& apps, std::size_t host_count);

}  // namespace mistral::lqn
