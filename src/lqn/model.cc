#include "lqn/model.h"

#include "common/check.h"

namespace mistral::lqn {

void validate(const std::vector<app_deployment>& apps, std::size_t host_count) {
    for (const auto& app : apps) {
        MISTRAL_CHECK_MSG(app.spec != nullptr, "app_deployment without a spec");
        MISTRAL_CHECK_MSG(app.rate >= 0.0, app.spec->name() << ": negative rate");
        MISTRAL_CHECK_MSG(app.tiers.size() == app.spec->tier_count(),
                          app.spec->name() << ": tier count mismatch");
        for (std::size_t t = 0; t < app.tiers.size(); ++t) {
            const auto& tier = app.tiers[t];
            const auto& spec = app.spec->tiers()[t];
            MISTRAL_CHECK_MSG(!tier.replicas.empty(),
                              app.spec->name() << "/" << spec.name << ": no replicas");
            MISTRAL_CHECK_MSG(
                static_cast<int>(tier.replicas.size()) <= spec.max_replicas,
                app.spec->name() << "/" << spec.name << ": too many replicas");
            for (const auto& r : tier.replicas) {
                MISTRAL_CHECK_MSG(r.host < host_count,
                                  app.spec->name() << "/" << spec.name
                                                   << ": bad host index " << r.host);
                MISTRAL_CHECK_MSG(r.cpu_cap > 0.0 && r.cpu_cap <= 1.0,
                                  app.spec->name() << "/" << spec.name
                                                   << ": cap out of range " << r.cpu_cap);
            }
        }
    }
}

}  // namespace mistral::lqn
