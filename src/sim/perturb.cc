#include "sim/perturb.h"

#include <algorithm>

#include "common/check.h"

namespace mistral::sim {

apps::application_spec perturb_spec(const apps::application_spec& spec, double skew,
                                    rng& r) {
    MISTRAL_CHECK(skew >= 0.0 && skew < 1.0);
    std::vector<apps::transaction_type> txs = spec.transactions();
    for (auto& tx : txs) {
        for (auto& d : tx.demand) {
            d *= r.uniform(1.0 - skew, 1.0 + skew);
        }
    }
    std::vector<apps::tier_spec> tiers = spec.tiers();
    return apps::application_spec(spec.name(), std::move(tiers), std::move(txs),
                                  spec.target_response_time(0.0));
}

pwr::host_power_model perturb_power(const pwr::host_power_model& model, double skew,
                                    rng& r) {
    MISTRAL_CHECK(skew >= 0.0 && skew < 1.0);
    pwr::host_power_model out = model;
    out.idle *= r.uniform(1.0 - skew, 1.0 + skew);
    out.busy *= r.uniform(1.0 - skew, 1.0 + skew);
    out.busy = std::max(out.busy, out.idle + 1.0);
    out.r = std::clamp(out.r + r.uniform(-4.0 * skew, 4.0 * skew), 0.5, 4.0);
    return out;
}

}  // namespace mistral::sim
