// Deterministic perturbation of ground-truth models.
//
// The testbed simulator must not share the controller's exact models —
// otherwise the model-accuracy experiments (Fig. 5) would trivially measure
// zero error and the controller would never face model risk. These helpers
// derive the testbed's "real" behaviour by skewing the nominal application
// demands and power-model parameters with seed-deterministic factors, so the
// controller's offline-fit models are close (a few percent) but not exact.
#pragma once

#include "apps/application.h"
#include "common/rng.h"
#include "power/model.h"

namespace mistral::sim {

// Copies `spec` with every per-visit CPU demand multiplied by an independent
// factor drawn uniformly from [1 − skew, 1 + skew].
apps::application_spec perturb_spec(const apps::application_spec& spec, double skew,
                                    rng& r);

// Copies `model` with idle/busy scaled by factors in [1 − skew, 1 + skew]
// and the exponent r jittered by ±4·skew.
pwr::host_power_model perturb_power(const pwr::host_power_model& model, double skew,
                                    rng& r);

}  // namespace mistral::sim
