#include "sim/testbed.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/journal.h"
#include "sim/perturb.h"

namespace mistral::sim {

testbed::testbed(const cluster::cluster_model& model, cluster::configuration initial,
                 testbed_options options)
    : nominal_(&model),
      true_model_(build_true_model(model, options)),
      config_(std::move(initial)),
      options_(options),
      noise_(options.seed ^ 0xfeedULL),
      injector_(options.faults, options.seed ^ 0xdeadULL) {
    std::string why;
    MISTRAL_CHECK_MSG(structurally_valid(model, config_, &why),
                      "initial configuration invalid: " << why);
    for (const auto& ev : options_.faults.host_crashes) {
        MISTRAL_CHECK_MSG(ev.host >= 0 &&
                              static_cast<std::size_t>(ev.host) < model.host_count(),
                          "crash event host " << ev.host << " out of range");
    }
    if (auto* reg = obs::metrics_of(options_.sink)) {
        obs_started_ = reg->register_counter(
            "mistral_testbed_actions_started_total",
            "Adaptation actions the executor began running");
        obs_completed_ = reg->register_counter(
            "mistral_testbed_actions_completed_total",
            "Adaptation actions that took effect");
        obs_failed_ = reg->register_counter(
            "mistral_testbed_actions_failed_total",
            "Adaptation actions aborted (injected, chain break, or crash)");
        obs_crashes_ = reg->register_counter("mistral_testbed_host_crashes_total",
                                             "Host crash events delivered");
        obs_recoveries_ = reg->register_counter(
            "mistral_testbed_host_recoveries_total",
            "Host recovery events delivered");
    }
}

cluster::cluster_model testbed::build_true_model(const cluster::cluster_model& nominal,
                                                 const testbed_options& options) {
    rng r(options.seed);
    std::vector<apps::application_spec> true_apps;
    true_apps.reserve(nominal.app_count());
    for (const auto& spec : nominal.applications()) {
        true_apps.push_back(perturb_spec(spec, options.demand_skew, r));
    }
    std::vector<cluster::host_spec> true_hosts = nominal.hosts();
    for (auto& h : true_hosts) {
        h.power = perturb_power(h.power, options.power_skew, r);
    }
    return cluster::cluster_model(std::move(true_hosts), std::move(true_apps),
                                  nominal.limits());
}

void testbed::submit(const std::vector<cluster::action>& actions,
                     seconds initial_delay) {
    MISTRAL_CHECK(initial_delay >= 0.0);
    // Project outstanding work onto the configuration the new actions will
    // see. Already-queued actions that a fault has made inapplicable are
    // skipped (the executor aborts them at start instead of executing them);
    // the newly submitted sequence itself must be fully applicable.
    cluster::configuration probe = config_;
    if (in_flight_ && in_flight_->act && !in_flight_->doomed &&
        cluster::applicable(*nominal_, probe, *in_flight_->act)) {
        probe = cluster::apply(*nominal_, probe, *in_flight_->act);
    }
    for (const auto& queued : queue_) {
        if (queued.act && cluster::applicable(*nominal_, probe, *queued.act)) {
            probe = cluster::apply(*nominal_, probe, *queued.act);
        }
    }
    if (initial_delay > 0.0) queue_.push_back({std::nullopt, initial_delay});
    for (const auto& a : actions) {
        probe = cluster::apply(*nominal_, probe, a);
        queue_.push_back({a, 0.0});
    }
}

std::size_t testbed::pending_actions() const {
    return queue_.size() + (in_flight_ ? 1 : 0);
}

const cluster::outage_prediction& testbed::steady_state(
    const std::vector<req_per_sec>& rates) const {
    if (!steady_rates_ || *steady_rates_ != rates) {
        steady_ = cluster::predict_with_outages(true_model_, config_, rates,
                                                options_.true_lqn,
                                                options_.outage_response_time);
        steady_rates_ = rates;
    }
    return steady_;
}

cluster::prediction testbed::ground_truth(const cluster::configuration& config,
                                          const std::vector<req_per_sec>& rates) const {
    return cluster::predict_with_outages(true_model_, config, rates,
                                         options_.true_lqn,
                                         options_.outage_response_time)
        .pred;
}

action_transient testbed::transient_of(const cluster::action& a,
                                       const std::vector<req_per_sec>& rates) const {
    return ground_truth_transient(true_model_, config_, a, rates, options_.transients);
}

bool testbed::deliver_fault_events(seconds local, observation& out,
                                   double& wasted) {
    if (injector_.inert()) return false;
    bool changed = false;
    for (const auto& ev : injector_.take_crashes_due(local + 1e-9)) {
        const host_id host{ev.host};
        if (config_.host_failed(host)) continue;  // already down
        // The crash takes every VM on the host with it; the replicas return
        // to the dormant pool and the host cannot boot until it recovers.
        for (const auto& desc : nominal_->vms()) {
            const auto& p = config_.placement(desc.vm);
            if (p && p->host == host) config_.undeploy(desc.vm);
        }
        config_.set_host_failed(host, true);
        out.hosts_failed.push_back(ev.host);
        obs_crashes_.add();
        if (obs::journaling(options_.sink)) {
            options_.sink->record(
                obs::event("host_crash", local).integer("host", ev.host));
        }
        changed = true;
        // An executing action the crash has invalidated aborts on the spot;
        // the time it already burnt this window was adaptation for nothing.
        if (in_flight_ && in_flight_->act && !in_flight_->doomed &&
            !cluster::applicable(*nominal_, config_, *in_flight_->act)) {
            out.failed.push_back(*in_flight_->act);
            wasted += in_flight_->window_elapsed;
            obs_failed_.add();
            if (obs::journaling(options_.sink)) {
                options_.sink->record(
                    obs::event("action_fail", local)
                        .text("action",
                              cluster::to_string(*nominal_, *in_flight_->act))
                        .text("reason", "host_crash")
                        .num("burnt", in_flight_->window_elapsed));
            }
            in_flight_.reset();
        }
    }
    for (std::int32_t h : injector_.take_recoveries_due(local + 1e-9)) {
        const host_id host{h};
        if (!config_.host_failed(host)) continue;
        config_.set_host_failed(host, false);  // stays powered off
        out.hosts_recovered.push_back(h);
        obs_recoveries_.add();
        if (obs::journaling(options_.sink)) {
            options_.sink->record(
                obs::event("host_recover", local).integer("host", h));
        }
        changed = true;
    }
    return changed;
}

observation testbed::advance(seconds dt, const std::vector<req_per_sec>& rates) {
    MISTRAL_CHECK(dt > 0.0);
    MISTRAL_CHECK(rates.size() == nominal_->app_count());

    observation out;
    out.window = dt;
    out.rates = rates;
    out.response_time.assign(nominal_->app_count(), 0.0);
    out.app_cpu_usage.assign(nominal_->app_count(), 0.0);

    std::vector<double> rt_integral(nominal_->app_count(), 0.0);
    double power_integral = 0.0;
    double adapting = 0.0;
    double wasted = 0.0;
    seconds remaining_window = dt;
    if (in_flight_) in_flight_->window_elapsed = 0.0;

    while (remaining_window > 1e-12) {
        const seconds local = now_ + (dt - remaining_window);
        if (deliver_fault_events(local, out, wasted)) invalidate_steady();
        // Start the next queued item if the pipeline is free.
        if (!in_flight_ && !queue_.empty()) {
            const auto item = queue_.front();
            queue_.pop_front();
            if (item.act && !cluster::applicable(*nominal_, config_, *item.act)) {
                // A fault broke the chain this action assumed (a failed
                // predecessor or a crashed host); it aborts immediately.
                out.failed.push_back(*item.act);
                obs_failed_.add();
                if (obs::journaling(options_.sink)) {
                    options_.sink->record(
                        obs::event("action_fail", local)
                            .text("action", cluster::to_string(*nominal_, *item.act))
                            .text("reason", "inapplicable")
                            .num("burnt", 0.0));
                }
                continue;
            }
            in_flight lane;
            lane.act = item.act;
            if (item.act) {
                lane.transient = ground_truth_transient(true_model_, config_, *item.act,
                                                        rates, options_.transients);
                lane.remaining = lane.transient.duration;
                const fault_decision verdict = injector_.on_action_start(*item.act);
                if (verdict.fail) {
                    // Burns part of its nominal duration (with full transient
                    // impact), then aborts without changing the configuration.
                    lane.doomed = true;
                    lane.remaining *= options_.faults.failure_duration_fraction;
                } else {
                    lane.remaining *= verdict.duration_multiplier;
                }
                obs_started_.add();
                if (obs::journaling(options_.sink)) {
                    options_.sink->record(
                        obs::event("action_start", local)
                            .text("action", cluster::to_string(*nominal_, *item.act))
                            .num("duration", lane.remaining)
                            .boolean("doomed", lane.doomed));
                }
            } else {
                lane.transient.delta_rt.assign(nominal_->app_count(), 0.0);
                lane.remaining = item.wait;
            }
            in_flight_ = std::move(lane);
        }
        seconds step = in_flight_
                           ? std::min(remaining_window, in_flight_->remaining)
                           : remaining_window;
        // Split the integration exactly at the next crash/recovery instant.
        const seconds next_event = injector_.next_event_time();
        if (next_event - local < step) {
            step = std::max(next_event - local, 0.0);
        }
        const auto& steady = steady_state(rates);
        for (std::size_t a = 0; a < nominal_->app_count(); ++a) {
            double rt = steady.pred.perf.apps[a].mean_response_time;
            if (in_flight_) rt += in_flight_->transient.delta_rt[a];
            rt_integral[a] += rt * step;
        }
        double power = steady.pred.power;
        if (in_flight_) {
            power += in_flight_->transient.delta_power;
            if (in_flight_->act) {
                adapting += step;  // waits are not adaptation
                in_flight_->window_elapsed += step;
                if (in_flight_->doomed) wasted += step;
            }
        }
        power_integral += power * step;

        remaining_window -= step;
        if (in_flight_) {
            in_flight_->remaining -= step;
            if (in_flight_->remaining <= 1e-12) {
                if (in_flight_->act) {
                    const seconds at = now_ + (dt - remaining_window);
                    if (in_flight_->doomed) {
                        out.failed.push_back(*in_flight_->act);
                        obs_failed_.add();
                        if (obs::journaling(options_.sink)) {
                            options_.sink->record(
                                obs::event("action_fail", at)
                                    .text("action", cluster::to_string(
                                                        *nominal_, *in_flight_->act))
                                    .text("reason", "injected")
                                    .num("burnt", in_flight_->window_elapsed));
                        }
                    } else {
                        config_ = cluster::apply(*nominal_, config_, *in_flight_->act);
                        out.completed.push_back(*in_flight_->act);
                        obs_completed_.add();
                        if (obs::journaling(options_.sink)) {
                            options_.sink->record(
                                obs::event("action_finish", at)
                                    .text("action", cluster::to_string(
                                                        *nominal_, *in_flight_->act)));
                        }
                        invalidate_steady();
                    }
                }
                in_flight_.reset();
            }
        }
    }
    now_ += dt;
    out.time = now_;
    out.adapting_fraction = adapting / dt;
    out.wasted_fraction = wasted / dt;

    // Metered values: window means plus measurement noise.
    for (std::size_t a = 0; a < nominal_->app_count(); ++a) {
        const double mean_rt = rt_integral[a] / dt;
        out.response_time[a] =
            std::max(0.0, mean_rt * (1.0 + noise_.normal(0.0, options_.rt_noise)));
    }
    out.power = std::max(
        0.0, power_integral / dt * (1.0 + noise_.normal(0.0, options_.power_noise)));

    const auto& steady = steady_state(rates);
    out.host_utilization = steady.pred.perf.host_utilization;
    for (std::size_t a = 0; a < nominal_->app_count(); ++a) {
        for (const auto& tier : steady.pred.perf.apps[a].tiers) {
            out.app_cpu_usage[a] += tier.cpu_usage;
        }
    }
    if (in_flight_ && in_flight_->act) out.in_flight.push_back(*in_flight_->act);
    for (const auto& q : queue_) {
        if (q.act) out.in_flight.push_back(*q.act);
    }
    return out;
}

}  // namespace mistral::sim
