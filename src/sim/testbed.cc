#include "sim/testbed.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "sim/perturb.h"

namespace mistral::sim {

testbed::testbed(const cluster::cluster_model& model, cluster::configuration initial,
                 testbed_options options)
    : nominal_(&model),
      true_model_(build_true_model(model, options)),
      config_(std::move(initial)),
      options_(options),
      noise_(options.seed ^ 0xfeedULL) {
    std::string why;
    MISTRAL_CHECK_MSG(structurally_valid(model, config_, &why),
                      "initial configuration invalid: " << why);
}

cluster::cluster_model testbed::build_true_model(const cluster::cluster_model& nominal,
                                                 const testbed_options& options) {
    rng r(options.seed);
    std::vector<apps::application_spec> true_apps;
    true_apps.reserve(nominal.app_count());
    for (const auto& spec : nominal.applications()) {
        true_apps.push_back(perturb_spec(spec, options.demand_skew, r));
    }
    std::vector<cluster::host_spec> true_hosts = nominal.hosts();
    for (auto& h : true_hosts) {
        h.power = perturb_power(h.power, options.power_skew, r);
    }
    return cluster::cluster_model(std::move(true_hosts), std::move(true_apps),
                                  nominal.limits());
}

void testbed::submit(const std::vector<cluster::action>& actions,
                     seconds initial_delay) {
    MISTRAL_CHECK(initial_delay >= 0.0);
    // Validate the whole sequence against the configuration it will see.
    cluster::configuration probe = config_;
    if (in_flight_ && in_flight_->act) {
        probe = cluster::apply(*nominal_, probe, *in_flight_->act);
    }
    for (const auto& queued : queue_) {
        if (queued.act) probe = cluster::apply(*nominal_, probe, *queued.act);
    }
    if (initial_delay > 0.0) queue_.push_back({std::nullopt, initial_delay});
    for (const auto& a : actions) {
        probe = cluster::apply(*nominal_, probe, a);
        queue_.push_back({a, 0.0});
    }
}

std::size_t testbed::pending_actions() const {
    return queue_.size() + (in_flight_ ? 1 : 0);
}

const cluster::prediction& testbed::steady_state(
    const std::vector<req_per_sec>& rates) const {
    if (!steady_rates_ || *steady_rates_ != rates) {
        steady_ = cluster::predict(true_model_, config_, rates, options_.true_lqn);
        steady_rates_ = rates;
    }
    return steady_;
}

cluster::prediction testbed::ground_truth(const cluster::configuration& config,
                                          const std::vector<req_per_sec>& rates) const {
    return cluster::predict(true_model_, config, rates, options_.true_lqn);
}

action_transient testbed::transient_of(const cluster::action& a,
                                       const std::vector<req_per_sec>& rates) const {
    return ground_truth_transient(true_model_, config_, a, rates, options_.transients);
}

observation testbed::advance(seconds dt, const std::vector<req_per_sec>& rates) {
    MISTRAL_CHECK(dt > 0.0);
    MISTRAL_CHECK(rates.size() == nominal_->app_count());

    observation out;
    out.window = dt;
    out.rates = rates;
    out.response_time.assign(nominal_->app_count(), 0.0);
    out.app_cpu_usage.assign(nominal_->app_count(), 0.0);

    std::vector<double> rt_integral(nominal_->app_count(), 0.0);
    double power_integral = 0.0;
    double adapting = 0.0;
    seconds remaining_window = dt;

    while (remaining_window > 1e-12) {
        // Start the next queued item if the pipeline is free.
        if (!in_flight_ && !queue_.empty()) {
            const auto item = queue_.front();
            queue_.pop_front();
            in_flight lane;
            lane.act = item.act;
            if (item.act) {
                lane.transient = ground_truth_transient(true_model_, config_, *item.act,
                                                        rates, options_.transients);
                lane.remaining = lane.transient.duration;
            } else {
                lane.transient.delta_rt.assign(nominal_->app_count(), 0.0);
                lane.remaining = item.wait;
            }
            in_flight_ = std::move(lane);
        }
        const seconds step = in_flight_
                                 ? std::min(remaining_window, in_flight_->remaining)
                                 : remaining_window;
        const auto& steady = steady_state(rates);
        for (std::size_t a = 0; a < nominal_->app_count(); ++a) {
            double rt = steady.perf.apps[a].mean_response_time;
            if (in_flight_) rt += in_flight_->transient.delta_rt[a];
            rt_integral[a] += rt * step;
        }
        double power = steady.power;
        if (in_flight_) {
            power += in_flight_->transient.delta_power;
            if (in_flight_->act) adapting += step;  // waits are not adaptation
        }
        power_integral += power * step;

        remaining_window -= step;
        if (in_flight_) {
            in_flight_->remaining -= step;
            if (in_flight_->remaining <= 1e-12) {
                if (in_flight_->act) {
                    config_ = cluster::apply(*nominal_, config_, *in_flight_->act);
                    out.completed.push_back(*in_flight_->act);
                    invalidate_steady();
                }
                in_flight_.reset();
            }
        }
    }
    now_ += dt;
    out.time = now_;
    out.adapting_fraction = adapting / dt;

    // Metered values: window means plus measurement noise.
    for (std::size_t a = 0; a < nominal_->app_count(); ++a) {
        const double mean_rt = rt_integral[a] / dt;
        out.response_time[a] =
            std::max(0.0, mean_rt * (1.0 + noise_.normal(0.0, options_.rt_noise)));
    }
    out.power = std::max(
        0.0, power_integral / dt * (1.0 + noise_.normal(0.0, options_.power_noise)));

    const auto& steady = steady_state(rates);
    out.host_utilization = steady.perf.host_utilization;
    for (std::size_t a = 0; a < nominal_->app_count(); ++a) {
        for (const auto& tier : steady.perf.apps[a].tiers) {
            out.app_cpu_usage[a] += tier.cpu_usage;
        }
    }
    return out;
}

}  // namespace mistral::sim
