#include "sim/faults.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace mistral::sim {

namespace {

constexpr seconds no_event = std::numeric_limits<double>::infinity();

}  // namespace

bool fault_options::inert() const {
    for (double p : failure_probability) {
        if (p > 0.0) return false;
    }
    for (double p : straggler_probability) {
        if (p > 0.0) return false;
    }
    return host_crashes.empty();
}

fault_options fault_options::uniform(double fail_probability,
                                     double straggle_probability) {
    fault_options out;
    out.failure_probability.fill(fail_probability);
    out.straggler_probability.fill(straggle_probability);
    return out;
}

fault_injector::fault_injector(fault_options options, std::uint64_t seed)
    : options_(std::move(options)), draws_(seed), inert_(options_.inert()) {
    for (double p : options_.failure_probability) {
        MISTRAL_CHECK_MSG(p >= 0.0 && p <= 1.0, "failure probability " << p);
    }
    for (double p : options_.straggler_probability) {
        MISTRAL_CHECK_MSG(p >= 0.0 && p <= 1.0, "straggler probability " << p);
    }
    MISTRAL_CHECK(options_.straggler_multiplier >= 1.0);
    MISTRAL_CHECK(options_.failure_duration_fraction >= 0.0 &&
                  options_.failure_duration_fraction <= 1.0);
    std::stable_sort(options_.host_crashes.begin(), options_.host_crashes.end(),
                     [](const host_crash_event& a, const host_crash_event& b) {
                         return a.at < b.at;
                     });
}

fault_decision fault_injector::on_action_start(const cluster::action& a) {
    fault_decision out;
    if (inert_) return out;
    const auto kind = static_cast<std::size_t>(cluster::kind_of(a));
    // Two draws per starting action, always both, so the decision for action
    // N never depends on which faults earlier actions happened to hit.
    const double fail_draw = draws_.uniform();
    const double straggle_draw = draws_.uniform();
    if (fail_draw < options_.failure_probability[kind]) {
        out.fail = true;
        return out;
    }
    if (straggle_draw < options_.straggler_probability[kind]) {
        out.duration_multiplier =
            draws_.uniform(1.0, options_.straggler_multiplier);
    }
    return out;
}

seconds fault_injector::next_event_time() const {
    seconds next = no_event;
    if (next_crash_ < options_.host_crashes.size()) {
        next = std::min(next, options_.host_crashes[next_crash_].at);
    }
    for (const auto& r : recoveries_) {
        next = std::min(next, r.at);
    }
    return next;
}

std::vector<host_crash_event> fault_injector::take_crashes_due(seconds t) {
    std::vector<host_crash_event> due;
    while (next_crash_ < options_.host_crashes.size() &&
           options_.host_crashes[next_crash_].at <= t) {
        const auto& ev = options_.host_crashes[next_crash_];
        due.push_back(ev);
        if (ev.recover_after > 0.0) {
            recoveries_.push_back({ev.at + ev.recover_after, ev.host});
            std::stable_sort(recoveries_.begin(), recoveries_.end(),
                             [](const pending_recovery& a, const pending_recovery& b) {
                                 return a.at < b.at;
                             });
        }
        ++next_crash_;
    }
    return due;
}

std::vector<std::int32_t> fault_injector::take_recoveries_due(seconds t) {
    std::vector<std::int32_t> due;
    auto it = recoveries_.begin();
    while (it != recoveries_.end() && it->at <= t) {
        due.push_back(it->host);
        ++it;
    }
    recoveries_.erase(recoveries_.begin(), it);
    return due;
}

}  // namespace mistral::sim
