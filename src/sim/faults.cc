#include "sim/faults.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace mistral::sim {

namespace {

constexpr seconds no_event = std::numeric_limits<double>::infinity();

}  // namespace

bool fault_options::inert() const {
    for (double p : failure_probability) {
        if (p > 0.0) return false;
    }
    for (double p : straggler_probability) {
        if (p > 0.0) return false;
    }
    return host_crashes.empty();
}

fault_options fault_options::uniform(double fail_probability,
                                     double straggle_probability) {
    fault_options out;
    out.failure_probability.fill(fail_probability);
    out.straggler_probability.fill(straggle_probability);
    return out;
}

fault_injector::fault_injector(fault_options options, std::uint64_t seed)
    : options_(std::move(options)), draws_(seed), inert_(options_.inert()) {
    for (double p : options_.failure_probability) {
        MISTRAL_CHECK_MSG(p >= 0.0 && p <= 1.0, "failure probability " << p);
    }
    for (double p : options_.straggler_probability) {
        MISTRAL_CHECK_MSG(p >= 0.0 && p <= 1.0, "straggler probability " << p);
    }
    MISTRAL_CHECK(options_.straggler_multiplier >= 1.0);
    MISTRAL_CHECK(options_.failure_duration_fraction >= 0.0 &&
                  options_.failure_duration_fraction <= 1.0);
    std::stable_sort(options_.host_crashes.begin(), options_.host_crashes.end(),
                     [](const host_crash_event& a, const host_crash_event& b) {
                         return a.at < b.at;
                     });
}

fault_decision fault_injector::on_action_start(const cluster::action& a) {
    fault_decision out;
    if (inert_) return out;
    const auto kind = static_cast<std::size_t>(cluster::kind_of(a));
    // Two draws per starting action, always both, so the decision for action
    // N never depends on which faults earlier actions happened to hit.
    const double fail_draw = draws_.uniform();
    const double straggle_draw = draws_.uniform();
    if (fail_draw < options_.failure_probability[kind]) {
        out.fail = true;
        return out;
    }
    if (straggle_draw < options_.straggler_probability[kind]) {
        out.duration_multiplier =
            draws_.uniform(1.0, options_.straggler_multiplier);
    }
    return out;
}

seconds fault_injector::next_event_time() const {
    seconds next = no_event;
    if (next_crash_ < options_.host_crashes.size()) {
        next = std::min(next, options_.host_crashes[next_crash_].at);
    }
    for (const auto& r : recoveries_) {
        next = std::min(next, r.at);
    }
    return next;
}

std::vector<host_crash_event> fault_injector::take_crashes_due(seconds t) {
    std::vector<host_crash_event> due;
    while (next_crash_ < options_.host_crashes.size() &&
           options_.host_crashes[next_crash_].at <= t) {
        const auto& ev = options_.host_crashes[next_crash_];
        due.push_back(ev);
        if (ev.recover_after > 0.0) {
            recoveries_.push_back({ev.at + ev.recover_after, ev.host});
            std::stable_sort(recoveries_.begin(), recoveries_.end(),
                             [](const pending_recovery& a, const pending_recovery& b) {
                                 return a.at < b.at;
                             });
        }
        ++next_crash_;
    }
    return due;
}

std::vector<std::int32_t> fault_injector::take_recoveries_due(seconds t) {
    std::vector<std::int32_t> due;
    auto it = recoveries_.begin();
    while (it != recoveries_.end() && it->at <= t) {
        due.push_back(it->host);
        ++it;
    }
    recoveries_.erase(recoveries_.begin(), it);
    return due;
}

// ---------------------------------------------------------------------------
// Sensor-level fault injection.

const char* to_string(sensor_fault_kind kind) {
    switch (kind) {
        case sensor_fault_kind::none: return "none";
        case sensor_fault_kind::drop: return "drop";
        case sensor_fault_kind::delay: return "delay";
        case sensor_fault_kind::duplicate: return "duplicate";
        case sensor_fault_kind::spike: return "spike";
        case sensor_fault_kind::garbage: return "garbage";
        case sensor_fault_kind::stuck: return "stuck";
    }
    return "?";
}

bool sensor_fault_options::inert() const {
    return drop_probability <= 0.0 && delay_probability <= 0.0 &&
           duplicate_probability <= 0.0 && spike_probability <= 0.0 &&
           garbage_probability <= 0.0 && stuck_probability <= 0.0;
}

sensor_fault_options sensor_fault_options::uniform(double probability) {
    sensor_fault_options out;
    out.drop_probability = probability;
    out.delay_probability = probability;
    out.duplicate_probability = probability;
    out.spike_probability = probability;
    out.garbage_probability = probability;
    out.stuck_probability = probability;
    return out;
}

sensor_fault_injector::sensor_fault_injector(sensor_fault_options options,
                                             std::uint64_t seed)
    : options_(options), draws_(seed), inert_(options_.inert()) {
    const double probabilities[] = {
        options_.drop_probability,      options_.delay_probability,
        options_.duplicate_probability, options_.spike_probability,
        options_.garbage_probability,   options_.stuck_probability,
    };
    double sum = 0.0;
    for (double p : probabilities) {
        MISTRAL_CHECK_MSG(p >= 0.0 && p <= 1.0, "sensor fault probability " << p);
        sum += p;
    }
    MISTRAL_CHECK_MSG(sum <= 1.0 + 1e-12,
                      "sensor fault probabilities sum to " << sum);
    MISTRAL_CHECK(options_.spike_multiplier >= 2.0);
    MISTRAL_CHECK(options_.stuck_windows >= 1);
}

std::vector<telemetry_fault> sensor_fault_injector::corrupt(
    wl::telemetry_window& window) {
    std::vector<telemetry_fault> faults;
    if (inert_) return faults;

    const std::size_t n = window.rates.size();
    if (apps_.empty()) apps_.resize(n);
    MISTRAL_CHECK_MSG(apps_.size() == n,
                      "telemetry app count changed mid-run: " << apps_.size()
                                                              << " -> " << n);
    const bool has_rt = !window.response_times.empty();
    const bool has_samples = !window.samples.empty();

    for (std::size_t a = 0; a < n; ++a) {
        app_state& st = apps_[a];
        // Both draws happen unconditionally — even while a latch is active —
        // so the fault schedule for later windows never shifts.
        const double kind_draw = draws_.uniform();
        const double magnitude_draw = draws_.uniform();

        const double true_rate = window.rates[a];
        const double true_rt = has_rt ? window.response_times[a] : 0.0;
        const double true_samples = has_samples ? window.samples[a] : 0.0;

        auto deliver = [&](double rate, double rt, double samples) {
            window.rates[a] = rate;
            if (has_rt) window.response_times[a] = rt;
            if (has_samples) window.samples[a] = samples;
        };

        sensor_fault_kind applied = sensor_fault_kind::none;
        if (st.latch_left > 0) {
            // A previously stuck sensor keeps repeating its latched value.
            deliver(st.prev_delivered_rate, st.prev_delivered_rt,
                    st.prev_delivered_samples);
            --st.latch_left;
            applied = sensor_fault_kind::stuck;
        } else {
            double edge = options_.drop_probability;
            if (kind_draw < edge) {
                applied = sensor_fault_kind::drop;
            } else if (kind_draw < (edge += options_.delay_probability)) {
                applied = sensor_fault_kind::delay;
            } else if (kind_draw < (edge += options_.duplicate_probability)) {
                applied = sensor_fault_kind::duplicate;
            } else if (kind_draw < (edge += options_.spike_probability)) {
                applied = sensor_fault_kind::spike;
            } else if (kind_draw < (edge += options_.garbage_probability)) {
                applied = sensor_fault_kind::garbage;
            } else if (kind_draw < (edge += options_.stuck_probability)) {
                applied = sensor_fault_kind::stuck;
            }
            // Faults that need a previous window degrade to no-ops on the
            // very first one.
            if ((applied == sensor_fault_kind::delay ||
                 applied == sensor_fault_kind::stuck) &&
                !st.has_prev) {
                applied = sensor_fault_kind::none;
            }
            switch (applied) {
                case sensor_fault_kind::none:
                    break;
                case sensor_fault_kind::drop:
                    deliver(0.0, 0.0, 0.0);
                    break;
                case sensor_fault_kind::delay:
                    deliver(st.prev_true_rate, st.prev_true_rt,
                            st.prev_true_samples);
                    break;
                case sensor_fault_kind::duplicate:
                    deliver(true_rate * 2.0, true_rt, true_samples * 2.0);
                    break;
                case sensor_fault_kind::spike:
                    deliver(true_rate *
                                (2.0 + magnitude_draw *
                                           (options_.spike_multiplier - 2.0)),
                            true_rt, true_samples);
                    break;
                case sensor_fault_kind::garbage: {
                    double bad;
                    if (magnitude_draw < 0.25) {
                        bad = std::numeric_limits<double>::quiet_NaN();
                    } else if (magnitude_draw < 0.5) {
                        bad = std::numeric_limits<double>::infinity();
                    } else if (magnitude_draw < 0.75) {
                        bad = -(true_rate + 1.0);
                    } else {
                        bad = 1.0e18;
                    }
                    deliver(bad, true_rt, true_samples);
                    break;
                }
                case sensor_fault_kind::stuck:
                    deliver(st.prev_delivered_rate, st.prev_delivered_rt,
                            st.prev_delivered_samples);
                    st.latch_left = options_.stuck_windows - 1;
                    break;
            }
        }

        if (applied != sensor_fault_kind::none) {
            faults.push_back({a, applied});
        }
        st.prev_true_rate = true_rate;
        st.prev_true_rt = true_rt;
        st.prev_true_samples = true_samples;
        st.prev_delivered_rate = window.rates[a];
        st.prev_delivered_rt = has_rt ? window.response_times[a] : 0.0;
        st.prev_delivered_samples = has_samples ? window.samples[a] : 0.0;
        st.has_prev = true;
    }
    return faults;
}

}  // namespace mistral::sim
