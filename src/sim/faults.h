// Deterministic fault injection for the testbed simulator.
//
// The paper's testbed executes every adaptation action perfectly; real
// clusters do not. The injector adds the three fault classes a production
// controller must survive, all drawn from an explicitly seeded RNG stream so
// every fault schedule replays bit-identically:
//
//  * action failures  — a starting action aborts after burning a fraction of
//    its nominal duration (a live migration that times out, a boot that
//    wedges); the configuration stays in its pre-action state and the
//    wasted transient time/power is still metered.
//  * stragglers       — a starting action takes a multiple of its nominal
//    duration (dirty-page churn, slow disks); it still completes.
//  * host crashes     — scheduled events: at time t a host dies, its VMs
//    return to the dormant pool, and the host is marked *failed* (it cannot
//    be powered back on) until an optional recovery time clears the mark.
//
// With every probability at zero and no scheduled crashes the injector is
// provably inert: it draws nothing from its RNG and the testbed's behaviour
// is byte-identical to a build without fault injection.
//
// The sensor_fault_injector extends the same discipline to the *sensing*
// side: it corrupts the telemetry windows the controller observes (dropped,
// delayed, duplicated, spiked, and garbage measurements, plus stuck-at-last-
// value sensors) while the testbed's ground truth — and therefore the true
// utility accounting — stays untouched. That split is what lets a scenario
// compare "what the controller believed" against "what actually happened".
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cluster/action.h"
#include "common/rng.h"
#include "common/units.h"
#include "workload/monitor.h"

namespace mistral::sim {

// One slot per cluster::action_kind enumerator, indexed by
// static_cast<std::size_t>(kind).
inline constexpr std::size_t action_kind_count = 7;

struct host_crash_event {
    seconds at = 0.0;
    std::int32_t host = 0;
    // <= 0: the host never comes back. Otherwise its failure mark clears at
    // `at + recover_after`; the host stays powered off until the controller
    // deliberately boots it again.
    seconds recover_after = 0.0;

    friend bool operator==(const host_crash_event&, const host_crash_event&) = default;
};

struct fault_options {
    // Per-action-kind probability that a starting action aborts.
    std::array<double, action_kind_count> failure_probability{};
    // Per-action-kind probability that a starting action straggles.
    std::array<double, action_kind_count> straggler_probability{};
    // Straggling actions take uniform[1, straggler_multiplier] × duration.
    double straggler_multiplier = 3.0;
    // Failing actions burn this fraction of their nominal duration (with the
    // full transient response-time/power impact) before aborting.
    double failure_duration_fraction = 0.5;
    std::vector<host_crash_event> host_crashes;

    [[nodiscard]] bool inert() const;

    // Same probabilities for every action kind (test/demo convenience).
    [[nodiscard]] static fault_options uniform(double fail_probability,
                                               double straggle_probability = 0.0);
};

// The injector's verdict on an action that is about to start executing.
struct fault_decision {
    bool fail = false;
    double duration_multiplier = 1.0;
};

class fault_injector {
public:
    fault_injector() = default;  // inert
    fault_injector(fault_options options, std::uint64_t seed);

    [[nodiscard]] bool inert() const { return inert_; }
    [[nodiscard]] const fault_options& options() const { return options_; }

    // Deterministic draw for one starting action. Inert injectors return the
    // no-fault decision without touching the RNG.
    fault_decision on_action_start(const cluster::action& a);

    // Time of the earliest still-pending crash or recovery (infinity when
    // none), so the caller can split its time integration exactly at fault
    // instants.
    [[nodiscard]] seconds next_event_time() const;

    // Crash events with `at` <= t, in schedule order; each is returned once.
    std::vector<host_crash_event> take_crashes_due(seconds t);
    // Host indices whose recovery time has passed; each is returned once.
    std::vector<std::int32_t> take_recoveries_due(seconds t);

private:
    fault_options options_{};
    rng draws_{0};
    bool inert_ = true;
    std::size_t next_crash_ = 0;  // into options_.host_crashes (sorted by at)
    struct pending_recovery {
        seconds at = 0.0;
        std::int32_t host = 0;
    };
    std::vector<pending_recovery> recoveries_;  // sorted by at
};

// ---------------------------------------------------------------------------
// Sensor-level fault injection.

enum class sensor_fault_kind {
    none,
    drop,       // window lost: zero samples, zero rate (an empty window)
    delay,      // the previous window's values are delivered again
    duplicate,  // counters double-counted: rate and samples ×2
    spike,      // rate multiplied by uniform[2, spike_multiplier]
    garbage,    // NaN / inf / negative / absurdly huge reading
    stuck,      // sensor latches its last reported value for several windows
};
[[nodiscard]] const char* to_string(sensor_fault_kind kind);

struct sensor_fault_options {
    // Per-window, per-application probabilities; their sum must be <= 1.
    double drop_probability = 0.0;
    double delay_probability = 0.0;
    double duplicate_probability = 0.0;
    double spike_probability = 0.0;
    double garbage_probability = 0.0;
    double stuck_probability = 0.0;
    // Spiked rates multiply by uniform[2, spike_multiplier].
    double spike_multiplier = 10.0;
    // A sticking sensor repeats its last reported value for this many
    // consecutive windows (including the one that triggered it).
    int stuck_windows = 3;

    [[nodiscard]] bool inert() const;

    // Same probability for every fault kind (test/demo convenience).
    [[nodiscard]] static sensor_fault_options uniform(double probability);
};

// One corruption the injector applied, for journaling.
struct telemetry_fault {
    std::size_t app = 0;
    sensor_fault_kind kind = sensor_fault_kind::none;

    friend bool operator==(const telemetry_fault&, const telemetry_fault&) = default;
};

// Corrupts telemetry windows in place, deterministically. Exactly two RNG
// draws per application per window when armed (a kind draw and a magnitude
// draw, always both), so the fault hitting application k in window n never
// depends on which faults earlier applications or windows happened to hit.
// Inert injectors never touch the RNG and leave every window byte-identical.
class sensor_fault_injector {
public:
    sensor_fault_injector() = default;  // inert
    sensor_fault_injector(sensor_fault_options options, std::uint64_t seed);

    [[nodiscard]] bool inert() const { return inert_; }
    [[nodiscard]] const sensor_fault_options& options() const { return options_; }

    // Applies this window's faults to `window` and reports what was done.
    // Channels the window does not carry (empty response_times/samples
    // vectors) are left absent.
    std::vector<telemetry_fault> corrupt(wl::telemetry_window& window);

private:
    struct app_state {
        bool has_prev = false;
        double prev_true_rate = 0.0;       // last uncorrupted measurement
        double prev_true_rt = 0.0;
        double prev_true_samples = 0.0;
        double prev_delivered_rate = 0.0;  // last value the sensor reported
        double prev_delivered_rt = 0.0;
        double prev_delivered_samples = 0.0;
        int latch_left = 0;                // windows the stuck value still holds
    };

    sensor_fault_options options_{};
    rng draws_{0};
    bool inert_ = true;
    std::vector<app_state> apps_;
};

}  // namespace mistral::sim
