#include "sim/transients.h"

#include <algorithm>

#include "common/check.h"

namespace mistral::sim {

namespace {

double tier_factor(const std::array<double, 3>& factors, std::size_t tier) {
    return factors[std::min(tier, factors.size() - 1)];
}

// Applications with a VM on any of `hosts` (excluding `target_app`).
std::vector<std::size_t> colocated_apps(const cluster::cluster_model& model,
                                        const cluster::configuration& config,
                                        const std::vector<host_id>& hosts,
                                        app_id target_app) {
    std::vector<std::size_t> out;
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        const app_id app{static_cast<std::int32_t>(a)};
        if (app == target_app) continue;
        bool hit = false;
        for (const auto& desc : model.vms()) {
            if (desc.app != app) continue;
            const auto& p = config.placement(desc.vm);
            if (!p) continue;
            if (std::find(hosts.begin(), hosts.end(), p->host) != hosts.end()) {
                hit = true;
                break;
            }
        }
        if (hit) out.push_back(a);
    }
    return out;
}

}  // namespace

action_transient ground_truth_transient(const cluster::cluster_model& model,
                                        const cluster::configuration& config,
                                        const cluster::action& a,
                                        const std::vector<req_per_sec>& rates,
                                        const transient_model& tm) {
    MISTRAL_CHECK(rates.size() == model.app_count());
    action_transient out;
    out.delta_rt.assign(model.app_count(), 0.0);

    const auto kind = cluster::kind_of(a);
    switch (kind) {
        case cluster::action_kind::power_on: {
            out.duration = tm.boot_duration;
            out.delta_power = tm.boot_power;  // host is off in `config`
            return out;
        }
        case cluster::action_kind::power_off: {
            const auto host = std::get<cluster::power_off>(a).host;
            out.duration = tm.shutdown_duration;
            // `config` still accounts the host's idle draw; the actual draw
            // during shutdown is tm.shutdown_power.
            const watts idle = model.hosts()[host.index()].power.idle;
            out.delta_power = tm.shutdown_power - idle;
            return out;
        }
        case cluster::action_kind::increase_cpu:
        case cluster::action_kind::decrease_cpu: {
            const vm_id vm = kind == cluster::action_kind::increase_cpu
                                 ? std::get<cluster::increase_cpu>(a).vm
                                 : std::get<cluster::decrease_cpu>(a).vm;
            const auto& desc = model.vm(vm);
            out.duration = tm.cpu_tune_duration;
            out.delta_rt[desc.app.index()] = tm.cpu_tune_rt_blip;
            return out;
        }
        default:
            break;
    }

    // Migration-class actions (migrate / add_replica / remove_replica).
    vm_id vm;
    std::vector<host_id> affected;
    double scale = 1.0;
    if (kind == cluster::action_kind::migrate) {
        const auto& m = std::get<cluster::migrate>(a);
        vm = m.vm;
        affected = {config.placement(m.vm)->host, m.to};
    } else if (kind == cluster::action_kind::add_replica) {
        const auto& m = std::get<cluster::add_replica>(a);
        vm = m.vm;
        affected = {m.to};  // source is the out-of-band cold-store host
        scale = tm.add_factor;
    } else {
        const auto& m = std::get<cluster::remove_replica>(a);
        vm = m.vm;
        affected = {config.placement(m.vm)->host};
        scale = tm.remove_factor;
    }
    const auto& desc = model.vm(vm);
    const req_per_sec rate = rates[desc.app.index()];

    out.duration = scale * tier_factor(tm.tier_duration_factor, desc.tier) *
                   (tm.migration_base + tm.migration_per_rate * rate);
    const seconds target_rt =
        scale * tier_factor(tm.tier_rt_factor, desc.tier) * tm.rt_per_rate * rate;
    out.delta_rt[desc.app.index()] = target_rt;
    for (std::size_t a_idx : colocated_apps(model, config, affected, desc.app)) {
        out.delta_rt[a_idx] = tm.colocated_fraction * target_rt;
    }
    out.delta_power = scale * (tm.power_frac_base + tm.power_frac_slope * rate / 100.0) *
                      tm.nominal_affected_power;
    return out;
}

}  // namespace mistral::sim
