// Offline adaptation-cost measurement campaign.
//
// Reproduces the paper's Section III-C protocol against the testbed
// simulator: "For each adaptation action a, we set up a target application s
// along with a background application s' such that all replicas from both
// applications are allocated equal CPU capacity (40% in our experiments).
// Then, we run multiple experiments, each with a random placement of all VMs
// across all the physical hosts. ... after a warm-up period of 1 minute,
// measure response times of two applications and the total power usage ...
// Then, we execute the adaptation action a, and measure the duration of the
// action, the response time of each application during adaptation, and the
// power usage ... These deltas along with the action duration are averaged
// across all random configurations, and their values are encoded in a cost
// table indexed by the workload."
#pragma once

#include <cstdint>
#include <vector>

#include "apps/application.h"
#include "cost/table.h"
#include "sim/testbed.h"

namespace mistral::sim {

struct campaign_options {
    // Workload grid (req/s of both target and background application). The
    // default matches Fig. 7's 100–800 concurrent sessions at ~8 s/session.
    std::vector<req_per_sec> workloads = {12.5, 25.0, 37.5, 50.0,
                                          62.5, 75.0, 87.5, 100.0};
    int trials = 4;                 // random placements per grid point
    std::uint64_t seed = 7;
    seconds warmup = 60.0;          // paper: 1 minute
    seconds steady_window = 60.0;   // pre-adaptation measurement window
    seconds probe_step = 1.0;       // measurement granularity during adaptation
    fraction equal_cap = 0.4;       // paper: all replicas at 40 %
    std::size_t host_count = 4;
    testbed_options testbed{};      // ground-truth generation parameters
};

// Runs the campaign for applications shaped like `spec` and returns the
// measured cost table (every action kind × tier the spec admits).
cost::cost_table run_cost_campaign(const apps::application_spec& spec,
                                   const campaign_options& options = {});

}  // namespace mistral::sim
