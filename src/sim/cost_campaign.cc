#include "sim/cost_campaign.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "cluster/configuration.h"
#include "common/check.h"

namespace mistral::sim {

namespace {

using cluster::action_kind;

// Deploys the minimum replica set of both applications (plus one extra
// replica of `extra_tier` for the target app when >= 0) at equal caps, in a
// random feasible placement over the first `placeable_hosts` hosts.
cluster::configuration random_placement(const cluster::cluster_model& model,
                                        std::size_t placeable_hosts,
                                        fraction cap, int extra_tier, rng& r) {
    for (int attempt = 0; attempt < 64; ++attempt) {
        cluster::configuration config(model.vm_count(), model.host_count());
        for (std::size_t h = 0; h < placeable_hosts; ++h) {
            config.set_host_power(host_id{static_cast<std::int32_t>(h)}, true);
        }
        std::vector<std::size_t> order(placeable_hosts);
        for (std::size_t h = 0; h < placeable_hosts; ++h) order[h] = h;

        bool ok = true;
        for (std::size_t a = 0; a < model.app_count() && ok; ++a) {
            const app_id app{static_cast<std::int32_t>(a)};
            for (std::size_t t = 0; t < model.app(app).tier_count() && ok; ++t) {
                int want = model.app(app).tiers()[t].min_replicas;
                if (a == 0 && static_cast<int>(t) == extra_tier) ++want;
                int placed = 0;
                for (vm_id vm : model.tier_vms(app, t)) {
                    if (placed == want) break;
                    r.shuffle(order);
                    bool found = false;
                    for (std::size_t h : order) {
                        const host_id host{static_cast<std::int32_t>(h)};
                        // Packing-only check: replica minima are met only
                        // once the whole placement completes.
                        const bool fits =
                            config.cap_sum(host) + cap <=
                                model.limits().host_cpu_cap + 1e-9 &&
                            static_cast<int>(config.vms_on(host).size()) <
                                model.limits().max_vms_per_host &&
                            config.memory_sum(model, host) + model.vm(vm).memory_mb <=
                                model.hosts()[h].memory_mb -
                                    model.limits().dom0_memory_mb + 1e-9;
                        if (fits) {
                            config.deploy(vm, host, cap);
                            found = true;
                            break;
                        }
                    }
                    if (!found) { ok = false; break; }
                    ++placed;
                }
                if (placed != want) ok = false;
            }
        }
        if (ok) return config;
    }
    MISTRAL_CHECK_MSG(false, "cost campaign could not place VMs");
    return cluster::configuration{};  // unreachable
}

// First deployed VM of (app 0, tier); invalid id if none.
vm_id deployed_vm(const cluster::cluster_model& model,
                  const cluster::configuration& config, std::size_t tier) {
    for (vm_id vm : model.tier_vms(app_id{0}, tier)) {
        if (config.deployed(vm)) return vm;
    }
    return vm_id{};
}

vm_id dormant_vm(const cluster::cluster_model& model,
                 const cluster::configuration& config, std::size_t tier) {
    for (vm_id vm : model.tier_vms(app_id{0}, tier)) {
        if (!config.deployed(vm)) return vm;
    }
    return vm_id{};
}

std::optional<host_id> host_with_room(const cluster::cluster_model& model,
                                      const cluster::configuration& config,
                                      std::size_t placeable_hosts, fraction cap,
                                      host_id avoid) {
    for (std::size_t h = 0; h < placeable_hosts; ++h) {
        const host_id host{static_cast<std::int32_t>(h)};
        if (host == avoid) continue;
        if (config.cap_sum(host) + cap <= model.limits().host_cpu_cap + 1e-9 &&
            static_cast<int>(config.vms_on(host).size()) <
                model.limits().max_vms_per_host) {
            return host;
        }
    }
    return std::nullopt;
}

struct adaptation_measurement {
    seconds duration = 0.0;
    std::vector<seconds> mean_rt;  // per app, during adaptation
    watts mean_power = 0.0;
};

// Drives the testbed until the submitted action completes, integrating the
// metered signals over the adapting portions of each probe window.
adaptation_measurement measure_adaptation(testbed& tb,
                                          const std::vector<req_per_sec>& rates,
                                          seconds probe_step) {
    adaptation_measurement out;
    out.mean_rt.assign(rates.size(), 0.0);
    double weight = 0.0;
    std::vector<double> rt_integral(rates.size(), 0.0);
    double power_integral = 0.0;
    while (tb.busy()) {
        const auto obs = tb.advance(probe_step, rates);
        const double w = obs.adapting_fraction * probe_step;
        out.duration += w;
        weight += w;
        for (std::size_t a = 0; a < rates.size(); ++a) {
            rt_integral[a] += obs.response_time[a] * w;
        }
        power_integral += obs.power * w;
    }
    if (weight > 0.0) {
        for (std::size_t a = 0; a < rates.size(); ++a) {
            out.mean_rt[a] = rt_integral[a] / weight;
        }
        out.mean_power = power_integral / weight;
    }
    return out;
}

// Hosts touched by the action (for the colocation rule).
std::vector<host_id> affected_hosts(const cluster::configuration& config,
                                    const cluster::action& a) {
    std::vector<host_id> out;
    std::visit(
        [&](const auto& x) {
            using T = std::decay_t<decltype(x)>;
            if constexpr (std::is_same_v<T, cluster::migrate>) {
                out = {config.placement(x.vm)->host, x.to};
            } else if constexpr (std::is_same_v<T, cluster::add_replica>) {
                out = {x.to};
            } else if constexpr (std::is_same_v<T, cluster::remove_replica> ||
                                 std::is_same_v<T, cluster::increase_cpu> ||
                                 std::is_same_v<T, cluster::decrease_cpu>) {
                out = {config.placement(x.vm)->host};
            } else if constexpr (std::is_same_v<T, cluster::power_on> ||
                                 std::is_same_v<T, cluster::power_off>) {
                out = {x.host};
            }
        },
        a);
    return out;
}

bool background_colocated(const cluster::cluster_model& model,
                          const cluster::configuration& config,
                          const std::vector<host_id>& hosts) {
    for (const auto& desc : model.vms()) {
        if (desc.app != app_id{1}) continue;
        const auto& p = config.placement(desc.vm);
        if (!p) continue;
        if (std::find(hosts.begin(), hosts.end(), p->host) != hosts.end()) return true;
    }
    return false;
}

}  // namespace

cost::cost_table run_cost_campaign(const apps::application_spec& spec,
                                   const campaign_options& options) {
    MISTRAL_CHECK(!options.workloads.empty());
    MISTRAL_CHECK(options.trials >= 1);
    cost::cost_table table;

    // One spare host beyond the placeable set hosts nothing and serves the
    // power-cycling experiments.
    const std::size_t placeable = options.host_count;
    std::vector<apps::application_spec> app_specs = {spec, spec};
    const cluster::cluster_model model(cluster::uniform_hosts(placeable + 1),
                                       std::move(app_specs));

    // One experiment per action kind × tier (where the spec admits it), each
    // repeated over the workload grid and `trials` random placements.
    struct experiment {
        action_kind kind;
        std::size_t tier;
    };
    std::vector<experiment> experiments;
    for (std::size_t t = 0; t < spec.tier_count(); ++t) {
        experiments.push_back({action_kind::migrate, t});
        experiments.push_back({action_kind::increase_cpu, t});
        experiments.push_back({action_kind::decrease_cpu, t});
        if (spec.tiers()[t].max_replicas > spec.tiers()[t].min_replicas) {
            experiments.push_back({action_kind::add_replica, t});
            experiments.push_back({action_kind::remove_replica, t});
        }
    }
    experiments.push_back({action_kind::power_on, 0});
    experiments.push_back({action_kind::power_off, 0});

    for (const req_per_sec w : options.workloads) {
        for (int trial = 0; trial < options.trials; ++trial) {
            for (const auto& exp : experiments) {
                const std::uint64_t exp_seed =
                    options.seed * 1000003ULL +
                    static_cast<std::uint64_t>(trial) * 10007ULL +
                    static_cast<std::uint64_t>(w * 8.0) * 101ULL +
                    static_cast<std::uint64_t>(exp.kind) * 13ULL + exp.tier;
                rng r(exp_seed);

                const int extra_tier =
                    exp.kind == action_kind::remove_replica
                        ? static_cast<int>(exp.tier)
                        : -1;
                cluster::configuration config = random_placement(
                    model, placeable, options.equal_cap, extra_tier, r);
                const host_id spare{static_cast<std::int32_t>(placeable)};
                if (exp.kind == action_kind::power_off) {
                    config.set_host_power(spare, true);
                }

                // Build the concrete action for this experiment.
                std::optional<cluster::action> act;
                switch (exp.kind) {
                    case action_kind::migrate: {
                        const vm_id vm = deployed_vm(model, config, exp.tier);
                        const auto src = config.placement(vm)->host;
                        const auto dst = host_with_room(model, config, placeable,
                                                        options.equal_cap, src);
                        if (dst) act = cluster::migrate{vm, *dst};
                        break;
                    }
                    case action_kind::add_replica: {
                        const vm_id vm = dormant_vm(model, config, exp.tier);
                        const auto dst = host_with_room(
                            model, config, placeable, options.equal_cap, host_id{});
                        if (vm.valid() && dst) {
                            act = cluster::add_replica{vm, *dst, options.equal_cap};
                        }
                        break;
                    }
                    case action_kind::remove_replica: {
                        const vm_id vm = deployed_vm(model, config, exp.tier);
                        if (vm.valid()) act = cluster::remove_replica{vm};
                        break;
                    }
                    case action_kind::increase_cpu:
                        act = cluster::increase_cpu{deployed_vm(model, config, exp.tier)};
                        break;
                    case action_kind::decrease_cpu:
                        act = cluster::decrease_cpu{deployed_vm(model, config, exp.tier)};
                        break;
                    case action_kind::power_on:
                        act = cluster::power_on{spare};
                        break;
                    case action_kind::power_off:
                        act = cluster::power_off{spare};
                        break;
                }
                if (!act || !cluster::applicable(model, config, *act)) continue;

                testbed_options tb_opts = options.testbed;
                tb_opts.seed = exp_seed ^ 0xabcdULL;
                testbed tb(model, config, tb_opts);
                const std::vector<req_per_sec> rates = {w, w};

                tb.advance(options.warmup, rates);
                const auto steady = tb.advance(options.steady_window, rates);

                const auto touched = affected_hosts(config, *act);
                const bool colocated = background_colocated(model, config, touched);

                tb.submit({*act});
                const auto adapt =
                    measure_adaptation(tb, rates, options.probe_step);

                cost::cost_entry entry;
                entry.duration = adapt.duration;
                entry.delta_rt_target =
                    std::max(0.0, adapt.mean_rt[0] - steady.response_time[0]);
                entry.delta_rt_colocated =
                    colocated
                        ? std::max(0.0, adapt.mean_rt[1] - steady.response_time[1])
                        : 0.0;
                entry.delta_power = adapt.mean_power - steady.power;
                table.add_measurement(exp.kind, exp.tier, w, entry);
            }
        }
    }
    return table;
}

}  // namespace mistral::sim
