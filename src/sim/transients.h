// Ground-truth transient behaviour of adaptation actions.
//
// The real testbed's Fig. 1/Fig. 7 measurements show that a live migration's
// duration, response-time impact, and power draw all grow with the workload
// the migrated application is serving (dirty pages are re-transferred faster
// than they can be flushed under load). The testbed simulator reproduces
// those relationships with the affine models below; the offline cost
// campaign *measures* them through the same experiment protocol as the paper
// and stores what it sees in the controller's cost tables.
#pragma once

#include <array>
#include <vector>

#include "cluster/action.h"
#include "common/units.h"

namespace mistral::sim {

struct transient_model {
    // Migration duration: base + per_rate × (app req/s), scaled per tier.
    seconds migration_base = 8.0;
    seconds migration_per_rate = 0.55;
    // Target-app ΔRT per req/s for a database-tier migration; shallower tiers
    // are scaled by tier_rt_factor (index clamped to the array).
    double rt_per_rate = 0.0070;
    std::array<double, 3> tier_rt_factor = {0.5, 0.7, 1.0};
    std::array<double, 3> tier_duration_factor = {0.9, 1.0, 1.1};
    // Co-located applications see this fraction of the target's ΔRT.
    double colocated_fraction = 0.4;
    // Extra power while migrating, as a fraction (growing with load) of the
    // nominal draw of the affected host pair.
    double power_frac_base = 0.08;
    double power_frac_slope = 0.09;  // additional fraction at 100 req/s
    watts nominal_affected_power = 150.0;
    // Replica add/remove relative to a same-tier migration.
    double add_factor = 1.2;
    double remove_factor = 0.8;
    // CPU cap changes: one scheduler call.
    seconds cpu_tune_duration = 1.0;
    seconds cpu_tune_rt_blip = 0.005;
    // Host power cycling (Section V-B). Powers are the *draw during the
    // transition*: a booting host pulls 80 W before it serves anything; a
    // host being shut down drops to ~20 W (below idle).
    seconds boot_duration = 90.0;
    watts boot_power = 80.0;
    seconds shutdown_duration = 30.0;
    watts shutdown_power = 20.0;
};

// The transient effect of executing `a` from `config` under `rates`.
struct action_transient {
    seconds duration = 0.0;
    std::vector<seconds> delta_rt;  // per application, while the action runs
    watts delta_power = 0.0;        // relative to the steady power of `config`
};

// Computes ground truth for one action. `idle_power` is the idle draw of the
// host being power-cycled (needed because the shutdown draw is *below* the
// steady draw the configuration otherwise accounts for).
action_transient ground_truth_transient(const cluster::cluster_model& model,
                                        const cluster::configuration& config,
                                        const cluster::action& a,
                                        const std::vector<req_per_sec>& rates,
                                        const transient_model& tm);

}  // namespace mistral::sim
