// The cluster testbed simulator.
//
// Plays the role of the paper's 8-host Xen testbed (Fig. 2's "Test-bed"
// box): it owns the *actual* configuration, executes submitted adaptation
// actions with workload-dependent durations and transient costs, and reports
// metered measurements (per-application mean response times, cluster power,
// host utilizations) over arbitrary observation windows.
//
// Ground truth is generated from deterministically perturbed copies of the
// nominal application and power models (see perturb.h) plus bounded
// measurement noise, so the controller's offline-fit models track reality
// within a few percent — the regime the paper's Fig. 5 validates.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "cluster/action.h"
#include "cluster/configuration.h"
#include "cluster/model.h"
#include "cluster/translate.h"
#include "common/rng.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "sim/faults.h"
#include "sim/transients.h"

namespace mistral::obs {
class sink;
}

namespace mistral::sim {

struct testbed_options {
    std::uint64_t seed = 42;
    // Deterministic skew applied to demands / power parameters to create the
    // gap between the testbed's reality and the controller's models.
    double demand_skew = 0.05;
    double power_skew = 0.03;
    // Multiplicative measurement noise (std-dev) on reported values.
    double rt_noise = 0.02;
    double power_noise = 0.01;
    // The testbed's "real" queueing behaviour differs slightly from the
    // controller's nominal model options too.
    lqn::model_options true_lqn{.xen_overhead = 0.09,
                                .dom0_overhead = 0.07,
                                .dom0_baseline = 0.025,
                                .network_hop = 0.0022};
    transient_model transients{};
    // Fault injection (inert by default: all probabilities zero, no crashes —
    // the testbed then behaves byte-identically to a fault-free build).
    fault_options faults{};
    // Response time reported for an application a host crash has left with an
    // undeployed tier (its requests time out rather than queue).
    seconds outage_response_time = 10.0;
    // Observability hook (obs/journal.h): when journaling, the executor emits
    // action_start / action_finish / action_fail and host_crash /
    // host_recover events at their simulation instants. nullptr (the
    // default) keeps execution byte-identical to an uninstrumented build.
    obs::sink* sink = nullptr;
};

// One observation window's measurements.
struct observation {
    seconds time = 0.0;                      // window end
    seconds window = 0.0;                    // window length
    std::vector<req_per_sec> rates;          // offered workload
    std::vector<seconds> response_time;      // mean per app over the window
    watts power = 0.0;                       // mean cluster draw
    std::vector<fraction> host_utilization;  // at window end (steady)
    std::vector<double> app_cpu_usage;       // physical CPUs consumed per app
    fraction adapting_fraction = 0.0;        // share of window spent adapting
    std::vector<cluster::action> completed;  // actions finished in the window
    // Fault-injection signals (all empty / zero when the injector is inert).
    std::vector<cluster::action> failed;     // actions aborted in the window
    std::vector<cluster::action> in_flight;  // still outstanding at window end
                                             // (executing first, then queued)
    std::vector<std::int32_t> hosts_failed;     // crashed in the window
    std::vector<std::int32_t> hosts_recovered;  // failure mark cleared
    fraction wasted_fraction = 0.0;  // share of window burnt on doomed actions
};

class testbed {
public:
    // `model` holds the *nominal* specs the controller also sees; the testbed
    // derives its perturbed ground truth from it. `initial` must be a
    // structurally valid configuration.
    testbed(const cluster::cluster_model& model, cluster::configuration initial,
            testbed_options options = {});

    [[nodiscard]] const cluster::cluster_model& nominal_model() const { return *nominal_; }
    [[nodiscard]] const cluster::configuration& config() const { return config_; }
    [[nodiscard]] seconds now() const { return now_; }
    [[nodiscard]] const testbed_options& options() const { return options_; }

    // Queues actions for sequential execution; they start consuming time at
    // the next advance(). Actions are validated against the configuration
    // they will fire from (earlier queued actions included) — submitting an
    // inapplicable sequence throws. Under fault injection a queued action may
    // *become* inapplicable (a failed predecessor or a host crash breaks the
    // chain); the projection skips such actions because the executor will
    // abort them at start rather than execute them. `initial_delay` models
    // the controller's decision time: the system idles in its old
    // configuration for that long before the first action starts
    // (Section IV's decision-delay cost).
    void submit(const std::vector<cluster::action>& actions,
                seconds initial_delay = 0.0);
    [[nodiscard]] bool busy() const { return in_flight_.has_value() || !queue_.empty(); }
    [[nodiscard]] std::size_t pending_actions() const;

    // Advances simulated time by `dt` under per-app offered `rates`,
    // executing queued actions and integrating the metered signals.
    observation advance(seconds dt, const std::vector<req_per_sec>& rates);

    // Noise-free ground truth for a hypothetical configuration (used by
    // tests and the model-validation bench's "experiment" series).
    [[nodiscard]] cluster::prediction ground_truth(
        const cluster::configuration& config,
        const std::vector<req_per_sec>& rates) const;

    // Ground-truth transient for one action from the current configuration
    // (exposed for the offline cost campaign's reporting).
    [[nodiscard]] action_transient transient_of(
        const cluster::action& a, const std::vector<req_per_sec>& rates) const;

private:
    const cluster::cluster_model* nominal_;  // not owned
    cluster::cluster_model true_model_;      // perturbed ground truth
    cluster::configuration config_;
    testbed_options options_;
    rng noise_;
    fault_injector injector_;
    seconds now_ = 0.0;

    // A queued item is either a real action or a pure wait (decision delay).
    struct queued_item {
        std::optional<cluster::action> act;
        seconds wait = 0.0;
    };
    struct in_flight {
        std::optional<cluster::action> act;  // nullopt: waiting, no transients
        action_transient transient;
        seconds remaining = 0.0;
        bool doomed = false;            // injector failed it at start
        seconds window_elapsed = 0.0;   // execution time within this window
    };
    std::optional<in_flight> in_flight_;
    std::deque<queued_item> queue_;

    // Disabled one-branch no-ops unless options_.sink carries a registry.
    obs::counter obs_started_;
    obs::counter obs_completed_;
    obs::counter obs_failed_;
    obs::counter obs_crashes_;
    obs::counter obs_recoveries_;

    // Crash/recovery delivery at local time `local`; returns true if the
    // configuration changed. Time already burnt this window by an executing
    // action the crash aborts is added to `wasted`.
    bool deliver_fault_events(seconds local, observation& out, double& wasted);

    // Cached steady-state ground truth for the current configuration
    // (outage-aware: crashed-out applications report outage_response_time).
    mutable std::optional<std::vector<req_per_sec>> steady_rates_;
    mutable cluster::outage_prediction steady_;
    const cluster::outage_prediction& steady_state(
        const std::vector<req_per_sec>& rates) const;
    void invalidate_steady() const { steady_rates_.reset(); }

    static cluster::cluster_model build_true_model(const cluster::cluster_model& nominal,
                                                   const testbed_options& options);
};

}  // namespace mistral::sim
