// RUBiS-like application factory.
//
// The paper's test application is the 3-tier servlet RUBiS auction benchmark
// (Apache web server, Tomcat application server, MySQL database) driven by
// its "browsing only" mix of 9 read-only transaction types (Section V-A).
// This factory builds an application_spec with the same structure: per-tier
// replication limits (a single Apache, up to 2 Tomcat and 2 MySQL replicas),
// 200 MB VMs, the 20–80 % CPU-cap window, a 400 ms target, and a browsing mix
// whose per-tier demands are calibrated so that a "default configuration"
// (all caps 40 %) at 50 req/s sits near the target — the way the paper
// derived its 400 ms objective.
#pragma once

#include <string>

#include "apps/application.h"

namespace mistral::apps {

// A RUBiS instance with the browsing-only transaction mix.
application_spec rubis_browsing(std::string name);

// A deliberately simpler 2-tier application (web + db) used by unit tests
// and the quickstart example; same objective structure.
application_spec two_tier_demo(std::string name);

}  // namespace mistral::apps
