#include "apps/rubis.h"

namespace mistral::apps {

application_spec rubis_browsing(std::string name) {
    // Tier order: 0 = web (Apache), 1 = app (Tomcat), 2 = db (MySQL).
    std::vector<tier_spec> tiers = {
        {.name = "web", .min_replicas = 1, .max_replicas = 1, .threads = 64},
        {.name = "app", .min_replicas = 1, .max_replicas = 2, .threads = 48},
        {.name = "db", .min_replicas = 1, .max_replicas = 2, .threads = 32},
    };

    // The RUBiS "browsing only" mix: 9 read-only transaction types. Visits
    // model the call graph (every request passes through Apache; servlet
    // pages make one Tomcat visit; item/category pages issue several MySQL
    // queries). Demands are per-visit CPU seconds, sized for the paper's
    // commodity-host scale: mix-weighted totals come to roughly 2 ms web,
    // 5 ms app, 6 ms db per request, so a 40 %-cap pipeline saturates a bit
    // above 100 req/s (the paper's peak) with two app/db replicas.
    std::vector<transaction_type> txs = {
        {.name = "home",
         .mix = 0.10,
         .visits = {1.0, 1.0, 0.0},
         .demand = {0.0015, 0.0030, 0.0}},
        {.name = "browse",
         .mix = 0.12,
         .visits = {1.0, 1.0, 1.0},
         .demand = {0.0018, 0.0040, 0.0035}},
        {.name = "browse-categories",
         .mix = 0.12,
         .visits = {1.0, 1.0, 1.0},
         .demand = {0.0018, 0.0045, 0.0050}},
        {.name = "browse-items-in-category",
         .mix = 0.16,
         .visits = {1.0, 1.0, 2.0},
         .demand = {0.0022, 0.0060, 0.0042}},
        {.name = "browse-regions",
         .mix = 0.08,
         .visits = {1.0, 1.0, 1.0},
         .demand = {0.0018, 0.0042, 0.0045}},
        {.name = "browse-items-in-region",
         .mix = 0.12,
         .visits = {1.0, 1.0, 2.0},
         .demand = {0.0022, 0.0058, 0.0040}},
        {.name = "view-item",
         .mix = 0.16,
         .visits = {1.0, 1.0, 2.0},
         .demand = {0.0020, 0.0055, 0.0038}},
        {.name = "view-user-info",
         .mix = 0.07,
         .visits = {1.0, 1.0, 1.0},
         .demand = {0.0018, 0.0048, 0.0052}},
        {.name = "view-bid-history",
         .mix = 0.07,
         .visits = {1.0, 1.0, 3.0},
         .demand = {0.0022, 0.0065, 0.0040}},
    };

    // 400 ms: the paper's experimentally derived target (Section V-A).
    return application_spec(std::move(name), std::move(tiers), std::move(txs), 0.400);
}

application_spec two_tier_demo(std::string name) {
    std::vector<tier_spec> tiers = {
        {.name = "web", .min_replicas = 1, .max_replicas = 1, .threads = 32},
        {.name = "db", .min_replicas = 1, .max_replicas = 2, .threads = 16},
    };
    std::vector<transaction_type> txs = {
        {.name = "read",
         .mix = 0.8,
         .visits = {1.0, 1.0},
         .demand = {0.0020, 0.0050}},
        {.name = "scan",
         .mix = 0.2,
         .visits = {1.0, 2.0},
         .demand = {0.0025, 0.0070}},
    };
    return application_spec(std::move(name), std::move(tiers), std::move(txs), 0.400);
}

}  // namespace mistral::apps
