// Application specifications.
//
// Section II-A: each managed application is a multi-tier service; each
// transaction type "generates a unique call graph through some subset of
// application tiers". A spec captures the tiers (with replication limits and
// CPU-cap bounds), the transaction types (visit counts and per-visit CPU
// demands per tier), and the per-application performance objective.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace mistral::apps {

struct tier_spec {
    std::string name;
    int min_replicas = 1;
    int max_replicas = 1;
    fraction min_cpu_cap = 0.2;   // paper: 20% floor avoids request errors
    fraction max_cpu_cap = 0.8;   // paper: 80% host cap leaves room for Dom-0
    double memory_mb = 200.0;     // per-VM footprint (Section V-A)
    int threads = 32;             // software concurrency of one replica
};

// One transaction type's path through the tiers. `visits[t]` is the mean
// number of synchronous calls into tier t per request; `demand[t]` is the
// CPU time (seconds) consumed per visit at tier t.
struct transaction_type {
    std::string name;
    double mix = 0.0;                  // probability of this type in the mix
    std::vector<double> visits;        // per tier
    std::vector<seconds> demand;       // per tier, per visit
};

class application_spec {
public:
    application_spec(std::string name, std::vector<tier_spec> tiers,
                     std::vector<transaction_type> transactions,
                     seconds target_response_time);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::vector<tier_spec>& tiers() const { return tiers_; }
    [[nodiscard]] const std::vector<transaction_type>& transactions() const {
        return transactions_;
    }
    [[nodiscard]] std::size_t tier_count() const { return tiers_.size(); }

    // The target mean response time TRT(w). The paper uses a constant 400 ms
    // derived from a default configuration; the rate argument keeps the
    // Section II-B generality ("response time targets ... are allowed to
    // depend on the request rate").
    [[nodiscard]] seconds target_response_time(req_per_sec rate) const;

    // Mix-weighted total CPU demand per request at tier t (visits × demand),
    // i.e. the expected CPU seconds tier t spends on one incoming request.
    [[nodiscard]] seconds mean_tier_demand(std::size_t tier) const;

    // Mix-weighted total visits into tier t per request.
    [[nodiscard]] double mean_tier_visits(std::size_t tier) const;

private:
    std::string name_;
    std::vector<tier_spec> tiers_;
    std::vector<transaction_type> transactions_;
    seconds target_rt_;
};

}  // namespace mistral::apps
