#include "apps/application.h"

#include <cmath>

namespace mistral::apps {

application_spec::application_spec(std::string name, std::vector<tier_spec> tiers,
                                   std::vector<transaction_type> transactions,
                                   seconds target_response_time)
    : name_(std::move(name)),
      tiers_(std::move(tiers)),
      transactions_(std::move(transactions)),
      target_rt_(target_response_time) {
    MISTRAL_CHECK(!tiers_.empty());
    MISTRAL_CHECK(!transactions_.empty());
    MISTRAL_CHECK(target_rt_ > 0.0);
    double mix_sum = 0.0;
    for (const auto& tx : transactions_) {
        MISTRAL_CHECK_MSG(tx.visits.size() == tiers_.size(),
                          "transaction '" << tx.name << "' visits size mismatch");
        MISTRAL_CHECK_MSG(tx.demand.size() == tiers_.size(),
                          "transaction '" << tx.name << "' demand size mismatch");
        MISTRAL_CHECK(tx.mix >= 0.0);
        mix_sum += tx.mix;
    }
    MISTRAL_CHECK_MSG(std::abs(mix_sum - 1.0) < 1e-6,
                      "transaction mix must sum to 1, got " << mix_sum);
    for (const auto& t : tiers_) {
        MISTRAL_CHECK(t.min_replicas >= 1 && t.max_replicas >= t.min_replicas);
        MISTRAL_CHECK(t.min_cpu_cap > 0.0 && t.max_cpu_cap >= t.min_cpu_cap &&
                      t.max_cpu_cap <= 1.0);
        MISTRAL_CHECK(t.memory_mb > 0.0);
        MISTRAL_CHECK(t.threads >= 1);
    }
}

seconds application_spec::target_response_time(req_per_sec /*rate*/) const {
    return target_rt_;
}

seconds application_spec::mean_tier_demand(std::size_t tier) const {
    MISTRAL_CHECK(tier < tiers_.size());
    seconds total = 0.0;
    for (const auto& tx : transactions_) {
        total += tx.mix * tx.visits[tier] * tx.demand[tier];
    }
    return total;
}

double application_spec::mean_tier_visits(std::size_t tier) const {
    MISTRAL_CHECK(tier < tiers_.size());
    double total = 0.0;
    for (const auto& tx : transactions_) total += tx.mix * tx.visits[tier];
    return total;
}

}  // namespace mistral::apps
