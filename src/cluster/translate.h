// Bridges configurations to the predictor substrates.
//
// The Performance Manager and Power Consolidation Manager of Fig. 2 both
// consume (configuration, workload) pairs; this translation layer builds the
// LQN deployment view for the solver and turns its host utilizations into a
// cluster power prediction.
#pragma once

#include <span>
#include <vector>

#include "cluster/configuration.h"
#include "cluster/model.h"
#include "lqn/solver.h"

namespace mistral::cluster {

// The LQN view of `config` with one entry per application; `rates` is the
// per-application workload vector W. Requires a structurally valid
// configuration (every tier deployed somewhere).
std::vector<lqn::app_deployment> to_lqn(const cluster_model& model,
                                        const configuration& config,
                                        const std::vector<req_per_sec>& rates);

// Steady-state cluster power: each powered-on host draws its power model's
// value at the given utilization; powered-off hosts draw nothing
// (Section III-B: "the total power usage of the system is simply the sum of
// physical machines' power usages").
watts predicted_power(const cluster_model& model, const configuration& config,
                      std::span<const fraction> host_utilization);

struct prediction {
    lqn::solve_result perf;
    watts power = 0.0;
};

// Solve + power in one call (what UtilityEst needs).
prediction predict(const cluster_model& model, const configuration& config,
                   const std::vector<req_per_sec>& rates,
                   const lqn::model_options& options = {});

// Outage-tolerant prediction for configurations a host crash has degraded
// below a tier's minimum replication. Applications with an undeployed tier
// are *down*: they are excluded from the LQN solve (their load reaches no
// server, so it consumes no CPU), their mean response time is reported as
// `outage_response_time`, and `app_down[a]` marks them. With every tier
// deployed this is exactly predict() — same solver inputs, bit-identical
// result.
struct outage_prediction {
    prediction pred;
    std::vector<bool> app_down;
    [[nodiscard]] bool any_down() const {
        for (bool d : app_down) {
            if (d) return true;
        }
        return false;
    }
};
outage_prediction predict_with_outages(const cluster_model& model,
                                       const configuration& config,
                                       const std::vector<req_per_sec>& rates,
                                       const lqn::model_options& options = {},
                                       seconds outage_response_time = 10.0);

}  // namespace mistral::cluster
