#include "cluster/model.h"

#include "common/check.h"

namespace mistral::cluster {

cluster_model::cluster_model(std::vector<host_spec> hosts,
                             std::vector<apps::application_spec> applications,
                             cluster_limits limits)
    : hosts_(std::move(hosts)), apps_(std::move(applications)), limits_(limits) {
    MISTRAL_CHECK(!hosts_.empty());
    MISTRAL_CHECK(!apps_.empty());
    MISTRAL_CHECK(limits_.max_vms_per_host >= 1);
    MISTRAL_CHECK(limits_.host_cpu_cap > 0.0 && limits_.host_cpu_cap <= 1.0);
    MISTRAL_CHECK(limits_.cpu_step > 0.0 && limits_.cpu_step < 1.0);

    tier_vms_.resize(apps_.size());
    std::int32_t next = 0;
    for (std::size_t a = 0; a < apps_.size(); ++a) {
        tier_vms_[a].resize(apps_[a].tier_count());
        for (std::size_t t = 0; t < apps_[a].tier_count(); ++t) {
            const auto& tier = apps_[a].tiers()[t];
            for (int r = 0; r < tier.max_replicas; ++r) {
                vm_descriptor vm;
                vm.vm = vm_id{next++};
                vm.app = app_id{static_cast<std::int32_t>(a)};
                vm.tier = t;
                vm.replica_index = r;
                vm.memory_mb = tier.memory_mb;
                tier_vms_[a][t].push_back(vm.vm);
                vms_.push_back(vm);
            }
        }
    }
}

const vm_descriptor& cluster_model::vm(vm_id id) const {
    MISTRAL_CHECK(id.valid() && id.index() < vms_.size());
    return vms_[id.index()];
}

const std::vector<vm_id>& cluster_model::tier_vms(app_id app, std::size_t tier) const {
    MISTRAL_CHECK(app.valid() && app.index() < tier_vms_.size());
    MISTRAL_CHECK(tier < tier_vms_[app.index()].size());
    return tier_vms_[app.index()][tier];
}

const apps::application_spec& cluster_model::app(app_id id) const {
    MISTRAL_CHECK(id.valid() && id.index() < apps_.size());
    return apps_[id.index()];
}

const apps::tier_spec& cluster_model::tier_spec_of(vm_id id) const {
    const auto& desc = vm(id);
    return app(desc.app).tiers()[desc.tier];
}

std::vector<host_spec> uniform_hosts(std::size_t count, double memory_mb) {
    MISTRAL_CHECK(count > 0);
    std::vector<host_spec> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        host_spec h;
        h.name = "host" + std::to_string(i);
        h.memory_mb = memory_mb;
        out.push_back(h);
    }
    return out;
}

}  // namespace mistral::cluster
