// Static description of the managed cluster.
//
// A `cluster_model` is everything that does not change at runtime: the
// physical hosts (capacity, memory, power model), the applications, and the
// full VM inventory. Following Section II-A, every tier replica that *could*
// exist has a VM in the inventory up to the tier's max replication level;
// replicas beyond the deployed set live dormant in the cold-store pool and
// are added by migrating them in (Section III-C).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "apps/application.h"
#include "common/ids.h"
#include "common/units.h"
#include "power/model.h"

namespace mistral::cluster {

struct host_spec {
    std::string name;
    fraction cpu_capacity = 1.0;       // physical CPU (1.0 = one saturated core)
    double memory_mb = 1000.0;         // paper: 1 GB hosts
    pwr::host_power_model power{};
};

// One VM slot in the inventory: a specific replica of a specific tier.
struct vm_descriptor {
    vm_id vm;
    app_id app;
    std::size_t tier = 0;
    int replica_index = 0;     // 0-based; index 0 replicas are mandatory
    double memory_mb = 200.0;  // fixed footprint (Section V-A)
};

struct cluster_limits {
    int max_vms_per_host = 4;        // paper: "a limit of up to 4 VMs per host"
    fraction host_cpu_cap = 0.8;     // total VM CPU per host; rest is Dom-0
    double dom0_memory_mb = 200.0;   // memory reserved for the hypervisor
    fraction cpu_step = 0.10;        // the "fixed amount" of CPU cap actions
};

class cluster_model {
public:
    cluster_model(std::vector<host_spec> hosts,
                  std::vector<apps::application_spec> applications,
                  cluster_limits limits = {});

    [[nodiscard]] const std::vector<host_spec>& hosts() const { return hosts_; }
    [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
    [[nodiscard]] const std::vector<apps::application_spec>& applications() const {
        return apps_;
    }
    [[nodiscard]] std::size_t app_count() const { return apps_.size(); }
    [[nodiscard]] const cluster_limits& limits() const { return limits_; }

    // The full VM inventory (deployable replicas of every tier).
    [[nodiscard]] const std::vector<vm_descriptor>& vms() const { return vms_; }
    [[nodiscard]] std::size_t vm_count() const { return vms_.size(); }
    [[nodiscard]] const vm_descriptor& vm(vm_id id) const;

    // VMs belonging to (app, tier), ordered by replica index.
    [[nodiscard]] const std::vector<vm_id>& tier_vms(app_id app, std::size_t tier) const;

    [[nodiscard]] const apps::application_spec& app(app_id id) const;
    [[nodiscard]] const apps::tier_spec& tier_spec_of(vm_id id) const;

private:
    std::vector<host_spec> hosts_;
    std::vector<apps::application_spec> apps_;
    cluster_limits limits_;
    std::vector<vm_descriptor> vms_;
    // tier_vms_[app][tier] -> vm ids
    std::vector<std::vector<std::vector<vm_id>>> tier_vms_;
};

// Builds `count` identical hosts named host0..host{n-1} with the default
// power model (the paper's commodity Pentium-4 class).
std::vector<host_spec> uniform_hosts(std::size_t count, double memory_mb = 1000.0);

}  // namespace mistral::cluster
