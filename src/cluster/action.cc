#include "cluster/action.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace mistral::cluster {

const char* to_string(action_kind kind) {
    switch (kind) {
        case action_kind::increase_cpu: return "increase_cpu";
        case action_kind::decrease_cpu: return "decrease_cpu";
        case action_kind::add_replica: return "add_replica";
        case action_kind::remove_replica: return "remove_replica";
        case action_kind::migrate: return "migrate";
        case action_kind::power_on: return "power_on";
        case action_kind::power_off: return "power_off";
    }
    return "unknown";
}

action_kind kind_of(const action& a) {
    return std::visit(
        [](const auto& x) {
            using T = std::decay_t<decltype(x)>;
            if constexpr (std::is_same_v<T, increase_cpu>) return action_kind::increase_cpu;
            else if constexpr (std::is_same_v<T, decrease_cpu>) return action_kind::decrease_cpu;
            else if constexpr (std::is_same_v<T, add_replica>) return action_kind::add_replica;
            else if constexpr (std::is_same_v<T, remove_replica>) return action_kind::remove_replica;
            else if constexpr (std::is_same_v<T, migrate>) return action_kind::migrate;
            else if constexpr (std::is_same_v<T, power_on>) return action_kind::power_on;
            else return action_kind::power_off;
        },
        a);
}

namespace {

std::string vm_label(const cluster_model& model, vm_id vm) {
    const auto& desc = model.vm(vm);
    const auto& app = model.app(desc.app);
    std::ostringstream os;
    os << vm << "(" << app.name() << "/" << app.tiers()[desc.tier].name
       << desc.replica_index << ")";
    return os.str();
}

// Count of deployed replicas in the (app, tier) that owns `vm`.
int deployed_replicas(const cluster_model& model, const configuration& config,
                      vm_id vm) {
    const auto& desc = model.vm(vm);
    int n = 0;
    for (vm_id peer : model.tier_vms(desc.app, desc.tier)) {
        n += config.deployed(peer) ? 1 : 0;
    }
    return n;
}

// Per-host memory already committed, when the caller has precomputed it for
// a whole batch of checks (enumerate_actions); nullptr recomputes on demand.
using host_memory = std::vector<double>;

bool host_has_room(const cluster_model& model, const configuration& config,
                   host_id host, double extra_memory_mb,
                   const host_memory* memory, std::string* why) {
    if (config.host_failed(host)) {
        if (why) *why = "target host failed";
        return false;
    }
    if (!config.host_on(host)) {
        if (why) *why = "target host is powered off";
        return false;
    }
    if (static_cast<int>(config.vm_count_on(host)) + 1 >
        model.limits().max_vms_per_host) {
        if (why) *why = "target host VM slots full";
        return false;
    }
    const double used = memory ? (*memory)[host.index()]
                               : config.memory_sum(model, host);
    const double available = model.hosts()[host.index()].memory_mb -
                             model.limits().dom0_memory_mb - used;
    if (extra_memory_mb > available + 1e-9) {
        if (why) *why = "target host memory full";
        return false;
    }
    return true;
}

}  // namespace

std::string to_string(const cluster_model& model, const action& a) {
    std::ostringstream os;
    std::visit(
        [&](const auto& x) {
            using T = std::decay_t<decltype(x)>;
            if constexpr (std::is_same_v<T, increase_cpu>) {
                os << "increase_cpu " << vm_label(model, x.vm);
            } else if constexpr (std::is_same_v<T, decrease_cpu>) {
                os << "decrease_cpu " << vm_label(model, x.vm);
            } else if constexpr (std::is_same_v<T, add_replica>) {
                os << "add_replica " << vm_label(model, x.vm) << " -> "
                   << model.hosts()[x.to.index()].name << " @"
                   << static_cast<int>(x.cpu_cap * 100) << "%";
            } else if constexpr (std::is_same_v<T, remove_replica>) {
                os << "remove_replica " << vm_label(model, x.vm);
            } else if constexpr (std::is_same_v<T, migrate>) {
                os << "migrate " << vm_label(model, x.vm) << " -> "
                   << model.hosts()[x.to.index()].name;
            } else if constexpr (std::is_same_v<T, power_on>) {
                os << "power_on " << model.hosts()[x.host.index()].name;
            } else {
                os << "power_off " << model.hosts()[x.host.index()].name;
            }
        },
        a);
    return os.str();
}

namespace {

bool applicable_impl(const cluster_model& model, const configuration& config,
                     const action& a, const host_memory* memory,
                     std::string* why) {
    const auto step = model.limits().cpu_step;
    return std::visit(
        [&](const auto& x) -> bool {
            using T = std::decay_t<decltype(x)>;
            if constexpr (std::is_same_v<T, increase_cpu>) {
                const auto& p = config.placement(x.vm);
                if (!p) { if (why) *why = "VM is dormant"; return false; }
                const auto& tier = model.tier_spec_of(x.vm);
                if (p->cpu_cap + step > tier.max_cpu_cap + 1e-9) {
                    if (why) *why = "cap already at tier maximum";
                    return false;
                }
                return true;
            } else if constexpr (std::is_same_v<T, decrease_cpu>) {
                const auto& p = config.placement(x.vm);
                if (!p) { if (why) *why = "VM is dormant"; return false; }
                const auto& tier = model.tier_spec_of(x.vm);
                if (p->cpu_cap - step < tier.min_cpu_cap - 1e-9) {
                    if (why) *why = "cap already at tier minimum";
                    return false;
                }
                return true;
            } else if constexpr (std::is_same_v<T, add_replica>) {
                if (config.deployed(x.vm)) {
                    if (why) *why = "replica already deployed";
                    return false;
                }
                const auto& tier = model.tier_spec_of(x.vm);
                if (x.cpu_cap < tier.min_cpu_cap - 1e-9 ||
                    x.cpu_cap > tier.max_cpu_cap + 1e-9) {
                    if (why) *why = "cap outside tier window";
                    return false;
                }
                return host_has_room(model, config, x.to,
                                     model.vm(x.vm).memory_mb, memory, why);
            } else if constexpr (std::is_same_v<T, remove_replica>) {
                if (!config.deployed(x.vm)) {
                    if (why) *why = "VM is dormant";
                    return false;
                }
                const auto& tier = model.tier_spec_of(x.vm);
                if (deployed_replicas(model, config, x.vm) - 1 < tier.min_replicas) {
                    if (why) *why = "tier at minimum replication";
                    return false;
                }
                return true;
            } else if constexpr (std::is_same_v<T, migrate>) {
                const auto& p = config.placement(x.vm);
                if (!p) { if (why) *why = "VM is dormant"; return false; }
                if (p->host == x.to) {
                    if (why) *why = "already on target host";
                    return false;
                }
                return host_has_room(model, config, x.to,
                                     model.vm(x.vm).memory_mb, memory, why);
            } else if constexpr (std::is_same_v<T, power_on>) {
                if (config.host_failed(x.host)) {
                    if (why) *why = "host failed";
                    return false;
                }
                if (config.host_on(x.host)) {
                    if (why) *why = "host already on";
                    return false;
                }
                return true;
            } else {
                if (!config.host_on(x.host)) {
                    if (why) *why = "host already off";
                    return false;
                }
                if (config.vm_count_on(x.host) != 0) {
                    if (why) *why = "host still has VMs";
                    return false;
                }
                return true;
            }
        },
        a);
}

}  // namespace

bool applicable(const cluster_model& model, const configuration& config,
                const action& a, std::string* why) {
    return applicable_impl(model, config, a, nullptr, why);
}

configuration apply(const cluster_model& model, const configuration& config,
                    const action& a) {
    std::string why;
    MISTRAL_CHECK_MSG(applicable(model, config, a, &why),
                      "inapplicable action " << to_string(model, a) << ": " << why);
    configuration next = config;
    const auto step = model.limits().cpu_step;
    std::visit(
        [&](const auto& x) {
            using T = std::decay_t<decltype(x)>;
            if constexpr (std::is_same_v<T, increase_cpu>) {
                next.set_cap(x.vm, config.placement(x.vm)->cpu_cap + step);
            } else if constexpr (std::is_same_v<T, decrease_cpu>) {
                next.set_cap(x.vm, config.placement(x.vm)->cpu_cap - step);
            } else if constexpr (std::is_same_v<T, add_replica>) {
                next.deploy(x.vm, x.to, x.cpu_cap);
            } else if constexpr (std::is_same_v<T, remove_replica>) {
                next.undeploy(x.vm);
            } else if constexpr (std::is_same_v<T, migrate>) {
                next.deploy(x.vm, x.to, config.placement(x.vm)->cpu_cap);
            } else if constexpr (std::is_same_v<T, power_on>) {
                next.set_host_power(x.host, true);
            } else {
                next.set_host_power(x.host, false);
            }
        },
        a);
#ifndef NDEBUG
    // Debug-build invariant: the incremental Zobrist hash must equal a full
    // recompute after every edge expansion (the sanitize-labeled randomized
    // hash test exercises the same property in release builds).
    MISTRAL_CHECK_MSG(next.verify_hash(),
                      "incremental hash diverged applying " << to_string(model, a));
#endif
    return next;
}

std::vector<action> enumerate_actions(const cluster_model& model,
                                      const configuration& config,
                                      const action_menu& menu) {
    std::vector<action> out;
    // One memory pass up front; every migrate/add_replica probe below would
    // otherwise rescan the whole VM inventory per target host.
    host_memory memory(model.host_count(), 0.0);
    for (const auto& desc : model.vms()) {
        const auto& p = config.placement(desc.vm);
        if (p) memory[p->host.index()] += desc.memory_mb;
    }
    auto offer = [&](action a) {
        if (applicable_impl(model, config, a, &memory, nullptr)) {
            out.push_back(std::move(a));
        }
    };

    for (const auto& desc : model.vms()) {
        if (!config.deployed(desc.vm)) continue;
        if (menu.cpu_tuning) {
            offer(increase_cpu{desc.vm});
            offer(decrease_cpu{desc.vm});
        }
        if (menu.migration) {
            for (std::size_t h = 0; h < model.host_count(); ++h) {
                offer(migrate{desc.vm, host_id{static_cast<std::int32_t>(h)}});
            }
        }
    }

    if (menu.replication) {
        for (std::size_t a = 0; a < model.app_count(); ++a) {
            const app_id app{static_cast<std::int32_t>(a)};
            for (std::size_t t = 0; t < model.app(app).tier_count(); ++t) {
                const auto& tier_vm_list = model.tier_vms(app, t);
                // Lowest-index dormant replica (replicas are interchangeable).
                for (vm_id vm : tier_vm_list) {
                    if (config.deployed(vm)) continue;
                    const auto cap = model.app(app).tiers()[t].min_cpu_cap;
                    for (std::size_t h = 0; h < model.host_count(); ++h) {
                        offer(add_replica{vm, host_id{static_cast<std::int32_t>(h)}, cap});
                    }
                    break;
                }
                // Highest-index deployed replica.
                for (auto it = tier_vm_list.rbegin(); it != tier_vm_list.rend(); ++it) {
                    if (!config.deployed(*it)) continue;
                    offer(remove_replica{*it});
                    break;
                }
            }
        }
    }

    if (menu.host_power) {
        bool offered_on = false;
        for (std::size_t h = 0; h < model.host_count(); ++h) {
            const host_id host{static_cast<std::int32_t>(h)};
            if (!config.host_on(host)) {
                // One powered-off host is as good as another — but a failed
                // host cannot boot, so it must not consume the one offer.
                if (!offered_on && !config.host_failed(host)) {
                    offer(power_on{host});
                    offered_on = true;
                }
            } else {
                offer(power_off{host});
            }
        }
    }
    return out;
}

}  // namespace mistral::cluster
