#include "cluster/translate.h"

#include "common/check.h"

namespace mistral::cluster {

std::vector<lqn::app_deployment> to_lqn(const cluster_model& model,
                                        const configuration& config,
                                        const std::vector<req_per_sec>& rates) {
    MISTRAL_CHECK_MSG(rates.size() == model.app_count(),
                      "expected " << model.app_count() << " rates, got " << rates.size());
    std::vector<lqn::app_deployment> out;
    out.reserve(model.app_count());
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        const app_id app{static_cast<std::int32_t>(a)};
        lqn::app_deployment dep;
        dep.spec = &model.app(app);
        dep.rate = rates[a];
        dep.tiers.resize(dep.spec->tier_count());
        for (std::size_t t = 0; t < dep.spec->tier_count(); ++t) {
            for (vm_id vm : model.tier_vms(app, t)) {
                const auto& p = config.placement(vm);
                if (!p) continue;
                dep.tiers[t].replicas.push_back(
                    {.host = p->host.index(), .cpu_cap = p->cpu_cap});
            }
            MISTRAL_CHECK_MSG(!dep.tiers[t].replicas.empty(),
                              dep.spec->name() << " tier " << t
                                               << " has no deployed replicas");
        }
        out.push_back(std::move(dep));
    }
    return out;
}

watts predicted_power(const cluster_model& model, const configuration& config,
                      std::span<const fraction> host_utilization) {
    MISTRAL_CHECK(host_utilization.size() == model.host_count());
    watts total = 0.0;
    for (std::size_t h = 0; h < model.host_count(); ++h) {
        const host_id host{static_cast<std::int32_t>(h)};
        if (!config.host_on(host)) continue;
        total += model.hosts()[h].power.power(host_utilization[h]);
    }
    return total;
}

prediction predict(const cluster_model& model, const configuration& config,
                   const std::vector<req_per_sec>& rates,
                   const lqn::model_options& options) {
    prediction out;
    out.perf = lqn::solve(to_lqn(model, config, rates), model.host_count(), options);
    out.power = predicted_power(model, config, out.perf.host_utilization);
    return out;
}

outage_prediction predict_with_outages(const cluster_model& model,
                                       const configuration& config,
                                       const std::vector<req_per_sec>& rates,
                                       const lqn::model_options& options,
                                       seconds outage_response_time) {
    MISTRAL_CHECK(rates.size() == model.app_count());
    outage_prediction out;
    out.app_down.assign(model.app_count(), false);
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        const app_id app{static_cast<std::int32_t>(a)};
        for (std::size_t t = 0; t < model.app(app).tier_count(); ++t) {
            int deployed = 0;
            for (vm_id vm : model.tier_vms(app, t)) {
                deployed += config.deployed(vm) ? 1 : 0;
            }
            if (deployed == 0) {
                out.app_down[a] = true;
                break;
            }
        }
    }
    if (!out.any_down()) {
        out.pred = predict(model, config, rates, options);
        return out;
    }

    // Solve the up applications only; a down application's load reaches no
    // server. Rates for down apps are zeroed rather than removed so to_lqn's
    // shape checks hold, then their deployments are dropped from the solve.
    std::vector<lqn::app_deployment> up;
    std::vector<std::size_t> up_index;
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        if (out.app_down[a]) continue;
        const app_id app{static_cast<std::int32_t>(a)};
        lqn::app_deployment dep;
        dep.spec = &model.app(app);
        dep.rate = rates[a];
        dep.tiers.resize(dep.spec->tier_count());
        for (std::size_t t = 0; t < dep.spec->tier_count(); ++t) {
            for (vm_id vm : model.tier_vms(app, t)) {
                const auto& p = config.placement(vm);
                if (!p) continue;
                dep.tiers[t].replicas.push_back(
                    {.host = p->host.index(), .cpu_cap = p->cpu_cap});
            }
        }
        up_index.push_back(a);
        up.push_back(std::move(dep));
    }

    lqn::solve_result solved;
    if (!up.empty()) {
        solved = lqn::solve(up, model.host_count(), options);
    } else {
        solved.host_utilization.assign(model.host_count(), 0.0);
        solved.host_demand.assign(model.host_count(), 0.0);
    }

    // Re-assemble per-app results in the original order.
    out.pred.perf.host_utilization = solved.host_utilization;
    out.pred.perf.host_demand = solved.host_demand;
    out.pred.perf.saturated = solved.saturated;
    out.pred.perf.apps.resize(model.app_count());
    for (std::size_t i = 0; i < up_index.size(); ++i) {
        out.pred.perf.apps[up_index[i]] = std::move(solved.apps[i]);
    }
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        if (!out.app_down[a]) continue;
        const auto& spec = model.app(app_id{static_cast<std::int32_t>(a)});
        auto& down = out.pred.perf.apps[a];
        down.mean_response_time = outage_response_time;
        down.per_transaction.assign(spec.transactions().size(),
                                    outage_response_time);
        down.tiers.assign(spec.tier_count(), {});
        down.saturated = true;
    }
    out.pred.power = predicted_power(model, config, out.pred.perf.host_utilization);
    return out;
}

}  // namespace mistral::cluster
