#include "cluster/translate.h"

#include "common/check.h"

namespace mistral::cluster {

std::vector<lqn::app_deployment> to_lqn(const cluster_model& model,
                                        const configuration& config,
                                        const std::vector<req_per_sec>& rates) {
    MISTRAL_CHECK_MSG(rates.size() == model.app_count(),
                      "expected " << model.app_count() << " rates, got " << rates.size());
    std::vector<lqn::app_deployment> out;
    out.reserve(model.app_count());
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        const app_id app{static_cast<std::int32_t>(a)};
        lqn::app_deployment dep;
        dep.spec = &model.app(app);
        dep.rate = rates[a];
        dep.tiers.resize(dep.spec->tier_count());
        for (std::size_t t = 0; t < dep.spec->tier_count(); ++t) {
            for (vm_id vm : model.tier_vms(app, t)) {
                const auto& p = config.placement(vm);
                if (!p) continue;
                dep.tiers[t].replicas.push_back(
                    {.host = p->host.index(), .cpu_cap = p->cpu_cap});
            }
            MISTRAL_CHECK_MSG(!dep.tiers[t].replicas.empty(),
                              dep.spec->name() << " tier " << t
                                               << " has no deployed replicas");
        }
        out.push_back(std::move(dep));
    }
    return out;
}

watts predicted_power(const cluster_model& model, const configuration& config,
                      std::span<const fraction> host_utilization) {
    MISTRAL_CHECK(host_utilization.size() == model.host_count());
    watts total = 0.0;
    for (std::size_t h = 0; h < model.host_count(); ++h) {
        const host_id host{static_cast<std::int32_t>(h)};
        if (!config.host_on(host)) continue;
        total += model.hosts()[h].power.power(host_utilization[h]);
    }
    return total;
}

prediction predict(const cluster_model& model, const configuration& config,
                   const std::vector<req_per_sec>& rates,
                   const lqn::model_options& options) {
    prediction out;
    out.perf = lqn::solve(to_lqn(model, config, rates), model.host_count(), options);
    out.power = predicted_power(model, config, out.perf.host_utilization);
    return out;
}

}  // namespace mistral::cluster
