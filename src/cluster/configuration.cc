#include "cluster/configuration.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace mistral::cluster {

namespace {

fraction round_cap(fraction cap) { return std::round(cap * 1000.0) / 1000.0; }

// Exact integer milli-cap of an already-rounded cap.
std::int32_t milli(fraction cap) {
    return static_cast<std::int32_t>(std::llround(cap * 1000.0));
}

// splitmix64 finalizer: the Zobrist key generator. A true Zobrist table over
// (vm × host × 1000 milli-caps) would be megabytes per model; hashing the
// packed slot through a strong mixer gives statistically independent keys
// without any table, and stays a pure function so every configuration with
// equal state carries an equal hash.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

// Key families get distinct salts so e.g. host 3 powered on can never cancel
// a placement key by accident.
constexpr std::uint64_t kPlacementSalt = 0xa0761d6478bd642fULL;
constexpr std::uint64_t kHostOnSalt = 0xe7037ed1a0b428dbULL;
constexpr std::uint64_t kHostFailedSalt = 0x8ebc6af09c88c6e3ULL;

// Placement keys pack (vm, host, milli-cap) into one word: vm and host are
// int32 indices and milli-caps lie in [1, 1000], so 20 bits each is ample.
std::uint64_t placement_key(std::size_t vm, std::size_t host, std::int32_t m) {
    return mix64(kPlacementSalt ^ (static_cast<std::uint64_t>(vm) << 40) ^
                 (static_cast<std::uint64_t>(host) << 20) ^
                 static_cast<std::uint64_t>(m));
}

std::uint64_t host_on_key(std::size_t host) {
    return mix64(kHostOnSalt ^ host);
}

std::uint64_t host_failed_key(std::size_t host) {
    return mix64(kHostFailedSalt ^ host);
}

// Hash of the empty configuration: derived from the shape so differently
// sized configurations (never equal) rarely collide. Zero for the
// default-constructed (zero-sized) configuration, matching its member
// initializer.
std::uint64_t base_hash(std::size_t vm_count, std::size_t host_count) {
    if (vm_count == 0 && host_count == 0) return 0;
    return mix64((static_cast<std::uint64_t>(vm_count) << 32) ^ host_count);
}

}  // namespace

configuration::configuration(std::size_t vm_count, std::size_t host_count)
    : vms_(vm_count),
      hosts_on_(host_count, false),
      hosts_failed_(host_count, false),
      host_cap_milli_(host_count, 0),
      host_vm_count_(host_count, 0),
      zobrist_(base_hash(vm_count, host_count)) {
    MISTRAL_CHECK(vm_count > 0);
    MISTRAL_CHECK(host_count > 0);
}

bool configuration::deployed(vm_id vm) const { return placement(vm).has_value(); }

const std::optional<vm_placement>& configuration::placement(vm_id vm) const {
    MISTRAL_CHECK(vm.valid() && vm.index() < vms_.size());
    return vms_[vm.index()];
}

bool configuration::host_on(host_id host) const {
    MISTRAL_CHECK(host.valid() && host.index() < hosts_on_.size());
    return hosts_on_[host.index()];
}

bool configuration::host_failed(host_id host) const {
    MISTRAL_CHECK(host.valid() && host.index() < hosts_failed_.size());
    return hosts_failed_[host.index()];
}

bool configuration::any_host_failed() const {
    for (bool failed : hosts_failed_) {
        if (failed) return true;
    }
    return false;
}

std::vector<vm_id> configuration::vms_on(host_id host) const {
    MISTRAL_CHECK(host.valid() && host.index() < hosts_on_.size());
    std::vector<vm_id> out;
    for (std::size_t i = 0; i < vms_.size(); ++i) {
        if (vms_[i] && vms_[i]->host == host) {
            out.push_back(vm_id{static_cast<std::int32_t>(i)});
        }
    }
    return out;
}

std::size_t configuration::active_host_count() const {
    std::size_t n = 0;
    for (bool on : hosts_on_) n += on ? 1 : 0;
    return n;
}

std::size_t configuration::deployed_vm_count() const {
    std::size_t n = 0;
    for (const auto& p : vms_) n += p.has_value() ? 1 : 0;
    return n;
}

std::size_t configuration::vm_count_on(host_id host) const {
    MISTRAL_CHECK(host.valid() && host.index() < hosts_on_.size());
    return static_cast<std::size_t>(host_vm_count_[host.index()]);
}

fraction configuration::cap_sum(host_id host) const {
    MISTRAL_CHECK(host.valid() && host.index() < hosts_on_.size());
    return static_cast<fraction>(host_cap_milli_[host.index()]) / 1000.0;
}

double configuration::memory_sum(const cluster_model& model, host_id host) const {
    double sum = 0.0;
    for (std::size_t i = 0; i < vms_.size(); ++i) {
        if (vms_[i] && vms_[i]->host == host) {
            sum += model.vm(vm_id{static_cast<std::int32_t>(i)}).memory_mb;
        }
    }
    return sum;
}

void configuration::deploy(vm_id vm, host_id host, fraction cpu_cap) {
    MISTRAL_CHECK(vm.valid() && vm.index() < vms_.size());
    MISTRAL_CHECK(host.valid() && host.index() < hosts_on_.size());
    MISTRAL_CHECK(cpu_cap > 0.0 && cpu_cap <= 1.0);
    if (const auto& old = vms_[vm.index()]) {  // re-deploy moves the VM
        host_cap_milli_[old->host.index()] -= milli(old->cpu_cap);
        host_vm_count_[old->host.index()] -= 1;
        zobrist_ ^= placement_key(vm.index(), old->host.index(), milli(old->cpu_cap));
    }
    const fraction cap = round_cap(cpu_cap);
    vms_[vm.index()] = vm_placement{host, cap};
    host_cap_milli_[host.index()] += milli(cap);
    host_vm_count_[host.index()] += 1;
    zobrist_ ^= placement_key(vm.index(), host.index(), milli(cap));
}

void configuration::undeploy(vm_id vm) {
    MISTRAL_CHECK(vm.valid() && vm.index() < vms_.size());
    if (const auto& old = vms_[vm.index()]) {
        host_cap_milli_[old->host.index()] -= milli(old->cpu_cap);
        host_vm_count_[old->host.index()] -= 1;
        zobrist_ ^= placement_key(vm.index(), old->host.index(), milli(old->cpu_cap));
    }
    vms_[vm.index()].reset();
}

void configuration::set_cap(vm_id vm, fraction cpu_cap) {
    MISTRAL_CHECK(vm.valid() && vm.index() < vms_.size());
    MISTRAL_CHECK_MSG(vms_[vm.index()].has_value(), "set_cap on dormant " << vm);
    MISTRAL_CHECK(cpu_cap > 0.0 && cpu_cap <= 1.0);
    auto& p = *vms_[vm.index()];
    const fraction cap = round_cap(cpu_cap);
    host_cap_milli_[p.host.index()] += milli(cap) - milli(p.cpu_cap);
    zobrist_ ^= placement_key(vm.index(), p.host.index(), milli(p.cpu_cap)) ^
                placement_key(vm.index(), p.host.index(), milli(cap));
    p.cpu_cap = cap;
}

void configuration::set_host_power(host_id host, bool on) {
    MISTRAL_CHECK(host.valid() && host.index() < hosts_on_.size());
    // Toggle the key only on an actual transition: XOR-ing on every call
    // would corrupt the hash under idempotent writes.
    if (hosts_on_[host.index()] != on) zobrist_ ^= host_on_key(host.index());
    hosts_on_[host.index()] = on;
}

void configuration::set_host_failed(host_id host, bool failed) {
    MISTRAL_CHECK(host.valid() && host.index() < hosts_failed_.size());
    if (hosts_failed_[host.index()] != failed) {
        zobrist_ ^= host_failed_key(host.index());
    }
    hosts_failed_[host.index()] = failed;
    if (failed && hosts_on_[host.index()]) {
        zobrist_ ^= host_on_key(host.index());
        hosts_on_[host.index()] = false;
    }
}

std::uint64_t configuration::recompute_hash() const {
    std::uint64_t h = base_hash(vms_.size(), hosts_on_.size());
    for (std::size_t i = 0; i < vms_.size(); ++i) {
        if (const auto& p = vms_[i]) {
            h ^= placement_key(i, p->host.index(), milli(p->cpu_cap));
        }
    }
    for (std::size_t i = 0; i < hosts_on_.size(); ++i) {
        if (hosts_on_[i]) h ^= host_on_key(i);
    }
    // Failure keys fold in only for failed hosts, so a configuration whose
    // failure marks have all cleared hashes exactly like one that never
    // failed (the search's replay determinism relies on that).
    for (std::size_t i = 0; i < hosts_failed_.size(); ++i) {
        if (hosts_failed_[i]) h ^= host_failed_key(i);
    }
    return h;
}

std::string configuration::describe(const cluster_model& model) const {
    std::ostringstream os;
    for (std::size_t h = 0; h < hosts_on_.size(); ++h) {
        const host_id host{static_cast<std::int32_t>(h)};
        os << model.hosts()[h].name
           << (hosts_failed_[h] ? "[failed]" : (hosts_on_[h] ? "[on]" : "[off]"))
           << ":";
        bool first = true;
        for (std::size_t i = 0; i < vms_.size(); ++i) {
            if (vms_[i] && vms_[i]->host == host) {
                const auto& desc = model.vm(vm_id{static_cast<std::int32_t>(i)});
                const auto& app = model.app(desc.app);
                os << (first ? " " : ",") << app.name() << "/"
                   << app.tiers()[desc.tier].name << desc.replica_index << "@"
                   << static_cast<int>(std::round(vms_[i]->cpu_cap * 100.0)) << "%";
                first = false;
            }
        }
        if (first) os << " -";
        os << (h + 1 < hosts_on_.size() ? "  " : "");
    }
    return os.str();
}

namespace {

bool valid_impl(const cluster_model& model, const configuration& config,
                bool enforce_replica_minima, std::string* why) {
    auto fail = [&](const std::string& msg) {
        if (why) *why = msg;
        return false;
    };
    MISTRAL_CHECK(config.vm_count() == model.vm_count());
    MISTRAL_CHECK(config.host_count() == model.host_count());

    for (std::size_t h = 0; h < model.host_count(); ++h) {
        const host_id host{static_cast<std::int32_t>(h)};
        if (config.host_failed(host) && config.host_on(host)) {
            return fail("failed host powered on: " + model.hosts()[h].name);
        }
    }
    for (const auto& desc : model.vms()) {
        const auto& p = config.placement(desc.vm);
        if (!p) continue;
        if (!config.host_on(p->host)) {
            return fail("VM on powered-off host");
        }
        const auto& tier = model.tier_spec_of(desc.vm);
        if (p->cpu_cap < tier.min_cpu_cap - 1e-9 || p->cpu_cap > tier.max_cpu_cap + 1e-9) {
            return fail("cap outside tier window");
        }
    }
    // One pass over the VMs for every host's memory load (memory_sum per
    // host would rescan the whole inventory host_count times).
    std::vector<double> memory(model.host_count(), 0.0);
    for (const auto& desc : model.vms()) {
        const auto& p = config.placement(desc.vm);
        if (p) memory[p->host.index()] += desc.memory_mb;
    }
    for (std::size_t h = 0; h < model.host_count(); ++h) {
        const host_id host{static_cast<std::int32_t>(h)};
        if (static_cast<int>(config.vm_count_on(host)) >
            model.limits().max_vms_per_host) {
            return fail("too many VMs on " + model.hosts()[h].name);
        }
        const double available = model.hosts()[h].memory_mb - model.limits().dom0_memory_mb;
        if (memory[h] > available + 1e-9) {
            return fail("memory overcommitted on " + model.hosts()[h].name);
        }
    }
    if (enforce_replica_minima) {
        for (std::size_t a = 0; a < model.app_count(); ++a) {
            const app_id app{static_cast<std::int32_t>(a)};
            for (std::size_t t = 0; t < model.app(app).tier_count(); ++t) {
                int deployed = 0;
                for (vm_id vm : model.tier_vms(app, t)) {
                    deployed += config.deployed(vm) ? 1 : 0;
                }
                const auto& tier = model.app(app).tiers()[t];
                if (deployed < tier.min_replicas) {
                    return fail(model.app(app).name() + "/" + tier.name +
                                " below minimum replication");
                }
            }
        }
    }
    return true;
}

}  // namespace

bool structurally_valid(const cluster_model& model, const configuration& config,
                        std::string* why) {
    return valid_impl(model, config, /*enforce_replica_minima=*/true, why);
}

bool structurally_valid_degraded(const cluster_model& model,
                                 const configuration& config, std::string* why) {
    return valid_impl(model, config, /*enforce_replica_minima=*/false, why);
}

bool is_candidate(const cluster_model& model, const configuration& config,
                  std::string* why) {
    if (!structurally_valid(model, config, why)) return false;
    for (std::size_t h = 0; h < model.host_count(); ++h) {
        const host_id host{static_cast<std::int32_t>(h)};
        if (config.cap_sum(host) > model.limits().host_cpu_cap + 1e-9) {
            if (why) *why = "CPU overbooked on " + model.hosts()[h].name;
            return false;
        }
    }
    return true;
}

double cap_distance(const cluster_model& model, const configuration& a,
                    const configuration& b, const configuration& ideal) {
    // Weight each VM by its relative cap in the ideal configuration; dormant
    // VMs get a small floor weight so add/remove differences still register.
    double weight_sum = 0.0;
    std::vector<double> weights(model.vm_count(), 0.05);
    for (const auto& desc : model.vms()) {
        const auto& p = ideal.placement(desc.vm);
        if (p) weights[desc.vm.index()] = p->cpu_cap;
        weight_sum += weights[desc.vm.index()];
    }
    double sum = 0.0;
    for (const auto& desc : model.vms()) {
        const auto& pa = a.placement(desc.vm);
        const auto& pb = b.placement(desc.vm);
        const double ca = pa ? pa->cpu_cap : 0.0;
        const double cb = pb ? pb->cpu_cap : 0.0;
        sum += weights[desc.vm.index()] / weight_sum * (ca - cb) * (ca - cb);
    }
    return std::sqrt(sum);
}

double placement_distance(const cluster_model& model, const configuration& a,
                          const configuration& b) {
    if (model.vm_count() == 0) return 0.0;
    std::size_t same = 0;
    for (const auto& desc : model.vms()) {
        const auto& pa = a.placement(desc.vm);
        const auto& pb = b.placement(desc.vm);
        const bool identical = (!pa && !pb) || (pa && pb && pa->host == pb->host);
        same += identical ? 1 : 0;
    }
    return 1.0 - static_cast<double>(same) / static_cast<double>(model.vm_count());
}

}  // namespace mistral::cluster
