// Adaptation actions.
//
// Section III-C: "we consider six adaptation actions: increase/decrease a
// VM's CPU capacity by a fixed amount, addition/removal of a VM,
// live-migration of a VM between hosts, and shutting down/restarting
// physical hosts. Addition of a VM replica is implemented by migrating a
// dormant VM from a pool of VMs to the target host and activating it."
//
// Actions are a closed variant; `apply` is a pure function from
// configuration to configuration so the optimizer can expand search-graph
// edges without mutating shared state.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "cluster/configuration.h"
#include "cluster/model.h"

namespace mistral::cluster {

enum class action_kind {
    increase_cpu,
    decrease_cpu,
    add_replica,
    remove_replica,
    migrate,
    power_on,
    power_off,
};

[[nodiscard]] const char* to_string(action_kind kind);

struct increase_cpu {
    vm_id vm;
    friend bool operator==(const increase_cpu&, const increase_cpu&) = default;
};
struct decrease_cpu {
    vm_id vm;
    friend bool operator==(const decrease_cpu&, const decrease_cpu&) = default;
};
// Activates a dormant replica VM on `to` with cap `cpu_cap` (migration from
// the cold-store pool).
struct add_replica {
    vm_id vm;
    host_id to;
    fraction cpu_cap = 0.2;
    friend bool operator==(const add_replica&, const add_replica&) = default;
};
// Deactivates a deployed replica (migration back to the pool).
struct remove_replica {
    vm_id vm;
    friend bool operator==(const remove_replica&, const remove_replica&) = default;
};
struct migrate {
    vm_id vm;
    host_id to;
    friend bool operator==(const migrate&, const migrate&) = default;
};
struct power_on {
    host_id host;
    friend bool operator==(const power_on&, const power_on&) = default;
};
struct power_off {
    host_id host;
    friend bool operator==(const power_off&, const power_off&) = default;
};

using action = std::variant<increase_cpu, decrease_cpu, add_replica, remove_replica,
                            migrate, power_on, power_off>;

[[nodiscard]] action_kind kind_of(const action& a);

// "migrate vm3(RUBiS-1/db0) -> host2" style description.
[[nodiscard]] std::string to_string(const cluster_model& model, const action& a);

// True when `a` can legally fire from `config`; fills *why otherwise. Legal
// means the action's own preconditions hold and the result is structurally
// valid — the result may still be an *intermediate* (CPU-overbooked)
// configuration, which the search resolves with follow-up actions.
bool applicable(const cluster_model& model, const configuration& config,
                const action& a, std::string* why = nullptr);

// Applies `a` to `config`. Throws invariant_error when !applicable.
[[nodiscard]] configuration apply(const cluster_model& model,
                                  const configuration& config, const action& a);

// Which actions the optimizer may consider; levels of the controller
// hierarchy restrict this set (Section II-C).
struct action_menu {
    bool cpu_tuning = true;
    bool replication = true;
    bool migration = true;
    bool host_power = true;
};

// All applicable actions from `config`, filtered by `menu`. Symmetry
// reductions: only the lowest-index dormant replica of a tier is offered for
// add_replica and only the highest-index deployed one for remove_replica;
// only the first powered-off host is offered for power_on (hosts are
// interchangeable).
std::vector<action> enumerate_actions(const cluster_model& model,
                                      const configuration& config,
                                      const action_menu& menu = {});

}  // namespace mistral::cluster
