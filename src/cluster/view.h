// A host-subset lens over (cluster_model, configuration).
//
// Pod-sharded control (DESIGN.md §13) partitions the cluster into pods, each
// running its own self-aware controller over a *view*: the sub-cluster made
// of the pod's hosts and the applications assigned to it. A view owns a real
// `cluster_model` for that sub-cluster and the index maps between parent and
// local entity ids, so everything downstream — the A* search, the evaluation
// engine with its Zobrist-keyed memo, the planner, structural repair — runs
// unchanged on the local model. Local configurations are ordinary
// `cluster::configuration` values: the incremental Zobrist hash and the O(1)
// per-host aggregates hold per view by construction, not by re-derivation.
//
// The whole-cluster view is the *identity lens*: `local()` aliases the parent
// model itself (no copy), every id maps to itself, and projections return
// bit-identical values — which is what makes a single-pod controller
// provably byte-identical to the flat controller (pod_equivalence_test.cc).
//
// Invariant a view relies on (the pod coordinator maintains it): every
// deployed VM of a view application sits on a view host. `contains()` checks
// it; `project()` requires it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/action.h"
#include "cluster/configuration.h"
#include "cluster/model.h"
#include "common/ids.h"
#include "common/units.h"

namespace mistral::cluster {

class cluster_view {
public:
    // The identity lens: all hosts, all applications; local() is the parent.
    explicit cluster_view(const cluster_model& parent);

    // Sub-cluster lens over `hosts` and `apps` (parent indices; deduplicated
    // and sorted). Builds the local model from the parent's host and
    // application specs under the same cluster limits.
    cluster_view(const cluster_model& parent, std::vector<std::size_t> hosts,
                 std::vector<std::size_t> apps);

    [[nodiscard]] const cluster_model& parent() const { return *parent_; }
    [[nodiscard]] const cluster_model& local() const {
        return identity_ ? *parent_ : *local_;
    }
    [[nodiscard]] bool identity() const { return identity_; }

    [[nodiscard]] std::size_t host_count() const { return host_to_parent_.size(); }
    [[nodiscard]] std::size_t app_count() const { return app_to_parent_.size(); }
    [[nodiscard]] std::size_t vm_count() const { return vm_to_parent_.size(); }
    // Parent host indices of this view, sorted ascending.
    [[nodiscard]] const std::vector<std::size_t>& hosts() const {
        return host_to_parent_;
    }
    // Parent app indices of this view, sorted ascending.
    [[nodiscard]] const std::vector<std::size_t>& apps() const {
        return app_to_parent_;
    }

    // Id maps. to_local_* return an invalid id for entities outside the view.
    [[nodiscard]] host_id to_parent_host(host_id local) const;
    [[nodiscard]] host_id to_local_host(host_id parent) const;
    [[nodiscard]] app_id to_parent_app(app_id local) const;
    [[nodiscard]] app_id to_local_app(app_id parent) const;
    [[nodiscard]] vm_id to_parent_vm(vm_id local) const;
    [[nodiscard]] vm_id to_local_vm(vm_id parent) const;

    // True iff every deployed VM of a view application sits on a view host in
    // `global` (the containment invariant); fills *why on the first breach.
    [[nodiscard]] bool contains(const configuration& global,
                                std::string* why = nullptr) const;

    // Restriction of `global` to the view: view hosts' power/failure states
    // and view VMs' placements, re-indexed locally. Requires contains().
    // For the identity lens this is a bit-identical copy.
    [[nodiscard]] configuration project(const configuration& global) const;

    // Writes a local configuration back into `global`: view VMs are
    // redeployed per `local` and view hosts take `local`'s power/failure
    // states. Entities outside the view are untouched. project(lift_into(L))
    // == L for any local L.
    void lift_into(const configuration& local, configuration& global) const;

    // Re-indexes a local action to parent ids (always possible).
    [[nodiscard]] action lift_action(const action& local) const;
    // Re-indexes a parent action to local ids; nullopt when the action
    // touches any entity outside the view.
    [[nodiscard]] std::optional<action> project_action(const action& parent) const;

    // Per-app vector restriction (rates, response times, samples). Identity
    // lens: a bit-identical copy.
    template <class T>
    [[nodiscard]] std::vector<T> project_per_app(const std::vector<T>& xs) const {
        if (identity_) return xs;
        std::vector<T> out;
        out.reserve(app_to_parent_.size());
        for (const std::size_t a : app_to_parent_) out.push_back(xs[a]);
        return out;
    }

private:
    const cluster_model* parent_;
    std::shared_ptr<const cluster_model> local_;  // null for the identity lens
    bool identity_ = false;
    std::vector<std::size_t> host_to_parent_;
    std::vector<std::size_t> app_to_parent_;
    std::vector<std::size_t> vm_to_parent_;
    // Parent index → local index; -1 outside the view.
    std::vector<std::int32_t> host_to_local_;
    std::vector<std::int32_t> app_to_local_;
    std::vector<std::int32_t> vm_to_local_;
};

}  // namespace mistral::cluster
