// System configurations.
//
// Section II-A: "A system configuration is represented by the set of VMs in
// the system, the physical machine on which they are hosted, and the CPU
// fraction allocated to them." A configuration here is a value type over the
// cluster_model's VM inventory: each VM is either dormant (in the cold-store
// pool) or deployed on a host with a CPU cap, and each host is powered on or
// off. Configurations hash and compare so the A* search can deduplicate
// vertices (Section IV-B).
//
// Section IV-B also distinguishes *candidate* configurations (which satisfy
// the per-host packing constraint) from *intermediate* ones (which do not,
// e.g. after an Increase-CPU that overbooks a host pending a migration).
// `structurally_valid` captures the constraints that must hold even for
// intermediates (memory, replica minima, powered hosts); `is_candidate` adds
// the CPU packing constraint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/model.h"
#include "common/ids.h"
#include "common/units.h"

namespace mistral::cluster {

struct vm_placement {
    host_id host;
    fraction cpu_cap = 0.0;

    friend bool operator==(const vm_placement&, const vm_placement&) = default;
};

class configuration {
public:
    configuration() = default;
    configuration(std::size_t vm_count, std::size_t host_count);

    [[nodiscard]] std::size_t vm_count() const { return vms_.size(); }
    [[nodiscard]] std::size_t host_count() const { return hosts_on_.size(); }

    [[nodiscard]] bool deployed(vm_id vm) const;
    // Placement of a deployed VM; nullopt for dormant VMs.
    [[nodiscard]] const std::optional<vm_placement>& placement(vm_id vm) const;
    [[nodiscard]] bool host_on(host_id host) const;
    // A failed host has crashed (or been fenced): it is powered off and may
    // not be powered back on until the failure clears. Distinct from a
    // deliberate power-off, which power_on can always reverse.
    [[nodiscard]] bool host_failed(host_id host) const;
    [[nodiscard]] bool any_host_failed() const;

    [[nodiscard]] std::vector<vm_id> vms_on(host_id host) const;
    // Number of VMs deployed on `host`; O(1) from the incremental aggregates.
    [[nodiscard]] std::size_t vm_count_on(host_id host) const;
    [[nodiscard]] std::size_t active_host_count() const;
    [[nodiscard]] std::size_t deployed_vm_count() const;

    // Sum of deployed CPU caps on `host`. Caps are multiples of 1e-3, so the
    // sum is kept as an exact integer milli-cap count: O(1), no accumulation
    // order to worry about.
    [[nodiscard]] fraction cap_sum(host_id host) const;
    // Sum of deployed VM memory on `host` (the model supplies footprints).
    [[nodiscard]] double memory_sum(const cluster_model& model, host_id host) const;

    // Mutators round caps to 1e-3 so value equality is exact.
    void deploy(vm_id vm, host_id host, fraction cpu_cap);
    void undeploy(vm_id vm);
    void set_cap(vm_id vm, fraction cpu_cap);
    void set_host_power(host_id host, bool on);
    // Marking a host failed also forces it off (a crashed host draws no
    // power and hosts nothing); clearing the mark leaves it off until a
    // power_on action deliberately brings it back.
    void set_host_failed(host_id host, bool failed);

    // O(1): returns the incrementally maintained Zobrist hash. Every mutator
    // XORs the affected placement/power/failure keys in and out, so probing a
    // memo or vertex map never pays the O(VMs + hosts) key walk the A* search
    // used to rebuild on every generated child. `verify_hash()` (and the
    // debug assertion in cluster::apply) proves the incremental value equals
    // a from-scratch recompute.
    [[nodiscard]] std::size_t hash() const {
        return static_cast<std::size_t>(zobrist_);
    }
    // From-scratch recomputation of the incremental hash — the debug-build
    // invariant and the randomized hash tests compare against this.
    [[nodiscard]] std::uint64_t recompute_hash() const;
    // True when the incremental hash matches the from-scratch value.
    [[nodiscard]] bool verify_hash() const { return zobrist_ == recompute_hash(); }
    // Equality is over placements, host power, and failure marks; the
    // per-host aggregates are derived data.
    friend bool operator==(const configuration& a, const configuration& b) {
        return a.vms_ == b.vms_ && a.hosts_on_ == b.hosts_on_ &&
               a.hosts_failed_ == b.hosts_failed_;
    }

    // Human-readable one-line summary (placements + host states).
    [[nodiscard]] std::string describe(const cluster_model& model) const;

private:
    std::vector<std::optional<vm_placement>> vms_;
    std::vector<bool> hosts_on_;
    std::vector<bool> hosts_failed_;
    // Derived per-host aggregates, maintained by the mutators. Milli-caps are
    // exact integers (caps are rounded to 1e-3), so incremental updates can
    // never drift from a from-scratch sum.
    std::vector<std::int32_t> host_cap_milli_;
    std::vector<std::int32_t> host_vm_count_;
    // Incremental Zobrist hash: XOR of one pseudo-random 64-bit key per
    // (vm, host, milli-cap) placement, per powered-on host, and per failure
    // mark, over a size-derived base. XOR updates are self-inverse, so every
    // mutator maintains it in O(1) and a cleared failure mark restores the
    // exact healthy hash (the search's replay determinism relies on that).
    std::uint64_t zobrist_ = 0;
};

// Constraints that every configuration — candidate or intermediate — must
// satisfy: deployed VMs sit on powered-on hosts with enough memory and a free
// VM slot, caps lie inside the tier's [min, max] window, and every tier keeps
// at least its minimum replica count deployed. Returns false and fills *why
// (when non-null) on the first violation.
bool structurally_valid(const cluster_model& model, const configuration& config,
                        std::string* why = nullptr);

// Structural validity minus the replica-minimum floor: the state a cluster
// legitimately occupies right after a host crash killed some tier's replicas
// and before the controller has re-deployed them. Placement, memory, slot,
// power, and failure-mark constraints still hold; only the per-tier
// min_replicas requirement is waived.
bool structurally_valid_degraded(const cluster_model& model,
                                 const configuration& config,
                                 std::string* why = nullptr);

// A candidate additionally satisfies the packing constraint: the CPU caps on
// each host sum to at most limits().host_cpu_cap.
bool is_candidate(const cluster_model& model, const configuration& config,
                  std::string* why = nullptr);

// Weighted Euclidean distance between the CPU-cap vectors of `a` and `b`,
// with each VM weighted by its relative cap in `ideal` (Section IV-B's
// pruning metric: bigger VMs in the ideal configuration matter more).
double cap_distance(const cluster_model& model, const configuration& a,
                    const configuration& b, const configuration& ideal);

// Placement distance: fraction of VMs whose host differs between `a` and `b`
// (the paper counts identical locations and normalizes; this is 1 − that).
double placement_distance(const cluster_model& model, const configuration& a,
                          const configuration& b);

}  // namespace mistral::cluster

template <>
struct std::hash<mistral::cluster::configuration> {
    std::size_t operator()(const mistral::cluster::configuration& c) const noexcept {
        return c.hash();
    }
};
