#include "cluster/view.h"

#include <algorithm>

#include "common/check.h"

namespace mistral::cluster {

namespace {

std::vector<std::size_t> sorted_unique(std::vector<std::size_t> xs,
                                       std::size_t bound, const char* what) {
    std::sort(xs.begin(), xs.end());
    xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
    MISTRAL_CHECK_MSG(!xs.empty(), what);
    MISTRAL_CHECK_MSG(xs.back() < bound, what);
    return xs;
}

}  // namespace

cluster_view::cluster_view(const cluster_model& parent)
    : parent_(&parent), identity_(true) {
    host_to_parent_.resize(parent.host_count());
    app_to_parent_.resize(parent.app_count());
    vm_to_parent_.resize(parent.vm_count());
    for (std::size_t i = 0; i < host_to_parent_.size(); ++i) host_to_parent_[i] = i;
    for (std::size_t i = 0; i < app_to_parent_.size(); ++i) app_to_parent_[i] = i;
    for (std::size_t i = 0; i < vm_to_parent_.size(); ++i) vm_to_parent_[i] = i;
    host_to_local_.resize(parent.host_count());
    app_to_local_.resize(parent.app_count());
    vm_to_local_.resize(parent.vm_count());
    for (std::size_t i = 0; i < host_to_local_.size(); ++i)
        host_to_local_[i] = static_cast<std::int32_t>(i);
    for (std::size_t i = 0; i < app_to_local_.size(); ++i)
        app_to_local_[i] = static_cast<std::int32_t>(i);
    for (std::size_t i = 0; i < vm_to_local_.size(); ++i)
        vm_to_local_[i] = static_cast<std::int32_t>(i);
}

cluster_view::cluster_view(const cluster_model& parent,
                           std::vector<std::size_t> hosts,
                           std::vector<std::size_t> apps)
    : parent_(&parent),
      host_to_parent_(sorted_unique(std::move(hosts), parent.host_count(),
                                    "view hosts must be a non-empty subset")),
      app_to_parent_(sorted_unique(std::move(apps), parent.app_count(),
                                   "view apps must be a non-empty subset")) {
    std::vector<host_spec> local_hosts;
    local_hosts.reserve(host_to_parent_.size());
    for (const std::size_t h : host_to_parent_)
        local_hosts.push_back(parent.hosts()[h]);
    std::vector<apps::application_spec> local_apps;
    local_apps.reserve(app_to_parent_.size());
    for (const std::size_t a : app_to_parent_)
        local_apps.push_back(parent.applications()[a]);
    local_ = std::make_shared<cluster_model>(std::move(local_hosts),
                                             std::move(local_apps),
                                             parent.limits());

    host_to_local_.assign(parent.host_count(), -1);
    for (std::size_t i = 0; i < host_to_parent_.size(); ++i)
        host_to_local_[host_to_parent_[i]] = static_cast<std::int32_t>(i);
    app_to_local_.assign(parent.app_count(), -1);
    for (std::size_t i = 0; i < app_to_parent_.size(); ++i)
        app_to_local_[app_to_parent_[i]] = static_cast<std::int32_t>(i);

    // The local model builds its VM inventory in (app, tier, replica) order,
    // exactly the order this loop walks the parent's inventory restricted to
    // the view apps — so local vm ids come out sequential and the map is a
    // plain zip of the two inventories.
    vm_to_local_.assign(parent.vm_count(), -1);
    vm_to_parent_.reserve(local_->vm_count());
    for (std::size_t i = 0; i < app_to_parent_.size(); ++i) {
        const app_id pa{static_cast<std::int32_t>(app_to_parent_[i])};
        const auto& spec = parent.applications()[app_to_parent_[i]];
        for (std::size_t t = 0; t < spec.tier_count(); ++t) {
            for (const vm_id pv : parent.tier_vms(pa, t)) {
                vm_to_local_[pv.index()] =
                    static_cast<std::int32_t>(vm_to_parent_.size());
                vm_to_parent_.push_back(pv.index());
            }
        }
    }
    MISTRAL_CHECK(vm_to_parent_.size() == local_->vm_count());
    for (std::size_t lv = 0; lv < vm_to_parent_.size(); ++lv) {
        const auto& ld = local_->vm(vm_id{static_cast<std::int32_t>(lv)});
        const auto& pd = parent.vm(vm_id{static_cast<std::int32_t>(vm_to_parent_[lv])});
        MISTRAL_CHECK(ld.tier == pd.tier && ld.replica_index == pd.replica_index);
        MISTRAL_CHECK(app_to_parent_[ld.app.index()] == pd.app.index());
    }
}

host_id cluster_view::to_parent_host(host_id local) const {
    MISTRAL_CHECK(local.valid() && local.index() < host_to_parent_.size());
    return host_id{static_cast<std::int32_t>(host_to_parent_[local.index()])};
}

host_id cluster_view::to_local_host(host_id parent) const {
    if (!parent.valid() || parent.index() >= host_to_local_.size()) return host_id{};
    return host_id{host_to_local_[parent.index()]};
}

app_id cluster_view::to_parent_app(app_id local) const {
    MISTRAL_CHECK(local.valid() && local.index() < app_to_parent_.size());
    return app_id{static_cast<std::int32_t>(app_to_parent_[local.index()])};
}

app_id cluster_view::to_local_app(app_id parent) const {
    if (!parent.valid() || parent.index() >= app_to_local_.size()) return app_id{};
    return app_id{app_to_local_[parent.index()]};
}

vm_id cluster_view::to_parent_vm(vm_id local) const {
    MISTRAL_CHECK(local.valid() && local.index() < vm_to_parent_.size());
    return vm_id{static_cast<std::int32_t>(vm_to_parent_[local.index()])};
}

vm_id cluster_view::to_local_vm(vm_id parent) const {
    if (!parent.valid() || parent.index() >= vm_to_local_.size()) return vm_id{};
    return vm_id{vm_to_local_[parent.index()]};
}

bool cluster_view::contains(const configuration& global, std::string* why) const {
    MISTRAL_CHECK(global.vm_count() == parent_->vm_count());
    MISTRAL_CHECK(global.host_count() == parent_->host_count());
    for (const std::size_t pv : vm_to_parent_) {
        const vm_id vm{static_cast<std::int32_t>(pv)};
        const auto& p = global.placement(vm);
        if (!p) continue;
        if (!to_local_host(p->host).valid()) {
            if (why) {
                *why = "view vm " + std::to_string(pv) + " is deployed on host " +
                       std::to_string(p->host.value) + " outside the view";
            }
            return false;
        }
    }
    return true;
}

configuration cluster_view::project(const configuration& global) const {
    if (identity_) return global;
    std::string why;
    MISTRAL_CHECK_MSG(contains(global, &why), why.c_str());
    configuration local(local_->vm_count(), local_->host_count());
    for (std::size_t lh = 0; lh < host_to_parent_.size(); ++lh) {
        const host_id ph{static_cast<std::int32_t>(host_to_parent_[lh])};
        const host_id h{static_cast<std::int32_t>(lh)};
        if (global.host_on(ph)) local.set_host_power(h, true);
        if (global.host_failed(ph)) local.set_host_failed(h, true);
    }
    for (std::size_t lv = 0; lv < vm_to_parent_.size(); ++lv) {
        const vm_id pv{static_cast<std::int32_t>(vm_to_parent_[lv])};
        const auto& p = global.placement(pv);
        if (!p) continue;
        local.deploy(vm_id{static_cast<std::int32_t>(lv)}, to_local_host(p->host),
                     p->cpu_cap);
    }
    return local;
}

void cluster_view::lift_into(const configuration& local, configuration& global) const {
    MISTRAL_CHECK(global.vm_count() == parent_->vm_count());
    MISTRAL_CHECK(global.host_count() == parent_->host_count());
    if (identity_) {
        global = local;
        return;
    }
    MISTRAL_CHECK(local.vm_count() == local_->vm_count());
    MISTRAL_CHECK(local.host_count() == local_->host_count());
    // Undeploy first: a VM moving between view hosts must not transiently
    // double-count against the target host's aggregates.
    for (std::size_t lv = 0; lv < vm_to_parent_.size(); ++lv) {
        const vm_id pv{static_cast<std::int32_t>(vm_to_parent_[lv])};
        if (global.deployed(pv)) global.undeploy(pv);
    }
    for (std::size_t lh = 0; lh < host_to_parent_.size(); ++lh) {
        const host_id lhid{static_cast<std::int32_t>(lh)};
        const host_id ph{static_cast<std::int32_t>(host_to_parent_[lh])};
        if (global.host_failed(ph) != local.host_failed(lhid))
            global.set_host_failed(ph, local.host_failed(lhid));
        if (global.host_on(ph) != local.host_on(lhid))
            global.set_host_power(ph, local.host_on(lhid));
    }
    for (std::size_t lv = 0; lv < vm_to_parent_.size(); ++lv) {
        const vm_id lvid{static_cast<std::int32_t>(lv)};
        const auto& p = local.placement(lvid);
        if (!p) continue;
        global.deploy(to_parent_vm(lvid), to_parent_host(p->host), p->cpu_cap);
    }
}

action cluster_view::lift_action(const action& local) const {
    return std::visit(
        [this](const auto& a) -> action {
            using T = std::decay_t<decltype(a)>;
            if constexpr (std::is_same_v<T, increase_cpu> ||
                          std::is_same_v<T, decrease_cpu> ||
                          std::is_same_v<T, remove_replica>) {
                return T{to_parent_vm(a.vm)};
            } else if constexpr (std::is_same_v<T, add_replica>) {
                return add_replica{to_parent_vm(a.vm), to_parent_host(a.to),
                                   a.cpu_cap};
            } else if constexpr (std::is_same_v<T, migrate>) {
                return migrate{to_parent_vm(a.vm), to_parent_host(a.to)};
            } else {
                return T{to_parent_host(a.host)};
            }
        },
        local);
}

std::optional<action> cluster_view::project_action(const action& parent) const {
    return std::visit(
        [this](const auto& a) -> std::optional<action> {
            using T = std::decay_t<decltype(a)>;
            if constexpr (std::is_same_v<T, increase_cpu> ||
                          std::is_same_v<T, decrease_cpu> ||
                          std::is_same_v<T, remove_replica>) {
                const vm_id lv = to_local_vm(a.vm);
                if (!lv.valid()) return std::nullopt;
                return action{T{lv}};
            } else if constexpr (std::is_same_v<T, add_replica>) {
                const vm_id lv = to_local_vm(a.vm);
                const host_id lh = to_local_host(a.to);
                if (!lv.valid() || !lh.valid()) return std::nullopt;
                return action{add_replica{lv, lh, a.cpu_cap}};
            } else if constexpr (std::is_same_v<T, migrate>) {
                const vm_id lv = to_local_vm(a.vm);
                const host_id lh = to_local_host(a.to);
                if (!lv.valid() || !lh.valid()) return std::nullopt;
                return action{migrate{lv, lh}};
            } else {
                const host_id lh = to_local_host(a.host);
                if (!lh.valid()) return std::nullopt;
                return action{T{lh}};
            }
        },
        parent);
}

}  // namespace mistral::cluster
