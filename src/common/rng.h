// Deterministic pseudo-random number generation.
//
// Every stochastic element of the reproduction (trace noise, random VM
// placements in the offline cost campaign, measurement noise in the testbed
// simulator) draws from an explicitly seeded xoshiro256** stream so that
// tests and benches replay bit-identically. Streams can be forked so that
// adding a consumer does not perturb unrelated draws.
#pragma once

#include <array>
#include <cstdint>

namespace mistral {

class rng {
public:
    // Seeds the four 64-bit words of state from a single seed via splitmix64.
    explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    // Next raw 64-bit draw (xoshiro256**).
    std::uint64_t next_u64();

    // Uniform in [0, 1).
    double uniform();

    // Uniform in [lo, hi).
    double uniform(double lo, double hi);

    // Uniform integer in [0, n). Requires n > 0.
    std::uint64_t uniform_index(std::uint64_t n);

    // Standard normal via Marsaglia polar method.
    double normal();

    // Normal with given mean and standard deviation.
    double normal(double mean, double stddev);

    // An independent generator derived from this one's stream; advancing the
    // child never affects the parent and vice versa.
    rng fork();

    // Fisher–Yates shuffle of a random-access container.
    template <class Container>
    void shuffle(Container& c) {
        for (std::size_t i = c.size(); i > 1; --i) {
            const auto j = uniform_index(i);
            using std::swap;
            swap(c[i - 1], c[j]);
        }
    }

private:
    std::array<std::uint64_t, 4> state_{};
    bool have_spare_normal_ = false;
    double spare_normal_ = 0.0;
};

}  // namespace mistral
