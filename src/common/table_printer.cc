#include "common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace mistral {

table_printer::table_printer(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    MISTRAL_CHECK(!headers_.empty());
}

void table_printer::add_row(std::vector<std::string> cells) {
    MISTRAL_CHECK_MSG(cells.size() == headers_.size(),
                      "row has " << cells.size() << " cells, expected " << headers_.size());
    rows_.push_back(std::move(cells));
}

std::string table_printer::fmt(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

void table_printer::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto print_line = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
               << cells[c];
        }
        os << '\n';
    };
    print_line(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        if (c) rule += "  ";
        rule += std::string(widths[c], '-');
    }
    os << rule << '\n';
    for (const auto& row : rows_) print_line(row);
}

}  // namespace mistral
