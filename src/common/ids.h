// Strong identifier types for the entities Mistral manages.
//
// Hosts, VMs, applications, and tiers are all indexed by small integers in
// the simulator and in configurations; wrapping them in distinct types makes
// it impossible to pass a host index where a VM index is expected.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace mistral {

// A type-tagged integer id. `Tag` is a phantom type; `prefix()` on the tag
// supplies the letter used when printing (h0, vm3, app1, t2).
template <class Tag>
struct id {
    std::int32_t value = -1;

    constexpr id() = default;
    constexpr explicit id(std::int32_t v) : value(v) {}

    [[nodiscard]] constexpr bool valid() const { return value >= 0; }
    [[nodiscard]] constexpr std::size_t index() const { return static_cast<std::size_t>(value); }

    friend constexpr auto operator<=>(id, id) = default;
};

template <class Tag>
std::ostream& operator<<(std::ostream& os, id<Tag> x) {
    return os << Tag::prefix() << x.value;
}

struct host_tag { static constexpr const char* prefix() { return "h"; } };
struct vm_tag   { static constexpr const char* prefix() { return "vm"; } };
struct app_tag  { static constexpr const char* prefix() { return "app"; } };
struct tier_tag { static constexpr const char* prefix() { return "t"; } };

using host_id = id<host_tag>;
using vm_id = id<vm_tag>;
using app_id = id<app_tag>;
using tier_id = id<tier_tag>;

}  // namespace mistral

template <class Tag>
struct std::hash<mistral::id<Tag>> {
    std::size_t operator()(mistral::id<Tag> x) const noexcept {
        return std::hash<std::int32_t>{}(x.value);
    }
};
