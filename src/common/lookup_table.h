// One-dimensional keyed lookup tables with interpolation.
//
// The paper's Cost Manager stores offline-measured adaptation costs "in a
// cost table indexed by the workload" and, at runtime, "looks up the cost
// table entry with the closest workload" (Section III-C). `lookup_table`
// implements exactly that access pattern, plus linear interpolation for the
// model-calibration paths where smoothness matters.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace mistral {

class lookup_table {
public:
    lookup_table() = default;

    // Inserts or replaces the value at `key`. Keys are kept sorted.
    void insert(double key, double value);

    [[nodiscard]] bool empty() const { return points_.empty(); }
    [[nodiscard]] std::size_t size() const { return points_.size(); }

    // Value at the key closest to `key` (the paper's runtime lookup rule).
    // Requires a non-empty table.
    [[nodiscard]] double nearest(double key) const;

    // Piecewise-linear interpolation, clamped to the table's key range.
    // Requires a non-empty table.
    [[nodiscard]] double interpolate(double key) const;

    // The key in the table closest to `key`. Requires a non-empty table.
    [[nodiscard]] double nearest_key(double key) const;

    [[nodiscard]] const std::vector<std::pair<double, double>>& points() const {
        return points_;
    }

private:
    // Sorted by key.
    std::vector<std::pair<double, double>> points_;

    [[nodiscard]] std::size_t nearest_index(double key) const;
};

}  // namespace mistral
