#include "common/lookup_table.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mistral {

void lookup_table::insert(double key, double value) {
    auto it = std::lower_bound(points_.begin(), points_.end(), key,
                               [](const auto& p, double k) { return p.first < k; });
    if (it != points_.end() && it->first == key) {
        it->second = value;
    } else {
        points_.insert(it, {key, value});
    }
}

std::size_t lookup_table::nearest_index(double key) const {
    MISTRAL_CHECK(!points_.empty());
    auto it = std::lower_bound(points_.begin(), points_.end(), key,
                               [](const auto& p, double k) { return p.first < k; });
    if (it == points_.begin()) return 0;
    if (it == points_.end()) return points_.size() - 1;
    const auto hi = static_cast<std::size_t>(it - points_.begin());
    const auto lo = hi - 1;
    return (key - points_[lo].first) <= (points_[hi].first - key) ? lo : hi;
}

double lookup_table::nearest(double key) const { return points_[nearest_index(key)].second; }

double lookup_table::nearest_key(double key) const { return points_[nearest_index(key)].first; }

double lookup_table::interpolate(double key) const {
    MISTRAL_CHECK(!points_.empty());
    if (key <= points_.front().first) return points_.front().second;
    if (key >= points_.back().first) return points_.back().second;
    auto it = std::lower_bound(points_.begin(), points_.end(), key,
                               [](const auto& p, double k) { return p.first < k; });
    const auto& hi = *it;
    const auto& lo = *(it - 1);
    const double span = hi.first - lo.first;
    if (span <= 0.0) return lo.second;
    const double frac = (key - lo.first) / span;
    return lo.second * (1.0 - frac) + hi.second * frac;
}

}  // namespace mistral
