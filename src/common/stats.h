// Descriptive statistics and small fitting utilities.
//
// Used for model calibration (least-squares fit of the power-model exponent),
// accuracy reporting (MAPE/RMSE between model and testbed), and the summary
// rows printed by the bench harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mistral {

// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

// Population variance and standard deviation; 0 for fewer than two samples.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double percentile(std::span<const double> xs, double p);

// Root-mean-square error between two equally sized series.
double rmse(std::span<const double> a, std::span<const double> b);

// Mean absolute percentage error of `model` against `truth`, in percent.
// Entries where |truth| < eps are skipped to avoid division blow-ups.
double mape_percent(std::span<const double> truth, std::span<const double> model,
                    double eps = 1e-9);

// Least-squares straight line y = slope * x + intercept.
struct linear_fit_result {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;
};
linear_fit_result linear_fit(std::span<const double> xs, std::span<const double> ys);

// Minimizes a unimodal function on [lo, hi] by golden-section search.
// `tolerance` is the final bracket width. Returns the argmin.
template <class F>
double golden_section_minimize(F&& f, double lo, double hi, double tolerance = 1e-6) {
    constexpr double inv_phi = 0.6180339887498949;
    double a = lo, b = hi;
    double c = b - (b - a) * inv_phi;
    double d = a + (b - a) * inv_phi;
    double fc = f(c), fd = f(d);
    while (b - a > tolerance) {
        if (fc < fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * inv_phi;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * inv_phi;
            fd = f(d);
        }
    }
    return 0.5 * (a + b);
}

// Online accumulator for mean/variance/min/max (Welford's algorithm).
class running_stats {
public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return min_; }
    [[nodiscard]] double max() const { return max_; }
    [[nodiscard]] double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace mistral
