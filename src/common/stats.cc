#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace mistral {

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double sum = 0.0;
    for (double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double sum = 0.0;
    for (double x : xs) sum += (x - m) * (x - m);
    return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
    MISTRAL_CHECK(!xs.empty());
    return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
    MISTRAL_CHECK(!xs.empty());
    return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
    MISTRAL_CHECK(!xs.empty());
    MISTRAL_CHECK(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double rmse(std::span<const double> a, std::span<const double> b) {
    MISTRAL_CHECK(a.size() == b.size());
    if (a.empty()) return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        sum += d * d;
    }
    return std::sqrt(sum / static_cast<double>(a.size()));
}

double mape_percent(std::span<const double> truth, std::span<const double> model,
                    double eps) {
    MISTRAL_CHECK(truth.size() == model.size());
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        if (std::abs(truth[i]) < eps) continue;
        sum += std::abs((model[i] - truth[i]) / truth[i]);
        ++n;
    }
    return n ? 100.0 * sum / static_cast<double>(n) : 0.0;
}

linear_fit_result linear_fit(std::span<const double> xs, std::span<const double> ys) {
    MISTRAL_CHECK(xs.size() == ys.size());
    MISTRAL_CHECK(xs.size() >= 2);
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sxx += (xs[i] - mx) * (xs[i] - mx);
        sxy += (xs[i] - mx) * (ys[i] - my);
        syy += (ys[i] - my) * (ys[i] - my);
    }
    linear_fit_result out;
    out.slope = sxx > 0.0 ? sxy / sxx : 0.0;
    out.intercept = my - out.slope * mx;
    out.r_squared = (sxx > 0.0 && syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
    return out;
}

void running_stats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double running_stats::variance() const {
    return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double running_stats::stddev() const { return std::sqrt(variance()); }

}  // namespace mistral
