#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace mistral {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

rng::rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t rng::next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double rng::uniform() {
    // 53 high bits → uniform double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) {
    MISTRAL_CHECK(lo <= hi);
    return lo + (hi - lo) * uniform();
}

std::uint64_t rng::uniform_index(std::uint64_t n) {
    MISTRAL_CHECK(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = n * (~0ULL / n);
    std::uint64_t draw;
    do {
        draw = next_u64();
    } while (draw >= limit);
    return draw % n;
}

double rng::normal() {
    if (have_spare_normal_) {
        have_spare_normal_ = false;
        return spare_normal_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_normal_ = v * factor;
    have_spare_normal_ = true;
    return u * factor;
}

double rng::normal(double mean, double stddev) {
    MISTRAL_CHECK(stddev >= 0.0);
    return mean + stddev * normal();
}

rng rng::fork() {
    rng child(0);
    // Re-seed from two draws so the child stream is decorrelated.
    std::uint64_t s = next_u64() ^ rotl(next_u64(), 33);
    for (auto& word : child.state_) word = splitmix64(s);
    return child;
}

}  // namespace mistral
