// Unit aliases and shared numeric constants.
//
// All times in the library are in seconds unless a name says otherwise; all
// power in watts; all money in dollars. Plain double aliases (rather than
// full dimensional types) keep the arithmetic in the utility equations
// readable while the names document intent at API boundaries.
#pragma once

namespace mistral {

using seconds = double;      // durations and simulation timestamps
using watts = double;        // instantaneous power draw
using dollars = double;      // utility is accounted in dollars
using req_per_sec = double;  // request arrival rate (the paper's workload unit)
using fraction = double;     // value in [0, 1] (CPU caps, utilizations)

// The paper's monitoring interval M: 2 minutes (Section V-A).
inline constexpr seconds default_monitoring_interval = 120.0;

// Cost per watt consumed over one monitoring interval: $0.01 (Section V-A).
inline constexpr dollars default_power_cost_per_watt_interval = 0.01;

}  // namespace mistral
