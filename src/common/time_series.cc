#include "common/time_series.h"

#include <algorithm>
#include <iomanip>
#include <map>

namespace mistral {

std::vector<double> time_series::values() const {
    std::vector<double> out;
    out.reserve(samples_.size());
    for (const auto& s : samples_) out.push_back(s.value);
    return out;
}

std::vector<double> time_series::times() const {
    std::vector<double> out;
    out.reserve(samples_.size());
    for (const auto& s : samples_) out.push_back(s.time);
    return out;
}

std::optional<double> time_series::value_at(double time) const {
    std::optional<double> out;
    for (const auto& s : samples_) {
        if (s.time <= time) out = s.value;
        else break;
    }
    return out;
}

double time_series::integrate() const {
    double total = 0.0;
    for (std::size_t i = 1; i < samples_.size(); ++i) {
        const double dt = samples_[i].time - samples_[i - 1].time;
        total += 0.5 * (samples_[i].value + samples_[i - 1].value) * dt;
    }
    return total;
}

time_series& series_bundle::series(const std::string& name) {
    for (auto& s : series_) {
        if (s.name() == name) return s;
    }
    series_.emplace_back(name);
    return series_.back();
}

const time_series* series_bundle::find(const std::string& name) const {
    for (const auto& s : series_) {
        if (s.name() == name) return &s;
    }
    return nullptr;
}

void series_bundle::print(std::ostream& os, int width, int precision) const {
    // Collect the union of timestamps, then the value of each series at each.
    std::map<double, std::vector<std::optional<double>>> rows;
    for (std::size_t i = 0; i < series_.size(); ++i) {
        for (const auto& s : series_[i].samples()) {
            auto& row = rows[s.time];
            row.resize(series_.size());
            row[i] = s.value;
        }
    }
    os << std::setw(width) << "time";
    for (const auto& s : series_) os << std::setw(width) << s.name();
    os << '\n';
    const auto old_flags = os.flags();
    const auto old_precision = os.precision();
    os << std::fixed << std::setprecision(precision);
    for (const auto& [t, row] : rows) {
        os << std::setw(width) << t;
        for (std::size_t i = 0; i < series_.size(); ++i) {
            if (i < row.size() && row[i].has_value()) {
                os << std::setw(width) << *row[i];
            } else {
                os << std::setw(width) << "-";
            }
        }
        os << '\n';
    }
    os.flags(old_flags);
    os.precision(old_precision);
}

void series_bundle::print_csv(std::ostream& os) const {
    std::map<double, std::vector<std::optional<double>>> rows;
    for (std::size_t i = 0; i < series_.size(); ++i) {
        for (const auto& s : series_[i].samples()) {
            auto& row = rows[s.time];
            row.resize(series_.size());
            row[i] = s.value;
        }
    }
    os << "time";
    for (const auto& s : series_) os << ',' << s.name();
    os << '\n';
    for (const auto& [t, row] : rows) {
        os << t;
        for (std::size_t i = 0; i < series_.size(); ++i) {
            os << ',';
            if (i < row.size() && row[i].has_value()) os << *row[i];
        }
        os << '\n';
    }
}

}  // namespace mistral
