// Aligned console tables for bench output.
//
// The bench harnesses reproduce the paper's tables (e.g. Table I) as plain
// text; this printer right-aligns numeric cells and left-aligns text so rows
// stay readable at a glance.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace mistral {

class table_printer {
public:
    // Column headers define the column count; later rows must match it.
    explicit table_printer(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    // Convenience: formats doubles with the given precision.
    static std::string fmt(double value, int precision = 1);

    void print(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace mistral
