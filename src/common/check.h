// Invariant checking that is always on.
//
// The controllers make economic decisions from model outputs; a silently
// out-of-range utilization or a VM placed on a powered-off host corrupts
// every downstream number, so precondition violations throw rather than
// being compiled away in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mistral {

class invariant_error : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& message) {
    std::ostringstream os;
    os << "invariant failed: " << expr << " at " << file << ':' << line;
    if (!message.empty()) os << " — " << message;
    throw invariant_error(os.str());
}
}  // namespace detail

}  // namespace mistral

#define MISTRAL_CHECK(expr)                                                        \
    do {                                                                           \
        if (!(expr)) ::mistral::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
    } while (false)

#define MISTRAL_CHECK_MSG(expr, msg)                                               \
    do {                                                                           \
        if (!(expr)) {                                                             \
            std::ostringstream os_;                                                \
            os_ << msg;                                                            \
            ::mistral::detail::check_failed(#expr, __FILE__, __LINE__, os_.str()); \
        }                                                                          \
    } while (false)
