// Timestamped metric recording for experiments.
//
// Every bench regenerating a paper figure records (time, value) samples into
// named series and dumps them as aligned columns (one row per timestamp) so
// the output can be eyeballed or piped into a plotting tool.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace mistral {

struct time_point_sample {
    double time = 0.0;
    double value = 0.0;
};

class time_series {
public:
    time_series() = default;
    explicit time_series(std::string name) : name_(std::move(name)) {}

    void add(double time, double value) { samples_.push_back({time, value}); }

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::vector<time_point_sample>& samples() const { return samples_; }
    [[nodiscard]] bool empty() const { return samples_.empty(); }
    [[nodiscard]] std::size_t size() const { return samples_.size(); }

    // Values only, in insertion order.
    [[nodiscard]] std::vector<double> values() const;
    // Timestamps only, in insertion order.
    [[nodiscard]] std::vector<double> times() const;

    // Value at the latest sample with sample.time <= time, if any.
    [[nodiscard]] std::optional<double> value_at(double time) const;

    // Trapezoidal integral of value over time (e.g. watts → joules).
    [[nodiscard]] double integrate() const;

private:
    std::string name_;
    std::vector<time_point_sample> samples_;
};

// A bundle of series sharing (approximately) the same time base. Series
// references returned by series() remain valid as the bundle grows (deque
// storage), so callers may cache them.
class series_bundle {
public:
    // Returns the series with `name`, creating it if absent.
    time_series& series(const std::string& name);
    [[nodiscard]] const time_series* find(const std::string& name) const;

    [[nodiscard]] const std::deque<time_series>& all() const { return series_; }

    // Writes a column-aligned table: time column, then one column per series.
    // Rows are the union of all timestamps; missing values print as "-".
    void print(std::ostream& os, int width = 12, int precision = 2) const;

    // Same content, comma-separated (for machine consumption).
    void print_csv(std::ostream& os) const;

private:
    std::deque<time_series> series_;
};

}  // namespace mistral
