#include "core/search.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>

#include "cluster/translate.h"
#include "common/check.h"
#include "core/planner.h"
#include "obs/journal.h"
#include "obs/profile.h"

namespace mistral::core {

namespace {

using cluster::action;
using cluster::configuration;

// The evaluation engine inherits the search's observability sink unless the
// caller wired a different one explicitly.
search_options inherit_eval_sink(search_options options) {
    if (options.evaluation.sink == nullptr) {
        options.evaluation.sink = options.sink;
    }
    return options;
}

struct vertex {
    configuration config;
    int parent = -1;
    std::optional<action> via;   // edge from parent (nullopt for the root)
    dollars accrued = 0.0;       // Σ d(a)·transient-rate along the path
    seconds duration = 0.0;      // Σ d(a)
    int depth = 0;               // actions on the path
    double utility = 0.0;        // Algorithm 1's vertex utility (avg rate)
    bool terminal = false;       // reached via the "null" edge
};

// VM the action touches; invalid id for host power actions.
vm_id touched_vm(const action& a) {
    return std::visit(
        [](const auto& x) -> vm_id {
            using T = std::decay_t<decltype(x)>;
            if constexpr (std::is_same_v<T, cluster::power_on> ||
                          std::is_same_v<T, cluster::power_off>) {
                return vm_id{};
            } else {
                return x.vm;
            }
        },
        a);
}

// Hosts whose applications feel the action's transient.
std::vector<host_id> affected_hosts(const configuration& config, const action& a) {
    std::vector<host_id> out;
    std::visit(
        [&](const auto& x) {
            using T = std::decay_t<decltype(x)>;
            if constexpr (std::is_same_v<T, cluster::migrate>) {
                out = {config.placement(x.vm)->host, x.to};
            } else if constexpr (std::is_same_v<T, cluster::add_replica>) {
                out = {x.to};
            } else if constexpr (std::is_same_v<T, cluster::remove_replica> ||
                                 std::is_same_v<T, cluster::increase_cpu> ||
                                 std::is_same_v<T, cluster::decrease_cpu>) {
                out = {config.placement(x.vm)->host};
            }
            // Power cycling affects no running application (Section V-B).
        },
        a);
    return out;
}

}  // namespace

adaptation_search::adaptation_search(const cluster::cluster_model& model,
                                     utility_model utility, cost::cost_table costs,
                                     search_options options)
    : adaptation_search(model, utility, std::move(costs),
                        inherit_eval_sink(std::move(options)), nullptr) {}

adaptation_search::adaptation_search(const cluster::cluster_model& model,
                                     utility_model utility, cost::cost_table costs,
                                     search_options options,
                                     std::shared_ptr<utility_evaluator> evaluator)
    : model_(&model),
      utility_(utility),
      costs_(std::move(costs)),
      options_(std::move(options)),
      evaluator_(evaluator
                     ? std::move(evaluator)
                     : make_evaluator(model, utility, options_.lqn,
                                      options_.evaluation)),
      perf_pwr_(model, utility,
                {.lqn = options_.lqn, .app_hosts = options_.app_hosts},
                evaluator_) {
    MISTRAL_CHECK(options_.prune_keep_fraction > 0.0 &&
                  options_.prune_keep_fraction <= 1.0);
    MISTRAL_CHECK(options_.delay_threshold_fraction > 0.0);
    MISTRAL_CHECK(options_.max_expansions >= 1);
    MISTRAL_CHECK(options_.stop_factor >= 1.0);
    MISTRAL_CHECK(options_.max_plan_actions >= 1);
    MISTRAL_CHECK(options_.per_action_overhead >= 0.0);
    MISTRAL_CHECK(options_.power_cap > 0.0);
    if (!options_.app_hosts.empty()) {
        MISTRAL_CHECK(options_.app_hosts.size() == model.app_count());
        for (const auto& row : options_.app_hosts) {
            MISTRAL_CHECK(row.size() == model.host_count());
        }
    }
    if (!options_.host_scope.empty()) {
        MISTRAL_CHECK(options_.host_scope.size() == model.host_count());
    }
    if (auto* reg = obs::metrics_of(options_.sink)) {
        obs_expansions_ = reg->register_counter(
            "mistral_search_expansions_total",
            "A* vertices expanded across all decisions");
        obs_generated_ = reg->register_counter(
            "mistral_search_generated_total",
            "A* children generated across all decisions");
        obs_duration_ = reg->register_histogram(
            "mistral_search_duration_seconds",
            {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0},
            "Meter-elapsed duration of each adaptation search");
    }
}

void adaptation_search::set_power_cap(watts cap) {
    MISTRAL_CHECK(cap > 0.0);
    options_.power_cap = cap;
}

search_result adaptation_search::find(const configuration& current,
                                      const std::vector<req_per_sec>& rates,
                                      seconds cw, dollars expected_utility,
                                      search_meter& meter, seconds now) const {
    const auto& model = *model_;
    MISTRAL_CHECK(rates.size() == model.app_count());
    MISTRAL_CHECK(cw > 0.0);
    meter.begin();

    auto& engine = *evaluator_;
    engine.begin_decision(rates);
    const auto& targets = engine.targets();
    const evaluation_stats stats0 = engine.stats();

    // $/s drawn by one busy search worker, in utility units.
    const double search_cost_rate =
        -utility_.power_rate(meter.search_power());  // ≥ 0

    search_result stay;
    stay.target = current;

    // Per-decision profile: per-depth expansion/meter-time attribution plus
    // the budget and memo state at finish. Entirely skipped (one branch per
    // expansion) when no journaling sink is attached.
    const bool profiling = obs::journaling(options_.sink);
    obs::search_profile prof;
    int prof_pending_depth = -1;   // depth whose meter span is still open
    seconds prof_span_start = 0.0;
    auto note_depth = [&](int depth, double expanded, seconds spent) {
        const auto d = static_cast<std::size_t>(depth);
        if (prof.depth_expansions.size() <= d) {
            prof.depth_expansions.resize(d + 1, 0.0);
            prof.depth_meter_time.resize(d + 1, 0.0);
        }
        prof.depth_expansions[d] += expanded;
        prof.depth_meter_time[d] += spent;
    };
    auto emit_profile = [&](const search_result& r) {
        obs_duration_.observe(r.stats.duration);
        if (!profiling) return;
        if (prof_pending_depth >= 0) {
            note_depth(prof_pending_depth, 1.0,
                       meter.elapsed() - prof_span_start);
            prof_pending_depth = -1;
        }
        prof.control_window = cw;
        prof.budget = expected_utility;
        prof.duration = r.stats.duration;
        prof.active_seconds = meter.active_seconds();
        prof.power_cost = r.stats.search_power_cost;
        prof.expansions = static_cast<std::int64_t>(r.stats.expansions);
        prof.generated = static_cast<std::int64_t>(r.stats.generated);
        prof.pruned = r.stats.pruned;
        prof.eval_hits = static_cast<std::int64_t>(r.stats.eval_cache_hits);
        prof.eval_misses = static_cast<std::int64_t>(r.stats.eval_cache_misses);
        prof.meter = meter.kind();
        prof.plan_actions = static_cast<std::int64_t>(r.actions.size());
        prof.expected_utility = r.expected_utility;
        prof.ideal_utility = r.ideal_utility;
        options_.sink->record(prof.to_event(now));
    };

    // A degraded configuration (a host crash left a tier under its replica
    // minimum) cannot be evaluated by the steady-state engine; the
    // controller's reconciliation repairs it before the optimizer runs again.
    if (!cluster::structurally_valid(model, current)) {
        stay.stats.duration = meter.elapsed();
        stay.stats.search_power_cost = meter.active_seconds() * search_cost_rate;
        emit_profile(stay);
        return stay;
    }

    const auto ideal = perf_pwr_.optimize(rates, &current);
    stay.ideal_utility = ideal.feasible ? ideal.utility_rate * cw : 0.0;
    if (!ideal.feasible || ideal.ideal == current) {
        stay.stats.duration = meter.elapsed();
        stay.stats.search_power_cost = meter.active_seconds() * search_cost_rate;
        emit_profile(stay);
        return stay;
    }
    const double ideal_rate = ideal.utility_rate;

    // app × host occupancy bitmap of a configuration: occ[s·H + h] is nonzero
    // iff application s has a deployed VM on host h. Computed once per
    // expansion so the transient colocation test below is O(|touched|)
    // instead of a VM-inventory scan per (child, app).
    const std::size_t host_count = model.host_count();
    auto occupancy = [&](const configuration& c) {
        std::vector<std::uint8_t> occ(model.app_count() * host_count, 0);
        for (const auto& desc : model.vms()) {
            const auto& p = c.placement(desc.vm);
            if (p) occ[desc.app.index() * host_count + p->host.index()] = 1;
        }
        return occ;
    };

    // Transient accrual rate while `a` executes in configuration `c`, with
    // `occ` = occupancy(c).
    auto transient_rate = [&](const configuration& c,
                              const std::vector<std::uint8_t>& occ,
                              const steady_utility& ce, const action& a,
                              const cost::cost_entry& entry) -> double {
        const vm_id vm = touched_vm(a);
        const auto touched = affected_hosts(c, a);
        double rate = utility_.power_rate(std::max(0.0, ce.power + entry.delta_power));
        for (std::size_t s = 0; s < model.app_count(); ++s) {
            seconds rt = ce.response_times[s];
            if (vm.valid() && model.vm(vm).app.index() == s) {
                rt += entry.delta_rt_target;
            } else if (!touched.empty()) {
                // Co-located applications: any VM on an affected host.
                bool colocated = false;
                for (const host_id h : touched) {
                    if (occ[s * host_count + h.index()] != 0) {
                        colocated = true;
                        break;
                    }
                }
                if (colocated) rt += entry.delta_rt_colocated;
            }
            rate += utility_.perf_rate(rates[s], rt, targets[s]);
        }
        return rate;
    };

    // Pruning distance to the ideal configuration, with cap_distance's
    // ideal-derived VM weights hoisted: they depend only on `ideal`, so
    // computing them per child (as the free function does) repeats identical
    // work thousands of times per decision. Same accumulation order, so the
    // result is bit-identical to cap_distance + placement_distance.
    std::vector<double> prune_weights(model.vm_count(), 0.05);
    double prune_weight_sum = 0.0;
    for (const auto& desc : model.vms()) {
        const auto& p = ideal.ideal.placement(desc.vm);
        if (p) prune_weights[desc.vm.index()] = p->cpu_cap;
        prune_weight_sum += prune_weights[desc.vm.index()];
    }
    auto prune_distance = [&](const configuration& c) -> double {
        double sum = 0.0;
        std::size_t same = 0;
        for (const auto& desc : model.vms()) {
            const auto& pa = c.placement(desc.vm);
            const auto& pb = ideal.ideal.placement(desc.vm);
            const double ca = pa ? pa->cpu_cap : 0.0;
            const double cb = pb ? pb->cpu_cap : 0.0;
            sum += prune_weights[desc.vm.index()] / prune_weight_sum *
                   (ca - cb) * (ca - cb);
            same += ((!pa && !pb) || (pa && pb && pa->host == pb->host)) ? 1 : 0;
        }
        return std::sqrt(sum) +
               (1.0 - static_cast<double>(same) /
                          static_cast<double>(model.vm_count()));
    };

    auto allowed = [&](const configuration& c, const action& a) -> bool {
        if (!options_.app_hosts.empty()) {
            const bool pool_ok = std::visit(
                [&](const auto& x) -> bool {
                    using T = std::decay_t<decltype(x)>;
                    if constexpr (std::is_same_v<T, cluster::migrate> ||
                                  std::is_same_v<T, cluster::add_replica>) {
                        const auto app = model.vm(x.vm).app;
                        return options_.app_hosts[app.index()][x.to.index()];
                    } else {
                        return true;
                    }
                },
                a);
            if (!pool_ok) return false;
        }
        if (!options_.host_scope.empty()) {
            const auto& scope = options_.host_scope;
            const bool scope_ok = std::visit(
                [&](const auto& x) -> bool {
                    using T = std::decay_t<decltype(x)>;
                    if constexpr (std::is_same_v<T, cluster::migrate>) {
                        return scope[c.placement(x.vm)->host.index()] &&
                               scope[x.to.index()];
                    } else if constexpr (std::is_same_v<T, cluster::add_replica>) {
                        return scope[x.to.index()];
                    } else if constexpr (std::is_same_v<T, cluster::remove_replica> ||
                                         std::is_same_v<T, cluster::increase_cpu> ||
                                         std::is_same_v<T, cluster::decrease_cpu>) {
                        return scope[c.placement(x.vm)->host.index()];
                    } else if constexpr (std::is_same_v<T, cluster::power_on>) {
                        return scope[x.host.index()];
                    } else {
                        return scope[x.host.index()];
                    }
                },
                a);
            if (!scope_ok) return false;
        }
        return true;
    };

    std::vector<vertex> vertices;
    // Max-heap of (utility, vertex index); stale entries skipped on pop.
    using heap_entry = std::pair<double, std::size_t>;
    std::priority_queue<heap_entry> open;
    // Best utility recorded per configuration (non-terminal vertices).
    std::unordered_map<configuration, double> best_seen;

    vertex root;
    root.config = current;
    root.utility = ideal_rate;  // average-rate bound: nothing beats the ideal
    vertices.push_back(root);
    open.push({root.utility, 0});
    best_seen.emplace(current, root.utility);

    search_stats stats;
    dollars uh = expected_utility;
    const double uh_rate = cw > 0.0 ? expected_utility / cw : 0.0;
    const seconds delay_threshold = options_.delay_threshold_fraction * cw;
    const double current_rate = engine.evaluate(current).rate;
    dollars ut = 0.0, upwr_t = 0.0;
    seconds last_elapsed = meter.elapsed();
    seconds last_active = meter.active_seconds();
    bool prune_mode = false;

    int best_terminal = -1;

    // Plan valuation: the *average utility rate* over the plan's own
    // evaluation horizon H = max(CW, D + M), where D is the plan's total
    // duration and M one monitoring interval. The horizon floor D + M keeps
    // rescues sensible when the predicted stability interval has collapsed
    // (during a ramp, CW shrinks to its minimum, yet a rescue plan's benefit
    // genuinely persists at least until the controller can next revisit —
    // one interval past completion). Averaging over H rather than summing
    // makes horizon-stretching unprofitable: padding a plan with harmless
    // actions dilutes its average instead of annexing extra accounted time,
    // so Eq. 3's ordering over same-length plans is preserved while plans of
    // different lengths compare fairly. Since every instantaneous accrual
    // rate is bounded by the ideal rate, an average never exceeds it and the
    // ideal-rate cost-to-go stays admissible.
    const seconds post_window = utility_.params().monitoring_interval;
    auto horizon = [&](seconds duration) -> seconds {
        return std::max(cw, duration + post_window);
    };
    // Average rate of: the accrued transient dollars, then `rate` until H.
    auto average_rate = [&](dollars accrued, seconds duration, double rate) {
        const seconds h = horizon(duration);
        return (accrued + (h - duration) * rate) / h;
    };

    // Drafts the child vertex reached by firing `a` from vertex `v` (index
    // `parent_idx`): everything except the steady-state valuation, which
    // value_child fills in once the batch evaluation has run. `pe` is the
    // parent's (memoized) steady evaluation.
    auto draft_child = [&](const vertex& v, std::size_t parent_idx,
                           const steady_utility& pe,
                           const std::vector<std::uint8_t>& occ,
                           const action& a) -> vertex {
        const auto entry = costs_.lookup(model, a, rates);
        vertex c;
        c.via = a;
        c.parent = static_cast<int>(parent_idx);
        c.config = apply(model, v.config, a);
        // Transient accrual is clamped at the ideal rate so that time spent
        // mid-adaptation can never appear *better* than the best legal
        // steady state (which would invite lingering in intermediate
        // configurations and break the heuristic's bound).
        const double during =
            std::min(transient_rate(v.config, occ, pe, a, entry), ideal_rate);
        c.accrued = v.accrued + entry.duration * during -
                    options_.per_action_overhead;
        c.duration = v.duration + entry.duration;
        c.depth = v.depth + 1;
        return c;
    };

    // Vertex valuation: candidates by their own steady rate, intermediates
    // by the ideal bound. The 1e-9·D term breaks ties toward shorter plans.
    auto value_child = [&](vertex& c, double steady) {
        c.utility = average_rate(c.accrued, c.duration, steady) - 1e-9 * c.duration;
    };

    // Records a vertex if it improves on anything previously seen for its
    // configuration; returns its index or -1 when dominated.
    auto record_vertex = [&](vertex&& vc) -> int {
        auto [it, inserted] = best_seen.emplace(vc.config, vc.utility);
        if (!inserted) {
            if (vc.utility <= it->second + 1e-12) return -1;
            it->second = vc.utility;
        }
        vertices.push_back(std::move(vc));
        open.push({vertices.back().utility, vertices.size() - 1});
        return static_cast<int>(vertices.size()) - 1;
    };

    // Adds the "null"-edge terminal for a candidate vertex.
    auto add_terminal = [&](std::size_t idx) {
        const vertex& v = vertices[idx];
        const auto pe = engine.evaluate(v.config);
        // The power budget gates terminal candidacy only: like the packing
        // constraint, intermediates may exceed it while a plan is in flight,
        // but the plan must land inside the cap.
        if (!pe.candidate || pe.power > options_.power_cap) return;
        vertex term = v;
        term.parent = static_cast<int>(idx);
        term.via.reset();
        term.terminal = true;
        term.utility = average_rate(v.accrued, v.duration, pe.rate);
        if (best_terminal < 0 ||
            term.utility >
                vertices[static_cast<std::size_t>(best_terminal)].utility) {
            vertices.push_back(std::move(term));
            best_terminal = static_cast<int>(vertices.size()) - 1;
            open.push({vertices.back().utility, vertices.size() - 1});
        }
    };

    auto finish = [&](int terminal_index) -> search_result {
        stats.duration = meter.elapsed();
        // Power self-cost is charged on busy worker-seconds, not calendar
        // time: a parallel evaluator saves wall time but not joules.
        stats.search_power_cost = meter.active_seconds() * search_cost_rate;
        const auto& es = engine.stats();
        stats.eval_cache_hits = es.cache_hits - stats0.cache_hits;
        stats.eval_cache_misses = es.cache_misses - stats0.cache_misses;
        stats.eval_app_solves = es.app_solves - stats0.app_solves;
        stats.eval_app_cache_hits = es.app_cache_hits - stats0.app_cache_hits;
        stats.eval_app_cache_misses = es.app_cache_misses - stats0.app_cache_misses;
        if (terminal_index < 0) {
            search_result out = stay;
            out.stats = stats;
            emit_profile(out);
            return out;
        }
        search_result out;
        out.ideal_utility = stay.ideal_utility;
        out.stats = stats;
        const auto& term = vertices[static_cast<std::size_t>(terminal_index)];
        // Vertices carry average rates; report dollars over the window.
        out.expected_utility = term.utility * cw;
        out.target = term.config;
        // Walk the parent chain; the terminal's own edge is the null action.
        std::vector<action> path;
        for (int i = term.parent; i >= 0; i = vertices[static_cast<std::size_t>(i)].parent) {
            const auto& v = vertices[static_cast<std::size_t>(i)];
            if (v.via) path.push_back(*v.via);
        }
        std::reverse(path.begin(), path.end());
        // Splice out zero-net-effect detours: an A* path can carry them
        // legitimately (a revisit with better accrued value), but executing
        // them buys nothing.
        out.actions = compress_plan(model, current, std::move(path));
        emit_profile(out);
        return out;
    };

    // Seed the graph with the planner's route to the ideal configuration so
    // a full reconfiguration — and every partial prefix of it — is a known
    // option from the start; the A* then explores cheaper deviations around
    // it. Without seeding the loose ideal bound makes best-first exploration
    // effectively breadth-first, and deep consolidations are never reached
    // within the self-aware search budget.
    auto menu_allows = [&](const action& a) -> bool {
        switch (kind_of(a)) {
            case cluster::action_kind::increase_cpu:
            case cluster::action_kind::decrease_cpu:
                return options_.menu.cpu_tuning;
            case cluster::action_kind::add_replica:
            case cluster::action_kind::remove_replica:
                return options_.menu.replication;
            case cluster::action_kind::migrate:
                return options_.menu.migration;
            case cluster::action_kind::power_on:
            case cluster::action_kind::power_off:
                return options_.menu.host_power;
        }
        return false;
    };
    {
        // The seeded route is normally exempt from max_plan_actions: it
        // comes from the deterministic planner, which cannot pad, and
        // truncating a full-cluster rescue mid-route would leave only
        // useless prefixes. The greedy degraded rung opts out of the
        // exemption (seed_beyond_plan_limit = false) — there the one-action
        // bound is the contract, and the route's first step is still seeded
        // as a candidate. Each step's configuration depends on the previous,
        // so this short chain (≤ 64 evaluations) stays serial.
        const int seed_limit =
            options_.seed_beyond_plan_limit
                ? 64
                : static_cast<int>(std::min<std::size_t>(
                      options_.max_plan_actions, 64));
        std::size_t at = 0;
        int seeded = 0;
        for (const auto& a : plan_transition(model, current, ideal.ideal)) {
            const vertex v = vertices[at];  // copy; vertices reallocates
            if (++seeded > seed_limit || !menu_allows(a) ||
                !applicable(model, v.config, a) || !allowed(v.config, a)) {
                break;
            }
            const seconds seed_start = profiling ? meter.elapsed() : 0.0;
            meter.on_expansion();
            vertex c = draft_child(v, at, engine.evaluate(v.config),
                                   occupancy(v.config), a);
            value_child(c, is_candidate(model, c.config)
                               ? engine.evaluate(c.config).rate
                               : ideal_rate);
            const int idx = record_vertex(std::move(c));
            if (idx < 0) break;
            add_terminal(static_cast<std::size_t>(idx));
            at = static_cast<std::size_t>(idx);
            ++stats.generated;
            obs_generated_.add();
            // Seeded steps are charged like expansions; attribute their meter
            // time to the child's depth (without counting an expansion) so
            // the route's cost shows up in the profile.
            if (profiling) {
                note_depth(vertices[at].depth, 0.0,
                           meter.elapsed() - seed_start);
            }
        }
    }

    while (!open.empty() && stats.expansions < options_.max_expansions) {
        const auto [u, idx] = open.top();
        open.pop();
        const vertex v = vertices[idx];  // copy: vertices may reallocate below
        if (!v.terminal) {
            const auto it = best_seen.find(v.config);
            if (it != best_seen.end() && u < it->second - 1e-12) continue;  // stale
        }
        if (v.terminal) {
            return finish(static_cast<int>(idx));
        }

        ++stats.expansions;
        obs_expansions_.add();
        const seconds now_elapsed = meter.elapsed();
        const seconds now_active = meter.active_seconds();
        if (profiling) {
            // Everything the meter charged since the previous expansion
            // belongs to that expansion; open a span for this one.
            if (prof_pending_depth >= 0) {
                note_depth(prof_pending_depth, 1.0,
                           now_elapsed - prof_span_start);
            }
            prof_pending_depth = v.depth;
            prof_span_start = now_elapsed;
        }
        ut += (now_elapsed - last_elapsed) * current_rate;
        upwr_t += (now_active - last_active) * search_cost_rate;
        uh -= (now_elapsed - last_elapsed) * uh_rate;
        last_elapsed = now_elapsed;
        last_active = now_active;
        if (options_.self_aware && !prune_mode &&
            ((ut + upwr_t) >= uh || now_elapsed >= delay_threshold)) {
            prune_mode = true;
        }
        if (options_.self_aware &&
            now_elapsed >= options_.stop_factor * delay_threshold &&
            best_terminal >= 0) {
            return finish(best_terminal);
        }

        // Terminal ("null") child from candidate configurations.
        add_terminal(idx);

        // Action children. The meter charges per child *evaluated* — child
        // construction (cost lookup + utility estimation) is where a real
        // controller burns its time and power, so search durations scale
        // with the branching factor, i.e. with cluster size (Table I). One
        // batched charge covers the whole expansion; the worker count tells
        // the meter how the wall clock amortizes.
        if (static_cast<std::size_t>(v.depth) >= options_.max_plan_actions) continue;
        std::vector<action> acts;
        for (const auto& a : enumerate_actions(model, v.config, options_.menu)) {
            if (allowed(v.config, a)) acts.push_back(a);
        }
        if (acts.empty()) continue;
        meter.charge(acts.size(), engine.parallelism());

        // Draft the whole expansion's children as one parallel job: per-child
        // work (apply + candidacy + transient accounting + prune distance) is
        // pure given the parent, and each worker writes only its own index's
        // slots. Memo-backed steady evaluation then runs as a second batch —
        // the LQN solves the parallel evaluator fans out — with all cache
        // bookkeeping back on this thread, so results are bit-identical to
        // the serial drafting loop.
        const auto pe = engine.evaluate(v.config);
        const auto occ = occupancy(v.config);
        std::vector<vertex> children(acts.size());
        std::vector<std::uint8_t> child_candidate(acts.size(), 0);
        std::vector<double> child_distance(acts.size(), 0.0);
        const bool score_children = prune_mode;
        engine.parallel_for(acts.size(), [&](std::size_t j) {
            vertex c = draft_child(v, idx, pe, occ, acts[j]);
            child_candidate[j] = is_candidate(model, c.config) ? 1 : 0;
            if (child_candidate[j] == 0) value_child(c, ideal_rate);
            if (score_children) child_distance[j] = prune_distance(c.config);
            children[j] = std::move(c);
        });
        std::vector<std::size_t> steady_index;  // children needing a steady eval
        std::vector<configuration> steady_configs;
        for (std::size_t j = 0; j < children.size(); ++j) {
            if (child_candidate[j] != 0) {
                steady_index.push_back(j);
                steady_configs.push_back(children[j].config);
            }
        }
        if (!steady_configs.empty()) {
            const auto evals = engine.evaluate_batch(steady_configs);
            for (std::size_t i = 0; i < steady_index.size(); ++i) {
                value_child(children[steady_index[i]], evals[i].rate);
            }
        }
        stats.generated += children.size();
        obs_generated_.add(static_cast<std::int64_t>(children.size()));

        if (prune_mode && !children.empty()) {
            stats.pruned = true;
            // Keep the children closest to the ideal configuration.
            std::vector<std::pair<double, std::size_t>> scored;
            scored.reserve(children.size());
            for (std::size_t i = 0; i < children.size(); ++i) {
                scored.push_back({child_distance[i], i});
            }
            std::sort(scored.begin(), scored.end());
            const std::size_t keep = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::ceil(options_.prune_keep_fraction *
                                 static_cast<double>(children.size()))));
            std::vector<vertex> kept;
            kept.reserve(keep);
            for (std::size_t i = 0; i < keep; ++i) {
                kept.push_back(std::move(children[scored[i].second]));
            }
            children = std::move(kept);
        }

        for (auto& c : children) {
            record_vertex(std::move(c));
        }
    }
    // Expansion budget exhausted: settle for the best terminal found so far.
    return finish(best_terminal);
}

}  // namespace mistral::core
