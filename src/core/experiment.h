// Experiment harness: runs a strategy against the testbed over traces.
//
// Reproduces the paper's measurement methodology (Section V): the testbed
// advances in monitoring intervals; each interval the strategy sees the
// measured workload and the previous interval's achieved utility, submits
// actions (delayed by its own decision time), and the harness accounts the
// interval's *measured* utility — rewards/penalties from metered response
// times (Eq. 1), power cost from metered watts (Eq. 2), minus the decision's
// own power cost.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "apps/application.h"
#include "cluster/configuration.h"
#include "cluster/model.h"
#include "common/stats.h"
#include "common/time_series.h"
#include "core/strategies.h"
#include "sim/faults.h"
#include "sim/testbed.h"
#include "workload/trace.h"

namespace mistral::obs {
class sink;
}

namespace mistral::core {

struct scenario_options {
    std::size_t host_count = 4;
    std::size_t app_count = 2;
    std::uint64_t seed = 1;
    seconds monitoring_interval = default_monitoring_interval;
    sim::testbed_options testbed{};
    utility_params utility{};
    // Sensor-level fault injection (sim/faults.h): corrupts the telemetry
    // windows the *strategy* observes, while the testbed's ground truth —
    // and therefore the measured utility accounting — stays untouched. Inert
    // by default: with all probabilities zero the harness never constructs a
    // window and the run is byte-identical to a build without this knob.
    sim::sensor_fault_options sensor_faults{};
    // Economics accounting (core/utility.h econ_profile). When enabled, the
    // harness prices *measured* utility under this profile — tariffed power
    // cost, carbon mass, revenue under the pricing model — and reports the
    // energy/carbon/revenue totals in run_result plus "energy_cost" /
    // "carbon_g" series and mistral_econ_* gauges. The strategies under test
    // keep whatever economics they were built with, so a price-blind
    // controller can be measured under the same tariff as an econ-aware one
    // (the day/night bench's comparison). Disabled leaves the accounting —
    // and the output — byte-identical to the pre-econ harness.
    econ_profile econ{};
    // Traces per application; when empty, the Fig. 4 workloads are generated
    // (truncated/cycled to app_count).
    std::vector<wl::trace> traces;
    // Observability hook (obs/journal.h): forwarded to the testbed (unless it
    // set its own) and used by the harness itself to emit one "interval"
    // record per monitoring interval — measured utility, power, actions,
    // failures, self-cost — so a journal reconciles against the run's final
    // accounting. nullptr (the default) is the zero-overhead null sink.
    obs::sink* sink = nullptr;
};

struct scenario {
    cluster::cluster_model model;
    cluster::configuration initial;
    std::vector<wl::trace> traces;
    scenario_options options;
};

// Builds the paper's RUBiS scenario: `app_count` RUBiS applications on
// `host_count` hosts, each application's minimum replica set started at 40 %
// caps on a contiguous pair of hosts (which also respects the Perf-Cost
// baseline's fixed pools).
scenario make_rubis_scenario(scenario_options options = {});

struct run_result {
    std::string strategy_name;
    series_bundle series;  // rt_<app> (ms), power (W), utility, cum_utility,
                           // hosts, actions, search_ms
    dollars cumulative_utility = 0.0;
    watts mean_power = 0.0;
    // Fraction of intervals each application missed its target.
    std::vector<double> violation_fraction;
    std::size_t total_actions = 0;
    // Actions the testbed aborted (fault injection); a "failed" series is
    // added to `series` only on intervals that actually saw failures, so
    // fault-free runs produce byte-identical output.
    std::size_t total_failed_actions = 0;
    std::size_t invocations = 0;
    running_stats search_duration;   // seconds per invocation
    dollars total_search_cost = 0.0; // $ of controller power
    // Testbed-reported seconds burnt on adaptations that never took effect
    // (doomed executions and crash-aborted transients); 0 without faults.
    seconds total_wasted_seconds = 0.0;
    // Economics accounting, all zero unless scenario_options::econ.enabled:
    // tariffed power spend (carbon price included), emitted carbon mass from
    // the tariff's intensity series, and SLA revenue under the pricing model.
    dollars energy_dollars = 0.0;
    double carbon_grams = 0.0;
    dollars revenue_dollars = 0.0;
};

// Runs `strat` over the scenario, one fresh testbed per call (same seed ⇒
// identical ground truth across strategies).
run_result run_scenario(const scenario& scn, strategy& strat);

// Human-readable end-of-run accounting (examples and ad-hoc tooling): the
// cumulative utility, power, adaptation and self-cost totals of one run.
void print_run_summary(const run_result& result, std::ostream& out);

}  // namespace mistral::core
