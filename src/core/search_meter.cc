#include "core/search_meter.h"

#include "common/check.h"

namespace mistral::core {

wall_clock_meter::wall_clock_meter(watts search_power) : power_(search_power) {
    MISTRAL_CHECK(search_power >= 0.0);
    start_ = std::chrono::steady_clock::now();
}

void wall_clock_meter::begin() {
    start_ = std::chrono::steady_clock::now();
    evaluations_ = 0.0;
    wall_slots_ = 0.0;
}

void wall_clock_meter::charge(std::size_t evaluations, std::size_t workers) {
    MISTRAL_CHECK(workers >= 1);
    evaluations_ += static_cast<double>(evaluations);
    wall_slots_ += static_cast<double>((evaluations + workers - 1) / workers);
}

seconds wall_clock_meter::elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
}

seconds wall_clock_meter::active_seconds() const {
    if (wall_slots_ <= 0.0) return elapsed();
    return elapsed() * (evaluations_ / wall_slots_);
}

model_clock_meter::model_clock_meter(seconds per_expansion, watts search_power)
    : per_expansion_(per_expansion), power_(search_power) {
    MISTRAL_CHECK(per_expansion >= 0.0);
    MISTRAL_CHECK(search_power >= 0.0);
}

}  // namespace mistral::core
