#include "core/utility.h"

#include <algorithm>

#include "common/check.h"

namespace mistral::core {

utility_model::utility_model(utility_params params) : params_(params) {
    MISTRAL_CHECK(params_.monitoring_interval > 0.0);
    MISTRAL_CHECK(params_.max_rate > 0.0);
    MISTRAL_CHECK(params_.reward_hi >= params_.reward_lo);
    MISTRAL_CHECK(params_.penalty_hi >= params_.penalty_lo);
    MISTRAL_CHECK(params_.penalty_hi <= 0.0);
    MISTRAL_CHECK(params_.power_weight >= 0.0);
}

dollars utility_model::reward(req_per_sec rate) const {
    const double x = std::clamp(rate / params_.max_rate, 0.0, 1.0);
    return params_.reward_lo + (params_.reward_hi - params_.reward_lo) * x;
}

dollars utility_model::penalty(req_per_sec rate) const {
    const double x = std::clamp(rate / params_.max_rate, 0.0, 1.0);
    return params_.penalty_lo + (params_.penalty_hi - params_.penalty_lo) * x;
}

double utility_model::perf_rate(req_per_sec rate, seconds response_time,
                                seconds target) const {
    const dollars per_interval =
        response_time <= target ? reward(rate) : penalty(rate);
    return per_interval / params_.monitoring_interval;
}

double utility_model::power_rate(watts power) const {
    MISTRAL_CHECK(power >= 0.0);
    return -params_.power_weight * power * params_.power_cost_per_watt_interval /
           params_.monitoring_interval;
}

double utility_model::steady_rate(std::span<const req_per_sec> rates,
                                  std::span<const seconds> response_times,
                                  std::span<const seconds> targets,
                                  watts power) const {
    MISTRAL_CHECK(rates.size() == response_times.size());
    MISTRAL_CHECK(rates.size() == targets.size());
    double rate = power_rate(power);
    for (std::size_t s = 0; s < rates.size(); ++s) {
        rate += perf_rate(rates[s], response_times[s], targets[s]);
    }
    return rate;
}

dollars utility_model::interval_utility(std::span<const req_per_sec> rates,
                                        std::span<const seconds> response_times,
                                        std::span<const seconds> targets,
                                        watts mean_power) const {
    return steady_rate(rates, response_times, targets, mean_power) *
           params_.monitoring_interval;
}

}  // namespace mistral::core
