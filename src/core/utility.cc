#include "core/utility.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mistral::core {

utility_model::utility_model(utility_params params) : params_(params) {
    MISTRAL_CHECK(params_.monitoring_interval > 0.0);
    MISTRAL_CHECK(std::isfinite(params_.monitoring_interval));
    MISTRAL_CHECK(params_.max_rate > 0.0);
    MISTRAL_CHECK(std::isfinite(params_.max_rate));
    MISTRAL_CHECK(std::isfinite(params_.reward_lo) && std::isfinite(params_.reward_hi));
    MISTRAL_CHECK(std::isfinite(params_.penalty_lo) && std::isfinite(params_.penalty_hi));
    MISTRAL_CHECK(params_.reward_hi >= params_.reward_lo);
    MISTRAL_CHECK(params_.penalty_hi >= params_.penalty_lo);
    MISTRAL_CHECK(params_.penalty_hi <= 0.0);
    MISTRAL_CHECK(std::isfinite(params_.power_cost_per_watt_interval));
    MISTRAL_CHECK(params_.power_cost_per_watt_interval >= 0.0);
    MISTRAL_CHECK(std::isfinite(params_.power_weight));
    MISTRAL_CHECK(params_.power_weight >= 0.0);
    MISTRAL_CHECK(std::isfinite(params_.rt_margin));
    MISTRAL_CHECK(params_.rt_margin > 0.0);
}

dollars utility_model::reward(req_per_sec rate) const {
    const double x = std::clamp(rate / params_.max_rate, 0.0, 1.0);
    return params_.reward_lo + (params_.reward_hi - params_.reward_lo) * x;
}

dollars utility_model::penalty(req_per_sec rate) const {
    const double x = std::clamp(rate / params_.max_rate, 0.0, 1.0);
    return params_.penalty_lo + (params_.penalty_hi - params_.penalty_lo) * x;
}

double utility_model::perf_rate(req_per_sec rate, seconds response_time,
                                seconds target) const {
    if (econ_ == nullptr || !econ_->factors.performance_based) {
        // The paper's Eq. 1 cliff — also the flat-pricing econ path, so a
        // flat-econ run computes revenue through the exact same expressions.
        const dollars per_interval =
            response_time <= target ? reward(rate) : penalty(rate);
        return per_interval / params_.monitoring_interval;
    }
    return pbp_revenue(rate, response_time, target) / params_.monitoring_interval;
}

dollars utility_model::pbp_revenue(req_per_sec rate, seconds response_time,
                                   seconds target) const {
    // Continuous revenue: full reward at rt <= target, linearly degrading to
    // the full penalty at rt >= grace·target. Continuity in rt keeps the
    // search landscape smooth near the target instead of cliff-edged.
    const double grace = econ_->factors.pbp_grace;
    double x;
    if (target > 0.0) {
        x = std::clamp((response_time - target) / ((grace - 1.0) * target), 0.0, 1.0);
    } else {
        // Degenerate target: fall back to the cliff semantics.
        x = response_time <= target ? 0.0 : 1.0;
    }
    return reward(rate) + (penalty(rate) - reward(rate)) * x;
}

double utility_model::power_rate(watts power) const {
    MISTRAL_CHECK(power >= 0.0);
    if (econ_ == nullptr) {
        return -params_.power_weight * power * params_.power_cost_per_watt_interval /
               params_.monitoring_interval;
    }
    // Same expression shape with the time-indexed price substituted: when the
    // tariff is flat at the default price this is bit-identical to the branch
    // above. The carbon term only perturbs the sum when a carbon price is
    // actually configured.
    const econ_factors& f = econ_->factors;
    double rate = -params_.power_weight * power * f.power_price /
                  params_.monitoring_interval;
    if (f.carbon_dollars_per_watt_interval != 0.0) {
        rate += -params_.power_weight * power * f.carbon_dollars_per_watt_interval /
                params_.monitoring_interval;
    }
    return rate;
}

double utility_model::steady_rate(std::span<const req_per_sec> rates,
                                  std::span<const seconds> response_times,
                                  std::span<const seconds> targets,
                                  watts power) const {
    MISTRAL_CHECK(rates.size() == response_times.size());
    MISTRAL_CHECK(rates.size() == targets.size());
    double rate = power_rate(power);
    for (std::size_t s = 0; s < rates.size(); ++s) {
        rate += perf_rate(rates[s], response_times[s], targets[s]);
    }
    return rate;
}

dollars utility_model::interval_utility(std::span<const req_per_sec> rates,
                                        std::span<const seconds> response_times,
                                        std::span<const seconds> targets,
                                        watts mean_power) const {
    return steady_rate(rates, response_times, targets, mean_power) *
           params_.monitoring_interval;
}

void utility_model::bind_econ(const econ_profile& profile) {
    MISTRAL_CHECK_MSG(profile.enabled, "binding a disabled econ profile");
    MISTRAL_CHECK_MSG(econ_ == nullptr, "econ profile already bound");
    econ::validate(profile.pricing);
    MISTRAL_CHECK(std::isfinite(profile.carbon_price_per_kg));
    MISTRAL_CHECK(profile.carbon_price_per_kg >= 0.0);
    if (profile.power_cap_schedule) {
        for (const auto& p : profile.power_cap_schedule->points()) {
            MISTRAL_CHECK_MSG(p.value > 0.0, "power caps must be positive watts");
        }
    }
    econ_ = std::make_shared<econ_state>();
    econ_->profile = profile;
    econ_->factors.performance_based =
        profile.pricing.kind == econ::pricing_kind::performance_based;
    econ_->factors.pbp_grace = profile.pricing.grace;
    // Index the tariff at t=0 so factors are coherent even before the first
    // update_econ; the controller re-indexes at its first step's timestamp.
    update_econ(0.0);
}

bool utility_model::update_econ(seconds now) {
    if (econ_ == nullptr) return false;
    const dollars price = econ_->profile.tariff.price_at(now);
    const double carbon = econ_->profile.tariff.carbon_at(now);
    econ_factors& f = econ_->factors;
    if (price == f.power_price && carbon == f.carbon_intensity) return false;
    f.power_price = price;
    f.carbon_intensity = carbon;
    // gCO2/Wh · (M/3600) h · $/g — the dollars one watt-interval of draw
    // emits, priced at carbon_price_per_kg / 1000 per gram.
    f.carbon_dollars_per_watt_interval =
        econ_->profile.carbon_price_per_kg <= 0.0
            ? 0.0
            : carbon * (params_.monitoring_interval / 3600.0) *
                  (econ_->profile.carbon_price_per_kg / 1000.0);
    ++econ_->epoch;
    return true;
}

const econ_factors& utility_model::econ_now() const {
    MISTRAL_CHECK_MSG(econ_ != nullptr, "no econ profile bound");
    return econ_->factors;
}

const econ_profile& utility_model::econ_profile_ref() const {
    MISTRAL_CHECK_MSG(econ_ != nullptr, "no econ profile bound");
    return econ_->profile;
}

}  // namespace mistral::core
