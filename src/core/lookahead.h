// Receding-horizon lookahead planner (the "MDP mode" of ROADMAP item 2).
//
// Mistral's single-interval controller optimizes one control window at a
// time, so it reacts to a flash crowd only after utility has already been
// lost. The lookahead planner rolls the per-application workload forecast
// forward K intervals (predict/arma.h's forecast_horizon) and searches a
// *sequence* of configurations:
//
//  * Interval 1 always uses the *measured* rates. The reactive candidate is
//    literally the existing single-interval A* call — at K = 1 the planner
//    returns that result unchanged, which is the bit-identity anchor the
//    differential tests pin.
//  * For K > 1, when the forecast peak rises past today's demand and the
//    reactive plan leaves a healthy host dark, a bounded search against the
//    most demanding forecast interval discovers which hosts the peak wants
//    lit. The pre-provision candidate is *augmentative*: the reactive plan
//    plus power-on boosts for those hosts — never a substitute plan searched
//    against forecast rates (a damped trend undershoots real peaks, and a
//    substitutive commit would churn migrations on forecast error; booting a
//    host early risks only its idle power). The augmented first interval is
//    re-scored under the measured rates with the same transient accounting
//    the A* uses (cost tables + per-action overhead + steady evaluation over
//    H = max(CW, D + M)), so pre-provisioning pays its true present cost.
//  * Each candidate's tail is rolled out with bounded-depth continuation
//    searches (the same A* expansion under a small expansion budget, sharing
//    the evaluation engine's memo and app cache), one per future interval,
//    and each future interval's utility is discounted by a geometric factor
//    times the forecast confidence derived from the band spread.
//
// Only the first interval's plan is committed; the controller replans every
// window (receding horizon). Ties break toward the reactive candidate, so
// lookahead never deviates from today's behavior without a predicted payoff.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cluster/configuration.h"
#include "cluster/model.h"
#include "core/search.h"
#include "core/search_meter.h"
#include "cost/table.h"
#include "predict/arma.h"

namespace mistral::core {

struct lookahead_options {
    bool enabled = false;
    // Planning horizon K in control windows. 1 plans exactly like the
    // single-interval controller (the differential anchor).
    int horizon = 3;
    // Geometric per-interval discount on future utility (interval i ≥ 2
    // contributes discount^(i−1) · confidence · value).
    double discount = 0.9;
    // Forecast-confidence floor: however wide the bands get, a future
    // interval still counts at least this fraction of its discounted value.
    double confidence_floor = 0.2;
    // Expansion budget for each bounded-depth continuation search. Bounded,
    // but generous enough for a full flash-crowd adaptation: a starved budget
    // would cripple the *reactive* candidate's tail (which must adapt at the
    // forecast peak) while the pre-provisioned tail needs almost none,
    // silently biasing every comparison toward pre-provisioning.
    std::size_t continuation_max_expansions = 1024;
    // Relative margin the pre-provision total must clear over the reactive
    // total before committing (fraction of max(|reactive total|, 1)). Forecast
    // centers wobble window to window; committing on hairline margins churns
    // real migrations for predicted pennies.
    double commit_margin = 0.1;
    // Minimum relative rise of the forecast-peak demand over today's demand
    // before the pre-provision candidate is even searched. Below it the
    // planner trusts the reactive rung (small drifts are what the band
    // trigger absorbs) and spends no modeled search time on tails — the
    // planner's self-cost, like the search's, is part of the decision.
    double rise_threshold = 0.05;
    // Deadline for the *whole* lookahead plan (all candidate + continuation
    // searches) as a fraction of CW. Blowing it demotes the ladder one rung
    // to the single-interval controller — today's behavior — not to greedy.
    // The default is 4× the single search's 0.5 watchdog fraction, matching
    // the ≤ 4× modeled-latency budget the bench smoke gate enforces.
    double deadline_fraction = 2.0;
    // Per-application rate forecaster (a unit-agnostic reuse of the adaptive
    // ARMA filter; its divergence guard is the lookahead-specific alarm that
    // demotes lookahead → full).
    predict::arma_options rate_arma{};
    predict::horizon_options horizon_model{};
};

// One future interval of the chosen sequence, for the journal.
struct lookahead_step {
    std::vector<req_per_sec> rates;  // forecast centers (interval 1: measured)
    dollars predicted_utility = 0.0; // discounted contribution to the total
};

struct lookahead_result {
    // The committed first-interval plan — exactly what the single-interval
    // controller would report for the chosen candidate.
    search_result committed;
    int horizon = 1;             // intervals actually planned over
    const char* commit_reason = "reactive";  // reactive | preprovision | converged
    bool preprovisioned = false; // the pre-provision candidate won
    std::vector<lookahead_step> steps;       // size == horizon
    dollars total_value = 0.0;   // Σ steps[i].predicted_utility
    std::size_t searches = 0;    // A* invocations this plan spent
    // Meter-elapsed durations: the committed candidate's own first-interval
    // search (feeds the single-interval deadline watchdog, identical to the
    // flat controller at K = 1) and everything the plan ran in total (feeds
    // the lookahead deadline).
    seconds first_duration = 0.0;
    seconds total_duration = 0.0;
};

class lookahead_planner {
public:
    // `primary` is the controller's own full A* — interval-1 searches go
    // through it, so at K = 1 the call sequence (and every shared cache
    // access) is identical to the flat controller. The continuation search is
    // built here from the primary's options under the smaller expansion
    // budget, sharing the primary's evaluation engine.
    lookahead_planner(const cluster::cluster_model& model, utility_model utility,
                      const cost::cost_table& costs,
                      const adaptation_search& primary, lookahead_options options);

    // Plans from `current` under measured `rates`. `forecast[i]` carries the
    // per-app forecast centers for interval i + 2 and `confidence[i]` its
    // band-derived weight in (0, 1]; both have horizon − 1 entries (empty at
    // K = 1). `cw` is the control window each interval is assumed to last.
    [[nodiscard]] lookahead_result plan(
        const cluster::configuration& current,
        const std::vector<req_per_sec>& rates,
        const std::vector<std::vector<req_per_sec>>& forecast,
        const std::vector<double>& confidence, seconds cw,
        dollars expected_utility, search_meter& meter, seconds now) const;

    void set_power_cap(watts cap) { continuation_.set_power_cap(cap); }

    [[nodiscard]] const lookahead_options& options() const { return options_; }

private:
    // Interval-1 dollars of executing `plan` from `current` under the
    // measured rates: the A*'s own valuation (transient accrual from the cost
    // tables, per-action overhead, steady rate over H = max(CW, D + M)),
    // re-applied to a plan that was searched under different (forecast)
    // rates. `cap_rate` clamps transient accrual exactly like the search
    // clamps at the ideal rate.
    [[nodiscard]] dollars score_plan(const cluster::configuration& current,
                                     const std::vector<cluster::action>& plan,
                                     const std::vector<req_per_sec>& rates,
                                     seconds cw, double cap_rate) const;

    const cluster::cluster_model* model_;
    utility_model utility_;
    const cost::cost_table* costs_;
    const adaptation_search* primary_;
    lookahead_options options_;
    adaptation_search continuation_;  // bounded-depth tail search, shared engine
};

}  // namespace mistral::core
