#include "core/coordinator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <thread>
#include <utility>

#include "common/check.h"
#include "obs/journal.h"

namespace mistral::core {

namespace {

// Whole-cluster headroom report (the escalation controller's event row).
pod_report cluster_report(const cluster::cluster_model& model,
                          const cluster::configuration& config) {
    pod_report r;
    double cap_total = 0.0;
    std::size_t healthy = 0;
    for (std::size_t h = 0; h < model.host_count(); ++h) {
        const host_id host{static_cast<std::int32_t>(h)};
        const auto& hs = model.hosts()[h];
        r.max_draw += hs.power.power(1.0);
        if (!config.host_failed(host)) ++healthy;
        if (!config.host_on(host)) continue;
        cap_total += config.cap_sum(host);
        r.draw += hs.power.power(config.cap_sum(host) / hs.cpu_capacity);
    }
    const double denom =
        model.limits().host_cpu_cap * static_cast<double>(healthy);
    r.pressure = denom > 0.0 ? cap_total / denom : 1.0;
    return r;
}

void validate_level1(const cluster::cluster_model& model,
                     const std::vector<pod_spec>& pods) {
    MISTRAL_CHECK_MSG(!pods.empty(), "two-level mode needs level-1 pods");
    std::vector<bool> claimed(model.host_count(), false);
    for (std::size_t i = 0; i < pods.size(); ++i) {
        MISTRAL_CHECK_MSG(pods[i].id == i, "pod ids must be sequential from 0");
        MISTRAL_CHECK_MSG(!pods[i].hosts.empty(),
                          "pod " << i << " owns no hosts");
        for (const std::size_t h : pods[i].hosts) {
            MISTRAL_CHECK_MSG(h < model.host_count(),
                              "pod " << i << " references unknown host " << h);
            MISTRAL_CHECK_MSG(!claimed[h], "host groups must be disjoint");
            claimed[h] = true;
        }
    }
}

// Deterministic first-fit placement of every deployed VM of `app` not
// already inside `hosts` onto `hosts` (ascending), requiring the result to
// stay a candidate on each target host. Returns the migrate plan, or empty
// when infeasible.
std::vector<cluster::action> first_fit_plan(const cluster::cluster_model& model,
                                            const cluster::configuration& from,
                                            std::size_t app,
                                            const std::vector<std::size_t>& hosts) {
    std::vector<cluster::action> plan;
    cluster::configuration scratch = from;
    for (const auto& vm : model.vms()) {
        if (vm.app.index() != app) continue;
        const auto& p = scratch.placement(vm.vm);
        if (!p) continue;
        if (std::find(hosts.begin(), hosts.end(),
                      static_cast<std::size_t>(p->host.index())) != hosts.end()) {
            continue;  // already on a target host: nothing to move
        }
        bool placed = false;
        for (const std::size_t h : hosts) {
            const host_id host{static_cast<std::int32_t>(h)};
            if (!scratch.host_on(host) || scratch.host_failed(host)) continue;
            const cluster::action a = cluster::migrate{vm.vm, host};
            if (!cluster::applicable(model, scratch, a)) continue;
            if (scratch.cap_sum(host) + p->cpu_cap >
                model.limits().host_cpu_cap + 1e-9) {
                continue;  // would overbook: keep the plan candidate-clean
            }
            scratch = cluster::apply(model, scratch, a);
            plan.push_back(a);
            placed = true;
            break;
        }
        if (!placed) return {};
    }
    return plan;
}

void accumulate(search_stats& into, const search_stats& from) {
    into.expansions += from.expansions;
    into.generated += from.generated;
    into.pruned = into.pruned || from.pruned;
    into.eval_cache_hits += from.eval_cache_hits;
    into.eval_cache_misses += from.eval_cache_misses;
    into.eval_app_solves += from.eval_app_solves;
    into.eval_app_cache_hits += from.eval_app_cache_hits;
    into.eval_app_cache_misses += from.eval_app_cache_misses;
}

}  // namespace

global_coordinator::global_coordinator(const cluster::cluster_model& model,
                                       cost::cost_table costs, partition parts,
                                       controller_builder builder,
                                       coordinator_options options)
    : model_(&model),
      costs_(std::move(costs)),
      builder_(std::move(builder)),
      options_(std::move(options)),
      name_("Mistral-Pods"),
      sharded_(true),
      specs_(parts.pods()) {
    MISTRAL_CHECK(options_.power_budget > 0.0);
    MISTRAL_CHECK(options_.grow_margin >= 0.0);
    MISTRAL_CHECK(options_.max_brokered_moves >= 0);
    if (options_.budget_schedule) {
        for (const auto& p : options_.budget_schedule->points()) {
            MISTRAL_CHECK_MSG(p.value > 0.0, "budget schedule must be positive watts");
        }
    }
    if (!options_.regions.empty()) {
        MISTRAL_CHECK_MSG(options_.regions.pod_count() == specs_.size(),
                          "pod→region map covers " << options_.regions.pod_count()
                                                   << " pods, partition has "
                                                   << specs_.size());
        // Each pod's controller plans under its own region's tariff: layer an
        // econ override per pod on top of whatever the caller registered
        // (pod overrides compose in order, builder.h).
        for (std::size_t i = 0; i < specs_.size(); ++i) {
            const auto& region = options_.regions.region(options_.regions.region_of(i));
            builder_.pod(i, [tariff = region.tariff](controller_options& opts) {
                opts.econ.enabled = true;
                opts.econ.tariff = tariff;
            });
        }
    }
    sink_ = builder_.build().sink;
    if (auto* reg = obs::metrics_of(sink_)) {
        obs_migrations_ = reg->register_counter(
            "mistral_pod_migrations_total",
            "Cross-pod app migrations committed by the broker");
        obs_reconciles_ = reg->register_counter(
            "mistral_pod_ownership_reconciles_total",
            "App ownership changes made by placement reconciliation");
        if (!options_.regions.empty()) {
            obs_region_moves_ = reg->register_counter(
                "mistral_econ_region_moves_total",
                "Brokered migrations that landed in a strictly cheaper region");
        }
    }
}

global_coordinator::global_coordinator(const cluster::cluster_model& model,
                                       cost::cost_table costs,
                                       std::vector<pod_spec> level1,
                                       controller_builder builder,
                                       coordinator_options options)
    : model_(&model),
      costs_(std::move(costs)),
      builder_(std::move(builder)),
      options_(std::move(options)),
      name_("Mistral-2L"),
      sharded_(false) {
    MISTRAL_CHECK_MSG(options_.regions.empty(),
                      "regions are a sharded-mode feature");
    MISTRAL_CHECK_MSG(!options_.budget_schedule,
                      "budget schedules are a sharded-mode feature");
    validate_level1(model, level1);
    for (auto& spec : level1) {
        pods_.push_back(std::make_unique<pod_controller>(
            model, costs_, std::move(spec), std::vector<std::size_t>{},
            builder_, pod_lens::scoped));
    }
    controller_options esc = builder_.build();
    esc.band_width = options_.escalation_band;
    escalation_ = std::make_unique<mistral_controller>(model, costs_, esc,
                                                       builder_.make_meter());
    sink_ = esc.sink;
    if (auto* reg = obs::metrics_of(sink_)) {
        obs_escalations_ = reg->register_counter(
            "mistral_pod_global_decisions_total",
            "Invoked decisions made by the escalation controller");
        obs_escalation_actions_ = reg->register_counter(
            "mistral_pod_global_actions_total",
            "Actions emitted by escalation decisions");
        obs_escalation_seconds_ = reg->register_histogram(
            "mistral_pod_global_search_seconds",
            {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0},
            "Meter-elapsed search duration of invoked escalation decisions");
    }
}

strategy::outcome global_coordinator::decide(const decision_input& in) {
    return sharded_ ? decide_sharded(in) : decide_two_level(in);
}

void global_coordinator::ensure_pods(const cluster::configuration& current) {
    if (!pods_.empty()) return;
    const partition parts(*model_, specs_);
    host_pod_.resize(model_->host_count());
    for (std::size_t h = 0; h < host_pod_.size(); ++h) {
        host_pod_[h] = parts.pod_of_host(h);
    }
    const auto owner = assign_apps(*model_, parts, current);
    std::vector<std::vector<std::size_t>> per_pod(specs_.size());
    for (std::size_t a = 0; a < owner.size(); ++a) {
        per_pod[owner[a]].push_back(a);
    }
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        pods_.push_back(std::make_unique<pod_controller>(
            *model_, costs_, specs_[i], std::move(per_pod[i]), builder_,
            pod_lens::sharded));
    }
}

void global_coordinator::reconcile_ownership(
    const cluster::configuration& current, seconds now) {
    stray_apps_.clear();
    if (pods_.size() < 2) return;  // one pod owns everything by construction

    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<std::size_t> owner(model_->app_count(), npos);
    for (std::size_t i = 0; i < pods_.size(); ++i) {
        for (const std::size_t a : pods_[i]->apps()) owner[a] = i;
    }
    // Where each app's VMs actually are. Brokered migrations are plans the
    // executor can abort or still be running; ownership must follow the
    // placements, never the plan, or the owning pod's view will reject the
    // next projection.
    std::vector<std::size_t> home(model_->app_count(), npos);
    std::vector<bool> straddles(model_->app_count(), false);
    for (const auto& vm : model_->vms()) {
        const auto& p = current.placement(vm.vm);
        if (!p) continue;
        const std::size_t pod = host_pod_[static_cast<std::size_t>(p->host.index())];
        auto& h = home[vm.app.index()];
        if (h == npos) {
            h = pod;
        } else if (h != pod) {
            straddles[vm.app.index()] = true;
        }
    }
    for (std::size_t a = 0; a < model_->app_count(); ++a) {
        std::size_t target;
        if (straddles[a]) {
            // A half-moved app (partially executed brokered plan): no pod's
            // view can contain it. Park it unowned for the interval; the
            // gather pass emits the completing migrations.
            target = npos;
            stray_apps_.push_back(a);
        } else if (home[a] != npos) {
            target = home[a];
        } else {
            // Undeployed app: keep its owner, parking orphans in pod 0
            // (assign_apps' rule).
            target = owner[a] == npos ? 0 : owner[a];
        }
        if (target == owner[a]) continue;
        if (owner[a] != npos) pods_[owner[a]]->release_app(a);
        if (target != npos) pods_[target]->adopt_app(a);
        obs_reconciles_.add();
        if (obs::journaling(sink_)) {
            obs::event e("pod_reconcile", now);
            e.integer("app", static_cast<std::int64_t>(a))
                .integer("from", owner[a] == npos
                                     ? -1
                                     : static_cast<std::int64_t>(owner[a]))
                .integer("to", target == npos
                                   ? -1
                                   : static_cast<std::int64_t>(target));
            sink_->record(e);
        }
    }
}

std::vector<watts> global_coordinator::redistribute(
    watts total, double grow_margin, const std::vector<pod_report>& reports,
    const std::vector<double>* growth_weight) {
    MISTRAL_CHECK(total > 0.0 && std::isfinite(total));
    const std::size_t n = reports.size();
    MISTRAL_CHECK(n >= 1);
    MISTRAL_CHECK(growth_weight == nullptr || growth_weight->size() == n);
    std::vector<double> demand(n, 0.0);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double p = std::clamp(reports[i].pressure, 0.0, 1.0);
        // The draw term is a pod's metered entitlement; only the *growth*
        // headroom is regionally weighted — a pod in an expensive region asks
        // for less room to grow, never less than it already draws.
        double grow = grow_margin * p *
                      std::max(0.0, reports[i].max_draw - reports[i].draw);
        if (growth_weight != nullptr) {
            const double w = (*growth_weight)[i];
            MISTRAL_CHECK(std::isfinite(w) && w >= 0.0);
            grow *= w;
        }
        demand[i] = reports[i].draw + grow;
        sum += demand[i];
    }
    if (sum <= 0.0) {
        demand.assign(n, 1.0);
        sum = static_cast<double>(n);
    }
    // Integer milliwatts with largest-remainder rounding: the shares sum to
    // the cluster budget exactly, every interval, regardless of float dust.
    const std::int64_t total_mw = std::llround(total * 1000.0);
    std::vector<std::int64_t> share_mw(n, 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    remainders.reserve(n);
    std::int64_t assigned = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double exact = static_cast<double>(total_mw) * demand[i] / sum;
        share_mw[i] = static_cast<std::int64_t>(std::floor(exact));
        assigned += share_mw[i];
        remainders.emplace_back(exact - std::floor(exact), i);
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
              });
    const std::int64_t leftover = total_mw - assigned;  // always in [0, n)
    for (std::int64_t k = 0; k < leftover; ++k) {
        ++share_mw[remainders[static_cast<std::size_t>(k) % n].second];
    }
    std::vector<watts> budgets(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        budgets[i] = static_cast<watts>(share_mw[i]) / 1000.0;
    }
    return budgets;
}

std::vector<double> global_coordinator::pod_prices(seconds now) const {
    std::vector<double> prices;
    if (options_.regions.empty()) return prices;
    prices.resize(pods_.size());
    for (std::size_t i = 0; i < pods_.size(); ++i) {
        prices[i] = options_.regions.price_of_pod(i, now);
    }
    return prices;
}

void global_coordinator::redistribute_budgets(const decision_input& in,
                                              watts total) {
    std::vector<pod_report> reports;
    reports.reserve(pods_.size());
    for (const auto& pod : pods_) reports.push_back(pod->report(in.current));
    // Regional bias: growth headroom is weighted cheapest/price, so at equal
    // pressure a cheap region's pod receives the larger share of the slack.
    std::vector<double> weight;
    const std::vector<double>* weight_ptr = nullptr;
    if (!options_.regions.empty()) {
        const std::vector<double> prices = pod_prices(in.now);
        const double cheapest = *std::min_element(prices.begin(), prices.end());
        weight.resize(prices.size());
        for (std::size_t i = 0; i < prices.size(); ++i) {
            weight[i] = cheapest / prices[i];
        }
        weight_ptr = &weight;
    }
    budgets_ = redistribute(total, options_.grow_margin, reports, weight_ptr);
    // A zero share (an all-idle pod under a tight budget) still needs a
    // positive cap for the terminal gate; one milliwatt forbids any
    // powered-on host just as effectively. The milliwatt is *borrowed* from
    // the currently largest share, so the applied caps keep summing to the
    // cluster budget exactly (whenever the budget affords a milliwatt per
    // pod — below that no positive-cap split can conserve).
    std::vector<std::int64_t> mw(budgets_.size());
    for (std::size_t i = 0; i < budgets_.size(); ++i) {
        mw[i] = std::llround(budgets_[i] * 1000.0);
    }
    for (std::size_t i = 0; i < mw.size(); ++i) {
        if (mw[i] > 0) continue;
        const auto big = std::max_element(mw.begin(), mw.end());
        if (*big >= 2) --*big;
        mw[i] = 1;
    }
    for (std::size_t i = 0; i < pods_.size(); ++i) {
        budgets_[i] = static_cast<watts>(mw[i]) / 1000.0;
        pods_[i]->set_budget(budgets_[i]);
    }
    if (obs::journaling(sink_)) {
        obs::event e("pod_budget", in.now);
        std::vector<double> draw, budget;
        for (std::size_t i = 0; i < pods_.size(); ++i) {
            draw.push_back(reports[i].draw);
            budget.push_back(budgets_[i]);
        }
        e.num("cluster_budget_watts", total)
            .num_list("draw_watts", std::move(draw))
            .num_list("budget_watts", std::move(budget));
        sink_->record(e);
    }
}

void global_coordinator::emit_pod_decision(const pod_controller& pod,
                                           const pod_outcome& po,
                                           const cluster::configuration& at,
                                           seconds now,
                                           const char* level) const {
    if (!obs::journaling(sink_)) return;
    const pod_report r = pod.report(at);
    const watts budget = pod.budget();
    obs::event e("pod_decision", now);
    e.integer("pod", static_cast<std::int64_t>(pod.spec().id))
        .text("level", level)
        .boolean("invoked", po.invoked)
        .integer("actions", static_cast<std::int64_t>(po.actions.size()))
        .num("duration", po.decision.stats.duration)
        .integer("expansions",
                 static_cast<std::int64_t>(po.decision.stats.expansions))
        .integer("generated",
                 static_cast<std::int64_t>(po.decision.stats.generated))
        .num("expected_utility", po.decision.expected_utility)
        // JSON has no infinity; -1 marks an uncapped pod.
        .num("budget_watts", std::isfinite(budget) ? budget : -1.0)
        .num("draw_watts", r.draw)
        .num("pressure", r.pressure)
        .text("mode", to_string(po.decision.mode));
    sink_->record(e);
}

strategy::outcome global_coordinator::decide_two_level(const decision_input& in) {
    outcome out;

    const auto d2 = escalation_->step(in);
    if (d2.invoked) {
        obs_escalations_.add();
        obs_escalation_actions_.add(static_cast<std::int64_t>(d2.actions.size()));
        obs_escalation_seconds_.observe(d2.stats.duration);
        if (obs::journaling(sink_)) {
            const pod_report r = cluster_report(*model_, in.current);
            obs::event e("pod_decision", in.now);
            e.integer("pod", -1)
                .text("level", "global")
                .boolean("invoked", true)
                .integer("actions", static_cast<std::int64_t>(d2.actions.size()))
                .num("duration", d2.stats.duration)
                .integer("expansions",
                         static_cast<std::int64_t>(d2.stats.expansions))
                .integer("generated",
                         static_cast<std::int64_t>(d2.stats.generated))
                .num("expected_utility", d2.expected_utility)
                .num("budget_watts", -1.0)
                .num("draw_watts", r.draw)
                .num("pressure", r.pressure)
                .text("mode", to_string(d2.mode));
            sink_->record(e);
        }
        // An invoked search costs time and power whether or not a plan came
        // back; self-aware accounting keeps the empty-plan case on the books.
        out.invoked = true;
        out.decision_delay = d2.stats.duration;
        out.decision_power_cost = d2.stats.search_power_cost;
        accumulate(out.stats, d2.stats);
        if (!d2.actions.empty()) {
            // The escalation's reconfiguration preempts pod refinements for
            // this interval (they would race the larger change).
            out.actions = d2.actions;
            out.stats = d2.stats;
            return out;
        }
    }

    // Level-1 pods refine sequentially over a shared probe; their disjoint
    // scopes keep sibling plans composable, and since they run concurrently
    // in the model the decision delay is the slowest pod, not the sum —
    // added to the escalation search's duration when one preceded them.
    cluster::configuration probe = in.current;
    seconds pod_delay = 0.0;
    for (auto& pod : pods_) {
        decision_input step_in;
        step_in.now = in.now;
        step_in.rates = in.rates;
        step_in.current = probe;
        step_in.last_interval_utility = in.last_interval_utility;
        const auto po = pod->step(step_in);
        emit_pod_decision(*pod, po, probe, in.now, "pod");
        if (!po.invoked) continue;
        out.invoked = true;
        pod_delay = std::max(pod_delay, po.decision.stats.duration);
        out.decision_power_cost += po.decision.stats.search_power_cost;
        accumulate(out.stats, po.decision.stats);
        for (const auto& a : po.actions) {
            // Skip defensively if a sibling's change made one inapplicable.
            if (!cluster::applicable(*model_, probe, a)) continue;
            probe = cluster::apply(*model_, probe, a);
            out.actions.push_back(a);
        }
    }
    out.decision_delay += pod_delay;
    out.stats.duration = out.decision_delay;
    out.stats.search_power_cost = out.decision_power_cost;
    return out;
}

strategy::outcome global_coordinator::decide_sharded(const decision_input& in) {
    ensure_pods(in.current);
    reconcile_ownership(in.current, in.now);
    // A budget schedule (stepped power-cap emergency) overrides the static
    // budget interval by interval; its values are validated positive, so a
    // scheduled run always has a finite cap.
    const watts budget_now = options_.budget_schedule
                                 ? options_.budget_schedule->at(in.now)
                                 : options_.power_budget;
    if (std::isfinite(budget_now)) redistribute_budgets(in, budget_now);
    const std::int64_t moves_before = brokered_migrations_;

    outcome out;
    if (pods_.size() == 1) {
        // Single pod over the whole cluster: the identity lens passes the
        // input straight through, so this path is byte-identical to the flat
        // mistral_strategy (pod_equivalence_test.cc holds it to that).
        const auto po = pods_[0]->step(in);
        out.invoked = po.decision.invoked;
        out.actions = po.actions;
        out.decision_delay = po.decision.stats.duration;
        out.decision_power_cost = po.decision.stats.search_power_cost;
        out.stats = po.decision.stats;
        emit_pod_decision(*pods_[0], po, in.current, in.now, "pod");
        return out;
    }

    std::vector<pod_outcome> outs(pods_.size());
    // Journal sinks are not thread-safe; journaling forces sequential pods.
    if (options_.parallel_pods && !obs::journaling(sink_)) {
        std::vector<std::thread> workers;
        workers.reserve(pods_.size());
        for (std::size_t i = 0; i < pods_.size(); ++i) {
            workers.emplace_back(
                [this, i, &in, &outs] { outs[i] = pods_[i]->step(in); });
        }
        for (auto& w : workers) w.join();
    } else {
        for (std::size_t i = 0; i < pods_.size(); ++i) {
            outs[i] = pods_[i]->step(in);
        }
    }

    cluster::configuration probe = in.current;
    for (std::size_t i = 0; i < pods_.size(); ++i) {
        const auto& po = outs[i];
        emit_pod_decision(*pods_[i], po, in.current, in.now, "pod");
        if (!po.invoked) continue;
        out.invoked = true;
        // Pods decide concurrently in the model: the cluster's decision
        // latency is the slowest pod, the power self-cost the sum.
        out.decision_delay = std::max(out.decision_delay, po.decision.stats.duration);
        out.decision_power_cost += po.decision.stats.search_power_cost;
        accumulate(out.stats, po.decision.stats);
        for (const auto& a : po.actions) {
            if (!cluster::applicable(*model_, probe, a)) continue;
            probe = cluster::apply(*model_, probe, a);
            out.actions.push_back(a);
        }
    }

    gather_strays(probe, out, in.now);
    broker_migrations(probe, out, in.now);

    // Region-aware runs journal the economic context each interval: the
    // per-pod prices the biases used, the budget in force, and how many
    // brokered moves they produced.
    if (!options_.regions.empty() && obs::journaling(sink_)) {
        obs::event e("econ_decision", in.now);
        e.num_list("pod_prices", pod_prices(in.now))
            .num("budget_watts", std::isfinite(budget_now) ? budget_now : -1.0)
            .integer("brokered_moves", brokered_migrations_ - moves_before);
        sink_->record(e);
    }

    out.stats.duration = out.decision_delay;
    out.stats.search_power_cost = out.decision_power_cost;
    return out;
}

void global_coordinator::gather_strays(cluster::configuration& probe,
                                       outcome& out, seconds now) {
    for (const std::size_t app : stray_apps_) {
        // Reunify on the pod holding the largest deployed share (ties to
        // the lower pod id) — the cheapest completion of the interrupted
        // move. Ownership follows at the next reconciliation, once the
        // migrations have actually executed.
        std::vector<double> share(pods_.size(), 0.0);
        for (const auto& vm : model_->vms()) {
            if (vm.app.index() != app) continue;
            const auto& p = probe.placement(vm.vm);
            if (!p) continue;
            share[host_pod_[static_cast<std::size_t>(p->host.index())]] +=
                p->cpu_cap;
        }
        std::size_t target = 0;
        for (std::size_t i = 1; i < pods_.size(); ++i) {
            if (share[i] > share[target]) target = i;
        }
        const auto plan =
            first_fit_plan(*model_, probe, app, pods_[target]->spec().hosts);
        if (plan.empty()) continue;  // no room yet: retry next interval
        for (const auto& a : plan) {
            MISTRAL_CHECK(cluster::applicable(*model_, probe, a));
            probe = cluster::apply(*model_, probe, a);
            out.actions.push_back(a);
        }
        out.invoked = true;
        obs_migrations_.add();
        if (obs::journaling(sink_)) {
            obs::event e("pod_migration", now);
            e.integer("app", static_cast<std::int64_t>(app))
                .integer("from", -1)  // gather, not a brokered donor
                .integer("to", static_cast<std::int64_t>(target))
                .integer("vms", static_cast<std::int64_t>(plan.size()));
            sink_->record(e);
        }
    }
}

void global_coordinator::broker_migrations(cluster::configuration& probe,
                                           outcome& out, seconds now) {
    if (!options_.migration_broker || pods_.size() < 2) return;

    // Regional price bias. The watermarks and bid scores are scaled by the
    // pod's price relative to the cheapest region in force *now*: an
    // expensive pod's donor watermark drops (it offers load sooner), its
    // accept watermark drops (it adopts load only when very idle), and a
    // cheap pod's bid wins ties. Every scale is exactly 1 when regions are
    // unset, so the region-blind broker is untouched.
    const bool regional = !options_.regions.empty();
    const std::vector<double> price = pod_prices(now);
    double cheapest = 1.0;
    if (regional) cheapest = *std::min_element(price.begin(), price.end());
    const auto scale = [&](std::size_t i) {
        return regional ? cheapest / price[i] : 1.0;
    };

    for (int move = 0; move < options_.max_brokered_moves; ++move) {
        std::vector<pod_report> reports;
        reports.reserve(pods_.size());
        for (const auto& pod : pods_) reports.push_back(pod->report(probe));

        // Propose: the most urgent pod above its (price-scaled) watermark
        // offers its smallest deployed app (a donor keeps at least one app).
        // Urgency is pressure weighted by price/cheapest, so at equal
        // pressure the expensive region donates first.
        const auto urgency = [&](std::size_t i) {
            return regional ? reports[i].pressure * (price[i] / cheapest)
                            : reports[i].pressure;
        };
        int donor = -1;
        for (std::size_t i = 0; i < pods_.size(); ++i) {
            if (reports[i].pressure <= options_.donor_pressure * scale(i)) continue;
            if (pods_[i]->apps().size() < 2) continue;
            if (donor < 0 ||
                urgency(i) > urgency(static_cast<std::size_t>(donor))) {
                donor = static_cast<int>(i);
            }
        }
        if (donor < 0) return;

        std::size_t app = model_->app_count();
        double app_cap = 0.0;
        for (const std::size_t a : pods_[static_cast<std::size_t>(donor)]->apps()) {
            double cap = 0.0;
            std::size_t deployed = 0;
            for (const auto& vm : model_->vms()) {
                if (vm.app.index() != a) continue;
                const auto& p = probe.placement(vm.vm);
                if (!p) continue;
                cap += p->cpu_cap;
                ++deployed;
            }
            if (deployed == 0) continue;  // nothing to move
            if (app == model_->app_count() || cap < app_cap) {
                app = a;
                app_cap = cap;
            }
        }
        if (app == model_->app_count()) return;

        // Accept: pods under their (price-scaled) accept watermark bid a
        // first-fit plan; the lowest price-weighted resulting pressure wins,
        // ties to the lower pod id — cheap regions out-bid expensive ones at
        // equal load.
        int best = -1;
        double best_score = 0.0;
        std::vector<cluster::action> best_plan;
        for (std::size_t j = 0; j < pods_.size(); ++j) {
            if (static_cast<int>(j) == donor) continue;
            if (reports[j].pressure >= options_.accept_pressure * scale(j)) continue;
            auto plan = first_fit_plan(*model_, probe, app, pods_[j]->spec().hosts);
            if (plan.empty()) continue;
            cluster::configuration scratch = probe;
            for (const auto& a : plan) scratch = cluster::apply(*model_, scratch, a);
            const double pr = pods_[j]->report(scratch).pressure;
            const double score = regional ? pr * (price[j] / cheapest) : pr;
            if (best < 0 || score < best_score) {
                best = static_cast<int>(j);
                best_score = score;
                best_plan = std::move(plan);
            }
        }
        if (best < 0) return;

        std::size_t moved = best_plan.size();
        for (const auto& a : best_plan) {
            MISTRAL_CHECK(cluster::applicable(*model_, probe, a));
            probe = cluster::apply(*model_, probe, a);
            out.actions.push_back(a);
        }
        // Optimistic transfer: it keeps this interval's loop from re-offering
        // the app, and if the executor aborts the plan the next decide()'s
        // reconcile_ownership re-derives ownership from actual placements.
        pods_[static_cast<std::size_t>(donor)]->release_app(app);
        pods_[static_cast<std::size_t>(best)]->adopt_app(app);
        ++brokered_migrations_;
        obs_migrations_.add();
        if (regional && price[static_cast<std::size_t>(best)] <
                            price[static_cast<std::size_t>(donor)]) {
            obs_region_moves_.add();
        }
        out.invoked = true;
        if (obs::journaling(sink_)) {
            obs::event e("pod_migration", now);
            e.integer("app", static_cast<std::int64_t>(app))
                .integer("from", static_cast<std::int64_t>(donor))
                .integer("to", static_cast<std::int64_t>(best))
                .integer("vms", static_cast<std::int64_t>(moved));
            sink_->record(e);
        }
    }
}

}  // namespace mistral::core
