// One composable way to configure controllers.
//
// Before this builder existed, every example and bench re-plumbed the same
// handful of fields across several option structs (`controller_options`,
// `coordinator_options`, `search_options` plus the evaluation sub-options):
// band width here, sink there, meter step in a third place. The builder
// collapses that sprawl into a single fluent surface with two escape
// hatches — `tweak()` for any field without a dedicated setter, and
// `pod(id, fn)` for per-pod overrides applied on top of the pod_spec's own
// band/menu when building a sharded or two-level controller.
//
// Layering, lowest precedence first:
//   base options  →  pod_spec band/menu  →  pod(id, fn) override.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>

#include "core/controller.h"
#include "core/pods.h"
#include "core/search_meter.h"

namespace mistral::core {

class controller_builder {
public:
    controller_builder() = default;

    // ---- the fields examples actually set --------------------------------
    controller_builder& band(req_per_sec width);
    controller_builder& threads(std::size_t n);
    controller_builder& self_aware(bool on);
    controller_builder& delta_eval(bool on);
    controller_builder& degraded(bool on);
    controller_builder& divergence_guard(bool on);
    // Receding-horizon lookahead over `horizon` control windows; 0 disables.
    // horizon = 1 enables the rung with byte-identical decisions to the flat
    // controller (the differential anchor). Per-pod horizons come from the
    // usual pod(id, fn) override on options.lookahead.
    controller_builder& lookahead(int horizon);
    controller_builder& sink(obs::sink* s);
    // Economics layer: tariff, pricing model, carbon price, cap schedule
    // (core/utility.h econ_profile). The coordinator layers per-region
    // tariffs on top of this via pod overrides.
    controller_builder& econ(econ_profile profile);
    controller_builder& power_cap(watts cap);
    controller_builder& menu(cluster::action_menu m);
    // Deterministic model-clock meter step (seconds per A* expansion).
    controller_builder& meter_step(seconds per_expansion);

    // Escape hatch: arbitrary mutation of the assembled base options.
    controller_builder& tweak(const std::function<void(controller_options&)>& fn);
    // Per-pod override, applied after the pod_spec's band/menu when this
    // builder configures pod `id` of a partition. Repeated registrations for
    // the same pod compose in order (each sees the previous one's result).
    controller_builder& pod(std::size_t id,
                            const std::function<void(controller_options&)>& fn);

    // ---- products --------------------------------------------------------
    // The assembled base options (tweaks applied, pod overrides not).
    [[nodiscard]] controller_options build() const;
    // Options for one pod: base, then the spec's band/menu, then the pod
    // override registered for spec.id (if any).
    [[nodiscard]] controller_options build_for(const pod_spec& spec) const;
    // A fresh deterministic meter matching meter_step().
    [[nodiscard]] std::unique_ptr<search_meter> make_meter() const;
    // A flat controller over the whole cluster from the base options.
    [[nodiscard]] std::unique_ptr<mistral_controller> build_controller(
        const cluster::cluster_model& model, cost::cost_table costs) const;

    [[nodiscard]] seconds meter_per_expansion() const { return meter_step_; }

private:
    controller_options base_{};
    seconds meter_step_ = 0.002;  // model_clock_meter's default
    std::map<std::size_t, std::function<void(controller_options&)>> pod_overrides_;
};

}  // namespace mistral::core
