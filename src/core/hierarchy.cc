#include "core/hierarchy.h"

#include <algorithm>

#include "common/check.h"

namespace mistral::core {

hierarchical_controller::hierarchical_controller(
    const cluster::cluster_model& model, cost::cost_table costs,
    std::vector<std::vector<std::size_t>> level1_groups, hierarchy_options options)
    : model_(&model) {
    MISTRAL_CHECK(!level1_groups.empty());
    std::vector<bool> claimed(model.host_count(), false);
    for (const auto& group : level1_groups) {
        MISTRAL_CHECK(!group.empty());
        for (std::size_t h : group) {
            MISTRAL_CHECK(h < model.host_count());
            MISTRAL_CHECK_MSG(!claimed[h], "host groups must be disjoint");
            claimed[h] = true;
        }
    }

    // First level: band 0, CPU tuning + intra-group migration only.
    for (const auto& group : level1_groups) {
        controller_options opts = options.base;
        opts.band_width = 0.0;
        opts.search.menu = {.cpu_tuning = true,
                            .replication = false,
                            .migration = true,
                            .host_power = false};
        opts.search.host_scope.assign(model.host_count(), false);
        for (std::size_t h : group) opts.search.host_scope[h] = true;
        level1_.push_back(std::make_unique<mistral_controller>(
            model, costs, opts,
            std::make_unique<model_clock_meter>(options.meter_per_expansion)));
    }

    // Second level: wide band, full action set, whole cluster.
    controller_options opts2 = options.base;
    opts2.band_width = options.level2_band;
    level2_ = std::make_unique<mistral_controller>(
        model, std::move(costs), opts2,
        std::make_unique<model_clock_meter>(options.meter_per_expansion));
}

strategy::outcome hierarchical_controller::decide(const decision_input& in) {
    outcome out;

    const auto d2 = level2_->step(in);
    if (d2.invoked) {
        level2_durations_.add(d2.stats.duration);
        if (!d2.actions.empty()) {
            out.invoked = true;
            out.actions = d2.actions;
            out.decision_delay = d2.stats.duration;
            out.decision_power_cost = d2.stats.search_power_cost;
            out.stats = d2.stats;
            return out;
        }
    }

    // First-level controllers refine in parallel over disjoint host groups;
    // their action lists compose, and the decision delay is the slowest one.
    cluster::configuration probe = in.current;
    for (auto& controller : level1_) {
        const auto d1 = controller->step(
            {in.now, in.rates, probe, in.last_interval_utility});
        if (!d1.invoked) continue;
        out.invoked = true;
        level1_durations_.add(d1.stats.duration);
        out.decision_delay = std::max(out.decision_delay, d1.stats.duration);
        out.decision_power_cost += d1.stats.search_power_cost;
        out.stats.expansions += d1.stats.expansions;
        out.stats.generated += d1.stats.generated;
        out.stats.pruned = out.stats.pruned || d1.stats.pruned;
        for (const auto& a : d1.actions) {
            // Disjoint scopes keep sibling plans composable; skip defensively
            // if a race ever makes one inapplicable.
            if (!cluster::applicable(*model_, probe, a)) continue;
            probe = cluster::apply(*model_, probe, a);
            out.actions.push_back(a);
        }
    }
    out.stats.duration = out.decision_delay;
    out.stats.search_power_cost = out.decision_power_cost;
    return out;
}

}  // namespace mistral::core
