#include "core/hierarchy.h"

namespace mistral::core {

hierarchical_controller::hierarchical_controller(
    const cluster::cluster_model& model, cost::cost_table costs,
    std::vector<pod_spec> level1, controller_builder builder,
    req_per_sec escalation_band) {
    coordinator_options copts;
    copts.escalation_band = escalation_band;
    coord_ = std::make_unique<global_coordinator>(
        model, std::move(costs), std::move(level1), std::move(builder), copts);
}

hierarchical_controller::hierarchical_controller(
    const cluster::cluster_model& model, cost::cost_table costs,
    std::vector<std::vector<std::size_t>> level1_groups, hierarchy_options options)
    : hierarchical_controller(
          model, std::move(costs), level1_pods(std::move(level1_groups)),
          // By value: the builder outlives this constructor (the coordinator
          // copies and retains it), so the lambda must not capture the
          // by-value ctor parameter by reference.
          controller_builder{}
              .tweak([base = options.base](controller_options& o) { o = base; })
              .meter_step(options.meter_per_expansion),
          options.level2_band) {}

strategy::outcome hierarchical_controller::decide(const decision_input& in) {
    return coord_->decide(in);
}

}  // namespace mistral::core
