#include "core/experiment.h"

#include <algorithm>

#include "apps/rubis.h"
#include "common/check.h"
#include "obs/journal.h"
#include "workload/generators.h"

namespace mistral::core {

scenario make_rubis_scenario(scenario_options options) {
    MISTRAL_CHECK(options.host_count >= 1);
    MISTRAL_CHECK(options.app_count >= 1);

    std::vector<apps::application_spec> specs;
    for (std::size_t a = 0; a < options.app_count; ++a) {
        specs.push_back(apps::rubis_browsing("RUBiS-" + std::to_string(a + 1)));
    }
    cluster::cluster_model model(cluster::uniform_hosts(options.host_count),
                                 std::move(specs));

    if (options.traces.empty()) {
        const auto all = wl::paper_workloads(options.seed);
        for (std::size_t a = 0; a < options.app_count; ++a) {
            options.traces.push_back(all[a % all.size()]);
        }
    }
    MISTRAL_CHECK(options.traces.size() == options.app_count);

    // Initial placement: app a's minimum replica set at 40 % caps on the
    // host pair {2a, 2a+1} (mod host count) — also a valid Perf-Cost pool
    // layout. All hosts start powered on; the strategies that care shut the
    // spare ones down.
    cluster::configuration initial(model.vm_count(), model.host_count());
    for (std::size_t h = 0; h < model.host_count(); ++h) {
        initial.set_host_power(host_id{static_cast<std::int32_t>(h)}, true);
    }
    const std::size_t hosts_per_app =
        std::max<std::size_t>(1, model.host_count() / options.app_count);
    for (std::size_t a = 0; a < options.app_count; ++a) {
        const app_id app{static_cast<std::int32_t>(a)};
        std::size_t k = 0;
        for (std::size_t t = 0; t < model.app(app).tier_count(); ++t) {
            const auto& tier = model.app(app).tiers()[t];
            for (int rep = 0; rep < tier.min_replicas; ++rep) {
                const std::size_t h =
                    (a * hosts_per_app + (k++ % hosts_per_app)) % model.host_count();
                initial.deploy(model.tier_vms(app, t)[static_cast<std::size_t>(rep)],
                               host_id{static_cast<std::int32_t>(h)}, 0.4);
            }
        }
    }
    std::string why;
    MISTRAL_CHECK_MSG(is_candidate(model, initial, &why),
                      "scenario initial configuration invalid: " << why);

    scenario out{std::move(model), std::move(initial), options.traces, options};
    return out;
}

run_result run_scenario(const scenario& scn, strategy& strat) {
    const auto& model = scn.model;
    const seconds interval = scn.options.monitoring_interval;
    MISTRAL_CHECK(interval > 0.0);
    MISTRAL_CHECK(scn.traces.size() == model.app_count());

    sim::testbed_options tb_options = scn.options.testbed;
    if (tb_options.sink == nullptr) tb_options.sink = scn.options.sink;
    sim::testbed tb(model, scn.initial, tb_options);
    // Measured-utility pricing. With an econ profile the harness's own model
    // re-indexes the tariff each interval, so both econ-aware and price-blind
    // strategies are *measured* under the same time-varying economics —
    // that's the comparison the day/night bench makes. Disabled, this is the
    // original constant-price model, bit for bit.
    const bool econ_on = scn.options.econ.enabled;
    utility_model util{scn.options.utility};
    if (econ_on) util.bind_econ(scn.options.econ);
    // Sensor faults corrupt only what the strategy observes; the utility
    // accounting below always uses the true rates.
    sim::sensor_fault_injector sensors(scn.options.sensor_faults,
                                       scn.options.seed ^ 0x5e4150f4c75ULL);

    run_result out;
    out.strategy_name = strat.name();
    out.violation_fraction.assign(model.app_count(), 0.0);

    const seconds start = scn.traces.front().start_time();
    seconds end = scn.traces.front().end_time();
    for (const auto& tr : scn.traces) end = std::min(end, tr.end_time());

    running_stats power_stats;
    dollars cumulative = 0.0;
    dollars last_utility = 0.0;
    std::size_t intervals = 0;

    // Fault notices accumulated between decisions (the strategy only decides
    // when the testbed is idle, which can span several windows).
    std::vector<cluster::action> pending_failed;
    std::vector<std::int32_t> pending_hosts_failed;
    std::vector<std::int32_t> pending_hosts_recovered;

    for (seconds t = start; t + interval <= end + 1e-9; t += interval) {
        std::vector<req_per_sec> rates;
        rates.reserve(model.app_count());
        for (const auto& tr : scn.traces) rates.push_back(tr.mean_rate(t, t + interval));

        // What the strategy *observes* this window. An armed injector runs
        // every window (its delay/stuck state is per window, not per
        // decision); an inert one leaves the true rates untouched.
        std::vector<req_per_sec> observed_rates = rates;
        std::vector<double> observed_samples;
        if (!sensors.inert()) {
            wl::telemetry_window window;
            window.time = t;
            window.duration = interval;
            window.rates = rates;
            window.samples.reserve(model.app_count());
            for (const auto r : rates) window.samples.push_back(r * interval);
            const auto faults = sensors.corrupt(window);
            observed_rates = std::move(window.rates);
            observed_samples = std::move(window.samples);
            if (obs::journaling(scn.options.sink)) {
                for (const auto& f : faults) {
                    obs::event e("telemetry_fault", t);
                    e.integer("app", static_cast<std::int64_t>(f.app))
                        .text("kind", sim::to_string(f.kind));
                    scn.options.sink->record(e);
                }
            }
        }

        // While a previous sequence is still executing, the controller holds
        // off — re-planning against a configuration that is mid-transition
        // would race the in-flight actions.
        strategy::outcome decision;
        if (!tb.busy()) {
            decision_input din{t, observed_rates, tb.config(), last_utility};
            din.samples = std::move(observed_samples);
            din.failed = std::move(pending_failed);
            din.hosts_failed = std::move(pending_hosts_failed);
            din.hosts_recovered = std::move(pending_hosts_recovered);
            pending_failed.clear();
            pending_hosts_failed.clear();
            pending_hosts_recovered.clear();
            decision = strat.decide(din);
        }
        if (decision.invoked) {
            ++out.invocations;
            out.search_duration.add(decision.decision_delay);
            out.total_search_cost += decision.decision_power_cost;
        }
        if (!decision.actions.empty()) {
            tb.submit(decision.actions, decision.decision_delay);
            out.total_actions += decision.actions.size();
        }

        const auto obs = tb.advance(interval, rates);
        pending_failed.insert(pending_failed.end(), obs.failed.begin(),
                              obs.failed.end());
        pending_hosts_failed.insert(pending_hosts_failed.end(),
                                    obs.hosts_failed.begin(),
                                    obs.hosts_failed.end());
        pending_hosts_recovered.insert(pending_hosts_recovered.end(),
                                       obs.hosts_recovered.begin(),
                                       obs.hosts_recovered.end());
        out.total_failed_actions += obs.failed.size();

        std::vector<seconds> targets(model.app_count());
        for (std::size_t a = 0; a < model.app_count(); ++a) {
            targets[a] = model.app(app_id{static_cast<std::int32_t>(a)})
                             .target_response_time(rates[a]);
            if (obs.response_time[a] > targets[a]) out.violation_fraction[a] += 1.0;
        }
        if (econ_on) util.update_econ(t);
        const dollars u = util.interval_utility(rates, obs.response_time, targets,
                                                obs.power) -
                          decision.decision_power_cost;
        cumulative += u;
        last_utility = u;
        power_stats.add(obs.power);
        ++intervals;

        const double tm = obs.time;
        for (std::size_t a = 0; a < model.app_count(); ++a) {
            out.series.series("rt_" + model.app(app_id{static_cast<std::int32_t>(a)})
                                          .name())
                .add(tm, obs.response_time[a] * 1000.0);  // ms, like the figures
        }
        out.series.series("power").add(tm, obs.power);
        out.series.series("utility").add(tm, u);
        out.series.series("cum_utility").add(tm, cumulative);
        out.series.series("hosts").add(tm, static_cast<double>(
                                                tb.config().active_host_count()));
        out.series.series("actions").add(tm, static_cast<double>(decision.actions.size()));
        out.series.series("search_ms").add(tm, decision.decision_delay * 1000.0);
        // The controller's per-interval self-cost (its own power, in $): the
        // wall-time side is search_ms above; together they attribute the
        // decision overhead Eq. 3 charges to the interval that paid it.
        out.series.series("search_cost").add(tm, decision.decision_power_cost);
        if (!obs.failed.empty()) {
            out.series.series("failed").add(tm, static_cast<double>(obs.failed.size()));
        }
        if (econ_on) {
            // Decompose the interval's measured utility into its economic
            // sides: power spend at the tariff in force (power_rate is ≤ 0
            // and already includes the carbon-price term), carbon mass from
            // the intensity series, and what remains of interval_utility —
            // the SLA revenue under the pricing model.
            const dollars power_cost = -util.power_rate(obs.power) * interval;
            const double grams = obs.power * interval / 3600.0 *
                                 util.econ_now().carbon_intensity;
            out.energy_dollars += power_cost;
            out.carbon_grams += grams;
            out.revenue_dollars += u + decision.decision_power_cost + power_cost;
            out.series.series("energy_cost").add(tm, power_cost);
            out.series.series("carbon_g").add(tm, grams);
        }
        out.total_wasted_seconds += obs.wasted_fraction * obs.window;

        if (obs::journaling(scn.options.sink)) {
            obs::event e("interval", tm);
            e.num_list("rates", rates)
                .num_list("rt", obs.response_time)
                .num("power", obs.power)
                .num("utility", u)
                .num("cum_utility", cumulative)
                .integer("hosts", static_cast<std::int64_t>(
                                      tb.config().active_host_count()))
                .boolean("invoked", decision.invoked)
                .integer("actions",
                         static_cast<std::int64_t>(decision.actions.size()))
                .integer("failed", static_cast<std::int64_t>(obs.failed.size()))
                .num("adapting_fraction", obs.adapting_fraction)
                .num("wasted_fraction", obs.wasted_fraction)
                .num("search_seconds", decision.decision_delay)
                .num("search_cost", decision.decision_power_cost);
            scn.options.sink->record(e);
        }
    }

    out.cumulative_utility = cumulative;
    out.mean_power = power_stats.mean();
    if (intervals > 0) {
        for (auto& v : out.violation_fraction) v /= static_cast<double>(intervals);
    }
    if (econ_on) {
        if (auto* reg = obs::metrics_of(scn.options.sink)) {
            reg->register_gauge("mistral_econ_energy_dollars",
                                "Tariffed power spend of the run (carbon price included)")
                .set(out.energy_dollars);
            reg->register_gauge("mistral_econ_carbon_grams",
                                "Carbon mass emitted by the run's metered energy")
                .set(out.carbon_grams);
            reg->register_gauge("mistral_econ_revenue_dollars",
                                "SLA revenue of the run under the pricing model")
                .set(out.revenue_dollars);
        }
    }
    return out;
}

void print_run_summary(const run_result& result, std::ostream& out) {
    out << "== " << result.strategy_name << " ==\n";
    out << "  cumulative utility  $" << result.cumulative_utility << "\n";
    out << "  mean power          " << result.mean_power << " W\n";
    for (std::size_t a = 0; a < result.violation_fraction.size(); ++a) {
        out << "  violations app" << a << "     "
            << result.violation_fraction[a] * 100.0 << " %\n";
    }
    out << "  invocations         " << result.invocations << "\n";
    out << "  actions             " << result.total_actions << " ("
        << result.total_failed_actions << " failed)\n";
    out << "  search time         " << result.search_duration.mean()
        << " s mean over " << result.search_duration.count() << " decisions\n";
    out << "  search power cost   $" << result.total_search_cost << "\n";
    out << "  wasted adaptation   " << result.total_wasted_seconds << " s\n";
    if (result.energy_dollars != 0.0 || result.carbon_grams != 0.0 ||
        result.revenue_dollars != 0.0) {
        out << "  energy spend        $" << result.energy_dollars << "\n";
        out << "  carbon emitted      " << result.carbon_grams << " g\n";
        out << "  SLA revenue         $" << result.revenue_dollars << "\n";
    }
}

}  // namespace mistral::core
