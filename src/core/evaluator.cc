#include "core/evaluator.h"

#include <cmath>
#include <utility>

#include "cluster/translate.h"
#include "common/check.h"
#include "lqn/solver.h"
#include "obs/journal.h"

namespace mistral::core {

// ---- eval_memo -------------------------------------------------------------

eval_memo::eval_memo(std::size_t capacity) : capacity_(capacity) {
    MISTRAL_CHECK(capacity >= 1);
}

std::vector<std::int64_t> eval_memo::quantize(
    const std::vector<req_per_sec>& rates, req_per_sec quantum) {
    // A NaN rate would silently poison every key it touches (NaN never
    // compares equal, llround is UB); a negative rate is a caller bug that a
    // grid key would round into a plausible-looking cell.
    for (const req_per_sec r : rates) {
        MISTRAL_CHECK_MSG(std::isfinite(r) && r >= 0.0,
                          "request rates must be finite and non-negative");
    }
    std::vector<std::int64_t> key;
    key.reserve(rates.size());
    if (quantum <= 0.0) {
        // Exact keys: the rate's bit pattern, so only identical workload
        // vectors share entries. quantum == 0 therefore guarantees a hit can
        // only ever return a value computed under the *identical* workload
        // vector — the delta path's bit-identity proof leans on this.
        for (const req_per_sec r : rates) {
            std::int64_t bits;
            static_assert(sizeof(bits) == sizeof(r));
            __builtin_memcpy(&bits, &r, sizeof(bits));
            key.push_back(bits);
        }
    } else {
        for (const req_per_sec r : rates) {
            key.push_back(static_cast<std::int64_t>(std::llround(r / quantum)));
        }
    }
    return key;
}

void eval_memo::bind_rates(const std::vector<req_per_sec>& rates,
                           req_per_sec quantum) {
    auto key = quantize(rates, quantum);
    if (bound_ && key == rate_key_) return;
    rate_key_ = std::move(key);
    bound_ = true;
    lru_.clear();
    index_.clear();
}

const steady_utility* eval_memo::find(const cluster::configuration& c) {
    const auto it = index_.find(c);
    if (it == index_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return &it->second->second;
}

void eval_memo::insert(const cluster::configuration& c, steady_utility value) {
    const auto it = index_.find(c);
    if (it != index_.end()) {
        it->second->second = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(c, std::move(value));
    index_.emplace(c, lru_.begin());
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
}

void eval_memo::clear() {
    lru_.clear();
    index_.clear();
    hits_ = misses_ = evictions_ = 0;
}

// ---- app_solve_cache -------------------------------------------------------

app_solve_cache::app_solve_cache(std::size_t capacity) : capacity_(capacity) {
    MISTRAL_CHECK(capacity >= 1);
}

const lqn::app_result* app_solve_cache::find(const app_signature& sig) {
    const auto it = index_.find(sig);
    if (it == index_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return &it->second->second;
}

void app_solve_cache::insert(app_signature sig, lqn::app_result value) {
    const auto it = index_.find(sig);
    if (it != index_.end()) {
        it->second->second = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(std::move(sig), std::move(value));
    index_.emplace(lru_.front().first, lru_.begin());
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
}

void app_solve_cache::clear() {
    lru_.clear();
    index_.clear();
    hits_ = misses_ = evictions_ = 0;
}

app_signature make_app_signature(std::size_t app, std::int64_t rate_key,
                                 const lqn::app_deployment& dep,
                                 const std::vector<double>& inflation) {
    app_signature sig;
    std::size_t n = 2;
    for (const auto& tier : dep.tiers) n += 1 + 2 * tier.replicas.size();
    sig.words.reserve(n);
    sig.words.push_back(app);
    sig.words.push_back(static_cast<std::uint64_t>(rate_key));
    for (const auto& tier : dep.tiers) {
        sig.words.push_back(tier.replicas.size());
        for (const auto& rep : tier.replicas) {
            // Caps are multiples of 1e-3 (configuration rounds on write), so
            // the milli count pins the cap's exact double bits; inflation is
            // an arbitrary double and is keyed by bit pattern directly.
            sig.words.push_back(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(std::llround(rep.cpu_cap * 1000.0))));
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(double));
            __builtin_memcpy(&bits, &inflation[rep.host], sizeof(bits));
            sig.words.push_back(bits);
        }
    }
    return sig;
}

// ---- serial_evaluator ------------------------------------------------------

serial_evaluator::serial_evaluator(const cluster::cluster_model& model,
                                   utility_model utility, lqn::model_options lqn,
                                   evaluation_options options)
    : model_(&model),
      utility_(utility),
      lqn_(lqn),
      options_(options),
      memo_(options.memo_capacity),
      app_cache_(options.app_cache_capacity) {
    MISTRAL_CHECK(options_.threads >= 1 && options_.threads <= 256);
    MISTRAL_CHECK(options_.memo_capacity >= 1);
    MISTRAL_CHECK(options_.rate_quantum >= 0.0);
    MISTRAL_CHECK(options_.app_cache_capacity >= 1);
    if (auto* reg = obs::metrics_of(options_.sink)) {
        obs_solves_ = reg->register_counter(
            "mistral_eval_solves_total", "configuration evaluations not served by the memo");
        obs_memo_hits_ = reg->register_counter(
            "mistral_eval_memo_hits_total", "memoized evaluations reused");
        obs_memo_misses_ = reg->register_counter(
            "mistral_eval_memo_misses_total", "evaluations that missed the memo");
        obs_app_solves_ = reg->register_counter(
            "mistral_eval_app_solves_total", "per-app LQN sub-solves performed");
        obs_app_hits_ = reg->register_counter(
            "mistral_eval_app_cache_hits_total", "per-app sub-solves reused");
        obs_app_misses_ = reg->register_counter(
            "mistral_eval_app_cache_misses_total",
            "per-app sub-solves that missed the cache");
    }
}

void serial_evaluator::begin_decision(const std::vector<req_per_sec>& rates) {
    MISTRAL_CHECK(rates.size() == model_->app_count());
    // Econ-aware runs: a tariff factor change (update_econ bumps the shared
    // epoch) re-prices every steady evaluation, so memoized results computed
    // under the previous factors are invalid. The app-solve cache is exempt —
    // it stores LQN response times, which prices never touch. Without an econ
    // binding the epoch is permanently 0 and this is one untaken branch.
    if (utility_.econ_epoch() != econ_epoch_seen_) {
        econ_epoch_seen_ = utility_.econ_epoch();
        memo_.clear();
    }
    rates_ = rates;
    targets_.resize(model_->app_count());
    for (std::size_t a = 0; a < model_->app_count(); ++a) {
        targets_[a] = utility_.planning_target(
            model_->app(app_id{static_cast<std::int32_t>(a)})
                .target_response_time(rates[a]));
    }
    // The per-app elements of the quantized key feed app signatures; the
    // app cache itself is *not* cleared — rates are part of its keys, so
    // sub-solves persist across decisions and re-hit when the workload
    // returns to a previously seen (quantized) level.
    rate_key_ = eval_memo::quantize(rates, options_.rate_quantum);
    memo_.bind_rates(rates, options_.rate_quantum);
}

steady_utility serial_evaluator::compute(const cluster::configuration& config) const {
    const auto solved = lqn::solve(cluster::to_lqn(*model_, config, rates_),
                                   model_->host_count(), lqn_);
    return assemble(config, solved.apps, solved.host_utilization);
}

steady_utility serial_evaluator::assemble(
    const cluster::configuration& config,
    const std::vector<lqn::app_result>& apps,
    const std::vector<fraction>& host_utilization) const {
    steady_utility out;
    out.power = cluster::predicted_power(*model_, config, host_utilization);
    out.power_rate = utility_.power_rate(out.power);
    out.response_times.reserve(model_->app_count());
    for (std::size_t a = 0; a < model_->app_count(); ++a) {
        const seconds rt = apps[a].mean_response_time;
        out.response_times.push_back(rt);
        out.perf_rate += utility_.perf_rate(rates_[a], rt, targets_[a]);
        if (rt > targets_[a]) out.meets_targets = false;
    }
    // steady_rate() accumulates power-first; summing the components here
    // instead would drift by an ulp and is a different number to callers
    // that compare utilities at 1e-12.
    out.rate = utility_.steady_rate(rates_, out.response_times, targets_, out.power);
    out.candidate = is_candidate(*model_, config);
    return out;
}

steady_utility serial_evaluator::solve_config(const cluster::configuration& config) {
    if (!options_.delta_eval) {
        // Whole-configuration solve; charge one sub-solve per app so "LQN
        // solves per decision" stays comparable with the delta path.
        stats_.app_solves += model_->app_count();
        obs_app_solves_.add(static_cast<std::int64_t>(model_->app_count()));
        return compute(config);
    }
    const auto deps = cluster::to_lqn(*model_, config, rates_);
    const auto loads = lqn::compute_host_loads(deps, model_->host_count(), lqn_);
    std::vector<lqn::app_result> apps(deps.size());
    for (std::size_t a = 0; a < deps.size(); ++a) {
        auto sig = make_app_signature(a, rate_key_[a], deps[a], loads.inflation);
        if (const auto* hit = app_cache_.find(sig)) {
            ++stats_.app_cache_hits;
            obs_app_hits_.add();
            apps[a] = *hit;
            continue;
        }
        ++stats_.app_cache_misses;
        ++stats_.app_solves;
        obs_app_misses_.add();
        obs_app_solves_.add();
        apps[a] = lqn::solve_app(deps[a], loads.inflation, lqn_);
        app_cache_.insert(std::move(sig), apps[a]);
    }
    return assemble(config, apps, loads.utilization);
}

steady_utility serial_evaluator::evaluate(const cluster::configuration& config) {
    MISTRAL_CHECK_MSG(!rates_.empty(), "begin_decision() before evaluate()");
    if (const auto* hit = memo_.find(config)) {
        ++stats_.cache_hits;
        obs_memo_hits_.add();
        return *hit;
    }
    ++stats_.cache_misses;
    ++stats_.evaluations;
    obs_memo_misses_.add();
    obs_solves_.add();
    steady_utility value = solve_config(config);
    memo_.insert(config, value);
    return value;
}

std::vector<steady_utility> serial_evaluator::evaluate_batch(
    const std::vector<cluster::configuration>& configs) {
    ++stats_.batches;
    std::vector<steady_utility> out;
    out.reserve(configs.size());
    for (const auto& c : configs) out.push_back(evaluate(c));
    return out;
}

isolated_perf serial_evaluator::compute_isolated(const app_sizing& s) const {
    MISTRAL_CHECK(s.size() == model_->app_count());
    std::vector<lqn::app_deployment> deps;
    std::size_t fake_host = 0;
    for (std::size_t a = 0; a < model_->app_count(); ++a) {
        lqn::app_deployment dep;
        dep.spec = &model_->app(app_id{static_cast<std::int32_t>(a)});
        dep.rate = rates_[a];
        dep.tiers.resize(dep.spec->tier_count());
        for (std::size_t t = 0; t < dep.spec->tier_count(); ++t) {
            for (int r = 0; r < s[a][t].replicas; ++r) {
                dep.tiers[t].replicas.push_back({fake_host++, s[a][t].cap});
            }
        }
        deps.push_back(std::move(dep));
    }
    const auto solved = lqn::solve(deps, fake_host, lqn_);
    isolated_perf out;
    out.response_times.reserve(model_->app_count());
    for (std::size_t a = 0; a < model_->app_count(); ++a) {
        const seconds rt = solved.apps[a].mean_response_time;
        out.response_times.push_back(rt);
        out.perf_rate += utility_.perf_rate(rates_[a], rt, targets_[a]);
        if (rt > targets_[a]) out.meets_all_targets = false;
    }
    return out;
}

isolated_perf serial_evaluator::evaluate_isolated(const app_sizing& s) {
    MISTRAL_CHECK_MSG(!rates_.empty(), "begin_decision() before evaluate_isolated()");
    ++stats_.evaluations;
    obs_solves_.add();
    return compute_isolated(s);
}

std::vector<isolated_perf> serial_evaluator::evaluate_isolated_batch(
    const std::vector<app_sizing>& sizings) {
    std::vector<isolated_perf> out;
    out.reserve(sizings.size());
    for (const auto& s : sizings) out.push_back(evaluate_isolated(s));
    return out;
}

void serial_evaluator::reset_memo() {
    memo_.clear();
    app_cache_.clear();
    stats_ = {};
}

// ---- parallel_evaluator ----------------------------------------------------

parallel_evaluator::parallel_evaluator(const cluster::cluster_model& model,
                                       utility_model utility,
                                       lqn::model_options lqn,
                                       evaluation_options options)
    : serial_evaluator(model, utility, lqn, options) {
    // The calling thread is worker zero; spawn the rest.
    workers_.reserve(options_.threads - 1);
    for (std::size_t i = 0; i + 1 < options_.threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

parallel_evaluator::~parallel_evaluator() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
}

void parallel_evaluator::worker_loop() {
    std::size_t seen_generation = 0;
    for (;;) {
        std::uint32_t generation = 0;
        std::size_t count = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return shutdown_ || job_generation_ != seen_generation;
            });
            if (shutdown_) return;
            seen_generation = job_generation_;
            generation = static_cast<std::uint32_t>(seen_generation);
            count = job_count_;
        }
        drain(generation, count);
    }
}

void parallel_evaluator::drain(std::uint32_t generation, std::size_t count) {
    for (;;) {
        std::uint64_t cursor = job_cursor_.load(std::memory_order_acquire);
        std::size_t i;
        for (;;) {
            // A cursor from a different generation means this job is already
            // over (and possibly replaced); claiming from it would hand out
            // the *new* job's indices against the old count.
            if (static_cast<std::uint32_t>(cursor >> 32) != generation) return;
            i = static_cast<std::uint32_t>(cursor);
            if (i >= count) return;
            if (job_cursor_.compare_exchange_weak(cursor, cursor + 1,
                                                  std::memory_order_acq_rel)) {
                break;
            }
        }
        try {
            job_(i);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!job_error_) job_error_ = std::current_exception();
        }
        if (job_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
            const std::lock_guard<std::mutex> lock(mutex_);
            done_.notify_all();
        }
    }
}

void parallel_evaluator::run_job(const std::function<void(std::size_t)>& fn,
                                 std::size_t count) {
    if (count == 0) return;
    std::uint32_t generation = 0;
    {
        // run_job only starts after the previous job fully completed, so no
        // worker is between claim and done-increment here and reseeding the
        // done counter is race-free.
        const std::lock_guard<std::mutex> lock(mutex_);
        job_ = fn;
        job_count_ = count;
        job_error_ = nullptr;
        job_done_.store(0, std::memory_order_relaxed);
        ++job_generation_;
        generation = static_cast<std::uint32_t>(job_generation_);
        job_cursor_.store(static_cast<std::uint64_t>(generation) << 32,
                          std::memory_order_release);
    }
    wake_.notify_all();
    drain(generation, count);  // the calling thread works the same queue
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
        return job_done_.load(std::memory_order_acquire) == count;
    });
    // All items are done, so no worker will call job_ again this generation.
    job_ = nullptr;
    job_count_ = 0;
    if (job_error_) {
        auto error = std::exchange(job_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void parallel_evaluator::parallel_for(std::size_t count,
                                      const std::function<void(std::size_t)>& fn) {
    // Pool dispatch costs a few wake-ups; below a handful of items the serial
    // loop wins outright and keeps the meter's work accounting honest.
    if (count <= 1 || workers_.empty()) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    run_job(fn, count);
}

std::vector<isolated_perf> parallel_evaluator::evaluate_isolated_batch(
    const std::vector<app_sizing>& sizings) {
    MISTRAL_CHECK_MSG(!rates_.empty(),
                      "begin_decision() before evaluate_isolated_batch()");
    stats_.evaluations += sizings.size();
    obs_solves_.add(static_cast<std::int64_t>(sizings.size()));
    std::vector<isolated_perf> out(sizings.size());
    parallel_for(sizings.size(),
                 [&](std::size_t i) { out[i] = compute_isolated(sizings[i]); });
    return out;
}

std::vector<steady_utility> parallel_evaluator::evaluate_batch(
    const std::vector<cluster::configuration>& configs) {
    MISTRAL_CHECK_MSG(!rates_.empty(), "begin_decision() before evaluate_batch()");
    ++stats_.batches;
    std::vector<steady_utility> out(configs.size());
    std::vector<bool> resolved(configs.size(), false);
    // Memo lookups and duplicate folding stay on the calling thread so the
    // cache's LRU order — and with it every eviction — matches the serial
    // evaluator exactly.
    std::unordered_map<cluster::configuration, std::size_t> first_seen;
    std::vector<std::size_t> work;  // indices needing a real solve
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (const auto* hit = memo_.find(configs[i])) {
            ++stats_.cache_hits;
            obs_memo_hits_.add();
            out[i] = *hit;
            resolved[i] = true;
            continue;
        }
        const auto [it, inserted] = first_seen.emplace(configs[i], i);
        if (inserted) {
            ++stats_.cache_misses;
            obs_memo_misses_.add();
            work.push_back(i);
        } else {
            // Duplicate within the batch: solved once, copied below.
            ++stats_.cache_hits;
            obs_memo_hits_.add();
        }
    }
    if (!work.empty()) {
        stats_.evaluations += work.size();
        obs_solves_.add(static_cast<std::int64_t>(work.size()));
        if (options_.delta_eval) {
            solve_work_delta(configs, work, out);
        } else {
            stats_.app_solves += work.size() * model_->app_count();
            obs_app_solves_.add(
                static_cast<std::int64_t>(work.size() * model_->app_count()));
            parallel_for(work.size(), [&](std::size_t j) {
                out[work[j]] = compute(configs[work[j]]);
            });
        }
        // Publish in input order (deterministic LRU insertion order).
        for (const std::size_t i : work) {
            memo_.insert(configs[i], out[i]);
            resolved[i] = true;
        }
    }
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (resolved[i]) continue;
        out[i] = out[first_seen.at(configs[i])];
    }
    return out;
}

void parallel_evaluator::solve_work_delta(
    const std::vector<cluster::configuration>& configs,
    const std::vector<std::size_t>& work, std::vector<steady_utility>& out) {
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    const std::size_t app_count = model_->app_count();

    // Phase A (calling thread): translate each missed configuration, probe
    // the app cache, and dedupe signatures pending within the batch. A
    // pending hit is counted as a cache hit — the serial order would have
    // inserted that signature's sub-solve before re-probing it — so hit and
    // miss totals match the serial evaluator exactly.
    struct delta_plan {
        std::vector<lqn::app_deployment> deps;
        lqn::host_loads loads;
        std::vector<lqn::app_result> apps;   // cache hits filled here
        std::vector<std::size_t> source;     // sub-job index, or npos if filled
    };
    struct sub_job {
        std::size_t plan = 0;
        std::size_t app = 0;
    };
    std::vector<delta_plan> plans(work.size());
    std::vector<sub_job> jobs;
    std::vector<app_signature> job_sigs;
    std::unordered_map<app_signature, std::size_t, app_signature_hash> pending;
    for (std::size_t p = 0; p < work.size(); ++p) {
        auto& plan = plans[p];
        plan.deps = cluster::to_lqn(*model_, configs[work[p]], rates_);
        plan.loads = lqn::compute_host_loads(plan.deps, model_->host_count(), lqn_);
        plan.apps.resize(app_count);
        plan.source.assign(app_count, npos);
        for (std::size_t a = 0; a < app_count; ++a) {
            auto sig = make_app_signature(a, rate_key_[a], plan.deps[a],
                                          plan.loads.inflation);
            if (const auto* hit = app_cache_.find(sig)) {
                ++stats_.app_cache_hits;
                obs_app_hits_.add();
                plan.apps[a] = *hit;
                continue;
            }
            if (const auto it = pending.find(sig); it != pending.end()) {
                ++stats_.app_cache_hits;
                obs_app_hits_.add();
                plan.source[a] = it->second;
                continue;
            }
            ++stats_.app_cache_misses;
            ++stats_.app_solves;
            obs_app_misses_.add();
            obs_app_solves_.add();
            plan.source[a] = jobs.size();
            pending.emplace(sig, jobs.size());
            jobs.push_back({p, a});
            job_sigs.push_back(std::move(sig));
        }
    }

    // Phase B (pool): the sub-solves are pure per-index work.
    std::vector<lqn::app_result> solved(jobs.size());
    parallel_for(jobs.size(), [&](std::size_t j) {
        const auto& job = jobs[j];
        solved[j] = lqn::solve_app(plans[job.plan].deps[job.app],
                                   plans[job.plan].loads.inflation, lqn_);
    });

    // Phase C (calling thread): publish sub-solves in miss order — the order
    // the serial evaluator inserts them — then assemble every plan.
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        app_cache_.insert(std::move(job_sigs[j]), solved[j]);
    }
    for (std::size_t p = 0; p < work.size(); ++p) {
        auto& plan = plans[p];
        for (std::size_t a = 0; a < app_count; ++a) {
            if (plan.source[a] != npos) plan.apps[a] = solved[plan.source[a]];
        }
        out[work[p]] = assemble(configs[work[p]], plan.apps, plan.loads.utilization);
    }
}

// ---- factory ---------------------------------------------------------------

std::shared_ptr<utility_evaluator> make_evaluator(const cluster::cluster_model& model,
                                                  utility_model utility,
                                                  lqn::model_options lqn,
                                                  evaluation_options options) {
    if (options.threads <= 1) {
        return std::make_shared<serial_evaluator>(model, utility, lqn, options);
    }
    return std::make_shared<parallel_evaluator>(model, utility, lqn, options);
}

}  // namespace mistral::core
