#include "core/evaluator.h"

#include <cmath>
#include <utility>

#include "cluster/translate.h"
#include "common/check.h"
#include "lqn/solver.h"
#include "obs/journal.h"

namespace mistral::core {

// ---- eval_memo -------------------------------------------------------------

eval_memo::eval_memo(std::size_t capacity) : capacity_(capacity) {
    MISTRAL_CHECK(capacity >= 1);
}

std::vector<std::int64_t> eval_memo::quantize(
    const std::vector<req_per_sec>& rates, req_per_sec quantum) {
    std::vector<std::int64_t> key;
    key.reserve(rates.size());
    if (quantum <= 0.0) {
        // Exact keys: the rate's bit pattern, so only identical workload
        // vectors share entries.
        for (const req_per_sec r : rates) {
            std::int64_t bits;
            static_assert(sizeof(bits) == sizeof(r));
            __builtin_memcpy(&bits, &r, sizeof(bits));
            key.push_back(bits);
        }
    } else {
        for (const req_per_sec r : rates) {
            key.push_back(static_cast<std::int64_t>(std::llround(r / quantum)));
        }
    }
    return key;
}

void eval_memo::bind_rates(const std::vector<req_per_sec>& rates,
                           req_per_sec quantum) {
    auto key = quantize(rates, quantum);
    if (bound_ && key == rate_key_) return;
    rate_key_ = std::move(key);
    bound_ = true;
    lru_.clear();
    index_.clear();
}

const steady_utility* eval_memo::find(const cluster::configuration& c) {
    const auto it = index_.find(c);
    if (it == index_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return &it->second->second;
}

void eval_memo::insert(const cluster::configuration& c, steady_utility value) {
    const auto it = index_.find(c);
    if (it != index_.end()) {
        it->second->second = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(c, std::move(value));
    index_.emplace(c, lru_.begin());
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
}

void eval_memo::clear() {
    lru_.clear();
    index_.clear();
    hits_ = misses_ = evictions_ = 0;
}

// ---- serial_evaluator ------------------------------------------------------

serial_evaluator::serial_evaluator(const cluster::cluster_model& model,
                                   utility_model utility, lqn::model_options lqn,
                                   evaluation_options options)
    : model_(&model),
      utility_(utility),
      lqn_(lqn),
      options_(options),
      memo_(options.memo_capacity) {
    MISTRAL_CHECK(options_.threads >= 1 && options_.threads <= 256);
    MISTRAL_CHECK(options_.memo_capacity >= 1);
    MISTRAL_CHECK(options_.rate_quantum >= 0.0);
    if (auto* reg = obs::metrics_of(options_.sink)) {
        obs_solves_ = reg->register_counter(
            "mistral_eval_solves_total", "LQN solves actually performed");
        obs_memo_hits_ = reg->register_counter(
            "mistral_eval_memo_hits_total", "memoized evaluations reused");
        obs_memo_misses_ = reg->register_counter(
            "mistral_eval_memo_misses_total", "evaluations that missed the memo");
    }
}

void serial_evaluator::begin_decision(const std::vector<req_per_sec>& rates) {
    MISTRAL_CHECK(rates.size() == model_->app_count());
    rates_ = rates;
    targets_.resize(model_->app_count());
    for (std::size_t a = 0; a < model_->app_count(); ++a) {
        targets_[a] = utility_.planning_target(
            model_->app(app_id{static_cast<std::int32_t>(a)})
                .target_response_time(rates[a]));
    }
    memo_.bind_rates(rates, options_.rate_quantum);
}

steady_utility serial_evaluator::compute(const cluster::configuration& config) const {
    const auto pred = cluster::predict(*model_, config, rates_, lqn_);
    steady_utility out;
    out.power = pred.power;
    out.power_rate = utility_.power_rate(pred.power);
    out.response_times.reserve(model_->app_count());
    for (std::size_t a = 0; a < model_->app_count(); ++a) {
        const seconds rt = pred.perf.apps[a].mean_response_time;
        out.response_times.push_back(rt);
        out.perf_rate += utility_.perf_rate(rates_[a], rt, targets_[a]);
        if (rt > targets_[a]) out.meets_targets = false;
    }
    // steady_rate() accumulates power-first; summing the components here
    // instead would drift by an ulp and is a different number to callers
    // that compare utilities at 1e-12.
    out.rate = utility_.steady_rate(rates_, out.response_times, targets_, pred.power);
    out.candidate = is_candidate(*model_, config);
    return out;
}

steady_utility serial_evaluator::evaluate(const cluster::configuration& config) {
    MISTRAL_CHECK_MSG(!rates_.empty(), "begin_decision() before evaluate()");
    if (const auto* hit = memo_.find(config)) {
        ++stats_.cache_hits;
        obs_memo_hits_.add();
        return *hit;
    }
    ++stats_.cache_misses;
    ++stats_.evaluations;
    obs_memo_misses_.add();
    obs_solves_.add();
    steady_utility value = compute(config);
    memo_.insert(config, value);
    return value;
}

std::vector<steady_utility> serial_evaluator::evaluate_batch(
    const std::vector<cluster::configuration>& configs) {
    ++stats_.batches;
    std::vector<steady_utility> out;
    out.reserve(configs.size());
    for (const auto& c : configs) out.push_back(evaluate(c));
    return out;
}

isolated_perf serial_evaluator::compute_isolated(const app_sizing& s) const {
    MISTRAL_CHECK(s.size() == model_->app_count());
    std::vector<lqn::app_deployment> deps;
    std::size_t fake_host = 0;
    for (std::size_t a = 0; a < model_->app_count(); ++a) {
        lqn::app_deployment dep;
        dep.spec = &model_->app(app_id{static_cast<std::int32_t>(a)});
        dep.rate = rates_[a];
        dep.tiers.resize(dep.spec->tier_count());
        for (std::size_t t = 0; t < dep.spec->tier_count(); ++t) {
            for (int r = 0; r < s[a][t].replicas; ++r) {
                dep.tiers[t].replicas.push_back({fake_host++, s[a][t].cap});
            }
        }
        deps.push_back(std::move(dep));
    }
    const auto solved = lqn::solve(deps, fake_host, lqn_);
    isolated_perf out;
    out.response_times.reserve(model_->app_count());
    for (std::size_t a = 0; a < model_->app_count(); ++a) {
        const seconds rt = solved.apps[a].mean_response_time;
        out.response_times.push_back(rt);
        out.perf_rate += utility_.perf_rate(rates_[a], rt, targets_[a]);
        if (rt > targets_[a]) out.meets_all_targets = false;
    }
    return out;
}

isolated_perf serial_evaluator::evaluate_isolated(const app_sizing& s) {
    MISTRAL_CHECK_MSG(!rates_.empty(), "begin_decision() before evaluate_isolated()");
    ++stats_.evaluations;
    obs_solves_.add();
    return compute_isolated(s);
}

std::vector<isolated_perf> serial_evaluator::evaluate_isolated_batch(
    const std::vector<app_sizing>& sizings) {
    std::vector<isolated_perf> out;
    out.reserve(sizings.size());
    for (const auto& s : sizings) out.push_back(evaluate_isolated(s));
    return out;
}

void serial_evaluator::reset_memo() {
    memo_.clear();
    stats_ = {};
}

// ---- parallel_evaluator ----------------------------------------------------

parallel_evaluator::parallel_evaluator(const cluster::cluster_model& model,
                                       utility_model utility,
                                       lqn::model_options lqn,
                                       evaluation_options options)
    : serial_evaluator(model, utility, lqn, options) {
    // The calling thread is worker zero; spawn the rest.
    workers_.reserve(options_.threads - 1);
    for (std::size_t i = 0; i + 1 < options_.threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

parallel_evaluator::~parallel_evaluator() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
}

void parallel_evaluator::worker_loop() {
    std::size_t seen_generation = 0;
    for (;;) {
        std::uint32_t generation = 0;
        std::size_t count = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return shutdown_ || job_generation_ != seen_generation;
            });
            if (shutdown_) return;
            seen_generation = job_generation_;
            generation = static_cast<std::uint32_t>(seen_generation);
            count = job_count_;
        }
        drain(generation, count);
    }
}

void parallel_evaluator::drain(std::uint32_t generation, std::size_t count) {
    for (;;) {
        std::uint64_t cursor = job_cursor_.load(std::memory_order_acquire);
        std::size_t i;
        for (;;) {
            // A cursor from a different generation means this job is already
            // over (and possibly replaced); claiming from it would hand out
            // the *new* job's indices against the old count.
            if (static_cast<std::uint32_t>(cursor >> 32) != generation) return;
            i = static_cast<std::uint32_t>(cursor);
            if (i >= count) return;
            if (job_cursor_.compare_exchange_weak(cursor, cursor + 1,
                                                  std::memory_order_acq_rel)) {
                break;
            }
        }
        try {
            job_(i);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!job_error_) job_error_ = std::current_exception();
        }
        if (job_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
            const std::lock_guard<std::mutex> lock(mutex_);
            done_.notify_all();
        }
    }
}

void parallel_evaluator::run_job(const std::function<void(std::size_t)>& fn,
                                 std::size_t count) {
    if (count == 0) return;
    std::uint32_t generation = 0;
    {
        // run_job only starts after the previous job fully completed, so no
        // worker is between claim and done-increment here and reseeding the
        // done counter is race-free.
        const std::lock_guard<std::mutex> lock(mutex_);
        job_ = fn;
        job_count_ = count;
        job_error_ = nullptr;
        job_done_.store(0, std::memory_order_relaxed);
        ++job_generation_;
        generation = static_cast<std::uint32_t>(job_generation_);
        job_cursor_.store(static_cast<std::uint64_t>(generation) << 32,
                          std::memory_order_release);
    }
    wake_.notify_all();
    drain(generation, count);  // the calling thread works the same queue
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
        return job_done_.load(std::memory_order_acquire) == count;
    });
    // All items are done, so no worker will call job_ again this generation.
    job_ = nullptr;
    job_count_ = 0;
    if (job_error_) {
        auto error = std::exchange(job_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void parallel_evaluator::parallel_for(std::size_t count,
                                      const std::function<void(std::size_t)>& fn) {
    // Pool dispatch costs a few wake-ups; below a handful of items the serial
    // loop wins outright and keeps the meter's work accounting honest.
    if (count <= 1 || workers_.empty()) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    run_job(fn, count);
}

std::vector<isolated_perf> parallel_evaluator::evaluate_isolated_batch(
    const std::vector<app_sizing>& sizings) {
    MISTRAL_CHECK_MSG(!rates_.empty(),
                      "begin_decision() before evaluate_isolated_batch()");
    stats_.evaluations += sizings.size();
    obs_solves_.add(static_cast<std::int64_t>(sizings.size()));
    std::vector<isolated_perf> out(sizings.size());
    parallel_for(sizings.size(),
                 [&](std::size_t i) { out[i] = compute_isolated(sizings[i]); });
    return out;
}

std::vector<steady_utility> parallel_evaluator::evaluate_batch(
    const std::vector<cluster::configuration>& configs) {
    MISTRAL_CHECK_MSG(!rates_.empty(), "begin_decision() before evaluate_batch()");
    ++stats_.batches;
    std::vector<steady_utility> out(configs.size());
    std::vector<bool> resolved(configs.size(), false);
    // Memo lookups and duplicate folding stay on the calling thread so the
    // cache's LRU order — and with it every eviction — matches the serial
    // evaluator exactly.
    std::unordered_map<cluster::configuration, std::size_t> first_seen;
    std::vector<std::size_t> work;  // indices needing a real solve
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (const auto* hit = memo_.find(configs[i])) {
            ++stats_.cache_hits;
            obs_memo_hits_.add();
            out[i] = *hit;
            resolved[i] = true;
            continue;
        }
        const auto [it, inserted] = first_seen.emplace(configs[i], i);
        if (inserted) {
            ++stats_.cache_misses;
            obs_memo_misses_.add();
            work.push_back(i);
        } else {
            // Duplicate within the batch: solved once, copied below.
            ++stats_.cache_hits;
            obs_memo_hits_.add();
        }
    }
    if (!work.empty()) {
        stats_.evaluations += work.size();
        obs_solves_.add(static_cast<std::int64_t>(work.size()));
        parallel_for(work.size(),
                     [&](std::size_t j) { out[work[j]] = compute(configs[work[j]]); });
        // Publish in input order (deterministic LRU insertion order).
        for (const std::size_t i : work) {
            memo_.insert(configs[i], out[i]);
            resolved[i] = true;
        }
    }
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (resolved[i]) continue;
        out[i] = out[first_seen.at(configs[i])];
    }
    return out;
}

// ---- factory ---------------------------------------------------------------

std::shared_ptr<utility_evaluator> make_evaluator(const cluster::cluster_model& model,
                                                  utility_model utility,
                                                  lqn::model_options lqn,
                                                  evaluation_options options) {
    if (options.threads <= 1) {
        return std::make_shared<serial_evaluator>(model, utility, lqn, options);
    }
    return std::make_shared<parallel_evaluator>(model, utility, lqn, options);
}

}  // namespace mistral::core
