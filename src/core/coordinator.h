// The global coordination layer over pod controllers (DESIGN.md §13).
//
// A `global_coordinator` is a `strategy` composed of pod_controllers plus
// cluster-wide coordination that no pod can do alone:
//
//  * budget broker — when a finite cluster power budget is set, the
//    coordinator collects each pod's headroom/shortfall report (draw,
//    saturated draw, pressure) every interval and redistributes the budget
//    CloudPowerCap-style: demand-proportional shares computed in integer
//    milliwatts with largest-remainder rounding, so the pod budgets sum to
//    the cluster budget *exactly* every interval (the conservation
//    invariant, coordinator_test.cc). Each share is pushed into the pod
//    search's terminal gate via set_budget.
//
//  * migration broker — a pod whose pressure exceeds the donor watermark
//    *proposes* evicting its smallest application; pods below the accept
//    watermark respond with a deterministic first-fit placement plan, and
//    the best bid (lowest resulting pressure, ties to the lower pod id)
//    wins. The handshake emits ordinary migrate actions and re-assigns the
//    app, so pod-local searches never see cross-pod moves.
//
//  * ownership reconciliation — brokered migrate actions are *plans*; the
//    executor can abort them (decision_input::failed) or still be running
//    them (in_flight). Every sharded decide() therefore re-derives app
//    ownership from the placements in `in.current` before any pod steps:
//    an app whose VMs all sit in one pod belongs to that pod (re-adopting
//    it if a brokered transfer never landed), and a half-moved app whose
//    VMs straddle pods is parked unowned for the interval while the
//    coordinator emits the completing first-fit migrations (gather). No
//    pod's view ever projects a configuration it does not contain, so an
//    aborted brokered plan degrades to a retry instead of an
//    invariant_error.
//
// Two modes share the class:
//  * sharded  ("Mistral-Pods") — a validated partition of view-lens pods
//    stepping concurrently; this is the scale mode (256 hosts and beyond).
//  * two_level ("Mistral-2L") — the paper's hierarchy: scoped level-1 pods
//    plus a wide-band full-cluster escalation controller whose non-empty
//    decisions preempt the pods for that interval (Section II-C).
//
// Journal events (fixed field order, obs/journal.h): `pod_decision` per pod
// step, `pod_budget` per redistribution, `pod_migration` per brokered move
// (`from` = -1 marks a gather of a half-moved app), `pod_reconcile` per
// ownership change the reconciliation pass makes (`from`/`to` = -1: unowned).
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/pod_controller.h"
#include "core/pods.h"
#include "core/strategies.h"
#include "econ/region.h"
#include "econ/tariff.h"

namespace mistral::core {

struct coordinator_options {
    // Cluster-wide power budget (watts). Infinity disables the budget broker
    // entirely: no reports, no events, no terminal gating.
    watts power_budget = std::numeric_limits<watts>::infinity();
    // Demand blend for redistribution: demand = draw + grow_margin ·
    // min(pressure, 1) · (max_draw − draw). Pressured pods ask for headroom.
    double grow_margin = 0.5;
    // Migration broker watermarks (sharded mode, ≥ 2 pods).
    bool migration_broker = true;
    double donor_pressure = 0.85;   // propose eviction above this
    double accept_pressure = 0.65;  // bid for adoption below this
    int max_brokered_moves = 1;     // per interval
    // Step pods on worker threads. Pod decisions are independent by
    // construction; journaling forces sequential stepping anyway (the sink
    // is not thread-safe), and the *modeled* decision latency is unaffected
    // either way — pods are concurrent in the model (max, not sum).
    bool parallel_pods = false;
    // Escalation controller's band width (two-level mode; paper: 8 req/s).
    req_per_sec escalation_band = 8.0;
    // Economics (sharded mode only). `regions` maps every pod to a region
    // with its own tariff/carbon series: each pod's controller then plans
    // under its region's prices (the coordinator layers the econ override on
    // the builder), budget redistribution weights growth headroom by
    // cheapest/price, and the migration broker donates sooner from — and
    // bids lower on — expensive regions, shifting load toward cheap/green
    // ones. Empty (the default) leaves every economic branch untaken: the
    // decision stream is bit-identical to the region-blind coordinator.
    econ::region_map regions{};
    // Cluster power-budget schedule in watts over time (stepped power-cap
    // emergencies): when set it overrides power_budget each interval. All
    // values must be positive; infinity is expressed by leaving this unset.
    std::optional<econ::step_series> budget_schedule{};
};

class global_coordinator final : public strategy {
public:
    // Sharded mode over a validated partition. The app → pod assignment is
    // derived from the first decide()'s configuration (assign_apps), so pods
    // and their views materialize lazily on the first step.
    global_coordinator(const cluster::cluster_model& model,
                       cost::cost_table costs, partition parts,
                       controller_builder builder = {},
                       coordinator_options options = {});

    // Two-level escalation mode: `level1` pods run the scoped lens (band 0,
    // restricted menus — see level1_pods); a full-cluster escalation
    // controller with escalation_band preempts them when it acts. Level-1
    // pods need not cover every host, but must be disjoint and in range.
    global_coordinator(const cluster::cluster_model& model,
                       cost::cost_table costs, std::vector<pod_spec> level1,
                       controller_builder builder = {},
                       coordinator_options options = {});

    [[nodiscard]] std::string name() const override { return name_; }
    outcome decide(const decision_input& in) override;

    [[nodiscard]] const std::vector<std::unique_ptr<pod_controller>>& pods() const {
        return pods_;
    }
    [[nodiscard]] const coordinator_options& options() const { return options_; }
    // Last *applied* pod budgets (empty before the first redistribution or
    // when the budget broker is off): the redistributed shares after the
    // one-milliwatt floor for zero-share pods, which borrows from the
    // largest share. Sums to power_budget exactly whenever the budget
    // affords one milliwatt per pod.
    [[nodiscard]] const std::vector<watts>& budgets() const { return budgets_; }
    [[nodiscard]] std::int64_t brokered_migrations() const {
        return brokered_migrations_;
    }

    // Demand-proportional integer-milliwatt split of `total` across the
    // reports; the shares sum to `total` exactly (largest-remainder
    // rounding, ties to the lower index). Exposed for the conservation test.
    // `growth_weight` (optional, one entry per report, ≥ 0) scales each
    // pod's growth-headroom term only — the regional cheapest/price bias;
    // nullptr is the unweighted original.
    static std::vector<watts> redistribute(
        watts total, double grow_margin, const std::vector<pod_report>& reports,
        const std::vector<double>* growth_weight = nullptr);

private:
    const cluster::cluster_model* model_;
    cost::cost_table costs_;
    controller_builder builder_;
    coordinator_options options_;
    std::string name_;
    obs::sink* sink_ = nullptr;  // the builder's sink, cached
    bool sharded_ = false;
    std::vector<pod_spec> specs_;  // sharded: pods_ built lazily from these
    std::vector<std::size_t> host_pod_;  // host index → pod id (sharded)
    std::vector<std::unique_ptr<pod_controller>> pods_;
    std::unique_ptr<mistral_controller> escalation_;  // two-level only
    std::vector<watts> budgets_;
    std::int64_t brokered_migrations_ = 0;
    // Apps whose VMs straddle pods this interval (a partially executed
    // brokered plan); unowned until gather_strays reunifies them.
    std::vector<std::size_t> stray_apps_;

    obs::counter obs_escalations_;
    obs::counter obs_escalation_actions_;
    obs::histogram obs_escalation_seconds_;
    obs::counter obs_migrations_;
    obs::counter obs_reconciles_;
    obs::counter obs_region_moves_;

    void ensure_pods(const cluster::configuration& current);
    void reconcile_ownership(const cluster::configuration& current, seconds now);
    void gather_strays(cluster::configuration& probe, outcome& out, seconds now);
    outcome decide_two_level(const decision_input& in);
    outcome decide_sharded(const decision_input& in);
    void redistribute_budgets(const decision_input& in, watts total);
    void broker_migrations(cluster::configuration& probe, outcome& out,
                           seconds now);
    // Per-pod regional price at `now` (empty when regions are unset).
    [[nodiscard]] std::vector<double> pod_prices(seconds now) const;
    void emit_pod_decision(const pod_controller& pod, const pod_outcome& po,
                           const cluster::configuration& at, seconds now,
                           const char* level) const;
};

}  // namespace mistral::core
