#include "core/lookahead.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "cluster/action.h"
#include "common/check.h"

namespace mistral::core {

namespace {

using cluster::action;
using cluster::configuration;

// Continuation searches reuse the primary A*'s expansion under a small
// budget; everything else (menu, scopes, pruning, evaluation tuning) matches.
search_options continuation_options(const search_options& primary,
                                    const lookahead_options& la) {
    search_options out = primary;
    out.max_expansions =
        std::min(out.max_expansions, la.continuation_max_expansions);
    return out;
}

// Mirrors of search.cc's transient-locality helpers (file-local there): the
// VM an action touches, and the hosts whose applications feel its transient.
vm_id touched_vm(const action& a) {
    return std::visit(
        [](const auto& x) -> vm_id {
            using T = std::decay_t<decltype(x)>;
            if constexpr (std::is_same_v<T, cluster::power_on> ||
                          std::is_same_v<T, cluster::power_off>) {
                return vm_id{};
            } else {
                return x.vm;
            }
        },
        a);
}

std::vector<host_id> affected_hosts(const configuration& config, const action& a) {
    std::vector<host_id> out;
    std::visit(
        [&](const auto& x) {
            using T = std::decay_t<decltype(x)>;
            if constexpr (std::is_same_v<T, cluster::migrate>) {
                out = {config.placement(x.vm)->host, x.to};
            } else if constexpr (std::is_same_v<T, cluster::add_replica>) {
                out = {x.to};
            } else if constexpr (std::is_same_v<T, cluster::remove_replica> ||
                                 std::is_same_v<T, cluster::increase_cpu> ||
                                 std::is_same_v<T, cluster::decrease_cpu>) {
                out = {config.placement(x.vm)->host};
            }
        },
        a);
    return out;
}

void merge_stats(search_stats& into, const search_stats& s) {
    into.duration += s.duration;
    into.expansions += s.expansions;
    into.generated += s.generated;
    into.pruned = into.pruned || s.pruned;
    into.search_power_cost += s.search_power_cost;
    into.eval_cache_hits += s.eval_cache_hits;
    into.eval_cache_misses += s.eval_cache_misses;
    into.eval_app_solves += s.eval_app_solves;
    into.eval_app_cache_hits += s.eval_app_cache_hits;
    into.eval_app_cache_misses += s.eval_app_cache_misses;
}

}  // namespace

lookahead_planner::lookahead_planner(const cluster::cluster_model& model,
                                     utility_model utility,
                                     const cost::cost_table& costs,
                                     const adaptation_search& primary,
                                     lookahead_options options)
    : model_(&model),
      utility_(utility),
      costs_(&costs),
      primary_(&primary),
      options_(std::move(options)),
      continuation_(model, utility, costs,
                    continuation_options(primary.options(), options_),
                    primary.shared_evaluator()) {
    MISTRAL_CHECK(options_.horizon >= 1);
    MISTRAL_CHECK(options_.discount > 0.0 && options_.discount <= 1.0);
    MISTRAL_CHECK(options_.confidence_floor > 0.0 &&
                  options_.confidence_floor <= 1.0);
    MISTRAL_CHECK(options_.continuation_max_expansions >= 1);
    MISTRAL_CHECK(options_.commit_margin >= 0.0);
    MISTRAL_CHECK(options_.deadline_fraction > 0.0);
}

dollars lookahead_planner::score_plan(const configuration& current,
                                      const std::vector<action>& plan,
                                      const std::vector<req_per_sec>& rates,
                                      seconds cw, double cap_rate) const {
    auto& engine = primary_->evaluator();
    engine.begin_decision(rates);
    const auto& targets = engine.targets();
    const std::size_t host_count = model_->host_count();

    // Same accounting as the A*'s draft_child/average_rate pair, applied to
    // a fixed action sequence instead of a searched one.
    configuration c = current;
    dollars accrued = 0.0;
    seconds duration = 0.0;
    for (const action& a : plan) {
        const auto entry = costs_->lookup(*model_, a, rates);
        const auto pe = engine.evaluate(c);
        const vm_id vm = touched_vm(a);
        const auto touched = affected_hosts(c, a);
        std::vector<std::uint8_t> occ(model_->app_count() * host_count, 0);
        for (const auto& desc : model_->vms()) {
            const auto& p = c.placement(desc.vm);
            if (p) occ[desc.app.index() * host_count + p->host.index()] = 1;
        }
        double rate =
            utility_.power_rate(std::max(0.0, pe.power + entry.delta_power));
        for (std::size_t s = 0; s < model_->app_count(); ++s) {
            seconds rt = pe.response_times[s];
            if (vm.valid() && model_->vm(vm).app.index() == s) {
                rt += entry.delta_rt_target;
            } else if (!touched.empty()) {
                bool colocated = false;
                for (const host_id h : touched) {
                    if (occ[s * host_count + h.index()] != 0) {
                        colocated = true;
                        break;
                    }
                }
                if (colocated) rt += entry.delta_rt_colocated;
            }
            rate += utility_.perf_rate(rates[s], rt, targets[s]);
        }
        accrued += entry.duration * std::min(rate, cap_rate) -
                   primary_->options().per_action_overhead;
        duration += entry.duration;
        c = cluster::apply(*model_, c, a);
    }
    const auto final_eval = engine.evaluate(c);
    const seconds h =
        std::max(cw, duration + utility_.params().monitoring_interval);
    return (accrued + (h - duration) * final_eval.rate) / h * cw;
}

lookahead_result lookahead_planner::plan(
    const configuration& current, const std::vector<req_per_sec>& rates,
    const std::vector<std::vector<req_per_sec>>& forecast,
    const std::vector<double>& confidence, seconds cw,
    dollars expected_utility, search_meter& meter, seconds now) const {
    MISTRAL_CHECK(forecast.size() == confidence.size());
    lookahead_result out;
    out.horizon = 1 + static_cast<int>(forecast.size());

    // Interval 1, reactive: the single-interval controller's exact call on
    // the controller's own search object. At K = 1 this is the whole plan.
    search_result reactive =
        primary_->find(current, rates, cw, expected_utility, meter, now);
    out.searches = 1;
    out.first_duration = reactive.stats.duration;
    search_stats aggregate = reactive.stats;

    if (forecast.empty()) {
        out.steps.push_back({rates, reactive.expected_utility});
        out.total_value = reactive.expected_utility;
        out.total_duration = aggregate.duration;
        out.committed = std::move(reactive);
        out.commit_reason = "reactive";
        return out;
    }

    auto& engine = primary_->evaluator();
    // Steady dollars of sitting in `c` for one window under `r` (used when a
    // search returns the empty "stay" plan, whose raw expected_utility is 0
    // by the flat controller's reporting convention).
    auto steady_value = [&](const configuration& c,
                            const std::vector<req_per_sec>& r) -> dollars {
        engine.begin_decision(r);
        return engine.evaluate(c).rate * cw;
    };

    // Transient accrual in score_plan is clamped exactly like the search
    // clamps at the ideal steady rate; with no feasible ideal there is no cap.
    const double cap_rate =
        reactive.ideal_utility > 0.0
            ? reactive.ideal_utility / cw
            : std::numeric_limits<double>::infinity();

    // Pre-provision candidate: plan *now* for the most demanding forecast
    // interval (deterministic argmax, first wins ties). Only when the
    // forecast peak exceeds today's demand — provisioning ahead of a coming
    // peak pays the transient at baseline rate instead of peak rate, but the
    // mirror move (consolidating ahead of a forecast *decline*) bets real
    // capacity on the bands' downside and is left to the reactive rung.
    std::size_t peak = 0;
    double peak_demand = -1.0;
    for (std::size_t i = 0; i < forecast.size(); ++i) {
        double demand = 0.0;
        for (const double r : forecast[i]) demand += r;
        if (demand > peak_demand) {
            peak_demand = demand;
            peak = i;
        }
    }
    double current_demand = 0.0;
    for (const double r : rates) current_demand += r;
    bool rising =
        peak_demand > current_demand * (1.0 + options_.rise_threshold);

    // Screen before spending a search: pre-provisioning can only ever boot a
    // host today's plan leaves dark, so with every healthy host already
    // powered there is nothing to plan for and the peak search would be pure
    // modeled latency — overhead the controller pays in real decision delay.
    if (rising) {
        bool dark_host = false;
        for (std::size_t h = 0; h < model_->host_count(); ++h) {
            const host_id id(static_cast<std::int32_t>(h));
            if (!reactive.target.host_on(id) && !reactive.target.host_failed(id)) {
                dark_host = true;
                break;
            }
        }
        rising = dark_host;
    }

    // The peak candidate runs on the bounded continuation search: it only
    // has to discover *which hosts* the peak wants lit, not polish the exact
    // peak layout (the next windows' reactive searches do that against real
    // rates), so capping its expansions bounds the planner's worst-case
    // self-cost.
    search_result preprov;
    if (rising) {
        preprov = continuation_.find(current, forecast[peak], cw, 0.0, meter,
                                     now);
        ++out.searches;
        merge_stats(aggregate, preprov.stats);
    }
    // The committed pre-provision is *augmentative*, never substitutive: the
    // reactive plan — searched under what is actually measured — always
    // executes, and on top of it the planner boots the hosts the peak plan
    // runs that today's plan leaves dark. Power-on is the long-lead action
    // (boot transient ≫ a cap tweak), so paying it now at today's rates is
    // the high-leverage part of pre-provisioning, while the fine-grained
    // peak adaptation stays with the next windows' reactive searches, which
    // see real rates instead of a damped-trend forecast. The downside when
    // the forecast is wrong is bounded: idle host power until the next
    // consolidation, not a mis-migrated cluster.
    std::vector<action> boosts;
    if (rising) {
        for (std::size_t h = 0; h < model_->host_count(); ++h) {
            const host_id id(static_cast<std::int32_t>(h));
            if (preprov.target.host_on(id) && !reactive.target.host_on(id)) {
                boosts.push_back(cluster::power_on{id});
            }
        }
    }
    // The only case worth spending tail searches on: a rising forecast whose
    // peak plan needs capacity today's plan doesn't already bring up.
    const bool contested = !boosts.empty();
    const bool converged = rising && !contested;

    std::vector<action> augmented;
    configuration aug_target;
    if (contested) {
        augmented = reactive.actions;
        augmented.insert(augmented.end(), boosts.begin(), boosts.end());
        aug_target = reactive.target;
        for (const action& b : boosts) {
            aug_target = cluster::apply(*model_, aug_target, b);
        }
    }

    // Interval-1 value of each candidate under the *measured* rates.
    const dollars v1_reactive = reactive.actions.empty()
                                    ? steady_value(current, rates)
                                    : reactive.expected_utility;
    const dollars v1_preprov =
        contested ? score_plan(current, augmented, rates, cw, cap_rate)
                  : v1_reactive;

    // Tail rollout: bounded continuation searches from the candidate's
    // landing configuration through each forecast interval, discounted by
    // confidence. Returns per-interval contributions.
    auto rollout = [&](const configuration& target) -> std::vector<dollars> {
        std::vector<dollars> contrib;
        contrib.reserve(forecast.size());
        configuration state = target;
        double disc = 1.0;
        for (std::size_t i = 0; i < forecast.size(); ++i) {
            disc *= options_.discount;
            auto r = continuation_.find(state, forecast[i], cw, 0.0, meter, now);
            ++out.searches;
            merge_stats(aggregate, r.stats);
            const dollars value = r.actions.empty()
                                      ? steady_value(state, forecast[i])
                                      : r.expected_utility;
            const double conf =
                std::clamp(confidence[i], options_.confidence_floor, 1.0);
            contrib.push_back(disc * conf * value);
            state = std::move(r.target);
        }
        return contrib;
    };

    // Uncontested windows skip the tail searches entirely — the committed
    // plan is the reactive one either way, and the planner's modeled search
    // time is real decision latency the controller pays. The journal's
    // per-interval values are then the steady dollars of holding the
    // reactive target through the forecast (memoized evaluations, no meter
    // charge), discounted identically.
    std::vector<dollars> tail_reactive;
    if (contested) {
        tail_reactive = rollout(reactive.target);
    } else {
        tail_reactive.reserve(forecast.size());
        double disc = 1.0;
        for (std::size_t i = 0; i < forecast.size(); ++i) {
            disc *= options_.discount;
            const double conf =
                std::clamp(confidence[i], options_.confidence_floor, 1.0);
            tail_reactive.push_back(
                disc * conf * steady_value(reactive.target, forecast[i]));
        }
    }
    dollars total_reactive = v1_reactive;
    for (const dollars v : tail_reactive) total_reactive += v;

    dollars total_preprov = total_reactive;
    std::vector<dollars> tail_preprov;
    if (contested) {
        tail_preprov = rollout(aug_target);
        total_preprov = v1_preprov;
        for (const dollars v : tail_preprov) total_preprov += v;
    }

    // Ties (and the converged case) break toward reactive: lookahead never
    // deviates from today's behavior unless the predicted payoff clears the
    // commit margin. The margin is scaled to one interval's value, not the
    // K-interval total — a horizon-proportional hurdle would make the same
    // boot look less attractive the further ahead the planner can see.
    const dollars margin =
        options_.commit_margin * std::max(std::abs(v1_reactive), 1.0);
    const bool take_preprov =
        contested && total_preprov > total_reactive + margin;
    const std::vector<dollars>& tail = take_preprov ? tail_preprov : tail_reactive;

    out.preprovisioned = take_preprov;
    out.commit_reason =
        converged ? "converged" : (take_preprov ? "preprovision" : "reactive");
    out.total_value = take_preprov ? total_preprov : total_reactive;
    out.steps.push_back({rates, take_preprov ? v1_preprov : v1_reactive});
    for (std::size_t i = 0; i < forecast.size(); ++i) {
        out.steps.push_back({forecast[i], tail[i]});
    }

    out.committed.actions = take_preprov ? std::move(augmented) : reactive.actions;
    out.committed.target = take_preprov ? std::move(aug_target) : reactive.target;
    // The committed record keeps the flat controller's reporting convention:
    // the reactive plan's raw search value, or the augmented plan's
    // measured-rates interval value; ideal_utility is always the measured
    // interval's bound.
    out.committed.expected_utility =
        take_preprov ? v1_preprov : reactive.expected_utility;
    out.committed.ideal_utility = reactive.ideal_utility;
    out.committed.stats = aggregate;
    out.total_duration = aggregate.duration;
    return out;
}

}  // namespace mistral::core
