#include "core/builder.h"

namespace mistral::core {

controller_builder& controller_builder::band(req_per_sec width) {
    base_.band_width = width;
    return *this;
}

controller_builder& controller_builder::threads(std::size_t n) {
    base_.search.evaluation.threads = n;
    return *this;
}

controller_builder& controller_builder::self_aware(bool on) {
    base_.search.self_aware = on;
    return *this;
}

controller_builder& controller_builder::delta_eval(bool on) {
    base_.search.evaluation.delta_eval = on;
    return *this;
}

controller_builder& controller_builder::degraded(bool on) {
    base_.degraded.enabled = on;
    return *this;
}

controller_builder& controller_builder::divergence_guard(bool on) {
    base_.arma.divergence.enabled = on;
    return *this;
}

controller_builder& controller_builder::lookahead(int horizon) {
    base_.lookahead.enabled = horizon >= 1;
    if (horizon >= 1) base_.lookahead.horizon = horizon;
    return *this;
}

controller_builder& controller_builder::sink(obs::sink* s) {
    base_.sink = s;
    return *this;
}

controller_builder& controller_builder::econ(econ_profile profile) {
    base_.econ = std::move(profile);
    return *this;
}

controller_builder& controller_builder::power_cap(watts cap) {
    base_.search.power_cap = cap;
    return *this;
}

controller_builder& controller_builder::menu(cluster::action_menu m) {
    base_.search.menu = m;
    return *this;
}

controller_builder& controller_builder::meter_step(seconds per_expansion) {
    meter_step_ = per_expansion;
    return *this;
}

controller_builder& controller_builder::tweak(
    const std::function<void(controller_options&)>& fn) {
    fn(base_);
    return *this;
}

controller_builder& controller_builder::pod(
    std::size_t id, const std::function<void(controller_options&)>& fn) {
    // Overrides for the same pod compose in registration order rather than
    // replacing: the coordinator layers its per-region econ override on top
    // of whatever the caller registered, and both must take effect.
    if (auto it = pod_overrides_.find(id); it != pod_overrides_.end()) {
        it->second = [prev = std::move(it->second), fn](controller_options& opts) {
            prev(opts);
            fn(opts);
        };
    } else {
        pod_overrides_[id] = fn;
    }
    return *this;
}

controller_options controller_builder::build() const { return base_; }

controller_options controller_builder::build_for(const pod_spec& spec) const {
    controller_options opts = base_;
    if (spec.band) opts.band_width = *spec.band;
    if (spec.menu) opts.search.menu = *spec.menu;
    if (const auto it = pod_overrides_.find(spec.id); it != pod_overrides_.end()) {
        it->second(opts);
    }
    return opts;
}

std::unique_ptr<search_meter> controller_builder::make_meter() const {
    return std::make_unique<model_clock_meter>(meter_step_);
}

std::unique_ptr<mistral_controller> controller_builder::build_controller(
    const cluster::cluster_model& model, cost::cost_table costs) const {
    return std::make_unique<mistral_controller>(model, std::move(costs), build(),
                                                make_meter());
}

}  // namespace mistral::core
