// One pod's controller: a Mistral controller behind a cluster-view lens.
//
// A pod_controller wraps a `mistral_controller` for one pod of a partition
// and translates between the global cluster and the pod's slice of it. Two
// lenses exist:
//
//  * sharded — the controller runs on a `cluster::cluster_view` sub-model of
//    the pod's hosts and assigned applications. Decision inputs are projected
//    into the view, decisions lifted back to global entity ids. Search state
//    scales with the pod, not the cluster — the point of sharding. A pod
//    covering the whole cluster gets the identity lens, making its decisions
//    byte-identical to a flat controller's (pod_equivalence_test.cc).
//
//  * scoped — the controller sees the whole model but its search is
//    restricted to the pod's hosts via search_options::host_scope. This is
//    the paper's first-level hierarchy controller (Section II-C): utility is
//    still evaluated over every application, so its per-decision cost does
//    not shrink with the pod. Kept for the two-level escalation mode.
//
// Observability replaces the old bespoke running_stats accessors: each pod
// registers `mistral_pod_<id>_decisions_total` / `_actions_total` counters
// and a `mistral_pod_<id>_search_seconds` histogram (observed only on
// invoked decisions, matching the retired accessors' semantics).
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/view.h"
#include "core/builder.h"
#include "core/controller.h"
#include "core/pods.h"

namespace mistral::core {

enum class pod_lens {
    sharded,  // view sub-model: search, evaluation, and state are pod-local
    scoped,   // full model, host_scope-restricted actions (two-level mode)
};

// What a pod tells the global coordinator each interval (the CloudPowerCap-
// style headroom/shortfall report driving budget redistribution).
struct pod_report {
    watts draw = 0.0;       // modeled draw of the pod's powered-on hosts
    watts max_draw = 0.0;   // draw with every pod host on and saturated
    // Σ deployed caps / (host_cpu_cap × non-failed pod hosts): how full the
    // pod is. > donor watermark ⇒ the pod proposes evicting an app.
    double pressure = 0.0;
};

struct pod_outcome {
    bool invoked = false;
    // Actions in *global* (parent-model) entity ids.
    std::vector<cluster::action> actions;
    // The pod-local decision record (stats, mode, expected utility).
    controller_decision decision;
};

class pod_controller {
public:
    // `apps`: parent app indices assigned to this pod (sharded lens; the
    // scoped lens evaluates every app and ignores it beyond bookkeeping).
    pod_controller(const cluster::cluster_model& model, cost::cost_table costs,
                   pod_spec spec, std::vector<std::size_t> apps,
                   const controller_builder& builder,
                   pod_lens lens = pod_lens::sharded);

    [[nodiscard]] const pod_spec& spec() const { return spec_; }
    [[nodiscard]] const std::vector<std::size_t>& apps() const { return apps_; }
    [[nodiscard]] pod_lens lens() const { return lens_; }
    // A pod with no assigned applications is *idle*: it reports headroom and
    // can adopt an app, but steps are no-ops and view()/controller() are
    // unavailable until an app arrives.
    [[nodiscard]] bool idle() const { return controller_ == nullptr; }
    // The pod's lens over the cluster (sharded, non-idle only).
    [[nodiscard]] const cluster::cluster_view& view() const { return *view_; }
    [[nodiscard]] const mistral_controller& controller() const { return *controller_; }
    [[nodiscard]] watts budget() const { return budget_; }

    // One monitoring-interval step. `in` carries global state; the sharded
    // lens projects it into the view (rates, configuration, fault notices,
    // telemetry; the cluster-wide interval utility is split by rate share).
    pod_outcome step(const decision_input& in);

    // Power budget for this pod (watts; infinity = uncapped). Forwarded to
    // the pod search's terminal gate without rebuilding anything.
    void set_budget(watts cap);

    // Headroom/shortfall report over the pod's hosts in `global`.
    [[nodiscard]] pod_report report(const cluster::configuration& global) const;

    // Migration-broker bookkeeping (sharded lens): ownership changes rebuild
    // the pod's view and controller — predictors restart cold, which is the
    // price of moving an app between pods.
    void adopt_app(std::size_t app);
    void release_app(std::size_t app);

private:
    const cluster::cluster_model* model_;
    cost::cost_table costs_;
    pod_spec spec_;
    std::vector<std::size_t> apps_;
    pod_lens lens_;
    controller_options opts_;
    seconds meter_step_;
    watts budget_ = std::numeric_limits<watts>::infinity();
    std::optional<cluster::cluster_view> view_;
    std::unique_ptr<mistral_controller> controller_;

    obs::counter obs_decisions_;
    obs::counter obs_actions_;
    obs::histogram obs_search_seconds_;

    void rebuild();
    [[nodiscard]] decision_input project_input(const decision_input& in) const;
};

}  // namespace mistral::core
