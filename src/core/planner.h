// Transition planning: from one configuration to another.
//
// The Perf-Pwr and Pwr-Cost baseline strategies (Section V-C) pick a *target*
// configuration first and then simply execute whatever actions realize it —
// unlike Mistral, whose A* search plans the action sequence and the target
// jointly. This planner produces that action sequence: power-ons first, then
// releases (cap decreases, replica removals), then placement moves with
// slot-aware deferral, then cap increases, then power-offs of emptied hosts.
//
// Replicas of a tier are interchangeable, so the plan reconciles per-tier
// *placement multisets* rather than VM identities, keeping VMs that already
// sit on a wanted host in place.
#pragma once

#include <vector>

#include "cluster/action.h"
#include "cluster/configuration.h"
#include "cluster/model.h"

namespace mistral::core {

// Plans a sequence of actions transforming `from` toward `to`. Every prefix
// of the returned sequence is applicable in order starting at `from`
// (intermediate CPU overbooking allowed). Moves that cannot be realized
// without violating slot/memory constraints are dropped, so the reached
// configuration can differ from `to` in degraded cases; it is always
// structurally valid.
std::vector<cluster::action> plan_transition(const cluster::cluster_model& model,
                                             const cluster::configuration& from,
                                             const cluster::configuration& to);

// Applies a planned sequence, returning the final configuration (helper for
// tests and strategies that need to know where a plan actually lands).
cluster::configuration apply_plan(const cluster::cluster_model& model,
                                  cluster::configuration config,
                                  const std::vector<cluster::action>& plan);

// Removes zero-net-effect subsequences from a plan: whenever some prefix of
// the plan revisits an earlier configuration, the actions in between are
// spliced out (an A* path can legitimately contain such detours when a
// revisit carried a better accrued value than the first visit — they are
// correct under Eq. 3's accounting but pure waste to execute). The result
// reaches the same final configuration with every prefix still applicable.
std::vector<cluster::action> compress_plan(const cluster::cluster_model& model,
                                           const cluster::configuration& from,
                                           std::vector<cluster::action> plan);

// Plans the minimal repair for a degraded configuration (a host crash has
// pushed some tier below its replica minimum): for every deficient tier,
// boot dormant replicas at the tier's minimum cap onto the healthy powered-on
// host with the most spare CPU capacity, powering on an extra healthy host
// when nothing fits. Deterministic (lowest-index VM / host tiebreaks), every
// prefix applicable from `config`; empty when nothing needs repair. Deficits
// that cannot be repaired (not enough healthy capacity) are left in place.
std::vector<cluster::action> plan_repair(const cluster::cluster_model& model,
                                         const cluster::configuration& config);

}  // namespace mistral::core
