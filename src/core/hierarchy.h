// Multi-level hierarchical control (Sections II-C and V-E).
//
// "Lower level controllers are configured with very narrow workload bands.
// They may be invoked very rapidly, but only produce modest changes ...
// Higher level controllers have increasingly larger workload bands, longer
// times between invocation, larger sets of more potent actions to choose
// from, more hosts and applications to consider."
//
// This two-level implementation matches the paper's evaluation: each
// first-level controller owns a disjoint group of hosts, runs with band 0,
// and may only tune CPU caps and migrate VMs within its group; the single
// second-level controller sees every host, runs with a wide band (8 req/s),
// and wields the full action set. When the second level fires with a
// reconfiguration, the first level stands down for that interval (its
// refinements would race the larger change).
#pragma once

#include <memory>
#include <vector>

#include "common/stats.h"
#include "core/strategies.h"

namespace mistral::core {

struct hierarchy_options {
    controller_options base{};
    // Second-level band width (paper: 8 req/s); first level always uses 0.
    req_per_sec level2_band = 8.0;
    // Deterministic search-time model for both levels' meters.
    seconds meter_per_expansion = 0.002;
};

class hierarchical_controller final : public strategy {
public:
    // `level1_groups`: disjoint host-index groups, one first-level controller
    // per group.
    hierarchical_controller(const cluster::cluster_model& model,
                            cost::cost_table costs,
                            std::vector<std::vector<std::size_t>> level1_groups,
                            hierarchy_options options = {});

    [[nodiscard]] std::string name() const override { return "Mistral-2L"; }
    outcome decide(const decision_input& in) override;

    // Mean search duration per level so far (Table I's per-level rows).
    [[nodiscard]] const running_stats& level1_durations() const { return level1_durations_; }
    [[nodiscard]] const running_stats& level2_durations() const { return level2_durations_; }

private:
    const cluster::cluster_model* model_ = nullptr;
    std::vector<std::unique_ptr<mistral_controller>> level1_;
    std::unique_ptr<mistral_controller> level2_;
    running_stats level1_durations_;
    running_stats level2_durations_;
};

}  // namespace mistral::core
