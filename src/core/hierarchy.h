// Multi-level hierarchical control (Sections II-C and V-E).
//
// "Lower level controllers are configured with very narrow workload bands.
// They may be invoked very rapidly, but only produce modest changes ...
// Higher level controllers have increasingly larger workload bands, longer
// times between invocation, larger sets of more potent actions to choose
// from, more hosts and applications to consider."
//
// `hierarchical_controller` is now a thin special case of the pod-sharded
// control stack (DESIGN.md §13): it is a `global_coordinator` in two-level
// mode — scoped level-1 pod_controllers (band 0, CPU tuning + intra-pod
// migration) under a wide-band full-cluster escalation controller whose
// reconfigurations preempt the pods for that interval. Per-level statistics
// moved from the retired bespoke running_stats accessors to the obs metrics
// the pods register (`mistral_pod_<id>_*` and `mistral_pod_global_*`).
#pragma once

#include <memory>
#include <vector>

#include "core/builder.h"
#include "core/coordinator.h"
#include "core/pods.h"
#include "core/strategies.h"

namespace mistral::core {

// Retained for the deprecated raw-group constructor only; new code sets the
// same knobs on a controller_builder (+ coordinator escalation_band).
struct hierarchy_options {
    controller_options base{};
    // Second-level band width (paper: 8 req/s); first level always uses 0.
    req_per_sec level2_band = 8.0;
    // Deterministic search-time model for both levels' meters.
    seconds meter_per_expansion = 0.002;
};

class hierarchical_controller final : public strategy {
public:
    // `level1`: disjoint typed pods (see level1_pods for the paper's level-1
    // shape); they need not cover every host.
    hierarchical_controller(const cluster::cluster_model& model,
                            cost::cost_table costs,
                            std::vector<pod_spec> level1,
                            controller_builder builder = {},
                            req_per_sec escalation_band = 8.0);

    // Deprecated shim for the raw host-group API (one release): forwards to
    // the typed constructor via level1_pods.
    [[deprecated(
        "pass core::pod_spec level-1 pods (see core::level1_pods) and a "
        "controller_builder")]]
    hierarchical_controller(const cluster::cluster_model& model,
                            cost::cost_table costs,
                            std::vector<std::vector<std::size_t>> level1_groups,
                            hierarchy_options options = {});

    [[nodiscard]] std::string name() const override { return "Mistral-2L"; }
    outcome decide(const decision_input& in) override;

    [[nodiscard]] const global_coordinator& coordinator() const { return *coord_; }

private:
    std::unique_ptr<global_coordinator> coord_;
};

}  // namespace mistral::core
