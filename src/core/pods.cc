#include "core/pods.h"

#include <algorithm>

#include "common/check.h"

namespace mistral::core {

partition::partition(const cluster::cluster_model& model,
                     std::vector<pod_spec> pods)
    : pods_(std::move(pods)) {
    MISTRAL_CHECK_MSG(!pods_.empty(), "a partition needs at least one pod");
    host_owner_.assign(model.host_count(), pods_.size());
    for (std::size_t i = 0; i < pods_.size(); ++i) {
        auto& pod = pods_[i];
        MISTRAL_CHECK_MSG(pod.id == i, "pod ids must be sequential from 0");
        MISTRAL_CHECK_MSG(!pod.hosts.empty(), "pod " << i << " owns no hosts");
        std::sort(pod.hosts.begin(), pod.hosts.end());
        pod.hosts.erase(std::unique(pod.hosts.begin(), pod.hosts.end()),
                        pod.hosts.end());
        for (const std::size_t h : pod.hosts) {
            MISTRAL_CHECK_MSG(h < model.host_count(),
                              "pod " << i << " references unknown host " << h);
            MISTRAL_CHECK_MSG(host_owner_[h] == pods_.size(),
                              "host " << h << " claimed by pods "
                                      << host_owner_[h] << " and " << i);
            host_owner_[h] = i;
        }
    }
    for (std::size_t h = 0; h < host_owner_.size(); ++h) {
        MISTRAL_CHECK_MSG(host_owner_[h] < pods_.size(),
                          "host " << h << " belongs to no pod");
    }
}

partition uniform_partition(const cluster::cluster_model& model,
                            std::size_t pod_count) {
    MISTRAL_CHECK(pod_count >= 1 && pod_count <= model.host_count());
    const std::size_t hosts = model.host_count();
    const std::size_t base = hosts / pod_count;
    const std::size_t extra = hosts % pod_count;
    std::vector<pod_spec> pods;
    pods.reserve(pod_count);
    std::size_t next = 0;
    for (std::size_t i = 0; i < pod_count; ++i) {
        pod_spec pod;
        pod.id = i;
        const std::size_t take = base + (i < extra ? 1 : 0);
        for (std::size_t k = 0; k < take; ++k) pod.hosts.push_back(next++);
        pods.push_back(std::move(pod));
    }
    return partition(model, std::move(pods));
}

std::vector<pod_spec> level1_pods(std::vector<std::vector<std::size_t>> groups) {
    std::vector<pod_spec> pods;
    pods.reserve(groups.size());
    for (std::size_t i = 0; i < groups.size(); ++i) {
        pod_spec pod;
        pod.id = i;
        pod.hosts = std::move(groups[i]);
        pod.band = 0.0;
        pod.menu = cluster::action_menu{.cpu_tuning = true,
                                        .replication = false,
                                        .migration = true,
                                        .host_power = false};
        pods.push_back(std::move(pod));
    }
    return pods;
}

std::vector<std::size_t> assign_apps(const cluster::cluster_model& model,
                                     const partition& parts,
                                     const cluster::configuration& initial) {
    MISTRAL_CHECK(initial.vm_count() == model.vm_count());
    MISTRAL_CHECK(initial.host_count() == model.host_count());
    std::vector<std::size_t> owner(model.app_count(), parts.size());
    for (const auto& vm : model.vms()) {
        const auto& p = initial.placement(vm.vm);
        if (!p) continue;
        const std::size_t pod = parts.pod_of_host(p->host.index());
        auto& slot = owner[vm.app.index()];
        if (slot == parts.size()) {
            slot = pod;
        } else {
            MISTRAL_CHECK_MSG(slot == pod,
                              "app " << vm.app.value << " straddles pods " << slot
                                     << " and " << pod
                                     << "; sharded control needs pod-contained apps");
        }
    }
    for (auto& slot : owner) {
        if (slot == parts.size()) slot = 0;  // undeployed apps park in pod 0
    }
    return owner;
}

}  // namespace mistral::core
