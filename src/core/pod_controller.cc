#include "core/pod_controller.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "common/check.h"
#include "obs/journal.h"

namespace mistral::core {

pod_controller::pod_controller(const cluster::cluster_model& model,
                               cost::cost_table costs, pod_spec spec,
                               std::vector<std::size_t> apps,
                               const controller_builder& builder,
                               pod_lens lens)
    : model_(&model),
      costs_(std::move(costs)),
      spec_(std::move(spec)),
      apps_(std::move(apps)),
      lens_(lens),
      opts_(builder.build_for(spec_)),
      meter_step_(builder.meter_per_expansion()) {
    std::sort(spec_.hosts.begin(), spec_.hosts.end());
    spec_.hosts.erase(std::unique(spec_.hosts.begin(), spec_.hosts.end()),
                      spec_.hosts.end());
    MISTRAL_CHECK_MSG(!spec_.hosts.empty(), "pod " << spec_.id << " owns no hosts");
    MISTRAL_CHECK(spec_.hosts.back() < model.host_count());
    std::sort(apps_.begin(), apps_.end());
    apps_.erase(std::unique(apps_.begin(), apps_.end()), apps_.end());
    if (lens_ == pod_lens::scoped) {
        opts_.search.host_scope.assign(model.host_count(), false);
        for (const std::size_t h : spec_.hosts) opts_.search.host_scope[h] = true;
    }
    if (auto* reg = obs::metrics_of(opts_.sink)) {
        const std::string prefix = "mistral_pod_" + std::to_string(spec_.id);
        obs_decisions_ = reg->register_counter(
            prefix + "_decisions_total", "Invoked decisions made by this pod");
        obs_actions_ = reg->register_counter(
            prefix + "_actions_total", "Actions emitted by this pod's decisions");
        obs_search_seconds_ = reg->register_histogram(
            prefix + "_search_seconds",
            {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0},
            "Meter-elapsed search duration of this pod's invoked decisions");
    }
    rebuild();
}

void pod_controller::rebuild() {
    if (lens_ == pod_lens::scoped) {
        view_.reset();
        controller_ = std::make_unique<mistral_controller>(
            *model_, costs_, opts_,
            std::make_unique<model_clock_meter>(meter_step_));
        return;
    }
    if (apps_.empty()) {
        // An idle pod: spare hosts with no applications assigned. It still
        // reports headroom and can adopt an app from the migration broker,
        // but has nothing to control until then.
        view_.reset();
        controller_.reset();
        return;
    }
    if (spec_.hosts.size() == model_->host_count() &&
        apps_.size() == model_->app_count()) {
        view_.emplace(*model_);  // identity lens: byte-identical to flat
    } else {
        view_.emplace(*model_, spec_.hosts, apps_);
    }
    controller_ = std::make_unique<mistral_controller>(
        view_->local(), costs_, opts_,
        std::make_unique<model_clock_meter>(meter_step_));
    if (budget_ < std::numeric_limits<watts>::infinity()) {
        controller_->set_power_cap(budget_);
    }
}

decision_input pod_controller::project_input(const decision_input& in) const {
    const auto& view = *view_;
    if (view.identity()) return in;
    decision_input local;
    local.now = in.now;
    local.rates = view.project_per_app(in.rates);
    local.current = view.project(in.current);
    // The interval utility is a cluster-wide number; attribute this pod its
    // workload-proportional share (equal app shares when the cluster idles).
    const double total =
        std::accumulate(in.rates.begin(), in.rates.end(), 0.0);
    const double mine =
        std::accumulate(local.rates.begin(), local.rates.end(), 0.0);
    const double share =
        total > 0.0 ? mine / total
                    : static_cast<double>(view.app_count()) /
                          static_cast<double>(model_->app_count());
    local.last_interval_utility = in.last_interval_utility * share;
    for (const auto& a : in.failed) {
        if (auto p = view.project_action(a)) local.failed.push_back(*p);
    }
    for (const auto& a : in.in_flight) {
        if (auto p = view.project_action(a)) local.in_flight.push_back(*p);
    }
    for (const std::int32_t h : in.hosts_failed) {
        const host_id lh = view.to_local_host(host_id{h});
        if (lh.valid()) local.hosts_failed.push_back(lh.value);
    }
    for (const std::int32_t h : in.hosts_recovered) {
        const host_id lh = view.to_local_host(host_id{h});
        if (lh.valid()) local.hosts_recovered.push_back(lh.value);
    }
    if (!in.response_times.empty()) {
        local.response_times = view.project_per_app(in.response_times);
    }
    if (!in.samples.empty()) {
        local.samples = view.project_per_app(in.samples);
    }
    return local;
}

pod_outcome pod_controller::step(const decision_input& in) {
    pod_outcome out;
    if (!controller_) return out;  // idle pod: nothing to decide
    if (lens_ == pod_lens::scoped) {
        out.decision = controller_->step(in);
        out.actions = out.decision.actions;
    } else {
        out.decision = controller_->step(project_input(in));
        out.actions.reserve(out.decision.actions.size());
        for (const auto& a : out.decision.actions) {
            out.actions.push_back(view_->lift_action(a));
        }
    }
    out.invoked = out.decision.invoked;
    if (out.invoked) {
        obs_decisions_.add();
        obs_actions_.add(static_cast<std::int64_t>(out.actions.size()));
        obs_search_seconds_.observe(out.decision.stats.duration);
    }
    return out;
}

void pod_controller::set_budget(watts cap) {
    MISTRAL_CHECK(cap > 0.0);
    budget_ = cap;
    if (controller_) controller_->set_power_cap(cap);
}

pod_report pod_controller::report(const cluster::configuration& global) const {
    pod_report r;
    double cap_total = 0.0;
    std::size_t healthy = 0;
    for (const std::size_t h : spec_.hosts) {
        const host_id host{static_cast<std::int32_t>(h)};
        const auto& hs = model_->hosts()[h];
        r.max_draw += hs.power.power(1.0);
        if (!global.host_failed(host)) ++healthy;
        if (!global.host_on(host)) continue;
        cap_total += global.cap_sum(host);
        r.draw += hs.power.power(global.cap_sum(host) / hs.cpu_capacity);
    }
    const double denom =
        model_->limits().host_cpu_cap * static_cast<double>(healthy);
    r.pressure = denom > 0.0 ? cap_total / denom : 1.0;
    return r;
}

void pod_controller::adopt_app(std::size_t app) {
    MISTRAL_CHECK(lens_ == pod_lens::sharded);
    MISTRAL_CHECK(app < model_->app_count());
    MISTRAL_CHECK(std::find(apps_.begin(), apps_.end(), app) == apps_.end());
    apps_.push_back(app);
    std::sort(apps_.begin(), apps_.end());
    rebuild();
}

void pod_controller::release_app(std::size_t app) {
    MISTRAL_CHECK(lens_ == pod_lens::sharded);
    const auto it = std::find(apps_.begin(), apps_.end(), app);
    MISTRAL_CHECK_MSG(it != apps_.end(),
                      "pod " << spec_.id << " does not own app " << app);
    apps_.erase(it);
    rebuild();
}

}  // namespace mistral::core
