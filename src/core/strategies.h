// Control strategies: Mistral and the three two-objective baselines.
//
// Section V-C compares Mistral with approaches that each solve the tradeoff
// between only two of {performance, power, adaptation cost}:
//
//  * Perf-Pwr  — the Section IV-A optimizer run directly: whenever the
//    workload moves, jump to the performance/power-optimal configuration,
//    ignoring what the jump costs.
//  * Perf-Cost — a fixed pool of 2 hosts per application; optimizes
//    performance utility with adaptation costs in the formulation, but never
//    consolidates onto fewer hosts and ignores power entirely.
//  * Pwr-Cost  — pMapper-style: per-workload *required* VM capacities (big
//    enough to always meet response-time targets) are given; the strategy
//    resizes to them, repairs packing violations by migrating the smallest
//    VMs, and consolidates onto fewer hosts only when the predicted power
//    saving over the control window beats the migration cost.
//  * Mistral   — the full holistic controller (controller.h).
//
// All four expose the same `strategy` interface so the experiment harness
// (experiment.h) can run them against identical workloads.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/configuration.h"
#include "cluster/model.h"
#include "core/controller.h"
#include "core/perf_pwr.h"
#include "core/planner.h"
#include "cost/table.h"
#include "predict/arma.h"
#include "workload/monitor.h"

namespace mistral::core {

class strategy {
public:
    virtual ~strategy() = default;

    struct outcome {
        bool invoked = false;
        std::vector<cluster::action> actions;
        // How long the decision itself took (the system stays in the old
        // configuration for this long before the actions start).
        seconds decision_delay = 0.0;
        // $ cost of the decision's own power draw (charged to utility).
        dollars decision_power_cost = 0.0;
        search_stats stats;
    };

    [[nodiscard]] virtual std::string name() const = 0;
    // One monitoring-interval decision over the interval's observations
    // (see decision_input in controller.h).
    virtual outcome decide(const decision_input& in) = 0;
};

// ---- Mistral -------------------------------------------------------------
class mistral_strategy final : public strategy {
public:
    mistral_strategy(const cluster::cluster_model& model, cost::cost_table costs,
                     controller_options options = {},
                     std::unique_ptr<search_meter> meter = nullptr);

    [[nodiscard]] std::string name() const override { return "Mistral"; }
    outcome decide(const decision_input& in) override;

    [[nodiscard]] const mistral_controller& controller() const { return controller_; }

private:
    mistral_controller controller_;
};

// ---- Perf-Pwr ------------------------------------------------------------
class perf_pwr_strategy final : public strategy {
public:
    perf_pwr_strategy(const cluster::cluster_model& model,
                      utility_params utility = {}, perf_pwr_options options = {});

    [[nodiscard]] std::string name() const override { return "Perf-Pwr"; }
    outcome decide(const decision_input& in) override;

private:
    const cluster::cluster_model* model_;
    perf_pwr_optimizer optimizer_;
    std::vector<req_per_sec> last_rates_;
};

// ---- Perf-Cost -----------------------------------------------------------
class perf_cost_strategy final : public strategy {
public:
    // Partitions hosts round-robin into fixed pools of `hosts_per_app`.
    perf_cost_strategy(const cluster::cluster_model& model, cost::cost_table costs,
                       controller_options options = {}, int hosts_per_app = 2);

    [[nodiscard]] std::string name() const override { return "Perf-Cost"; }
    outcome decide(const decision_input& in) override;

    // The pool assignment (app → allowed hosts), exposed so harnesses can
    // build pool-respecting initial configurations.
    [[nodiscard]] const std::vector<std::vector<bool>>& pools() const { return pools_; }

private:
    std::vector<std::vector<bool>> pools_;
    std::unique_ptr<mistral_controller> controller_;
};

// ---- Pwr-Cost ------------------------------------------------------------
class pwr_cost_strategy final : public strategy {
public:
    pwr_cost_strategy(const cluster::cluster_model& model, cost::cost_table costs,
                      utility_params utility = {}, perf_pwr_options options = {},
                      predict::arma_options arma = {});

    [[nodiscard]] std::string name() const override { return "Pwr-Cost"; }
    outcome decide(const decision_input& in) override;

private:
    const cluster::cluster_model* model_;
    cost::cost_table costs_;
    utility_model utility_;
    perf_pwr_optimizer optimizer_;
    wl::workload_monitor monitor_;
    std::vector<predict::stability_predictor> predictors_;
    std::vector<req_per_sec> last_rates_;

    [[nodiscard]] seconds control_window(const wl::monitor_event& event) const;
};

}  // namespace mistral::core
