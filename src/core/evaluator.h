// The utility-evaluation engine.
//
// Every decision the controllers make is dominated by repeated steady-state
// utility evaluations: an LQN solve plus a power-model read per generated
// child of the A* search (Section IV-B) and per gradient candidate of the
// Perf-Pwr optimizer (Section IV-A). `utility_evaluator` owns all of that
// computation — LQN response times, power draw, and the Eq. 1/2 accounting —
// behind one interface, so the search and the optimizer never touch the
// lqn::/power:: models directly and the evaluation strategy is pluggable:
//
//  * serial_evaluator   — evaluates on the calling thread; the default, and
//                         the behavioral reference.
//  * parallel_evaluator — a fixed thread pool evaluates a whole expansion's
//                         children as one batch. Results are bit-identical to
//                         the serial evaluator (each configuration is solved
//                         independently by the same deterministic solver, and
//                         memo bookkeeping stays on the calling thread).
//
// Both share a per-decision memo (`eval_memo`) keyed by (configuration,
// quantized request rates): revisited vertices and A* detours hit the cache
// instead of re-solving the LQN. See DESIGN.md "Utility evaluation engine"
// for the caching contract — what may be reused within a control window, and
// why cross-window reuse is bounded by the rate quantum.
//
// Below the memo sits *delta evaluation* (`app_solve_cache`, on by default):
// the steady utility is a sum of per-app performance terms plus per-host
// power, and an app's LQN sub-solve depends only on its own resource
// signature — its replicas' caps, the inflation factors of the hosts they
// occupy, and its (quantized) request rate. Adjacent search vertices differ
// by one action touching 1–2 apps, so evaluating a neighbor re-solves only
// the perturbed apps and reuses cached sub-solves for the rest. The cache
// persists across decisions (bounded LRU); results are bit-identical to full
// evaluation because the signature captures, bit-exactly, every input the
// sub-solve reads. See DESIGN.md "Incremental evaluation".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/configuration.h"
#include "cluster/model.h"
#include "core/utility.h"
#include "lqn/model.h"
#include "lqn/solver.h"
#include "obs/metrics.h"

namespace mistral::obs {
class sink;
}

namespace mistral::core {

// One steady-state evaluation of a configuration under the bound workload.
struct steady_utility {
    double rate = 0.0;        // $/s combined accrual (perf_rate + power_rate)
    double perf_rate = 0.0;   // Eq. 1 component ($/s)
    double power_rate = 0.0;  // Eq. 2 component ($/s, ≤ 0)
    std::vector<seconds> response_times;  // predicted mean per application
    watts power = 0.0;
    bool candidate = false;      // satisfies the per-host packing constraint
    bool meets_targets = true;   // every app within its *planning* target
};

// Per-(app, tier) sizing for the Perf-Pwr gradient's isolated-replica view:
// how many replicas at what (uniform) cap, placement ignored.
struct tier_sizing {
    int replicas = 1;
    fraction cap = 0.8;
};
using app_sizing = std::vector<std::vector<tier_sizing>>;  // [app][tier]

// Performance-only evaluation of a sizing with replicas isolated one per
// synthetic host (what the Perf-Pwr gradient search scores; Section IV-A).
struct isolated_perf {
    double perf_rate = 0.0;
    std::vector<seconds> response_times;
    bool meets_all_targets = true;
};

// Tuning for the evaluation engine. Defaults are the serial reference
// configuration; all values are validated on construction (check.h style).
struct evaluation_options {
    // Worker threads for batched evaluation. 1 selects the serial path; the
    // parallel evaluator runs the calling thread as one of the workers.
    // Valid range [1, 256].
    std::size_t threads = 1;
    // Memo entries kept (least-recently-used eviction). Must be ≥ 1; sized
    // so one decision's working set (a few thousand vertices on the paper's
    // cluster sizes) fits without eviction.
    std::size_t memo_capacity = 4096;
    // Request-rate grid for memo keys, in req/s. 0 keys on exact rates —
    // memoized results are reused across decisions only when the workload
    // vector is identical. A positive quantum trades accuracy for hit rate:
    // rates within the same grid cell share entries, so a reused value may
    // be stale by up to one quantum of workload movement. Must be ≥ 0.
    req_per_sec rate_quantum = 0.0;
    // Delta evaluation: memo misses re-solve only the applications whose
    // resource signature changed, reusing cached per-app sub-solves for the
    // rest (bit-identical to a full solve — see the header comment). Off
    // forces a whole-configuration LQN solve per miss; the A/B reference for
    // benchmarks and the bit-identity tests.
    bool delta_eval = true;
    // Per-app sub-solve entries kept (LRU). Must be ≥ 1. Entries are small
    // (one app_result) and the cache persists across decisions, so it is
    // sized an order of magnitude above the memo.
    std::size_t app_cache_capacity = 65536;
    // Observability hook (journal.h). nullptr — the default null sink — makes
    // every recording site a single branch; when the sink carries a metrics
    // registry, the evaluator registers solve/memo counters in it and records
    // them with relaxed atomic adds on the hot path.
    obs::sink* sink = nullptr;

    evaluation_options& with_threads(std::size_t n) {
        threads = n;
        return *this;
    }
    evaluation_options& with_memo_capacity(std::size_t n) {
        memo_capacity = n;
        return *this;
    }
    evaluation_options& with_rate_quantum(req_per_sec q) {
        rate_quantum = q;
        return *this;
    }
    evaluation_options& with_delta_eval(bool on) {
        delta_eval = on;
        return *this;
    }
    evaluation_options& with_app_cache_capacity(std::size_t n) {
        app_cache_capacity = n;
        return *this;
    }
};

struct evaluation_stats {
    std::size_t evaluations = 0;  // configuration evaluations not served by the memo
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::size_t evictions = 0;
    std::size_t batches = 0;      // evaluate_batch calls
    // Per-app sub-solve accounting. The full (delta_eval off) path counts
    // app_count sub-solves per whole-configuration solve, so "LQN solves per
    // decision" is comparable across modes; app cache hits/misses accrue only
    // on the delta path.
    std::size_t app_solves = 0;
    std::size_t app_cache_hits = 0;
    std::size_t app_cache_misses = 0;

    [[nodiscard]] double hit_rate() const {
        const auto total = cache_hits + cache_misses;
        return total > 0 ? static_cast<double>(cache_hits) /
                               static_cast<double>(total)
                         : 0.0;
    }
    [[nodiscard]] double app_hit_rate() const {
        const auto total = app_cache_hits + app_cache_misses;
        return total > 0 ? static_cast<double>(app_cache_hits) /
                               static_cast<double>(total)
                         : 0.0;
    }
};

// LRU memo of steady-state evaluations. Entries are valid only for the rate
// key they were computed under; `bind_rates` invalidates the store whenever
// the quantized workload vector moves to a different grid cell, so a lookup
// can never return a value computed for rates farther than one quantum away.
class eval_memo {
public:
    explicit eval_memo(std::size_t capacity);

    // The memo key for `rates` under `quantum` (exposed for tests): exact
    // bit-pattern keys at quantum 0, nearest-grid-cell indices otherwise.
    [[nodiscard]] static std::vector<std::int64_t> quantize(
        const std::vector<req_per_sec>& rates, req_per_sec quantum);

    // Binds the workload context; clears the store if the key changed.
    void bind_rates(const std::vector<req_per_sec>& rates, req_per_sec quantum);

    // nullptr on miss. The pointer is invalidated by the next insert.
    [[nodiscard]] const steady_utility* find(const cluster::configuration& c);
    void insert(const cluster::configuration& c, steady_utility value);
    void clear();

    [[nodiscard]] std::size_t size() const { return lru_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::size_t hits() const { return hits_; }
    [[nodiscard]] std::size_t misses() const { return misses_; }
    [[nodiscard]] std::size_t evictions() const { return evictions_; }

private:
    using entry = std::pair<cluster::configuration, steady_utility>;
    std::size_t capacity_;
    std::vector<std::int64_t> rate_key_;
    bool bound_ = false;
    std::list<entry> lru_;  // front = most recently used
    std::unordered_map<cluster::configuration, std::list<entry>::iterator> index_;
    std::size_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

// Resource signature of one application's LQN sub-solve: every input
// lqn::solve_app reads, packed bit-exactly into 64-bit words — the app index,
// its quantized rate key, and per tier the replica count followed by each
// replica's milli-cap and the bit pattern of its host's inflation factor.
// Two deployments with equal signatures (at rate quantum 0) produce
// bit-identical sub-solves, which is what makes cache reuse sound. Host
// identity enters only through the inflation value: an app migrated between
// equally-inflated hosts keys the same, deliberately.
struct app_signature {
    std::vector<std::uint64_t> words;

    friend bool operator==(const app_signature&, const app_signature&) = default;
};

struct app_signature_hash {
    std::size_t operator()(const app_signature& s) const noexcept {
        std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ s.words.size();
        for (const std::uint64_t w : s.words) {
            h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        }
        return static_cast<std::size_t>(h);
    }
};

// LRU cache of per-application LQN sub-solves, keyed by app_signature.
// Unlike eval_memo it is *not* cleared when the workload moves: the rate is
// part of the key, so entries for other rates simply stop matching and age
// out — which is what lets sub-solves persist across controller decisions.
class app_solve_cache {
public:
    explicit app_solve_cache(std::size_t capacity);

    // nullptr on miss. The pointer is invalidated by the next insert.
    [[nodiscard]] const lqn::app_result* find(const app_signature& sig);
    void insert(app_signature sig, lqn::app_result value);
    void clear();

    [[nodiscard]] std::size_t size() const { return lru_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::size_t hits() const { return hits_; }
    [[nodiscard]] std::size_t misses() const { return misses_; }
    [[nodiscard]] std::size_t evictions() const { return evictions_; }

private:
    using entry = std::pair<app_signature, lqn::app_result>;
    std::size_t capacity_;
    std::list<entry> lru_;  // front = most recently used
    std::unordered_map<app_signature, std::list<entry>::iterator,
                       app_signature_hash>
        index_;
    std::size_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

// The signature of app `a` within a translated deployment (exposed for
// tests). `rate_key` is the app's element of eval_memo::quantize;
// `inflation` is lqn::compute_host_loads(...).inflation.
[[nodiscard]] app_signature make_app_signature(
    std::size_t app, std::int64_t rate_key, const lqn::app_deployment& dep,
    const std::vector<double>& inflation);

// The pluggable engine interface. Implementations are bound to one decision
// context at a time via begin_decision(); evaluate/evaluate_batch results are
// deterministic functions of (configuration, bound rates) — see DESIGN.md
// for the purity and reentrancy contract.
class utility_evaluator {
public:
    virtual ~utility_evaluator() = default;

    // Binds the workload for the decision being made. Derives the per-app
    // planning targets; retains memoized results only while the quantized
    // rate key is unchanged. Idempotent for equal rates.
    virtual void begin_decision(const std::vector<req_per_sec>& rates) = 0;

    // Planning targets (rt_margin · TRT(w)) for the bound rates.
    [[nodiscard]] virtual const std::vector<seconds>& targets() const = 0;

    // Steady-state utility of one configuration (memoized).
    [[nodiscard]] virtual steady_utility evaluate(
        const cluster::configuration& config) = 0;

    // Evaluates a whole expansion's children; results in input order,
    // bit-identical to calling evaluate() sequentially. Duplicate
    // configurations within the batch are solved once.
    [[nodiscard]] virtual std::vector<steady_utility> evaluate_batch(
        const std::vector<cluster::configuration>& configs) = 0;

    // The Perf-Pwr gradient's isolated-replica performance view.
    [[nodiscard]] virtual isolated_perf evaluate_isolated(const app_sizing& s) = 0;

    // Batch form: all of one gradient step's candidate sizings at once.
    // Results in input order, bit-identical to sequential evaluate_isolated.
    [[nodiscard]] virtual std::vector<isolated_perf> evaluate_isolated_batch(
        const std::vector<app_sizing>& sizings) = 0;

    // Runs fn(0) … fn(count − 1), possibly across the worker pool. fn must be
    // pure per-index work writing only caller-owned, per-index output slots;
    // the search drafts a whole expansion's children through this.
    virtual void parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) = 0;

    // Concurrent workers the batch path may use (1 for the serial path);
    // what the search meter charges power against.
    [[nodiscard]] virtual std::size_t parallelism() const = 0;

    // Drops all memoized results and resets counters (fresh-decision tests
    // and cold-cache benchmarking).
    virtual void reset_memo() = 0;

    [[nodiscard]] virtual const evaluation_stats& stats() const = 0;
};

// Reference implementation: evaluates on the calling thread.
class serial_evaluator : public utility_evaluator {
public:
    serial_evaluator(const cluster::cluster_model& model, utility_model utility,
                     lqn::model_options lqn = {}, evaluation_options options = {});

    void begin_decision(const std::vector<req_per_sec>& rates) override;
    [[nodiscard]] const std::vector<seconds>& targets() const override {
        return targets_;
    }
    [[nodiscard]] steady_utility evaluate(
        const cluster::configuration& config) override;
    [[nodiscard]] std::vector<steady_utility> evaluate_batch(
        const std::vector<cluster::configuration>& configs) override;
    [[nodiscard]] isolated_perf evaluate_isolated(const app_sizing& s) override;
    [[nodiscard]] std::vector<isolated_perf> evaluate_isolated_batch(
        const std::vector<app_sizing>& sizings) override;
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t)>& fn) override {
        for (std::size_t i = 0; i < count; ++i) fn(i);
    }
    [[nodiscard]] std::size_t parallelism() const override { return 1; }
    void reset_memo() override;
    [[nodiscard]] const evaluation_stats& stats() const override { return stats_; }

    [[nodiscard]] const evaluation_options& options() const { return options_; }

protected:
    // The pure computations: no memo access, no mutation — safe to call from
    // worker threads concurrently.
    [[nodiscard]] steady_utility compute(const cluster::configuration& config) const;
    [[nodiscard]] isolated_perf compute_isolated(const app_sizing& s) const;
    // Folds per-app solve results and host utilizations into a steady_utility
    // with exactly compute()'s accounting (power first, then the per-app
    // perf terms in app order). Pure.
    [[nodiscard]] steady_utility assemble(
        const cluster::configuration& config,
        const std::vector<lqn::app_result>& apps,
        const std::vector<fraction>& host_utilization) const;
    // One memo-missed evaluation: the delta path (app-cache probes +
    // sub-solves for the misses) when options_.delta_eval, a full compute()
    // otherwise. Updates app-cache state and stats; calling-thread only.
    [[nodiscard]] steady_utility solve_config(const cluster::configuration& config);

    const cluster::cluster_model* model_;
    utility_model utility_;
    lqn::model_options lqn_;
    evaluation_options options_;
    std::vector<req_per_sec> rates_;
    std::vector<seconds> targets_;
    // Per-app elements of the bound decision's quantized rate key (set by
    // begin_decision; what app signatures embed).
    std::vector<std::int64_t> rate_key_;
    // Last-seen econ epoch of utility_ (0 = unbound): begin_decision clears
    // the memo when the shared tariff factors changed underneath it.
    std::uint64_t econ_epoch_seen_ = 0;
    eval_memo memo_;
    app_solve_cache app_cache_;  // persists across decisions
    evaluation_stats stats_;
    // Disabled (one-branch no-op) handles unless options_.sink carries a
    // metrics registry. Recorded alongside stats_, which stays the exact
    // per-instance source of truth; the registry aggregates across instances.
    obs::counter obs_solves_;
    obs::counter obs_memo_hits_;
    obs::counter obs_memo_misses_;
    obs::counter obs_app_solves_;
    obs::counter obs_app_hits_;
    obs::counter obs_app_misses_;
};

// Fixed-thread-pool implementation: evaluate_batch distributes cache misses
// across `threads` workers (the calling thread included) and merges results
// in input order, so memo state — and therefore every downstream decision —
// matches the serial evaluator exactly.
class parallel_evaluator final : public serial_evaluator {
public:
    parallel_evaluator(const cluster::cluster_model& model, utility_model utility,
                       lqn::model_options lqn = {},
                       evaluation_options options = {});
    ~parallel_evaluator() override;

    parallel_evaluator(const parallel_evaluator&) = delete;
    parallel_evaluator& operator=(const parallel_evaluator&) = delete;

    [[nodiscard]] std::vector<steady_utility> evaluate_batch(
        const std::vector<cluster::configuration>& configs) override;
    [[nodiscard]] std::vector<isolated_perf> evaluate_isolated_batch(
        const std::vector<app_sizing>& sizings) override;
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t)>& fn) override;
    [[nodiscard]] std::size_t parallelism() const override {
        return workers_.size() + 1;
    }

private:
    // Delta-evaluation staging for evaluate_batch: probes the app cache for
    // every memo-missed configuration on the calling thread (deduplicating
    // signatures pending within the batch exactly as the serial
    // insert-then-probe order would), sub-solves the missing signatures
    // across the pool, publishes them in miss order, and assembles.
    void solve_work_delta(const std::vector<cluster::configuration>& configs,
                          const std::vector<std::size_t>& work,
                          std::vector<steady_utility>& out);

    void worker_loop();
    // Claims and runs items of job `generation` until its queue is drained
    // (or a newer job has replaced it).
    void drain(std::uint32_t generation, std::size_t count);
    // Runs fn(0) … fn(count − 1) across the pool plus the calling thread;
    // returns when all invocations finished, rethrowing the first exception.
    void run_job(const std::function<void(std::size_t)>& fn, std::size_t count);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::function<void(std::size_t)> job_;  // written under mutex_ between jobs
    std::size_t job_generation_ = 0;        // guarded by mutex_
    std::size_t job_count_ = 0;             // guarded by mutex_
    // Lock-free work queue: ⟨generation, next index⟩ packed into one word and
    // claimed by CAS, so the hot loop never touches mutex_ (per-item locking
    // dominated micro-batches) and a worker that wakes late — holding a stale
    // generation — can never claim an index from the job that replaced it.
    std::atomic<std::uint64_t> job_cursor_{0};
    std::atomic<std::size_t> job_done_{0};
    std::exception_ptr job_error_;          // guarded by mutex_
    bool shutdown_ = false;
};

// Builds the evaluator `options` asks for: serial at threads == 1, the
// thread-pool implementation otherwise.
[[nodiscard]] std::shared_ptr<utility_evaluator> make_evaluator(
    const cluster::cluster_model& model, utility_model utility,
    lqn::model_options lqn = {}, evaluation_options options = {});

}  // namespace mistral::core
