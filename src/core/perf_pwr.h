// The Perf-Pwr optimizer (Section IV-A).
//
// Finds the *ideal configuration* c° for a workload: the performance/power
// optimum when transient adaptation costs are ignored. The paper's algorithm
// is reproduced directly:
//
//   for each candidate host count (all hosts down to the minimum that can
//   hold the VMs' minimum capacities):
//     start from maximum CPU capacities (and maximum replication);
//     try to bin-pack the VMs onto the hosts, worst-fit decreasing
//       ("chooses the host that has the largest space among used hosts; if
//        no such host is found, it chooses a new empty host");
//     while packing fails, run a gradient search: candidates reduce one
//       tier's capacity by a step or remove one replica, scored by
//       ∇ρ = Δρ / ΔU_RT — CPU allocation freed per unit of performance
//       utility given up — and iterate from the best candidate;
//   the packed configuration with the highest total utility (performance
//   plus power) is the ideal configuration c°, whose utility U° is the
//   admissible cost-to-go bound used by the A* search.
#pragma once

#include <memory>
#include <vector>

#include "cluster/configuration.h"
#include "cluster/model.h"
#include "core/evaluator.h"
#include "core/utility.h"

namespace mistral::core {

struct perf_pwr_options {
    lqn::model_options lqn{};
    // Capacity-reduction granularity; defaults to the model's cpu_step.
    fraction cap_step = 0.0;
    int max_gradient_iterations = 400;
    // Optional per-app host restriction (same shape as
    // search_options::app_hosts): the packer only places an application's
    // VMs on its allowed hosts. Empty = unrestricted.
    std::vector<std::vector<bool>> app_hosts;
};

struct perf_pwr_result {
    bool feasible = false;
    cluster::configuration ideal;        // c°
    double utility_rate = 0.0;           // U° as $/s (perf + power)
    double perf_rate = 0.0;              // performance component ($/s)
    double power_rate = 0.0;             // power component ($/s, ≤ 0)
    watts power = 0.0;
    std::vector<seconds> response_times;  // predicted per app in c°
    std::size_t hosts_used = 0;
};

class perf_pwr_optimizer {
public:
    // Owns a fresh serial utility_evaluator built from `options.lqn`.
    perf_pwr_optimizer(const cluster::cluster_model& model, utility_model utility,
                       perf_pwr_options options = {});
    // Shares a caller-owned evaluator — the adaptation search passes its own
    // so the ideal-configuration scoring and the A* children draw from one
    // memo within a decision.
    perf_pwr_optimizer(const cluster::cluster_model& model, utility_model utility,
                       perf_pwr_options options,
                       std::shared_ptr<utility_evaluator> evaluator);

    // The ideal configuration and utility for workload `rates`. When a
    // `reference` configuration is given, the packer keeps each VM on its
    // reference host whenever that host still fits it — a placement-stable
    // ideal, so the route from the reference to the ideal contains only the
    // migrations that actually buy something.
    [[nodiscard]] perf_pwr_result optimize(
        const std::vector<req_per_sec>& rates,
        const cluster::configuration* reference = nullptr) const;

    // Variant used by the Pwr-Cost baseline: like optimize(), but capacity
    // reductions that would push any application past its target response
    // time are rejected, so the result always meets response-time goals if
    // at all feasible (the paper's "modified Perf-Pwr", Section V-C).
    [[nodiscard]] perf_pwr_result optimize_meeting_targets(
        const std::vector<req_per_sec>& rates,
        const cluster::configuration* reference = nullptr) const;

private:
    const cluster::cluster_model* model_;
    utility_model utility_;
    perf_pwr_options options_;
    // All steady-rate utility computation (LQN + power + Eq. 1/2) flows
    // through the evaluation engine; the optimizer never calls the models
    // directly. optimize() stays logically const — the engine only memoizes.
    std::shared_ptr<utility_evaluator> evaluator_;

    [[nodiscard]] perf_pwr_result run(const std::vector<req_per_sec>& rates,
                                      bool enforce_targets,
                                      const cluster::configuration* reference) const;
};

}  // namespace mistral::core
