#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/check.h"

namespace mistral::core {

namespace {

using cluster::action;
using cluster::configuration;
using cluster::cluster_model;

// Emits enough increase/decrease steps to take `vm` from its current cap to
// `target` (caps are step-quantized by construction).
void emit_cap_steps(const cluster_model& model, configuration& config, vm_id vm,
                    fraction target, bool decreases_only, bool increases_only,
                    std::vector<action>& plan) {
    const fraction step = model.limits().cpu_step;
    for (int guard = 0; guard < 64; ++guard) {
        const fraction cap = config.placement(vm)->cpu_cap;
        if (std::abs(cap - target) < step / 2.0) return;
        action a;
        if (cap < target) {
            if (decreases_only) return;
            a = cluster::increase_cpu{vm};
        } else {
            if (increases_only) return;
            a = cluster::decrease_cpu{vm};
        }
        if (!applicable(model, config, a)) return;
        config = apply(model, config, a);
        plan.push_back(a);
    }
}

struct move {
    vm_id vm;          // deployed VM to relocate (invalid => add a replica)
    host_id to;
    fraction target_cap;
    app_id app;        // tier identity, for the add-replica case
    std::size_t tier = 0;
};

}  // namespace

std::vector<action> plan_transition(const cluster_model& model,
                                    const configuration& from,
                                    const configuration& to) {
    std::vector<action> plan;
    configuration cur = from;
    auto emit = [&](const action& a) -> bool {
        if (!applicable(model, cur, a)) return false;
        cur = apply(model, cur, a);
        plan.push_back(a);
        return true;
    };

    // 1. Power on every host the target uses.
    for (std::size_t h = 0; h < model.host_count(); ++h) {
        const host_id host{static_cast<std::int32_t>(h)};
        if (to.host_on(host) && !cur.host_on(host)) emit(cluster::power_on{host});
    }

    // 2. Per-tier reconciliation into kept VMs, pending moves, removals, and
    //    additions.
    std::vector<move> pending_moves;
    std::vector<std::pair<vm_id, fraction>> kept;  // cap retargets for in-place VMs
    std::vector<vm_id> removals;
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        const app_id app{static_cast<std::int32_t>(a)};
        for (std::size_t t = 0; t < model.app(app).tier_count(); ++t) {
            const auto& vms = model.tier_vms(app, t);
            // Wanted placements in the target (multiset of host/cap).
            std::vector<std::pair<host_id, fraction>> wanted;
            for (vm_id vm : vms) {
                if (const auto& p = to.placement(vm)) wanted.push_back({p->host, p->cpu_cap});
            }
            // Current deployments.
            std::vector<vm_id> current;
            for (vm_id vm : vms) {
                if (cur.deployed(vm)) current.push_back(vm);
            }
            // Keep VMs already on a wanted host.
            std::vector<vm_id> unmatched;
            for (vm_id vm : current) {
                const auto host = cur.placement(vm)->host;
                auto it = std::find_if(wanted.begin(), wanted.end(),
                                       [&](const auto& w) { return w.first == host; });
                if (it != wanted.end()) {
                    kept.push_back({vm, it->second});
                    wanted.erase(it);
                } else {
                    unmatched.push_back(vm);
                }
            }
            // Pair the rest: moves while both sides have entries, then
            // removals / additions for the imbalance.
            std::size_t i = 0;
            for (; i < unmatched.size() && i < wanted.size(); ++i) {
                pending_moves.push_back(
                    {unmatched[i], wanted[i].first, wanted[i].second, app, t});
            }
            for (std::size_t j = i; j < unmatched.size(); ++j) {
                removals.push_back(unmatched[j]);
            }
            for (std::size_t j = i; j < wanted.size(); ++j) {
                // A dormant VM of this tier will carry the new replica.
                pending_moves.push_back(
                    {vm_id{}, wanted[j].first, wanted[j].second, app, t});
            }
        }
    }

    // 2.5 Relief first: cap increases that already fit their host's packing
    //     constraint execute in ~1 s and are what a scale-up needs *now* —
    //     they must not queue behind 90 s boots and minute-long migrations.
    for (const auto& [vm, cap] : kept) {
        for (int guard = 0; guard < 8; ++guard) {
            const fraction have = cur.placement(vm)->cpu_cap;
            if (have + model.limits().cpu_step / 2.0 >= cap) break;
            if (cur.cap_sum(cur.placement(vm)->host) + model.limits().cpu_step >
                model.limits().host_cpu_cap + 1e-9) {
                break;  // would overbook; the post-move stage finishes the job
            }
            if (!emit(cluster::increase_cpu{vm})) break;
        }
    }

    // 3. Removals and cap decreases free room before anything moves in.
    for (vm_id vm : removals) emit(cluster::remove_replica{vm});
    for (const auto& [vm, cap] : kept) {
        emit_cap_steps(model, cur, vm, cap, /*decreases_only=*/true,
                       /*increases_only=*/false, plan);
    }
    for (const auto& m : pending_moves) {
        if (m.vm.valid()) {
            emit_cap_steps(model, cur, m.vm, m.target_cap, /*decreases_only=*/true,
                           /*increases_only=*/false, plan);
        }
    }

    // 4. Moves with deferral: retry blocked migrations/additions as slots
    //    free up; drop whatever never becomes feasible.
    std::vector<move> queue = pending_moves;
    bool progressed = true;
    while (!queue.empty() && progressed) {
        progressed = false;
        std::vector<move> blocked;
        for (const auto& m : queue) {
            bool ok = false;
            if (m.vm.valid()) {
                ok = emit(cluster::migrate{m.vm, m.to});
            } else {
                // Pick any dormant VM of the move's tier at plan time.
                for (vm_id vm : model.tier_vms(m.app, m.tier)) {
                    if (cur.deployed(vm)) continue;
                    ok = emit(cluster::add_replica{
                        vm, m.to, model.tier_spec_of(vm).min_cpu_cap});
                    break;
                }
            }
            if (ok) {
                progressed = true;
            } else {
                blocked.push_back(m);
            }
        }
        queue = std::move(blocked);
    }

    // 5. Raise caps to their targets now that placement has settled.
    for (const auto& [vm, cap] : kept) {
        emit_cap_steps(model, cur, vm, cap, /*decreases_only=*/false,
                       /*increases_only=*/true, plan);
    }
    for (const auto& desc : model.vms()) {
        const auto& pt = to.placement(desc.vm);
        const auto& pc = cur.placement(desc.vm);
        if (pt && pc && pc->host == pt->host) {
            emit_cap_steps(model, cur, desc.vm, pt->cpu_cap, false, false, plan);
        }
    }

    // 6. Power off hosts the target leaves empty (only if actually empty).
    for (std::size_t h = 0; h < model.host_count(); ++h) {
        const host_id host{static_cast<std::int32_t>(h)};
        if (!to.host_on(host) && cur.host_on(host)) emit(cluster::power_off{host});
    }
    return plan;
}

configuration apply_plan(const cluster_model& model, configuration config,
                         const std::vector<action>& plan) {
    for (const auto& a : plan) config = apply(model, config, a);
    return config;
}

std::vector<action> plan_repair(const cluster_model& model,
                                const configuration& config) {
    std::vector<action> plan;
    configuration cur = config;
    auto emit = [&](const action& a) -> bool {
        if (!applicable(model, cur, a)) return false;
        cur = apply(model, cur, a);
        plan.push_back(a);
        return true;
    };
    // Roomiest healthy powered-on host that can take `vm` at `cap`; lowest
    // index wins ties so repairs replay deterministically.
    auto place = [&](vm_id vm, fraction cap) -> bool {
        std::optional<host_id> best;
        double best_free = -1.0;
        for (std::size_t h = 0; h < model.host_count(); ++h) {
            const host_id host{static_cast<std::int32_t>(h)};
            if (!cur.host_on(host)) continue;
            if (!applicable(model, cur, cluster::add_replica{vm, host, cap})) continue;
            const double free = model.limits().host_cpu_cap - cur.cap_sum(host);
            if (free > best_free + 1e-12) {
                best_free = free;
                best = host;
            }
        }
        if (!best) return false;
        return emit(cluster::add_replica{vm, *best, cap});
    };
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        const app_id app{static_cast<std::int32_t>(a)};
        for (std::size_t t = 0; t < model.app(app).tier_count(); ++t) {
            const auto& tier = model.app(app).tiers()[t];
            int deployed = 0;
            for (vm_id vm : model.tier_vms(app, t)) {
                deployed += cur.deployed(vm) ? 1 : 0;
            }
            for (int deficit = tier.min_replicas - deployed; deficit > 0; --deficit) {
                vm_id dormant{};
                for (vm_id vm : model.tier_vms(app, t)) {
                    if (!cur.deployed(vm)) {
                        dormant = vm;
                        break;
                    }
                }
                if (!dormant.valid()) break;  // no spare replica VM exists
                if (place(dormant, tier.min_cpu_cap)) continue;
                // Nothing fits: bring up the first healthy powered-off host
                // and retry once.
                bool powered = false;
                for (std::size_t h = 0; h < model.host_count() && !powered; ++h) {
                    const host_id host{static_cast<std::int32_t>(h)};
                    if (cur.host_on(host) || cur.host_failed(host)) continue;
                    powered = emit(cluster::power_on{host});
                }
                if (!powered || !place(dormant, tier.min_cpu_cap)) break;
            }
        }
    }
    return plan;
}

std::vector<action> compress_plan(const cluster_model& model,
                                  const configuration& from,
                                  std::vector<action> plan) {
    // Prefix configurations c0..cn; for each position take the furthest
    // later position with an identical configuration and skip the detour.
    // Repeat until a pass makes no change (splices can expose new ones).
    bool changed = true;
    while (changed && !plan.empty()) {
        changed = false;
        std::vector<configuration> prefix = {from};
        prefix.reserve(plan.size() + 1);
        for (const auto& a : plan) {
            prefix.push_back(apply(model, prefix.back(), a));
        }
        for (std::size_t i = 0; i < prefix.size() && !changed; ++i) {
            for (std::size_t j = prefix.size(); j-- > i + 1 && !changed;) {
                if (prefix[j] == prefix[i]) {
                    plan.erase(plan.begin() + static_cast<std::ptrdiff_t>(i),
                               plan.begin() + static_cast<std::ptrdiff_t>(j));
                    changed = true;
                }
            }
        }
    }
    return plan;
}

}  // namespace mistral::core
