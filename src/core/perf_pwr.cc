#include "core/perf_pwr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "common/check.h"

namespace mistral::core {

namespace {

using sizing = app_sizing;  // per-(app, tier) replicas + uniform cap

// Total CPU allocation of a sizing (the ρ in the gradient).
double total_allocation(const sizing& s) {
    double sum = 0.0;
    for (const auto& app : s) {
        for (const auto& t : app) sum += t.replicas * t.cap;
    }
    return sum;
}

// Worst-fit-decreasing bin packing of the sizing's replicas onto at most
// `host_limit` hosts, honouring any per-app host restriction. Returns the
// packed configuration, or nullopt when it does not fit.
std::optional<cluster::configuration> pack(
    const cluster::cluster_model& model, const sizing& s, std::size_t host_limit,
    const std::vector<std::vector<bool>>& app_hosts,
    const cluster::configuration* reference) {
    struct item {
        vm_id vm;
        std::size_t app;
        fraction cap;
        double memory;
    };
    std::vector<item> items;
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        const app_id app{static_cast<std::int32_t>(a)};
        for (std::size_t t = 0; t < model.app(app).tier_count(); ++t) {
            const auto& vms = model.tier_vms(app, t);
            for (int r = 0; r < s[a][t].replicas; ++r) {
                items.push_back({vms[static_cast<std::size_t>(r)], a, s[a][t].cap,
                                 model.vm(vms[static_cast<std::size_t>(r)]).memory_mb});
            }
        }
    }
    std::sort(items.begin(), items.end(),
              [](const item& x, const item& y) { return x.cap > y.cap; });

    struct bin {
        bool open = false;
        fraction cap_free = 0.0;
        double mem_free = 0.0;
        int slots_free = 0;
    };
    std::vector<bin> bins(model.host_count());
    std::vector<std::vector<std::pair<vm_id, fraction>>> contents(model.host_count());
    const auto& limits = model.limits();
    std::size_t opened = 0;

    auto host_allowed = [&](std::size_t app, std::size_t h) {
        // A crashed host takes no load and cannot be booted.
        if (reference &&
            reference->host_failed(host_id{static_cast<std::int32_t>(h)})) {
            return false;
        }
        return app_hosts.empty() || app_hosts[app][h];
    };

    auto bin_fits = [&](std::size_t h, const item& it) {
        return bins[h].open && host_allowed(it.app, h) &&
               bins[h].cap_free + 1e-9 >= it.cap &&
               bins[h].mem_free + 1e-9 >= it.memory && bins[h].slots_free >= 1;
    };
    auto open_bin = [&](std::size_t h) {
        bins[h] = {true, limits.host_cpu_cap,
                   model.hosts()[h].memory_mb - limits.dom0_memory_mb,
                   limits.max_vms_per_host};
        ++opened;
    };
    auto reference_host = [&](vm_id vm) -> int {
        if (!reference) return -1;
        const auto& p = reference->placement(vm);
        return p ? p->host.value : -1;
    };

    for (const auto& it : items) {
        int best = -1;
        // Placement stability first: keep the VM where the reference has it
        // whenever that host is (or can be) open and fits.
        const int ref = reference_host(it.vm);
        if (ref >= 0) {
            const auto h = static_cast<std::size_t>(ref);
            if (!bins[h].open && opened < host_limit && host_allowed(it.app, h)) {
                open_bin(h);
            }
            if (bin_fits(h, it)) best = ref;
        }
        // Largest remaining space among used (allowed) hosts...
        for (std::size_t h = 0; best < 0 && h < bins.size(); ++h) {
            if (bin_fits(h, it)) best = static_cast<int>(h);
        }
        // ...otherwise open a new empty (allowed) host, if any remain;
        // prefer hosts the reference already has powered on (no boot).
        if (best < 0) {
            if (opened >= host_limit) return std::nullopt;
            for (int pass = 0; pass < 2 && best < 0; ++pass) {
                for (std::size_t h = 0; h < bins.size(); ++h) {
                    if (bins[h].open || !host_allowed(it.app, h)) continue;
                    const bool was_on =
                        reference && reference->host_on(host_id{
                                         static_cast<std::int32_t>(h)});
                    if (pass == 0 && reference && !was_on) continue;
                    open_bin(h);
                    best = static_cast<int>(h);
                    break;
                }
            }
            if (best < 0) return std::nullopt;
            if (!bin_fits(static_cast<std::size_t>(best), it)) return std::nullopt;
        }
        auto& b = bins[static_cast<std::size_t>(best)];
        b.cap_free -= it.cap;
        b.mem_free -= it.memory;
        b.slots_free -= 1;
        contents[static_cast<std::size_t>(best)].push_back({it.vm, it.cap});
    }

    cluster::configuration config(model.vm_count(), model.host_count());
    if (reference) {
        // Carry the failure marks so `ideal == current` can hold (and the
        // no-op fast path fire) while part of the cluster is down.
        for (std::size_t h = 0; h < model.host_count(); ++h) {
            const host_id host{static_cast<std::int32_t>(h)};
            if (reference->host_failed(host)) config.set_host_failed(host, true);
        }
    }
    for (std::size_t h = 0; h < bins.size(); ++h) {
        if (!bins[h].open) continue;
        const host_id host{static_cast<std::int32_t>(h)};
        config.set_host_power(host, true);
        for (const auto& [vm, cap] : contents[h]) config.deploy(vm, host, cap);
    }
    return config;
}

}  // namespace

perf_pwr_optimizer::perf_pwr_optimizer(const cluster::cluster_model& model,
                                       utility_model utility, perf_pwr_options options)
    : perf_pwr_optimizer(model, utility, options, nullptr) {}

perf_pwr_optimizer::perf_pwr_optimizer(const cluster::cluster_model& model,
                                       utility_model utility, perf_pwr_options options,
                                       std::shared_ptr<utility_evaluator> evaluator)
    : model_(&model),
      utility_(utility),
      options_(options),
      evaluator_(std::move(evaluator)) {
    if (options_.cap_step <= 0.0) options_.cap_step = model.limits().cpu_step;
    MISTRAL_CHECK(options_.max_gradient_iterations >= 1);
    if (!evaluator_) {
        evaluator_ = make_evaluator(model, utility_, options_.lqn);
    }
}

perf_pwr_result perf_pwr_optimizer::optimize(
    const std::vector<req_per_sec>& rates,
    const cluster::configuration* reference) const {
    return run(rates, /*enforce_targets=*/false, reference);
}

perf_pwr_result perf_pwr_optimizer::optimize_meeting_targets(
    const std::vector<req_per_sec>& rates,
    const cluster::configuration* reference) const {
    return run(rates, /*enforce_targets=*/true, reference);
}

perf_pwr_result perf_pwr_optimizer::run(const std::vector<req_per_sec>& rates,
                                        bool enforce_targets,
                                        const cluster::configuration* reference) const {
    const auto& model = *model_;
    MISTRAL_CHECK(rates.size() == model.app_count());
    auto& engine = *evaluator_;
    engine.begin_decision(rates);

    // Start: maximum replication, maximum capacities.
    sizing s(model.app_count());
    double min_alloc = 0.0;
    int min_vms = 0;
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        const auto& app = model.app(app_id{static_cast<std::int32_t>(a)});
        s[a].resize(app.tier_count());
        for (std::size_t t = 0; t < app.tier_count(); ++t) {
            const auto& tier = app.tiers()[t];
            s[a][t] = {tier.max_replicas, tier.max_cpu_cap};
            min_alloc += tier.min_replicas * tier.min_cpu_cap;
            min_vms += tier.min_replicas;
        }
    }
    const auto& limits = model.limits();
    const std::size_t min_hosts = std::max<std::size_t>(
        {1,
         static_cast<std::size_t>(std::ceil(min_alloc / limits.host_cpu_cap - 1e-9)),
         static_cast<std::size_t>(std::ceil(
             static_cast<double>(min_vms) / limits.max_vms_per_host - 1e-9))});

    perf_pwr_result best;
    best.utility_rate = -std::numeric_limits<double>::infinity();

    int iterations_left = options_.max_gradient_iterations;
    for (std::size_t hosts = model.host_count(); hosts + 1 > min_hosts; --hosts) {
        // Shrink the sizing until it packs on `hosts` hosts (or give up).
        std::optional<cluster::configuration> packed;
        while (iterations_left-- > 0) {
            packed = pack(model, s, hosts, options_.app_hosts, reference);
            if (packed) break;

            // Gradient step: among all single reductions, take the one that
            // frees the most CPU per unit of performance utility lost. The
            // reductions are independent, so all of one step's candidates —
            // batch[0] is the base sizing itself — go to the engine as one
            // batch; the best pick replays the original enumeration order.
            std::vector<sizing> batch;
            batch.push_back(s);
            for (std::size_t a = 0; a < model.app_count(); ++a) {
                const auto& app = model.app(app_id{static_cast<std::int32_t>(a)});
                for (std::size_t t = 0; t < app.tier_count(); ++t) {
                    const auto& tier = app.tiers()[t];
                    if (s[a][t].cap - options_.cap_step >= tier.min_cpu_cap - 1e-9) {
                        sizing c = s;
                        c[a][t].cap -= options_.cap_step;
                        batch.push_back(std::move(c));
                    }
                    if (s[a][t].replicas > tier.min_replicas) {
                        sizing c = s;
                        c[a][t].replicas -= 1;
                        batch.push_back(std::move(c));
                    }
                }
            }
            const auto evals = engine.evaluate_isolated_batch(batch);
            const auto& base = evals[0];
            const double base_alloc = total_allocation(s);
            double best_grad = -std::numeric_limits<double>::infinity();
            std::size_t best_candidate = 0;  // 0 = none (the base itself)
            for (std::size_t i = 1; i < batch.size(); ++i) {
                if (enforce_targets && !evals[i].meets_all_targets) continue;
                const double dalloc = base_alloc - total_allocation(batch[i]);
                const double dutil = base.perf_rate - evals[i].perf_rate;
                const double grad = dalloc / (dutil + 1e-9);
                if (grad > best_grad) {
                    best_grad = grad;
                    best_candidate = i;
                }
            }
            if (best_candidate == 0) break;  // nothing left to shrink
            s = std::move(batch[best_candidate]);
        }
        if (!packed) break;  // cannot fit on this few hosts; fewer is hopeless

        // Score the packed configuration with the real placement and power.
        const auto se = engine.evaluate(*packed);
        if (enforce_targets && !se.meets_targets) break;
        if (se.rate > best.utility_rate) {
            best.feasible = true;
            best.ideal = *packed;
            best.utility_rate = se.rate;
            best.perf_rate = se.perf_rate;
            best.power_rate = se.power_rate;
            best.power = se.power;
            best.response_times = se.response_times;
            best.hosts_used = packed->active_host_count();
        }
        if (iterations_left <= 0) break;
    }
    if (!best.feasible) best.utility_rate = 0.0;
    return best;
}

}  // namespace mistral::core
