// Metering the optimizer's own execution cost.
//
// Section IV-B: "Mistral measures the elapsed time of the search, T, the
// utility accrued of the current configuration, UT, and the power usage of
// the search procedure itself, UpwrT" — the controller is, uniquely, aware of
// the cost of its own decision making ("consuming power to save power").
//
// Two meters implement the same interface: a wall-clock meter for live runs,
// and a deterministic model meter that charges a fixed cost per vertex
// expansion so tests and benches replay exactly. The model meter's default
// per-expansion cost is calibrated so search durations land in the paper's
// regime (seconds for realistic searches, tens of seconds for the naive
// algorithm on 4-app scenarios — Fig. 10b / Table I).
#pragma once

#include <chrono>
#include <cstddef>

#include "common/units.h"

namespace mistral::core {

class search_meter {
public:
    virtual ~search_meter() = default;

    // Called when a search starts; resets elapsed time.
    virtual void begin() = 0;
    // Called once per child evaluation (cost lookup + utility estimate).
    virtual void on_expansion() = 0;
    // Time spent searching since begin().
    [[nodiscard]] virtual seconds elapsed() const = 0;
    // Extra power the controller host draws while searching. The paper's
    // Fig. 10a measures up to 12 % over a 60 W idle host ≈ 7 W.
    [[nodiscard]] virtual watts search_power() const = 0;
};

class wall_clock_meter final : public search_meter {
public:
    explicit wall_clock_meter(watts search_power = 7.2);

    void begin() override;
    void on_expansion() override {}
    [[nodiscard]] seconds elapsed() const override;
    [[nodiscard]] watts search_power() const override { return power_; }

private:
    watts power_;
    std::chrono::steady_clock::time_point start_{};
};

class model_clock_meter final : public search_meter {
public:
    explicit model_clock_meter(seconds per_expansion = 0.002,
                               watts search_power = 7.2);

    void begin() override { expansions_ = 0; }
    void on_expansion() override { ++expansions_; }
    [[nodiscard]] seconds elapsed() const override {
        return per_expansion_ * static_cast<double>(expansions_);
    }
    [[nodiscard]] watts search_power() const override { return power_; }

    [[nodiscard]] std::size_t expansions() const { return expansions_; }

private:
    seconds per_expansion_;
    watts power_;
    std::size_t expansions_ = 0;
};

}  // namespace mistral::core
