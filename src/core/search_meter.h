// Metering the optimizer's own execution cost.
//
// Section IV-B: "Mistral measures the elapsed time of the search, T, the
// utility accrued of the current configuration, UT, and the power usage of
// the search procedure itself, UpwrT" — the controller is, uniquely, aware of
// the cost of its own decision making ("consuming power to save power").
//
// Two meters implement the same interface: a wall-clock meter for live runs,
// and a deterministic model meter that charges a fixed cost per vertex
// expansion so tests and benches replay exactly. The model meter's default
// per-expansion cost is calibrated so search durations land in the paper's
// regime (seconds for realistic searches, tens of seconds for the naive
// algorithm on 4-app scenarios — Fig. 10b / Table I).
//
// Parallel evaluation changes what "cost" means: elapsed wall time is metered
// once, but the power self-cost scales with *active worker-seconds* — four
// workers solving LQNs for one second burn four worker-seconds of search
// power. `charge(evaluations, workers)` is the batched accounting path:
//
//  * wall_clock_meter — elapsed() is real time; active_seconds() scales it by
//    the mean evaluation concurrency the charges recorded, so the power
//    self-cost reflects every busy core, not just the calendar.
//  * model_clock_meter — advances one tick per evaluation regardless of
//    `workers`, so decision logic (self-aware pruning, hard stops) replays
//    identically whether a serial or a parallel evaluator produced the
//    numbers. Parallelism speeds up real CPU time; the model clock
//    deliberately prices the *work*, not the calendar.
#pragma once

#include <chrono>
#include <cstddef>

#include "common/units.h"

namespace mistral::core {

class search_meter {
public:
    virtual ~search_meter() = default;

    // Called when a search starts; resets elapsed time.
    virtual void begin() = 0;
    // A batch of `evaluations` child evaluations executed concurrently on
    // `workers` active workers (`workers` ≥ 1; 1 is the serial path).
    virtual void charge(std::size_t evaluations, std::size_t workers) = 0;
    // One serial child evaluation (cost lookup + utility estimate).
    void on_expansion() { charge(1, 1); }
    // Time spent searching since begin().
    [[nodiscard]] virtual seconds elapsed() const = 0;
    // Active worker-seconds since begin() — the base the search's power
    // self-cost is charged against. Equals elapsed() for serial evaluation;
    // up to `workers`× larger under parallel evaluation.
    [[nodiscard]] virtual seconds active_seconds() const { return elapsed(); }
    // Extra power one busy worker draws while searching. The paper's
    // Fig. 10a measures up to 12 % over a 60 W idle host ≈ 7 W.
    [[nodiscard]] virtual watts search_power() const = 0;
    // Which time model produced the numbers — the search profiler records it
    // so a journal reader knows whether durations are reproducible
    // ("model_clock") or wall time ("wall_clock").
    [[nodiscard]] virtual const char* kind() const { return "custom"; }
};

class wall_clock_meter final : public search_meter {
public:
    explicit wall_clock_meter(watts search_power = 7.2);

    void begin() override;
    void charge(std::size_t evaluations, std::size_t workers) override;
    [[nodiscard]] seconds elapsed() const override;
    [[nodiscard]] seconds active_seconds() const override;
    [[nodiscard]] watts search_power() const override { return power_; }
    [[nodiscard]] const char* kind() const override { return "wall_clock"; }

private:
    watts power_;
    std::chrono::steady_clock::time_point start_{};
    // Concurrency model: evaluation dominates search time, so active time is
    // elapsed time scaled by (evaluations charged / serialized wall slots),
    // where a charge of n evaluations on w workers occupies ⌈n/w⌉ slots.
    double evaluations_ = 0.0;
    double wall_slots_ = 0.0;
};

class model_clock_meter final : public search_meter {
public:
    explicit model_clock_meter(seconds per_expansion = 0.002,
                               watts search_power = 7.2);

    void begin() override { expansions_ = 0; }
    void charge(std::size_t evaluations, std::size_t /*workers*/) override {
        expansions_ += evaluations;
    }
    [[nodiscard]] seconds elapsed() const override {
        return per_expansion_ * static_cast<double>(expansions_);
    }
    [[nodiscard]] watts search_power() const override { return power_; }
    [[nodiscard]] const char* kind() const override { return "model_clock"; }

    [[nodiscard]] std::size_t expansions() const { return expansions_; }
    [[nodiscard]] seconds per_expansion() const { return per_expansion_; }

private:
    seconds per_expansion_;
    watts power_;
    std::size_t expansions_ = 0;
};

}  // namespace mistral::core
