#include "core/controller.h"

#include <algorithm>

#include "common/check.h"

namespace mistral::core {

mistral_controller::mistral_controller(const cluster::cluster_model& model,
                                       cost::cost_table costs,
                                       controller_options options,
                                       std::unique_ptr<search_meter> meter)
    : model_(&model),
      options_(options),
      search_(model, utility_model(options.utility), std::move(costs),
              options.search),
      meter_(meter ? std::move(meter) : std::make_unique<model_clock_meter>()),
      monitor_(model.app_count(), options.band_width) {
    MISTRAL_CHECK(options_.min_control_window > 0.0);
    MISTRAL_CHECK(options_.max_control_window >= options_.min_control_window);
    MISTRAL_CHECK(options_.band_width >= 0.0);
    MISTRAL_CHECK(options_.utility_history >= 1);
    predictors_.reserve(model.app_count());
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        predict::arma_options arma = options_.arma;
        predictors_.emplace_back(arma);
    }
}

dollars mistral_controller::pessimistic_expected_utility(seconds cw) const {
    if (utility_history_.empty()) {
        // No achievement history yet: assume a neutral budget so the first
        // searches run unconstrained.
        return 0.0;
    }
    const dollars lowest =
        *std::min_element(utility_history_.begin(), utility_history_.end());
    // History entries are per monitoring interval; scale to the window.
    return lowest * cw / options_.utility.monitoring_interval;
}

controller_decision mistral_controller::step(const decision_input& in) {
    const seconds now = in.now;
    const auto& rates = in.rates;
    MISTRAL_CHECK(rates.size() == model_->app_count());
    controller_decision decision;

    if (!first_step_) {
        utility_history_.push_back(in.last_interval_utility);
        if (static_cast<int>(utility_history_.size()) > options_.utility_history) {
            utility_history_.erase(utility_history_.begin());
        }
    }

    const auto event = monitor_.observe(now, rates);
    for (std::size_t i = 0; i < event.exceeded.size(); ++i) {
        predictors_[event.exceeded[i]].observe(event.completed_intervals[i]);
    }

    const bool trigger = first_step_ || event.any_exceeded;
    first_step_ = false;
    if (!trigger) return decision;

    // Control window: the most conservative (shortest) of the predictions
    // for the applications that just moved, floored at one interval.
    seconds cw = options_.min_control_window;
    if (!event.exceeded.empty()) {
        seconds shortest = predictors_[event.exceeded.front()].current_estimate();
        for (std::size_t i = 1; i < event.exceeded.size(); ++i) {
            shortest =
                std::min(shortest, predictors_[event.exceeded[i]].current_estimate());
        }
        cw = std::max(cw, shortest);
    }
    cw = std::min(cw, options_.max_control_window);

    const dollars uh = pessimistic_expected_utility(cw);
    auto result = search_.find(in.current, rates, cw, uh, *meter_);

    decision.invoked = true;
    decision.actions = std::move(result.actions);
    decision.control_window = cw;
    decision.expected_utility = result.expected_utility;
    decision.ideal_utility = result.ideal_utility;
    decision.stats = result.stats;
    monitor_.recenter(now, rates);
    return decision;
}

}  // namespace mistral::core
