#include "core/controller.h"

#include <algorithm>
#include <cmath>

#include "cluster/action.h"
#include "common/check.h"
#include "core/planner.h"
#include "obs/journal.h"

namespace mistral::core {

namespace {

// The search (and through it the evaluation engine) inherits the
// controller's observability sink unless the caller wired its own.
controller_options inherit_search_sink(controller_options options) {
    if (options.search.sink == nullptr) {
        options.search.sink = options.sink;
    }
    return options;
}

}  // namespace

mistral_controller::mistral_controller(const cluster::cluster_model& model,
                                       cost::cost_table costs,
                                       controller_options options,
                                       std::unique_ptr<search_meter> meter)
    : model_(&model),
      options_(inherit_search_sink(std::move(options))),
      utility_(options_.utility),
      costs_(std::move(costs)),
      search_(model, utility_, costs_, options_.search),
      meter_(meter ? std::move(meter) : std::make_unique<model_clock_meter>()),
      monitor_(model.app_count(), options_.band_width) {
    MISTRAL_CHECK(options_.min_control_window > 0.0);
    MISTRAL_CHECK(options_.max_control_window >= options_.min_control_window);
    MISTRAL_CHECK(options_.band_width >= 0.0);
    MISTRAL_CHECK(options_.utility_history >= 1);
    MISTRAL_CHECK(options_.reconcile.max_retries >= 0);
    MISTRAL_CHECK(options_.reconcile.base_backoff >= 0.0);
    MISTRAL_CHECK(options_.reconcile.backoff_factor >= 1.0);
    predictors_.reserve(model.app_count());
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        predict::arma_options arma = options_.arma;
        predictors_.emplace_back(arma);
    }
    if (auto* reg = obs::metrics_of(options_.sink)) {
        obs_decisions_ = reg->register_counter(
            "mistral_controller_decisions_total",
            "Optimizer invocations (first-step, band, or fault triggers)");
        obs_repairs_ = reg->register_counter(
            "mistral_controller_repairs_total",
            "Structural repair plans issued after host crashes");
        obs_fault_replans_ = reg->register_counter(
            "mistral_controller_fault_replans_total",
            "Replans forced by fault signals inside the workload band");
        obs_failed_actions_ = reg->register_counter(
            "mistral_controller_failed_actions_total",
            "Action abort notices received from the executor");
        obs_wasted_seconds_ = reg->register_gauge(
            "mistral_controller_wasted_adaptation_seconds",
            "Wasted-adaptation ledger: nominal duration of aborted actions");
        obs_wasted_dollars_ = reg->register_gauge(
            "mistral_controller_wasted_transient_dollars",
            "Wasted-adaptation ledger: power-side cost of aborted transients");
    }
}

dollars mistral_controller::pessimistic_expected_utility(seconds cw) const {
    if (utility_history_.empty()) {
        // No achievement history yet: assume a neutral budget so the first
        // searches run unconstrained.
        return 0.0;
    }
    const dollars lowest =
        *std::min_element(utility_history_.begin(), utility_history_.end());
    // History entries are per monitoring interval; scale to the window.
    return lowest * cw / options_.utility.monitoring_interval;
}

void mistral_controller::account_faults(const decision_input& in) {
    for (const auto& a : in.failed) {
        ++rstats_.failed_actions;
        obs_failed_actions_.add();
        const auto entry = costs_.lookup(*model_, a, in.rates);
        rstats_.wasted_adaptation_time += entry.duration;
        rstats_.wasted_transient_cost +=
            entry.duration * -utility_.power_rate(std::max(0.0, entry.delta_power));
    }
    if (!in.failed.empty()) {
        obs_wasted_seconds_.set(rstats_.wasted_adaptation_time);
        obs_wasted_dollars_.set(rstats_.wasted_transient_cost);
    }
}

controller_decision mistral_controller::step(const decision_input& in) {
    const seconds now = in.now;
    const auto& rates = in.rates;
    MISTRAL_CHECK(rates.size() == model_->app_count());
    controller_decision decision;

    // One journal record per step (including holds and in-band no-ops), so a
    // journal reader sees every interval's predicted-vs-realized state.
    bool drift = false;
    dollars budget = 0.0;
    auto emit_decision = [&](const char* trigger) {
        if (!obs::journaling(options_.sink)) return;
        std::vector<std::string> names;
        names.reserve(decision.actions.size());
        for (const auto& a : decision.actions) {
            names.push_back(cluster::to_string(*model_, a));
        }
        obs::event e("decision", now);
        e.text("trigger", trigger)
            .boolean("invoked", decision.invoked)
            .boolean("repair", decision.repair)
            .boolean("reconciled", decision.reconciled)
            .num("cw", decision.control_window)
            .num("budget", budget)
            .num("expected_utility", decision.expected_utility)
            .num("ideal_utility", decision.ideal_utility)
            .num("realized_utility", in.last_interval_utility)
            .text_list("actions", std::move(names))
            .integer("expansions",
                     static_cast<std::int64_t>(decision.stats.expansions))
            .integer("generated",
                     static_cast<std::int64_t>(decision.stats.generated))
            .boolean("pruned", decision.stats.pruned)
            .num("search_duration", decision.stats.duration)
            .num("search_power_cost", decision.stats.search_power_cost)
            .integer("failed_actions",
                     static_cast<std::int64_t>(in.failed.size()))
            .integer("fault_rounds", fault_rounds_)
            .boolean("drift", drift)
            .num("wasted_seconds", rstats_.wasted_adaptation_time)
            .num("wasted_dollars", rstats_.wasted_transient_cost);
        options_.sink->record(e);
    };

    if (!first_step_) {
        utility_history_.push_back(in.last_interval_utility);
        if (static_cast<int>(utility_history_.size()) > options_.utility_history) {
            utility_history_.erase(utility_history_.begin());
        }
    }

    const auto event = monitor_.observe(now, rates);
    for (std::size_t i = 0; i < event.exceeded.size(); ++i) {
        predictors_[event.exceeded[i]].observe(event.completed_intervals[i]);
    }

    const auto& rec = options_.reconcile;
    account_faults(in);
    const bool fault_signal = !in.failed.empty() || !in.hosts_failed.empty() ||
                              !in.hosts_recovered.empty();
    if (!fault_signal) fault_rounds_ = 0;

    // While the executor still runs a previous sequence, hold off: planning
    // against a configuration that queued actions are about to change would
    // race them. (The fault-free harness only calls step() when idle, so
    // this path never fires there.)
    if (!in.in_flight.empty()) {
        first_step_ = false;
        emit_decision("hold");
        return decision;
    }

    // The base the optimizer plans from. plan_against_actual=false is the
    // harness's documented controller mutation: plan from what the last
    // decision intended instead of what the executor reports.
    const cluster::configuration& base =
        (rec.plan_against_actual || !intended_) ? in.current : *intended_;
    if (intended_ && !(*intended_ == in.current)) {
        ++rstats_.drift_intervals;
        drift = true;
    }

    // Repair first: a crash that pushed a tier below its replica minimum
    // leaves a configuration the steady-state predictors cannot even
    // evaluate; restore structural validity before optimizing.
    if (rec.enabled && !cluster::structurally_valid(*model_, base)) {
        auto repair = plan_repair(*model_, base);
        if (!repair.empty()) {
            first_step_ = false;
            ++rstats_.repairs;
            obs_decisions_.add();
            obs_repairs_.add();
            decision.invoked = true;
            decision.repair = true;
            decision.reconciled = true;
            decision.actions = std::move(repair);
            intended_ = apply_plan(*model_, base, decision.actions);
            monitor_.recenter(now, rates);
            emit_decision("repair");
            return decision;
        }
    }

    // A fault signal forces a replan even inside the workload band, bounded
    // by max_retries consecutive rounds with geometric backoff between them.
    bool force = false;
    if (rec.enabled && fault_signal && now + 1e-9 >= backoff_until_ &&
        fault_rounds_ < rec.max_retries) {
        force = true;
        backoff_until_ =
            now + rec.base_backoff * std::pow(rec.backoff_factor, fault_rounds_);
        ++fault_rounds_;
        ++rstats_.fault_replans;
        obs_fault_replans_.add();
    }

    const bool trigger = first_step_ || event.any_exceeded || force;
    const char* trigger_name = first_step_          ? "first"
                               : force              ? "fault"
                               : event.any_exceeded ? "band"
                                                    : "none";
    first_step_ = false;
    if (!trigger) {
        emit_decision("none");
        return decision;
    }

    // Control window: the most conservative (shortest) of the predictions
    // for the applications that just moved, floored at one interval.
    seconds cw = options_.min_control_window;
    if (!event.exceeded.empty()) {
        seconds shortest = predictors_[event.exceeded.front()].current_estimate();
        for (std::size_t i = 1; i < event.exceeded.size(); ++i) {
            shortest =
                std::min(shortest, predictors_[event.exceeded[i]].current_estimate());
        }
        cw = std::max(cw, shortest);
    }
    cw = std::min(cw, options_.max_control_window);

    const dollars uh = pessimistic_expected_utility(cw);
    auto result = search_.find(base, rates, cw, uh, *meter_, now);

    decision.invoked = true;
    obs_decisions_.add();
    decision.reconciled = force;
    decision.actions = std::move(result.actions);
    decision.control_window = cw;
    decision.expected_utility = result.expected_utility;
    decision.ideal_utility = result.ideal_utility;
    decision.stats = result.stats;
    if (!decision.actions.empty()) {
        intended_ = apply_plan(*model_, base, decision.actions);
    }
    monitor_.recenter(now, rates);
    budget = uh;
    emit_decision(trigger_name);
    return decision;
}

}  // namespace mistral::core
