#include "core/controller.h"

#include <algorithm>
#include <cmath>

#include "cluster/action.h"
#include "common/check.h"
#include "core/planner.h"
#include "obs/journal.h"

namespace mistral::core {

namespace {

// The search (and through it the evaluation engine) inherits the
// controller's observability sink unless the caller wired its own.
controller_options inherit_search_sink(controller_options options) {
    if (options.search.sink == nullptr) {
        options.search.sink = options.sink;
    }
    return options;
}

// The controller's utility model, with the econ profile bound before any
// copy is taken: search_, greedy_search_, the lookahead planner, and the
// evaluators all copy utility_, and a bound model's copies share one econ
// state — one update_econ() call at the top of step() re-prices every layer.
utility_model make_bound_utility(const controller_options& options) {
    utility_model utility(options.utility);
    if (options.econ.enabled) utility.bind_econ(options.econ);
    return utility;
}

// The greedy rung plans at most one action under a small expansion budget;
// everything else (menu, scopes, evaluation tuning) matches the main search.
search_options greedy_rung_options(const controller_options& options) {
    search_options out = options.search;
    out.max_plan_actions = 1;
    out.seed_beyond_plan_limit = false;  // the one-action bound is the contract
    out.max_expansions =
        std::min(out.max_expansions, options.degraded.greedy_max_expansions);
    return out;
}

}  // namespace

const char* to_string(control_mode mode) {
    switch (mode) {
        case control_mode::lookahead: return "lookahead";
        case control_mode::full: return "full";
        case control_mode::greedy: return "greedy";
        case control_mode::hold: return "hold";
    }
    return "?";
}

control_mode promote_one(control_mode mode, control_mode top) {
    control_mode up = mode;
    switch (mode) {
        case control_mode::lookahead: up = control_mode::lookahead; break;
        case control_mode::full: up = control_mode::lookahead; break;
        case control_mode::greedy: up = control_mode::full; break;
        case control_mode::hold: up = control_mode::greedy; break;
    }
    // Only the climb full → lookahead can exceed the configured top rung (a
    // controller without lookahead enabled stops at full).
    return (up == control_mode::lookahead && top != control_mode::lookahead)
               ? top
               : up;
}

mistral_controller::mistral_controller(const cluster::cluster_model& model,
                                       cost::cost_table costs,
                                       controller_options options,
                                       std::unique_ptr<search_meter> meter)
    : model_(&model),
      options_(inherit_search_sink(std::move(options))),
      utility_(make_bound_utility(options_)),
      costs_(std::move(costs)),
      search_(model, utility_, costs_, options_.search),
      meter_(meter ? std::move(meter) : std::make_unique<model_clock_meter>()),
      monitor_(model.app_count(), options_.band_width),
      validator_(model.app_count(), options_.degraded.validator),
      greedy_search_(model, utility_, costs_, greedy_rung_options(options_),
                     search_.shared_evaluator()) {
    MISTRAL_CHECK(options_.min_control_window > 0.0);
    MISTRAL_CHECK(options_.max_control_window >= options_.min_control_window);
    MISTRAL_CHECK(options_.band_width >= 0.0);
    MISTRAL_CHECK(options_.utility_history >= 1);
    MISTRAL_CHECK(options_.reconcile.max_retries >= 0);
    MISTRAL_CHECK(options_.reconcile.base_backoff >= 0.0);
    MISTRAL_CHECK(options_.reconcile.backoff_factor >= 1.0);
    MISTRAL_CHECK(options_.degraded.promote_after >= 1);
    MISTRAL_CHECK(options_.degraded.search_deadline_fraction > 0.0);
    MISTRAL_CHECK(options_.degraded.greedy_max_expansions >= 1);
    predictors_.reserve(model.app_count());
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        predict::arma_options arma = options_.arma;
        predictors_.emplace_back(arma);
    }
    prev_trusted_.assign(model.app_count(), true);
    if (options_.lookahead.enabled) {
        // The planner's interval-1 searches go through this controller's own
        // search_ (same object, same shared caches), which is what makes the
        // horizon = 1 decision trace bit-identical to the flat controller.
        lookahead_ = std::make_unique<lookahead_planner>(
            model, utility_, costs_, search_, options_.lookahead);
        rate_forecasters_.reserve(model.app_count());
        for (std::size_t a = 0; a < model.app_count(); ++a) {
            rate_forecasters_.emplace_back(options_.lookahead.rate_arma);
        }
        prev_forecaster_trusted_.assign(model.app_count(), true);
        mode_ = control_mode::lookahead;
    }
    if (auto* reg = obs::metrics_of(options_.sink)) {
        obs_decisions_ = reg->register_counter(
            "mistral_controller_decisions_total",
            "Optimizer invocations (first-step, band, or fault triggers)");
        obs_repairs_ = reg->register_counter(
            "mistral_controller_repairs_total",
            "Structural repair plans issued after host crashes");
        obs_fault_replans_ = reg->register_counter(
            "mistral_controller_fault_replans_total",
            "Replans forced by fault signals inside the workload band");
        obs_failed_actions_ = reg->register_counter(
            "mistral_controller_failed_actions_total",
            "Action abort notices received from the executor");
        obs_wasted_seconds_ = reg->register_gauge(
            "mistral_controller_wasted_adaptation_seconds",
            "Wasted-adaptation ledger: nominal duration of aborted actions");
        obs_wasted_dollars_ = reg->register_gauge(
            "mistral_controller_wasted_transient_dollars",
            "Wasted-adaptation ledger: power-side cost of aborted transients");
        obs_degraded_windows_ = reg->register_counter(
            "mistral_controller_degraded_windows_total",
            "Observation windows whose telemetry verdict was below healthy");
        obs_demotions_ = reg->register_counter(
            "mistral_controller_ladder_demotions_total",
            "Fallback-ladder moves toward hold");
        obs_promotions_ = reg->register_counter(
            "mistral_controller_ladder_promotions_total",
            "Fallback-ladder moves toward full");
        obs_lookahead_decisions_ = reg->register_counter(
            "mistral_controller_lookahead_decisions_total",
            "Plans made on the receding-horizon lookahead rung");
        obs_preprovisions_ = reg->register_counter(
            "mistral_controller_lookahead_preprovisions_total",
            "Lookahead decisions that committed a pre-provision plan");
    }
}

dollars mistral_controller::pessimistic_expected_utility(seconds cw) const {
    if (utility_history_.empty()) {
        // No achievement history yet: assume a neutral budget so the first
        // searches run unconstrained.
        return 0.0;
    }
    const dollars lowest =
        *std::min_element(utility_history_.begin(), utility_history_.end());
    // History entries are per monitoring interval; scale to the window.
    return lowest * cw / options_.utility.monitoring_interval;
}

void mistral_controller::account_faults(const decision_input& in,
                                        const std::vector<req_per_sec>& rates) {
    for (const auto& a : in.failed) {
        ++rstats_.failed_actions;
        obs_failed_actions_.add();
        const auto entry = costs_.lookup(*model_, a, rates);
        rstats_.wasted_adaptation_time += entry.duration;
        rstats_.wasted_transient_cost +=
            entry.duration * -utility_.power_rate(std::max(0.0, entry.delta_power));
    }
    if (!in.failed.empty()) {
        obs_wasted_seconds_.set(rstats_.wasted_adaptation_time);
        obs_wasted_dollars_.set(rstats_.wasted_transient_cost);
    }
}

void mistral_controller::update_ladder(control_mode target, const char* reason,
                                       seconds now) {
    // Rung comparisons and the climb are enum-based (control_mode declares
    // the rungs in capability order; promote_one names each step explicitly),
    // so inserting a rung cannot silently renumber the ladder.
    control_mode from = mode_;
    const char* direction = nullptr;
    if (target > mode_) {
        // Demote immediately: a rung was selected because the inputs cannot
        // support anything more ambitious right now.
        mode_ = target;
        clean_steps_ = 0;
        ++dstats_.demotions;
        obs_demotions_.add();
        direction = "demote";
    } else if (target < mode_) {
        // Promote with hysteresis, one rung at a time.
        ++clean_steps_;
        if (clean_steps_ >= options_.degraded.promote_after) {
            mode_ = promote_one(mode_, top_rung());
            clean_steps_ = 0;
            ++dstats_.promotions;
            obs_promotions_.add();
            direction = "promote";
            reason = "recovered";
        }
    } else {
        clean_steps_ = 0;
    }
    if (direction != nullptr && obs::journaling(options_.sink)) {
        obs::event e("ladder_transition", now);
        e.text("direction", direction)
            .text("from", to_string(from))
            .text("to", to_string(mode_))
            .text("reason", reason);
        options_.sink->record(e);
    }
}

void mistral_controller::set_power_cap(watts cap) {
    search_.set_power_cap(cap);
    greedy_search_.set_power_cap(cap);
    if (lookahead_) lookahead_->set_power_cap(cap);
}

controller_decision mistral_controller::step(const decision_input& in) {
    const seconds now = in.now;
    MISTRAL_CHECK(in.rates.size() == model_->app_count());
    controller_decision decision;

    // Economics: re-index the tariff at this step's timestamp before anything
    // evaluates (the searches and evaluators share utility_'s econ state), and
    // apply the power-cap schedule on top of the search's terminal legality.
    // A changed factor forces a replan below — the workload band only reacts
    // to rate movement and would happily sit through a price step — and is
    // journaled as a tariff_change. Inert without an econ binding; inert in
    // effect under a flat tariff (no factor ever changes).
    bool tariff_changed = false;
    if (utility_.econ_bound()) {
        const econ_factors before = utility_.econ_now();
        tariff_changed = utility_.update_econ(now);
        if (options_.econ.power_cap_schedule) {
            set_power_cap(options_.econ.power_cap_schedule->at(now));
        }
        if (tariff_changed && obs::journaling(options_.sink)) {
            obs::event e("tariff_change", now);
            e.num("price", utility_.econ_now().power_price)
                .num("carbon_intensity", utility_.econ_now().carbon_intensity)
                .num("prev_price", before.power_price)
                .num("prev_carbon_intensity", before.carbon_intensity);
            options_.sink->record(e);
        }
    }

    // Grade the window before anything downstream sees it. A disabled
    // validator — and a healthy verdict — pass the measured rates through
    // with identical bits, so this stage is inert on clean telemetry.
    const auto& deg = options_.degraded;
    wl::quality_verdict verdict;
    if (deg.enabled) {
        wl::telemetry_window window;
        window.time = now;
        window.rates = in.rates;
        window.response_times = in.response_times;
        window.samples = in.samples;
        verdict = validator_.validate(window);
    } else {
        verdict.rates = in.rates;
        verdict.app_flags.assign(in.rates.size(), wl::quality_ok);
    }
    const std::vector<req_per_sec>& rates = verdict.rates;
    decision.telemetry_quality = verdict.quality;
    decision.mode = mode_;
    if (!verdict.healthy()) {
        ++dstats_.degraded_windows;
        obs_degraded_windows_.add();
        if (verdict.quality == wl::window_quality::garbage) {
            ++dstats_.garbage_windows;
        }
    }

    // One journal record per step (including holds and in-band no-ops), so a
    // journal reader sees every interval's predicted-vs-realized state.
    bool drift = false;
    dollars budget = 0.0;
    auto emit_decision = [&](const char* trigger) {
        if (!obs::journaling(options_.sink)) return;
        std::vector<std::string> names;
        names.reserve(decision.actions.size());
        for (const auto& a : decision.actions) {
            names.push_back(cluster::to_string(*model_, a));
        }
        obs::event e("decision", now);
        e.text("trigger", trigger)
            .boolean("invoked", decision.invoked)
            .boolean("repair", decision.repair)
            .boolean("reconciled", decision.reconciled)
            .num("cw", decision.control_window)
            .num("budget", budget)
            .num("expected_utility", decision.expected_utility)
            .num("ideal_utility", decision.ideal_utility)
            .num("realized_utility", in.last_interval_utility)
            .text_list("actions", std::move(names))
            .integer("expansions",
                     static_cast<std::int64_t>(decision.stats.expansions))
            .integer("generated",
                     static_cast<std::int64_t>(decision.stats.generated))
            .boolean("pruned", decision.stats.pruned)
            .num("search_duration", decision.stats.duration)
            .num("search_power_cost", decision.stats.search_power_cost)
            .integer("failed_actions",
                     static_cast<std::int64_t>(in.failed.size()))
            .integer("fault_rounds", fault_rounds_)
            .boolean("drift", drift)
            .num("wasted_seconds", rstats_.wasted_adaptation_time)
            .num("wasted_dollars", rstats_.wasted_transient_cost)
            .text("mode", to_string(decision.mode))
            .text("quality", wl::to_string(decision.telemetry_quality));
        options_.sink->record(e);
    };

    if (!first_step_) {
        utility_history_.push_back(in.last_interval_utility);
        if (static_cast<int>(utility_history_.size()) > options_.utility_history) {
            utility_history_.erase(utility_history_.begin());
        }
    }

    const auto event = monitor_.observe(now, rates);
    for (std::size_t i = 0; i < event.exceeded.size(); ++i) {
        predictors_[event.exceeded[i]].observe(event.completed_intervals[i]);
    }

    // Divergence-guard bookkeeping: journal trust flips, and widen the
    // workload bands by the worst drifting predictor's multiplier (exactly
    // 1.0 while every predictor tracks — bit-identical band checks).
    bool any_untrusted = false;
    if (deg.enabled) {
        double band_scale = 1.0;
        for (std::size_t a = 0; a < predictors_.size(); ++a) {
            const auto& p = predictors_[a];
            if (!p.trusted()) any_untrusted = true;
            band_scale = std::max(band_scale, p.band_multiplier());
            if (p.trusted() != prev_trusted_[a]) {
                prev_trusted_[a] = p.trusted();
                if (obs::journaling(options_.sink)) {
                    obs::event e("predictor_divergence", now);
                    e.integer("app", static_cast<std::int64_t>(a))
                        .boolean("trusted", p.trusted())
                        .num("drift", p.drift())
                        .integer("reestimation_attempts", p.reestimation_attempts())
                        .boolean("reestimation_active", p.reestimation_active());
                    options_.sink->record(e);
                }
            }
        }
        monitor_.set_band_scale(band_scale);
    }

    // Rate forecasters feed the lookahead horizon. Observing is passive — it
    // affects no decision until the lookahead rung consumes a forecast — so a
    // horizon = 1 controller stays bit-identical to the flat one. A trust
    // loss here is the lookahead-specific divergence alarm; the ladder below
    // answers it by demoting to full (today's behavior), not greedy.
    if (options_.lookahead.enabled) {
        for (std::size_t a = 0; a < rate_forecasters_.size(); ++a) {
            if (std::isfinite(rates[a]) && rates[a] >= 0.0) {
                rate_forecasters_[a].observe(rates[a]);
            }
            if (rate_forecasters_[a].trusted() != prev_forecaster_trusted_[a]) {
                prev_forecaster_trusted_[a] = rate_forecasters_[a].trusted();
                if (!rate_forecasters_[a].trusted()) {
                    ++lstats_.forecast_divergences;
                }
            }
        }
    }

    const auto& rec = options_.reconcile;
    account_faults(in, rates);
    const bool fault_signal = !in.failed.empty() || !in.hosts_failed.empty() ||
                              !in.hosts_recovered.empty();
    if (!fault_signal) fault_rounds_ = 0;

    // While the executor still runs a previous sequence, hold off: planning
    // against a configuration that queued actions are about to change would
    // race them. (The fault-free harness only calls step() when idle, so
    // this path never fires there.)
    if (!in.in_flight.empty()) {
        first_step_ = false;
        emit_decision("hold");
        return decision;
    }

    // The base the optimizer plans from. plan_against_actual=false is the
    // harness's documented controller mutation: plan from what the last
    // decision intended instead of what the executor reports.
    const cluster::configuration& base =
        (rec.plan_against_actual || !intended_) ? in.current : *intended_;
    if (intended_ && !(*intended_ == in.current)) {
        ++rstats_.drift_intervals;
        drift = true;
    }

    // Repair first: a crash that pushed a tier below its replica minimum
    // leaves a configuration the steady-state predictors cannot even
    // evaluate; restore structural validity before optimizing.
    if (rec.enabled && !cluster::structurally_valid(*model_, base)) {
        auto repair = plan_repair(*model_, base);
        if (!repair.empty()) {
            first_step_ = false;
            ++rstats_.repairs;
            obs_decisions_.add();
            obs_repairs_.add();
            decision.invoked = true;
            decision.repair = true;
            decision.reconciled = true;
            decision.actions = std::move(repair);
            intended_ = apply_plan(*model_, base, decision.actions);
            monitor_.recenter(now, rates);
            emit_decision("repair");
            return decision;
        }
    }

    // Fallback ladder: pick the rung this step's inputs can support, demote
    // immediately, promote with hysteresis. Structural repair above runs in
    // every mode (a fenced safety action); everything below is gated.
    if (deg.enabled) {
        control_mode target = control_mode::full;
        const char* reason = "healthy";
        if (any_untrusted) {
            target = control_mode::hold;
            reason = "predictor_untrusted";
        } else if (verdict.quality == wl::window_quality::garbage) {
            target = control_mode::greedy;
            reason = "telemetry_garbage";
        } else if (verdict.quality == wl::window_quality::degraded) {
            target = control_mode::greedy;
            reason = "telemetry_degraded";
        } else if (deadline_tripped_) {
            target = control_mode::greedy;
            reason = "search_deadline";
        } else if (options_.lookahead.enabled) {
            // Healthy inputs: the top rung is lookahead, unless one of its
            // own alarms (forecast divergence, blown lookahead deadline)
            // holds it at full — the single-interval controller's behavior.
            bool forecasters_trusted = true;
            for (const auto& f : rate_forecasters_) {
                forecasters_trusted = forecasters_trusted && f.trusted();
            }
            if (!forecasters_trusted) {
                reason = "forecast_divergence";
            } else if (lookahead_deadline_tripped_) {
                reason = "lookahead_deadline";
            } else {
                target = control_mode::lookahead;
            }
        }
        update_ladder(target, reason, now);
    }
    decision.mode = mode_;

    // A fault signal forces a replan even inside the workload band, bounded
    // by max_retries consecutive rounds with geometric backoff between them.
    // On the hold rung fault replans are suppressed too: replanning is
    // exactly the adaptation an untrusted predictor cannot justify (the
    // structural-repair path above already handled safety).
    bool force = false;
    if (rec.enabled && mode_ != control_mode::hold && fault_signal &&
        now + 1e-9 >= backoff_until_ && fault_rounds_ < rec.max_retries) {
        force = true;
        backoff_until_ =
            now + rec.base_backoff * std::pow(rec.backoff_factor, fault_rounds_);
        ++fault_rounds_;
        ++rstats_.fault_replans;
        obs_fault_replans_.add();
    }

    const bool trigger =
        first_step_ || event.any_exceeded || force || tariff_changed;
    const char* trigger_name = first_step_          ? "first"
                               : force              ? "fault"
                               : event.any_exceeded ? "band"
                               : tariff_changed     ? "tariff"
                                                    : "none";
    first_step_ = false;
    if (!trigger) {
        emit_decision("none");
        return decision;
    }

    // Control window: the most conservative (shortest) of the predictions
    // for the applications that just moved, floored at one interval.
    seconds cw = options_.min_control_window;
    if (!event.exceeded.empty()) {
        seconds shortest = predictors_[event.exceeded.front()].current_estimate();
        for (std::size_t i = 1; i < event.exceeded.size(); ++i) {
            shortest =
                std::min(shortest, predictors_[event.exceeded[i]].current_estimate());
        }
        cw = std::max(cw, shortest);
    }
    cw = std::min(cw, options_.max_control_window);

    // Hold rung: the trigger is real, but interval predictions are untrusted,
    // so re-center the bands on the new level and keep the last known-good
    // configuration. Predictors keep observing (above), so trust can recover.
    if (mode_ == control_mode::hold) {
        ++dstats_.held_triggers;
        decision.control_window = cw;
        monitor_.recenter(now, rates);
        emit_decision(trigger_name);
        return decision;
    }

    const bool greedy = mode_ == control_mode::greedy;
    const dollars uh = pessimistic_expected_utility(cw);
    search_result result;
    if (mode_ == control_mode::lookahead) {
        // Receding horizon: forecast intervals 2..K from the rate
        // forecasters, plan a sequence, commit only interval 1, replan next
        // window. At horizon = 1 this is one find() on the controller's own
        // search — the flat controller's exact call.
        const int k = options_.lookahead.horizon;
        std::vector<std::vector<req_per_sec>> forecast;
        std::vector<double> confidence;
        if (k > 1) {
            std::vector<std::vector<predict::forecast_band>> bands;
            bands.reserve(rate_forecasters_.size());
            for (const auto& f : rate_forecasters_) {
                bands.push_back(
                    f.forecast_horizon(k, options_.lookahead.horizon_model));
            }
            forecast.reserve(static_cast<std::size_t>(k) - 1);
            confidence.reserve(static_cast<std::size_t>(k) - 1);
            for (int i = 1; i < k; ++i) {
                std::vector<req_per_sec> fr(bands.size());
                double spread = 0.0;
                for (std::size_t a = 0; a < bands.size(); ++a) {
                    const auto& b = bands[a][static_cast<std::size_t>(i)];
                    fr[a] = b.center;
                    spread = std::max(spread,
                                      b.half_width / std::max(b.center, 1.0));
                }
                forecast.push_back(std::move(fr));
                confidence.push_back(1.0 / (1.0 + spread));
            }
        }
        auto la = lookahead_->plan(base, rates, forecast, confidence, cw, uh,
                                   *meter_, now);
        ++lstats_.lookahead_decisions;
        obs_lookahead_decisions_.add();
        if (la.preprovisioned) {
            ++lstats_.preprovision_commits;
            obs_preprovisions_.add();
        } else {
            ++lstats_.reactive_commits;
        }
        if (deg.enabled) {
            // The single-interval watchdog sees only the committed plan's own
            // search (identical to the flat controller at horizon = 1); the
            // lookahead watchdog sees the whole plan and demotes one rung to
            // full via the ladder above.
            const bool tripped =
                la.first_duration > deg.search_deadline_fraction * cw;
            if (tripped && !deadline_tripped_) ++dstats_.deadline_trips;
            deadline_tripped_ = tripped;
            const bool la_tripped =
                la.total_duration > options_.lookahead.deadline_fraction * cw;
            if (la_tripped && !lookahead_deadline_tripped_) {
                ++lstats_.deadline_demotions;
            }
            lookahead_deadline_tripped_ = la_tripped;
        }
        if (obs::journaling(options_.sink)) {
            std::vector<double> step_utilities;
            step_utilities.reserve(la.steps.size());
            for (const auto& s : la.steps) {
                step_utilities.push_back(s.predicted_utility);
            }
            obs::event e("lookahead", now);
            e.integer("horizon", la.horizon)
                .text("commit", la.commit_reason)
                .boolean("preprovision", la.preprovisioned)
                .num("total_value", la.total_value)
                .num_list("step_utilities", std::move(step_utilities))
                .integer("searches", static_cast<std::int64_t>(la.searches))
                .num("first_duration", la.first_duration)
                .num("total_duration", la.total_duration);
            options_.sink->record(e);
        }
        result = std::move(la.committed);
    } else {
        result = (greedy ? greedy_search_ : search_).find(base, rates, cw, uh,
                                                          *meter_, now);
        if (greedy) ++dstats_.greedy_decisions;

        // Deadline watchdog feeding the next step's rung selection.
        if (deg.enabled) {
            const bool tripped =
                result.stats.duration > deg.search_deadline_fraction * cw;
            if (tripped && !deadline_tripped_) ++dstats_.deadline_trips;
            deadline_tripped_ = tripped;
            // A decision completed inside the single-interval deadline also
            // drains the lookahead watchdog, so the ladder can eventually
            // promote back onto the lookahead rung.
            if (!tripped) lookahead_deadline_tripped_ = false;
        }
    }

    decision.invoked = true;
    obs_decisions_.add();
    decision.reconciled = force;
    decision.actions = std::move(result.actions);
    decision.control_window = cw;
    decision.expected_utility = result.expected_utility;
    decision.ideal_utility = result.ideal_utility;
    decision.stats = result.stats;
    if (!decision.actions.empty()) {
        intended_ = apply_plan(*model_, base, decision.actions);
    }
    // A greedy decision is deliberately partial: one action toward the ideal.
    // Leaving the bands centered where they were keeps the still-deviating
    // workload triggering, so the greedy rung converges one action per window
    // — and the promotion back to full (bands still off-center) finishes the
    // adaptation in one shot. Recentering here would declare the move handled
    // after a single action and strand a half-adapted configuration.
    if (!greedy) monitor_.recenter(now, rates);
    budget = uh;
    // Every invoked econ-aware decision journals the economic context it was
    // priced under — the analysis side joins these against "decision" records
    // to attribute follow-the-price consolidation.
    if (utility_.econ_bound() && obs::journaling(options_.sink)) {
        const econ_factors& f = utility_.econ_now();
        const watts cap = search_.options().power_cap;
        obs::event e("econ_decision", now);
        e.num("price", f.power_price)
            .num("carbon_intensity", f.carbon_intensity)
            .num("carbon_dollars_per_watt_interval",
                 f.carbon_dollars_per_watt_interval)
            .boolean("performance_based", f.performance_based)
            .num("power_cap", std::isfinite(cap) ? cap : -1.0)
            .num("expected_utility", decision.expected_utility);
        options_.sink->record(e);
    }
    emit_decision(trigger_name);
    return decision;
}

}  // namespace mistral::core
