// The Mistral controller (Fig. 2).
//
// One controller instance wires together the predictor modules — the
// Performance Manager and Power Consolidation Manager (LQN + power models,
// reached through the search's utility evaluations), the Cost Manager (the
// offline-measured cost tables), and the Workload predictor (per-application
// adaptive ARMA filters over measured stability intervals) — with the
// optimizer module (the self-aware A* adaptation search).
//
// It is invoked once per monitoring interval with the measured workload; it
// runs the optimizer only when some application's workload has left its band
// (Section III-D), predicts the next stability interval as the control
// window CW, budgets the search with the lowest recently achieved utility
// (UH), and returns the chosen action sequence.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/configuration.h"
#include "cluster/model.h"
#include "core/lookahead.h"
#include "core/search.h"
#include "core/search_meter.h"
#include "cost/table.h"
#include "predict/arma.h"
#include "workload/monitor.h"

namespace mistral::core {

// Self-healing under fault injection: how the controller reconciles what it
// intended with what the testbed reports actually happened.
struct reconcile_options {
    bool enabled = true;
    // At most this many consecutive fault-triggered replans; after that the
    // controller waits for the regular band trigger (a persistently failing
    // action must not re-submit forever).
    int max_retries = 3;
    // Hold-off before the next fault-triggered replan grows geometrically:
    // base_backoff · backoff_factor^(consecutive fault rounds). The default
    // base of 0 disables the delay while keeping retries bounded.
    seconds base_backoff = 0.0;
    double backoff_factor = 2.0;
    // Plan from the *actual* observed configuration. Setting this to false
    // is a deliberate controller mutation for the invariant harness: the
    // controller then plans from the configuration it last intended, and the
    // randomized fault tests must catch the illegal actions that follow.
    bool plan_against_actual = true;
};

// The fallback decision ladder's rungs, ordered by decreasing capability.
// Demotion is immediate; promotion climbs one rung at a time after a run of
// clean steps (hysteresis), so a flapping sensor cannot make the controller
// oscillate between full optimization and holding.
enum class control_mode {
    lookahead,  // opt-in top rung: receding-horizon planning over K intervals;
                // a forecast divergence alarm or a blown lookahead deadline
                // demotes to full (today's single-interval behavior)
    full,    // healthy inputs: the self-aware A* plans freely
    greedy,  // degraded telemetry or a blown search deadline: single-action plans
             // under a small expansion budget
    hold,    // untrusted predictor: keep the last known-good configuration;
             // only fenced safety actions (structural repair) still execute
};
[[nodiscard]] const char* to_string(control_mode mode);
// The next rung up (toward lookahead); `top` clamps the climb — a controller
// without lookahead enabled promotes no higher than full. Enum-based rather
// than integer rank arithmetic so rung insertions cannot silently renumber
// the ladder.
[[nodiscard]] control_mode promote_one(control_mode mode, control_mode top);

// Degraded-mode operation: telemetry validation and the fallback ladder.
// Enabled by default and provably inert on healthy inputs — the validator
// passes clean measurements through bit-identically, the ladder stays on the
// full rung, and the band scale stays exactly 1.0.
struct degraded_options {
    bool enabled = true;
    // Telemetry grading (finiteness/range/empty always on; jump and stuck-at
    // plausibility checks are opt-in, see workload/monitor.h).
    wl::validator_options validator{};
    // Consecutive clean steps before the ladder climbs one rung back up.
    int promote_after = 3;
    // Deadline watchdog: demote to greedy when the last search's metered
    // duration exceeded this fraction of its control window. The self-aware
    // search hard-stops at stop_factor · T̄ ≈ 10 % of CW, so the default can
    // only trip when a meter reports genuine overrun (or the search is
    // configured non-self-aware on a large cluster).
    double search_deadline_fraction = 0.5;
    // Expansion budget for the greedy single-action rung.
    std::size_t greedy_max_expansions = 64;
};

struct controller_options {
    utility_params utility{};
    // Economics layer (src/econ): a time-of-use tariff, pricing model, and
    // optional carbon price / power-cap schedule bound into the utility model
    // shared by the searches and evaluators. Disabled by default; with a flat
    // default tariff and flat pricing the controller is bit-identical to one
    // without the binding (ctest -L econ).
    econ_profile econ{};
    // Workload band width b (req/s). 0 re-evaluates on any change — the
    // paper's first-level setting; the second level uses 8 req/s.
    req_per_sec band_width = 8.0;
    search_options search{};
    predict::arma_options arma{};
    // CW never drops below one monitoring interval, nor grows beyond the
    // cap: an over-long window (an ARMA over-prediction right as a flash
    // crowd begins) would justify adaptation sequences that execute for many
    // intervals while the workload keeps moving underneath them. The paper's
    // measured stability intervals (Fig. 6) stay under ~700 s.
    seconds min_control_window = default_monitoring_interval;
    seconds max_control_window = 6.0 * default_monitoring_interval;
    // How many recent interval utilities feed the pessimistic UH estimate.
    int utility_history = 5;
    reconcile_options reconcile{};
    degraded_options degraded{};
    // Receding-horizon lookahead planning (core/lookahead.h). Disabled by
    // default: the flat single-interval controller is bit-identical with this
    // struct at its defaults, and at horizon = 1 even an *enabled* lookahead
    // produces byte-identical decision traces (the differential anchor).
    lookahead_options lookahead{};
    // Observability hook (obs/journal.h): when journaling, the controller
    // emits one "decision" record per step — trigger, predicted vs realized
    // utility, plan, search self-cost, wasted-adaptation ledger — and wires
    // the same sink into the search and evaluation engine unless those set
    // their own. nullptr (the default) is the zero-overhead null sink.
    obs::sink* sink = nullptr;
};

// One monitoring interval's observations, as handed to a controller or
// strategy. A struct rather than positional parameters so the decision
// interface can grow (SLA revisions, host-failure notices, operator hints)
// without touching every implementation and call site again.
struct decision_input {
    seconds now = 0.0;
    // Measured per-application request rates over the interval.
    std::vector<req_per_sec> rates;
    // The configuration currently in effect.
    cluster::configuration current;
    // Utility the system actually accrued over the previous interval
    // (feeds the pessimistic UH search budget).
    dollars last_interval_utility = 0.0;
    // Fault notices from the executor since the last decision (all empty in
    // fault-free operation; appended here so existing positional initializers
    // of the older fields keep compiling).
    std::vector<cluster::action> failed{};     // aborted without taking effect
    std::vector<cluster::action> in_flight{};  // still executing or queued
    std::vector<std::int32_t> hosts_failed{};     // crashed since last decision
    std::vector<std::int32_t> hosts_recovered{};  // failure mark cleared
    // Optional telemetry channels for the validator (empty = the measurement
    // pipeline does not report them). `samples` is completed requests per
    // application: 0 marks an empty observation window.
    std::vector<seconds> response_times{};
    std::vector<double> samples{};
};

struct controller_decision {
    bool invoked = false;  // the optimizer ran this step
    std::vector<cluster::action> actions;
    seconds control_window = 0.0;  // CW the search optimized over
    dollars expected_utility = 0.0;
    dollars ideal_utility = 0.0;
    search_stats stats;
    bool repair = false;      // actions are a structural repair, not a search plan
    bool reconciled = false;  // a fault signal (not the band) forced this run
    // Ladder rung this decision was made on, and the telemetry verdict that
    // (along with predictor trust and the deadline watchdog) selected it.
    control_mode mode = control_mode::full;
    wl::window_quality telemetry_quality = wl::window_quality::healthy;
};

// Running totals of the controller's fault handling (all zero without fault
// injection).
struct reconcile_stats {
    std::int64_t failed_actions = 0;  // abort notices received
    std::int64_t fault_replans = 0;   // optimizer runs forced by fault signals
    std::int64_t repairs = 0;         // structural repair plans issued
    std::int64_t drift_intervals = 0; // intended != actual at a decision point
    // Cost-table estimate of adaptation effort burnt by aborted actions:
    // their nominal durations, and the power-side dollars of their transients
    // (the measured utility already pays the full metered price; this ledger
    // attributes it).
    seconds wasted_adaptation_time = 0.0;
    dollars wasted_transient_cost = 0.0;
};

// Running totals of lookahead planning (all zero with lookahead disabled).
struct lookahead_stats {
    std::int64_t lookahead_decisions = 0;   // plans made on the lookahead rung
    std::int64_t preprovision_commits = 0;  // ... that committed a pre-provision plan
    std::int64_t reactive_commits = 0;      // ... that committed the reactive plan
    std::int64_t forecast_divergences = 0;  // rate-forecaster trust losses
    std::int64_t deadline_demotions = 0;    // lookahead-deadline watchdog firings
};

// Running totals of degraded-mode operation (all zero on healthy inputs).
struct degraded_stats {
    std::int64_t degraded_windows = 0;  // telemetry verdicts below healthy
    std::int64_t garbage_windows = 0;   // ... of which carried impossible values
    std::int64_t demotions = 0;         // ladder moves toward hold
    std::int64_t promotions = 0;        // ladder moves toward full
    std::int64_t held_triggers = 0;     // triggers answered by holding position
    std::int64_t greedy_decisions = 0;  // plans made on the greedy rung
    std::int64_t deadline_trips = 0;    // search-deadline watchdog firings
};

class mistral_controller {
public:
    // `meter` defaults to a deterministic model-clock meter.
    mistral_controller(const cluster::cluster_model& model, cost::cost_table costs,
                       controller_options options = {},
                       std::unique_ptr<search_meter> meter = nullptr);
    // Pinned in place: the lookahead planner (and the greedy rung's shared
    // evaluator) hold pointers into this object's own members.
    mistral_controller(const mistral_controller&) = delete;
    mistral_controller& operator=(const mistral_controller&) = delete;

    // One monitoring-interval step over the interval's observations.
    controller_decision step(const decision_input& in);

    // Runtime power-budget update (watts; infinity = uncapped). Forwarded to
    // both the full search and the greedy rung without rebuilding either, so
    // the evaluation caches survive a budget change. The global coordinator
    // calls this each interval when redistributing the cluster budget.
    void set_power_cap(watts cap);

    [[nodiscard]] const wl::workload_monitor& monitor() const { return monitor_; }
    [[nodiscard]] const std::vector<predict::stability_predictor>& predictors() const {
        return predictors_;
    }
    [[nodiscard]] const controller_options& options() const { return options_; }
    [[nodiscard]] const adaptation_search& search() const { return search_; }
    [[nodiscard]] const utility_model& utility() const { return utility_; }
    [[nodiscard]] const reconcile_stats& reconciliation() const { return rstats_; }
    // Current ladder rung and degraded-mode totals.
    [[nodiscard]] control_mode mode() const { return mode_; }
    [[nodiscard]] const degraded_stats& degraded() const { return dstats_; }
    // Lookahead totals and the per-application rate forecasters (empty unless
    // options.lookahead.enabled).
    [[nodiscard]] const lookahead_stats& lookahead() const { return lstats_; }
    [[nodiscard]] const std::vector<predict::stability_predictor>&
    rate_forecasters() const {
        return rate_forecasters_;
    }
    [[nodiscard]] const wl::telemetry_validator& validator() const { return validator_; }
    [[nodiscard]] dollars wasted_transient_cost() const {
        return rstats_.wasted_transient_cost;
    }

private:
    const cluster::cluster_model* model_;
    controller_options options_;
    utility_model utility_;
    cost::cost_table costs_;  // kept for the wasted-transient ledger
    adaptation_search search_;
    std::unique_ptr<search_meter> meter_;
    wl::workload_monitor monitor_;
    wl::telemetry_validator validator_;
    // The greedy rung: max one action under a small expansion budget, sharing
    // the main search's evaluation engine (memo + app cache).
    adaptation_search greedy_search_;
    std::vector<predict::stability_predictor> predictors_;
    std::vector<dollars> utility_history_;
    bool first_step_ = true;

    // Lookahead state (all empty/null unless options_.lookahead.enabled).
    std::unique_ptr<lookahead_planner> lookahead_;
    std::vector<predict::stability_predictor> rate_forecasters_;
    std::vector<bool> prev_forecaster_trusted_;
    bool lookahead_deadline_tripped_ = false;
    lookahead_stats lstats_;

    // Reconciliation state.
    reconcile_stats rstats_;
    std::optional<cluster::configuration> intended_;  // where the last plan lands
    int fault_rounds_ = 0;          // consecutive fault-triggered replans
    seconds backoff_until_ = 0.0;   // no fault-triggered replan before this

    // Degraded-mode (fallback ladder) state.
    control_mode mode_ = control_mode::full;
    int clean_steps_ = 0;           // consecutive steps eligible for promotion
    bool deadline_tripped_ = false; // last search blew its deadline fraction
    std::vector<bool> prev_trusted_;  // per-predictor, for divergence events
    degraded_stats dstats_;

    // Disabled one-branch no-ops unless options_.sink carries a registry.
    obs::counter obs_decisions_;
    obs::counter obs_repairs_;
    obs::counter obs_fault_replans_;
    obs::counter obs_failed_actions_;
    obs::gauge obs_wasted_seconds_;
    obs::gauge obs_wasted_dollars_;
    obs::counter obs_degraded_windows_;
    obs::counter obs_demotions_;
    obs::counter obs_promotions_;
    obs::counter obs_lookahead_decisions_;
    obs::counter obs_preprovisions_;

    [[nodiscard]] dollars pessimistic_expected_utility(seconds cw) const;
    void account_faults(const decision_input& in,
                        const std::vector<req_per_sec>& rates);
    // One ladder step: demote immediately to `target` when it is a lower
    // rung, climb one rung after promote_after consecutive cleaner steps.
    void update_ladder(control_mode target, const char* reason, seconds now);
    // The most capable rung this controller can occupy.
    [[nodiscard]] control_mode top_rung() const {
        return options_.lookahead.enabled ? control_mode::lookahead
                                          : control_mode::full;
    }
};

}  // namespace mistral::core
