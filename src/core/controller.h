// The Mistral controller (Fig. 2).
//
// One controller instance wires together the predictor modules — the
// Performance Manager and Power Consolidation Manager (LQN + power models,
// reached through the search's utility evaluations), the Cost Manager (the
// offline-measured cost tables), and the Workload predictor (per-application
// adaptive ARMA filters over measured stability intervals) — with the
// optimizer module (the self-aware A* adaptation search).
//
// It is invoked once per monitoring interval with the measured workload; it
// runs the optimizer only when some application's workload has left its band
// (Section III-D), predicts the next stability interval as the control
// window CW, budgets the search with the lowest recently achieved utility
// (UH), and returns the chosen action sequence.
#pragma once

#include <memory>
#include <vector>

#include "cluster/configuration.h"
#include "cluster/model.h"
#include "core/search.h"
#include "core/search_meter.h"
#include "cost/table.h"
#include "predict/arma.h"
#include "workload/monitor.h"

namespace mistral::core {

struct controller_options {
    utility_params utility{};
    // Workload band width b (req/s). 0 re-evaluates on any change — the
    // paper's first-level setting; the second level uses 8 req/s.
    req_per_sec band_width = 8.0;
    search_options search{};
    predict::arma_options arma{};
    // CW never drops below one monitoring interval, nor grows beyond the
    // cap: an over-long window (an ARMA over-prediction right as a flash
    // crowd begins) would justify adaptation sequences that execute for many
    // intervals while the workload keeps moving underneath them. The paper's
    // measured stability intervals (Fig. 6) stay under ~700 s.
    seconds min_control_window = default_monitoring_interval;
    seconds max_control_window = 6.0 * default_monitoring_interval;
    // How many recent interval utilities feed the pessimistic UH estimate.
    int utility_history = 5;
};

// One monitoring interval's observations, as handed to a controller or
// strategy. A struct rather than positional parameters so the decision
// interface can grow (SLA revisions, host-failure notices, operator hints)
// without touching every implementation and call site again.
struct decision_input {
    seconds now = 0.0;
    // Measured per-application request rates over the interval.
    std::vector<req_per_sec> rates;
    // The configuration currently in effect.
    cluster::configuration current;
    // Utility the system actually accrued over the previous interval
    // (feeds the pessimistic UH search budget).
    dollars last_interval_utility = 0.0;
};

struct controller_decision {
    bool invoked = false;  // the optimizer ran this step
    std::vector<cluster::action> actions;
    seconds control_window = 0.0;  // CW the search optimized over
    dollars expected_utility = 0.0;
    dollars ideal_utility = 0.0;
    search_stats stats;
};

class mistral_controller {
public:
    // `meter` defaults to a deterministic model-clock meter.
    mistral_controller(const cluster::cluster_model& model, cost::cost_table costs,
                       controller_options options = {},
                       std::unique_ptr<search_meter> meter = nullptr);

    // One monitoring-interval step over the interval's observations.
    controller_decision step(const decision_input& in);

    [[nodiscard]] const wl::workload_monitor& monitor() const { return monitor_; }
    [[nodiscard]] const std::vector<predict::stability_predictor>& predictors() const {
        return predictors_;
    }
    [[nodiscard]] const controller_options& options() const { return options_; }
    [[nodiscard]] const adaptation_search& search() const { return search_; }

private:
    const cluster::cluster_model* model_;
    controller_options options_;
    adaptation_search search_;
    std::unique_ptr<search_meter> meter_;
    wl::workload_monitor monitor_;
    std::vector<predict::stability_predictor> predictors_;
    std::vector<dollars> utility_history_;
    bool first_step_ = true;

    [[nodiscard]] dollars pessimistic_expected_utility(seconds cw) const;
};

}  // namespace mistral::core
