// Pod specifications and cluster partitions.
//
// A *pod* is the unit of sharded control (DESIGN.md §13): a named, stable
// subset of hosts managed by one pod-local controller. `pod_spec` replaces
// the raw `std::vector<std::vector<std::size_t>>` host groups the two-level
// hierarchy used to take — the raw form carried no identity, no band, and no
// action-menu restriction, so every caller re-derived them. A `partition` is
// a validated set of pods: pairwise disjoint and, together, covering every
// host in the model.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "cluster/action.h"
#include "cluster/configuration.h"
#include "cluster/model.h"
#include "common/units.h"

namespace mistral::core {

struct pod_spec {
    // Stable pod identity: journal events, metric names, and budget reports
    // key on it. Partition validation requires ids 0..n-1 in order.
    std::size_t id = 0;
    // Host indices owned by this pod (deduplicated+sorted by the builder).
    std::vector<std::size_t> hosts;
    // Workload band width for the pod's controller; nullopt inherits the
    // builder's base band (the two-level hierarchy pins level-1 pods to 0).
    std::optional<req_per_sec> band;
    // Action mask for the pod's controller; nullopt inherits the base menu.
    std::optional<cluster::action_menu> menu;
};

// A validated cluster partition. Construction (via the builder functions
// below or the checked constructor) throws invariant_error unless the pods
// have sequential ids, non-empty disjoint host sets, and together cover
// every host of the model exactly once.
class partition {
public:
    partition(const cluster::cluster_model& model, std::vector<pod_spec> pods);

    [[nodiscard]] const std::vector<pod_spec>& pods() const { return pods_; }
    [[nodiscard]] std::size_t size() const { return pods_.size(); }
    [[nodiscard]] const pod_spec& pod(std::size_t id) const { return pods_[id]; }
    // Pod id owning host h.
    [[nodiscard]] std::size_t pod_of_host(std::size_t host) const {
        return host_owner_[host];
    }

private:
    std::vector<pod_spec> pods_;
    std::vector<std::size_t> host_owner_;
};

// Splits `model`'s hosts into `pod_count` contiguous runs of near-equal size
// (the first `host_count % pod_count` pods get one extra host).
partition uniform_partition(const cluster::cluster_model& model,
                            std::size_t pod_count);

// Converts the hierarchy's legacy raw host groups into level-1 pod specs:
// band 0 and a CPU-tuning + migration menu, the paper's first-level
// controller shape (Section II-C).
std::vector<pod_spec> level1_pods(std::vector<std::vector<std::size_t>> groups);

// Derives the app → pod assignment implied by `initial`: an app belongs to
// the pod hosting its deployed VMs. Throws invariant_error when an app's VMs
// straddle pods (the sharded coordinator requires pod-contained apps; use
// the migration broker to move whole apps between pods afterwards). Apps
// with no deployed VMs go to pod 0.
std::vector<std::size_t> assign_apps(const cluster::cluster_model& model,
                                     const partition& parts,
                                     const cluster::configuration& initial);

}  // namespace mistral::core
