// The optimal-adaptation search (Section IV-B, Algorithm 1).
//
// The search graph's vertices are configurations and its edges adaptation
// actions; Mistral looks for the action sequence maximizing Eq. 3 over the
// predicted stability interval CW. Two variants share this implementation:
//
//  * Naive A*: the cost-to-go heuristic for any vertex is the *ideal
//    utility* from the Perf-Pwr optimizer — the best steady accrual rate any
//    configuration could achieve, which over-estimates the achievable
//    utility (costs only subtract), making it an admissible heuristic for
//    the maximization and the returned sequence optimal.
//
//  * Self-Aware A*: additionally meters its own elapsed time and power, and
//    once the accumulated search cost reaches the expected utility UH — or
//    the elapsed time exceeds the delay threshold T̄ (5 % of the control
//    window) — it restricts each expansion to the top fraction of children
//    closest to the ideal configuration under the weighted Euclidean
//    cap-distance plus placement-distance metric.
//
// Vertices carry the accrued transient utility Σ d(a_k)·(U_RT + U_pwr rates
// during a_k) predicted from the cost tables; candidate configurations are
// valued by their own steady rate over the remaining window, intermediates
// by the ideal bound. A "null" edge from a candidate marks it terminal;
// popping a terminal vertex ends the search (its utility dominates every
// bound still open).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include <memory>

#include "cluster/action.h"
#include "cluster/configuration.h"
#include "cluster/model.h"
#include "core/evaluator.h"
#include "core/perf_pwr.h"
#include "core/search_meter.h"
#include "core/utility.h"
#include "cost/table.h"
#include "obs/metrics.h"

namespace mistral::obs {
class sink;
}

namespace mistral::core {

// All options are validated in the adaptation_search constructor; nonsense
// values (a zero keep-fraction, a stop factor below 1) throw invariant_error
// rather than being silently accepted.
struct search_options {
    bool self_aware = true;
    // Fraction of children kept when pruning kicks in (paper: top 5 %).
    double prune_keep_fraction = 0.05;
    // Delay threshold T̄ as a fraction of the control window (paper: 5 %).
    double delay_threshold_fraction = 0.05;
    // Hard stop: past stop_factor · T̄ the search returns the best candidate
    // found so far ("it may be better to make a suboptimal decision quickly
    // than invest time and energy searching", Section I). The ideal-utility
    // heuristic is loose — no reachable candidate attains it once any action
    // has a cost — so without this the A* degenerates to exhaustion.
    double stop_factor = 2.0;
    // Hard safety cap on expansions; the naive variant hits this on large
    // clusters (the exponential blow-up Table I reports).
    std::size_t max_expansions = 4000;
    // Fixed $ overhead charged per planned action: the management plane's
    // actuation cost (API calls, scheduler churn, operator risk). Without it,
    // near-zero-cost actions (CPU-cap steps) make arbitrarily long plans
    // value-ties, and the search wanders.
    dollars per_action_overhead = 0.01;
    // Hard bound on a single decision's action count. Real reconfigurations
    // in this problem size need at most a dozen actions; the bound is a
    // backstop against accrual-exploiting walks.
    std::size_t max_plan_actions = 16;
    // The seeded planner route is normally exempt from max_plan_actions: a
    // full-cluster rescue must survive as a candidate even when it is long.
    // The degraded-mode greedy rung turns the exemption off so that *no*
    // code path — seeding included — can emit more than max_plan_actions
    // actions in a single decision.
    bool seed_beyond_plan_limit = true;
    cluster::action_menu menu{};
    lqn::model_options lqn{};
    // Utility-evaluation engine tuning (threads, memo capacity, rate
    // quantum); threads > 1 selects the batched parallel evaluator. See
    // evaluator.h for the defaults and DESIGN.md for the caching contract.
    evaluation_options evaluation{};
    // Optional per-app host restriction: app_hosts[a][h] == false forbids
    // placing app a's VMs on host h (used by the Perf-Cost baseline's fixed
    // pools). Empty = unrestricted.
    std::vector<std::vector<bool>> app_hosts;
    // Optional host scope for hierarchy levels: when non-empty, the search
    // only touches VMs currently on in-scope hosts, only moves them to
    // in-scope hosts, and only power-cycles in-scope hosts (Section II-C's
    // first-level controllers manage "a small number of machines").
    std::vector<bool> host_scope;
    // Power budget (watts): configurations drawing more than this are not
    // accepted as terminals, so the returned plan's destination respects the
    // cap (CloudPowerCap-style pod budgets redistribute this each interval
    // via set_power_cap). Intermediates may exceed it transiently, exactly
    // like the packing constraint. Infinity = uncapped.
    watts power_cap = std::numeric_limits<watts>::infinity();
    // Observability hook (obs/journal.h): when journaling, every find() emits
    // one "search" profile event (obs/profile.h) — per-depth expansion counts
    // and meter time, memo hit rate, budget/pruning state — and the search
    // registers hot-path counters in the sink's metrics registry. nullptr
    // (the default null sink) keeps the search byte-identical to an
    // uninstrumented build.
    obs::sink* sink = nullptr;
};

struct search_stats {
    seconds duration = 0.0;          // meter-elapsed search time
    std::size_t expansions = 0;      // vertices expanded
    std::size_t generated = 0;       // children generated
    bool pruned = false;             // self-aware pruning engaged
    dollars search_power_cost = 0.0; // $ cost of the search's own power draw
                                     // (scales with active worker-seconds)
    std::size_t eval_cache_hits = 0;   // memoized evaluations reused
    std::size_t eval_cache_misses = 0; // evaluations that missed the memo
    // Delta-evaluation accounting for this find() (see evaluator.h): LQN
    // sub-solves actually performed vs. reused from the per-app cache.
    std::size_t eval_app_solves = 0;
    std::size_t eval_app_cache_hits = 0;
    std::size_t eval_app_cache_misses = 0;
};

struct search_result {
    // Empty means "stay in the current configuration".
    std::vector<cluster::action> actions;
    cluster::configuration target;
    dollars expected_utility = 0.0;  // Eq. 3 value over the control window
    dollars ideal_utility = 0.0;     // U° · CW (the heuristic's bound)
    search_stats stats;
};

class adaptation_search {
public:
    // Builds the evaluation engine `options.evaluation` asks for (serial by
    // default, thread pool for threads > 1) and routes every steady-state
    // utility computation through it.
    adaptation_search(const cluster::cluster_model& model, utility_model utility,
                      cost::cost_table costs, search_options options = {});
    // Injects a caller-owned evaluator (shared memo across components, or a
    // test double); `options.evaluation` is ignored in this form.
    adaptation_search(const cluster::cluster_model& model, utility_model utility,
                      cost::cost_table costs, search_options options,
                      std::shared_ptr<utility_evaluator> evaluator);

    [[nodiscard]] const search_options& options() const { return options_; }
    // Runtime budget update (the global coordinator redistributes pod power
    // budgets each interval); does not rebuild the evaluation engine, so the
    // memo and app cache survive. Must be > 0 (infinity = uncapped).
    void set_power_cap(watts cap);
    [[nodiscard]] utility_evaluator& evaluator() const { return *evaluator_; }
    // The engine itself, for building sibling searches (e.g. the degraded
    // ladder's greedy rung) that share this search's memo and app cache.
    [[nodiscard]] const std::shared_ptr<utility_evaluator>& shared_evaluator() const {
        return evaluator_;
    }

    // Finds the best action sequence from `current` for workload `rates`
    // over the control window `cw`. `expected_utility` is the self-aware
    // budget UH ($ over the window; pass the lowest recently achieved
    // utility, scaled to the window). The meter is begun, charged per
    // expansion, and read for the self-cost accounting. `now` is the
    // simulation timestamp stamped onto the journal's "search" event; it has
    // no effect on the decision.
    [[nodiscard]] search_result find(const cluster::configuration& current,
                                     const std::vector<req_per_sec>& rates,
                                     seconds cw, dollars expected_utility,
                                     search_meter& meter,
                                     seconds now = 0.0) const;

private:
    const cluster::cluster_model* model_;
    utility_model utility_;
    cost::cost_table costs_;
    search_options options_;
    std::shared_ptr<utility_evaluator> evaluator_;
    perf_pwr_optimizer perf_pwr_;
    // Disabled one-branch no-ops unless options_.sink carries a registry.
    obs::counter obs_expansions_;
    obs::counter obs_generated_;
    obs::histogram obs_duration_;
};

}  // namespace mistral::core
