#include "core/strategies.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace mistral::core {

namespace {

using cluster::action;
using cluster::configuration;
using cluster::cluster_model;

// Rates are noisy floats; "the workload changed" means any per-app movement
// beyond numeric dust (band width 0 in the paper's terms).
bool rates_changed(const std::vector<req_per_sec>& a,
                   const std::vector<req_per_sec>& b) {
    if (a.size() != b.size()) return true;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::abs(a[i] - b[i]) > 1e-9) return true;
    }
    return false;
}

}  // namespace

// ---- Mistral ---------------------------------------------------------------

mistral_strategy::mistral_strategy(const cluster_model& model, cost::cost_table costs,
                                   controller_options options,
                                   std::unique_ptr<search_meter> meter)
    : controller_(model, std::move(costs), options, std::move(meter)) {}

strategy::outcome mistral_strategy::decide(const decision_input& in) {
    const auto decision = controller_.step(in);
    outcome out;
    out.invoked = decision.invoked;
    out.actions = decision.actions;
    out.decision_delay = decision.stats.duration;
    out.decision_power_cost = decision.stats.search_power_cost;
    out.stats = decision.stats;
    return out;
}

// ---- Perf-Pwr ----------------------------------------------------------------

perf_pwr_strategy::perf_pwr_strategy(const cluster_model& model,
                                     utility_params utility,
                                     perf_pwr_options options)
    : model_(&model), optimizer_(model, utility_model(utility), options) {}

strategy::outcome perf_pwr_strategy::decide(const decision_input& in) {
    const auto& rates = in.rates;
    const auto& current = in.current;
    outcome out;
    if (!last_rates_.empty() && !rates_changed(rates, last_rates_)) return out;
    last_rates_ = rates;

    // Fresh bin-packing every time, no placement stability: this strategy
    // ignores what the transition costs — exactly its weakness in Fig. 8/9.
    const auto ideal = optimizer_.optimize(rates);
    out.invoked = true;
    if (!ideal.feasible || ideal.ideal == current) return out;
    out.actions = plan_transition(*model_, current, ideal.ideal);
    return out;
}

// ---- Perf-Cost ---------------------------------------------------------------

perf_cost_strategy::perf_cost_strategy(const cluster_model& model,
                                       cost::cost_table costs,
                                       controller_options options,
                                       int hosts_per_app) {
    MISTRAL_CHECK(hosts_per_app >= 1);
    // Fixed pools: app a owns hosts [a·k, (a+1)·k), wrapped if scarce.
    pools_.assign(model.app_count(),
                  std::vector<bool>(model.host_count(), false));
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        for (int k = 0; k < hosts_per_app; ++k) {
            const std::size_t h =
                (a * static_cast<std::size_t>(hosts_per_app) +
                 static_cast<std::size_t>(k)) %
                model.host_count();
            pools_[a][h] = true;
        }
    }
    // The Perf-Cost formulation: performance + adaptation cost only. No power
    // term, no host power-cycling, no leaving the pool.
    options.utility.power_weight = 0.0;
    options.band_width = 0.0;
    options.search.menu.host_power = false;
    options.search.app_hosts = pools_;
    controller_ = std::make_unique<mistral_controller>(model, std::move(costs),
                                                       options, nullptr);
}

strategy::outcome perf_cost_strategy::decide(const decision_input& in) {
    const auto decision = controller_->step(in);
    outcome out;
    out.invoked = decision.invoked;
    out.actions = decision.actions;
    out.decision_delay = decision.stats.duration;
    out.decision_power_cost = decision.stats.search_power_cost;
    out.stats = decision.stats;
    return out;
}

// ---- Pwr-Cost ----------------------------------------------------------------

pwr_cost_strategy::pwr_cost_strategy(const cluster_model& model,
                                     cost::cost_table costs, utility_params utility,
                                     perf_pwr_options options,
                                     predict::arma_options arma)
    : model_(&model),
      costs_(std::move(costs)),
      utility_(utility),
      optimizer_(model, utility_model(utility), options),
      monitor_(model.app_count(), /*band_width=*/0.0) {
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        predictors_.emplace_back(arma);
    }
}

seconds pwr_cost_strategy::control_window(const wl::monitor_event& event) const {
    seconds cw = utility_.params().monitoring_interval;
    if (!event.exceeded.empty()) {
        seconds shortest = predictors_[event.exceeded.front()].current_estimate();
        for (std::size_t i = 1; i < event.exceeded.size(); ++i) {
            shortest =
                std::min(shortest, predictors_[event.exceeded[i]].current_estimate());
        }
        cw = std::max(cw, shortest);
    }
    return cw;
}

strategy::outcome pwr_cost_strategy::decide(const decision_input& in) {
    const seconds now = in.now;
    const auto& rates = in.rates;
    const auto& current = in.current;
    outcome out;
    const auto event = monitor_.observe(now, rates);
    for (std::size_t i = 0; i < event.exceeded.size(); ++i) {
        predictors_[event.exceeded[i]].observe(event.completed_intervals[i]);
    }
    const bool first = last_rates_.empty();
    if (!first && !event.any_exceeded) return out;
    monitor_.recenter(now, rates);
    last_rates_ = rates;
    out.invoked = true;
    const seconds cw = control_window(event);

    // 1. Required (static, target-meeting) sizing for this workload.
    auto required = optimizer_.optimize_meeting_targets(rates, &current);
    if (!required.feasible) required = optimizer_.optimize(rates, &current);
    if (!required.feasible) return out;

    configuration cur = current;
    auto emit = [&](const action& a) -> bool {
        if (!applicable(*model_, cur, a)) return false;
        cur = apply(*model_, cur, a);
        out.actions.push_back(a);
        return true;
    };
    const fraction step = model_->limits().cpu_step;
    const auto& limits = model_->limits();

    // Per-tier required replica count and cap from the required sizing.
    auto required_tier = [&](app_id app, std::size_t t) {
        int count = 0;
        fraction cap = model_->app(app).tiers()[t].min_cpu_cap;
        for (vm_id vm : model_->tier_vms(app, t)) {
            if (const auto& p = required.ideal.placement(vm)) {
                ++count;
                cap = p->cpu_cap;
            }
        }
        return std::pair<int, fraction>(std::max(count, 1), cap);
    };

    auto host_with_most_room = [&](double memory, host_id avoid) -> host_id {
        host_id best{};
        fraction best_free = -1.0;
        for (std::size_t h = 0; h < model_->host_count(); ++h) {
            const host_id host{static_cast<std::int32_t>(h)};
            if (host == avoid || !cur.host_on(host)) continue;
            if (static_cast<int>(cur.vms_on(host).size()) >= limits.max_vms_per_host) {
                continue;
            }
            const double mem_free = model_->hosts()[h].memory_mb -
                                    limits.dom0_memory_mb -
                                    cur.memory_sum(*model_, host);
            if (mem_free + 1e-9 < memory) continue;
            const fraction free = limits.host_cpu_cap - cur.cap_sum(host);
            if (free > best_free) {
                best_free = free;
                best = host;
            }
        }
        return best;
    };

    // 2. Match replica counts, then adjust caps to the required sizes.
    for (std::size_t a = 0; a < model_->app_count(); ++a) {
        const app_id app{static_cast<std::int32_t>(a)};
        for (std::size_t t = 0; t < model_->app(app).tier_count(); ++t) {
            const auto [want, cap] = required_tier(app, t);
            const auto& vms = model_->tier_vms(app, t);
            int have = 0;
            for (vm_id vm : vms) have += cur.deployed(vm) ? 1 : 0;
            // Remove highest-index extras.
            for (auto it = vms.rbegin(); it != vms.rend() && have > want; ++it) {
                if (cur.deployed(*it) && emit(cluster::remove_replica{*it})) --have;
            }
            // Add replicas on the roomiest hosts.
            for (vm_id vm : vms) {
                if (have >= want) break;
                if (cur.deployed(vm)) continue;
                const auto dst =
                    host_with_most_room(model_->vm(vm).memory_mb, host_id{});
                if (dst.valid() &&
                    emit(cluster::add_replica{
                        vm, dst, model_->app(app).tiers()[t].min_cpu_cap})) {
                    ++have;
                }
            }
            // Step every deployed replica's cap toward the required size.
            for (vm_id vm : vms) {
                if (!cur.deployed(vm)) continue;
                for (int guard = 0; guard < 16; ++guard) {
                    const fraction c = cur.placement(vm)->cpu_cap;
                    if (std::abs(c - cap) < step / 2.0) break;
                    const action a2 = c < cap ? action(cluster::increase_cpu{vm})
                                              : action(cluster::decrease_cpu{vm});
                    if (!emit(a2)) break;
                }
            }
        }
    }

    // 3. Repair packing violations: migrate the *smallest* VM off each
    //    overbooked host (Section V-C: "the VMs are migrated starting from
    //    the smallest one until the constraints are satisfied").
    for (int guard = 0; guard < 64; ++guard) {
        host_id overbooked{};
        for (std::size_t h = 0; h < model_->host_count(); ++h) {
            const host_id host{static_cast<std::int32_t>(h)};
            if (cur.cap_sum(host) > limits.host_cpu_cap + 1e-9) {
                overbooked = host;
                break;
            }
        }
        if (!overbooked.valid()) break;
        const auto hosted = cur.vms_on(overbooked);
        vm_id smallest{};
        fraction smallest_cap = std::numeric_limits<double>::infinity();
        for (vm_id vm : hosted) {
            if (cur.placement(vm)->cpu_cap < smallest_cap) {
                smallest_cap = cur.placement(vm)->cpu_cap;
                smallest = vm;
            }
        }
        if (!smallest.valid()) break;
        host_id dst = host_with_most_room(model_->vm(smallest).memory_mb, overbooked);
        if (!dst.valid()) {
            // No room anywhere: bring up a powered-off host.
            bool powered = false;
            for (std::size_t h = 0; h < model_->host_count(); ++h) {
                const host_id host{static_cast<std::int32_t>(h)};
                if (!cur.host_on(host)) {
                    powered = emit(cluster::power_on{host});
                    break;
                }
            }
            if (!powered) break;
            dst = host_with_most_room(model_->vm(smallest).memory_mb, overbooked);
            if (!dst.valid()) break;
        }
        if (!emit(cluster::migrate{smallest, dst})) break;
    }

    // 4. Consolidate: empty the least-loaded host when the power saved over
    //    the control window beats the migration cost.
    for (int guard = 0; guard < static_cast<int>(model_->host_count()); ++guard) {
        host_id lightest{};
        fraction lightest_sum = std::numeric_limits<double>::infinity();
        for (std::size_t h = 0; h < model_->host_count(); ++h) {
            const host_id host{static_cast<std::int32_t>(h)};
            if (!cur.host_on(host)) continue;
            const auto sum = cur.cap_sum(host);
            if (sum > 0.0 && sum < lightest_sum) {
                lightest_sum = sum;
                lightest = host;
            }
        }
        if (!lightest.valid()) break;

        // Plan the evacuation tentatively.
        configuration probe = cur;
        std::vector<action> moves;
        dollars migration_cost = 0.0;
        bool fits = true;
        for (vm_id vm : cur.vms_on(lightest)) {
            host_id dst{};
            fraction best_free = -1.0;
            for (std::size_t h = 0; h < model_->host_count(); ++h) {
                const host_id host{static_cast<std::int32_t>(h)};
                if (host == lightest || !probe.host_on(host)) continue;
                if (static_cast<int>(probe.vms_on(host).size()) >=
                    limits.max_vms_per_host) {
                    continue;
                }
                const double mem_free = model_->hosts()[h].memory_mb -
                                        limits.dom0_memory_mb -
                                        probe.memory_sum(*model_, host);
                if (mem_free + 1e-9 < model_->vm(vm).memory_mb) continue;
                const fraction free = limits.host_cpu_cap - probe.cap_sum(host) -
                                      probe.placement(vm)->cpu_cap;
                if (free >= -1e-9 && free > best_free) {
                    best_free = free;
                    dst = host;
                }
            }
            if (!dst.valid()) {
                fits = false;
                break;
            }
            const cluster::action mv = cluster::migrate{vm, dst};
            const auto entry = costs_.lookup(*model_, mv, rates);
            // Pessimistic migration cost: the extra power plus a full
            // reward-to-penalty swing for the moved application while it runs.
            const auto app = model_->vm(vm).app;
            const double perf_swing = (utility_.reward(rates[app.index()]) -
                                       utility_.penalty(rates[app.index()])) /
                                      utility_.params().monitoring_interval;
            migration_cost += entry.duration *
                              (perf_swing - utility_.power_rate(entry.delta_power));
            probe = apply(*model_, probe, mv);
            moves.push_back(mv);
        }
        if (!fits) break;
        const dollars saving =
            -utility_.power_rate(model_->hosts()[lightest.index()].power.idle) * cw;
        if (saving <= migration_cost) break;
        for (const auto& mv : moves) emit(mv);
        emit(cluster::power_off{lightest});
    }

    // 5. Hosts already empty cost idle power for nothing.
    for (std::size_t h = 0; h < model_->host_count(); ++h) {
        const host_id host{static_cast<std::int32_t>(h)};
        if (cur.host_on(host) && cur.vms_on(host).empty()) {
            emit(cluster::power_off{host});
        }
    }
    return out;
}

}  // namespace mistral::core
