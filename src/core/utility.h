// The utility model (Section II-B, Equations 1–3, Fig. 3).
//
// All controller decisions reduce to dollars: each application accrues a
// reward R(w) per monitoring interval while it meets its target response
// time and a (negative) penalty P(w) while it misses it (Eq. 1); the cluster
// accrues −pwr·PC_Wh for its power draw (Eq. 2); and an adaptation sequence
// is scored by Eq. 3 — transient accrual at the perturbed rates during each
// action plus steady accrual in the final configuration for the remainder of
// the stability interval.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/units.h"
#include "econ/pricing.h"
#include "econ/tariff.h"

namespace mistral::core {

struct utility_params {
    seconds monitoring_interval = default_monitoring_interval;
    // $ per watt consumed over one monitoring interval (Section V-A: $0.01).
    dollars power_cost_per_watt_interval = default_power_cost_per_watt_interval;
    // Fig. 3: reward grows and |penalty| shrinks linearly with request rate,
    // reflecting the increasingly "best-effort" nature of heavy load. Values
    // are $ per monitoring interval. The defaults are sized like the paper's:
    // "rewards were chosen so as to yield a 20% net profit over the power
    // costs incurred in the default configuration, and then scaled according
    // to the workload".
    dollars reward_lo = 0.4;     // reward at rate 0
    dollars reward_hi = 5.0;     // reward at max_rate
    dollars penalty_lo = -3.5;   // penalty at rate 0
    dollars penalty_hi = -0.3;   // penalty at max_rate
    req_per_sec max_rate = 100.0;
    // Scales the power term; baselines that ignore power set it to 0.
    double power_weight = 1.0;
    // Safety margin applied to response-time targets on the *prediction*
    // side: controllers plan against rt_margin · TRT so that model error and
    // measurement noise do not flip a just-meeting configuration into a
    // penalty. Measured utility (interval_utility) always uses the real
    // target — this only shapes what the optimizer aims for.
    double rt_margin = 0.85;
};

// The economics layer a controller can bind on top of utility_params: a
// time-of-use tariff (price + carbon intensity), a revenue model, an optional
// carbon price, and an optional power-cap schedule. Disabled (the default)
// means the binding never happens and every utility expression is the
// original paper arithmetic. With `enabled` and all-default members the
// bound model is *bit-identical* to the unbound one: the flat tariff equals
// default_power_cost_per_watt_interval, carbon contributes nothing, and flat
// pricing takes the exact Eq. 1 code path — proven by ctest -L econ.
struct econ_profile {
    bool enabled = false;
    econ::tariff_schedule tariff{};
    econ::pricing_options pricing{};
    // $ per kg of CO2; > 0 adds a carbon term to power_rate using the
    // tariff's carbon-intensity series (gCO2/Wh).
    dollars carbon_price_per_kg = 0.0;
    // Cluster power cap in watts over time; the controller applies it each
    // step on top of search_options::power_cap terminal legality (stepped
    // cap emergencies, CloudPowerCap-style).
    std::optional<econ::step_series> power_cap_schedule{};
};

// The tariff factors in force at the controller's current timestamp. One
// struct shared (via utility_model copies) by the controller, both searches,
// the lookahead planner, and the evaluators, so a single update_econ() call
// re-prices every layer coherently.
struct econ_factors {
    dollars power_price = default_power_cost_per_watt_interval;  // $/W·interval
    double carbon_intensity = 0.0;                               // gCO2/Wh
    // The carbon term pre-folded to the power-price unit: intensity ·
    // (M/3600 h) · price_per_gram. Zero unless carbon_price_per_kg > 0.
    dollars carbon_dollars_per_watt_interval = 0.0;
    bool performance_based = false;
    double pbp_grace = 1.5;
};

class utility_model {
public:
    explicit utility_model(utility_params params = {});

    [[nodiscard]] const utility_params& params() const { return params_; }

    // R(w) and P(w), $ per monitoring interval (Fig. 3, clamped at max_rate).
    [[nodiscard]] dollars reward(req_per_sec rate) const;
    [[nodiscard]] dollars penalty(req_per_sec rate) const;

    // Eq. 1 as an accrual *rate* in $/s: (R or P)(w) / M.
    [[nodiscard]] double perf_rate(req_per_sec rate, seconds response_time,
                                   seconds target) const;

    // The tightened target the predictors plan against (rt_margin · TRT).
    [[nodiscard]] seconds planning_target(seconds target) const {
        return params_.rt_margin * target;
    }

    // Eq. 2 as an accrual rate in $/s: −pwr · PC / M (≤ 0).
    [[nodiscard]] double power_rate(watts power) const;

    // Combined steady accrual rate for a system state: Σ_s perf + power.
    [[nodiscard]] double steady_rate(std::span<const req_per_sec> rates,
                                     std::span<const seconds> response_times,
                                     std::span<const seconds> targets,
                                     watts power) const;

    // Eq. 1 + Eq. 2 evaluated over one whole monitoring interval, in $ — the
    // "measured utility" the experiment harness accumulates (Fig. 9).
    [[nodiscard]] dollars interval_utility(std::span<const req_per_sec> rates,
                                           std::span<const seconds> response_times,
                                           std::span<const seconds> targets,
                                           watts mean_power) const;

    // --- Economics binding -------------------------------------------------
    //
    // bind_econ attaches a shared econ state; *copies of a bound model share
    // it* (shared_ptr semantics), which is how the controller keeps its own
    // model, the searches' models, and the evaluators' models priced
    // identically. update_econ re-indexes the tariff at `now` and returns
    // true when any factor changed, bumping the epoch so evaluators drop
    // price-dependent memos. An unbound model reports epoch 0 and behaves
    // exactly as before this layer existed.
    void bind_econ(const econ_profile& profile);
    bool update_econ(seconds now);
    [[nodiscard]] bool econ_bound() const { return econ_ != nullptr; }
    [[nodiscard]] std::uint64_t econ_epoch() const { return econ_ ? econ_->epoch : 0; }
    [[nodiscard]] const econ_factors& econ_now() const;
    [[nodiscard]] const econ_profile& econ_profile_ref() const;

private:
    struct econ_state {
        econ_profile profile;
        econ_factors factors;
        std::uint64_t epoch = 1;
    };

    [[nodiscard]] dollars pbp_revenue(req_per_sec rate, seconds response_time,
                                      seconds target) const;

    utility_params params_;
    std::shared_ptr<econ_state> econ_;
};

}  // namespace mistral::core
