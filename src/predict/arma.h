// Adaptive ARMA stability-interval predictor.
//
// Section III-D: the next stability interval is predicted as
//
//     CW^e_{j+1} = (1 − β)·CW^m_j + β·(1/k)·Σ_{i=1..k} CW^m_{j−i}
//
// where β adapts via the error filter
//
//     ε_j = (1 − γ)·|CW^e_j − CW^m_j| + γ·(1/k)·Σ_{i=1..k} ε_{j−i}
//     β   = 1 − ε_j / max_{i=0..k} ε_{j−i}
//
// with history window k = 3 and γ = 0.5 in the paper's experiments. The
// filter leans on the current measurement when recent predictions tracked
// well and shifts toward history when they did not.
#pragma once

#include <deque>
#include <vector>

#include "common/units.h"

namespace mistral::predict {

struct arma_options {
    int history = 3;         // k: measurements/errors remembered
    double gamma = 0.5;      // weight of historical error vs current error
    seconds initial_estimate = 600.0;  // estimate used before any data
};

class stability_predictor {
public:
    explicit stability_predictor(arma_options options = {});

    // Records a measured stability interval CW^m_j and returns the estimate
    // CW^e_{j+1} for the next control window.
    seconds observe(seconds measured);

    // The current prediction for the upcoming stability interval.
    [[nodiscard]] seconds current_estimate() const { return estimate_; }

    // β chosen at the last observe() (0 until two observations exist).
    [[nodiscard]] double last_beta() const { return beta_; }

    // Full estimate/measurement history (aligned: estimate[j] was the
    // prediction in force when measurement[j] arrived), for accuracy plots
    // like Fig. 6.
    [[nodiscard]] const std::vector<seconds>& measurements() const { return all_measured_; }
    [[nodiscard]] const std::vector<seconds>& estimates() const { return all_estimates_; }

    // Mean absolute percentage error of the predictions so far (skips the
    // first observation, which had no informed estimate).
    [[nodiscard]] double mape_percent() const;

private:
    arma_options options_;
    seconds estimate_;
    double beta_ = 0.0;
    std::deque<seconds> recent_measured_;  // last k measurements
    std::deque<double> recent_errors_;     // last k smoothed errors
    std::vector<seconds> all_measured_;
    std::vector<seconds> all_estimates_;
};

}  // namespace mistral::predict
