// Adaptive ARMA stability-interval predictor with a divergence guard.
//
// Section III-D: the next stability interval is predicted as
//
//     CW^e_{j+1} = (1 − β)·CW^m_j + β·(1/k)·Σ_{i=1..k} CW^m_{j−i}
//
// where β adapts via the error filter
//
//     ε_j = (1 − γ)·|CW^e_j − CW^m_j| + γ·(1/k)·Σ_{i=1..k} ε_{j−i}
//     β   = 1 − ε_j / max_{i=0..k} ε_{j−i}
//
// with history window k = 3 and γ = 0.5 in the paper's experiments. The
// filter leans on the current measurement when recent predictions tracked
// well and shifts toward history when they did not.
//
// The divergence guard watches the one-step prediction error with a CUSUM
// drift detector. Sustained drift first widens the workload bands (a
// controller that cannot trust its interval predictions should re-trigger
// less eagerly) and, past a hard threshold, declares the predictor
// *untrusted* and triggers a least-squares AR re-estimation over the
// measurement history. Re-estimation is retried a bounded number of times
// with doubling backoff when the regression is ill-conditioned (singular
// normal equations — e.g. a constant history), never propagating garbage
// coefficients. The guard is strictly additive: the β-blend arithmetic above
// is untouched, and while the predictor is trusted every estimate it emits
// is bit-identical to a guard-free build.
#pragma once

#include <deque>
#include <vector>

#include "common/units.h"

namespace mistral::predict {

// CUSUM drift detection + AR re-estimation knobs.
struct divergence_options {
    bool enabled = true;
    // Normalized one-step error |CW^e − CW^m| / max(CW^m, error_floor) is
    // accumulated as cusum = max(0, cusum + error − slack). The first
    // observation is skipped: the cold-start estimate is a configured
    // constant, not a prediction.
    double slack = 1.5;
    seconds error_floor = 30.0;
    // Winsorized increment: each observation's normalized error is clamped to
    // this before the slack subtraction, so a single wild transition (a flash
    // crowd collapsing the measured interval under a still-long estimate) can
    // add at most error_cap − slack to the drift. Isolated organic jumps
    // drain on the next tracking observation; only a *persistent* streak of
    // large errors — the signature of corrupted telemetry or a genuinely
    // broken model — can climb to the thresholds.
    double error_cap = 2.5;
    // cusum ≥ soft_threshold starts widening the bands; ≥ hard_threshold
    // declares the predictor untrusted. Trust returns when the accumulated
    // drift drains back below soft_threshold.
    double soft_threshold = 3.0;
    double hard_threshold = 6.0;
    // Band widening ramps linearly from 1 at soft_threshold to this at
    // hard_threshold (and saturates there).
    double max_band_scale = 3.0;
    // The accumulated drift saturates at factor × hard_threshold, so recovery
    // latency is bounded: however long a divergence lasted, trust returns
    // after a bounded run of tracking observations.
    double drift_ceiling_factor = 2.0;
    // AR(p) re-estimation over the measurement history once untrusted.
    int reestimate_order = 2;
    int reestimate_min_observations = 8;
    int reestimate_window = 64;      // most recent measurements used for the fit
    int reestimate_max_retries = 3;
    int reestimate_backoff = 4;      // observations to wait after a failed fit,
                                     // doubling on each further retry
    double min_pivot = 1e-9;         // relative pivot floor → singular verdict
};

struct arma_options {
    int history = 3;         // k: measurements/errors remembered
    double gamma = 0.5;      // weight of historical error vs current error
    seconds initial_estimate = 600.0;  // estimate used before any data
    divergence_options divergence;
};

// One future step of a multi-interval forecast (forecast_horizon below): the
// filter's point prediction plus a symmetric uncertainty half-width. Bands
// only widen with lookahead depth — never tighten — so a receding-horizon
// planner discounting by band spread trusts later intervals monotonically
// less.
struct forecast_band {
    double center = 0.0;
    double half_width = 0.0;
    [[nodiscard]] double lower() const {
        return center > half_width ? center - half_width : 0.0;
    }
    [[nodiscard]] double upper() const { return center + half_width; }
};

// Horizon-model knobs for forecast_horizon.
struct horizon_options {
    // Multiplicative per-step widening of the uncertainty band (≥ 1):
    // width_{i+1} = width_i · width_growth, which makes the monotone
    // non-tightening invariant hold by construction.
    double width_growth = 1.35;
    // Damped-trend extrapolation: step i (i ≥ 2) extends the step-1 center by
    // slope · trend_damping^(i−2), where slope is the mean successive
    // difference over the history window. The pure β-blend converges to the
    // history mean and would never anticipate a ramp; the damped trend does,
    // while the damping keeps a transient slope from extrapolating forever.
    double trend_damping = 0.7;
    // Step-1 half-width floor as a fraction of max(|center|, 1): a filter
    // that has tracked perfectly still does not pretend the future is exact.
    double min_width_fraction = 0.05;
};

class stability_predictor {
public:
    explicit stability_predictor(arma_options options = {});

    // Records a measured stability interval CW^m_j and returns the estimate
    // CW^e_{j+1} for the next control window.
    seconds observe(seconds measured);

    // The current prediction for the upcoming stability interval.
    [[nodiscard]] seconds current_estimate() const { return estimate_; }

    // Per-interval forecast for the next k steps, for the receding-horizon
    // planner. The filter is unit-agnostic (the same β-blend forecasts
    // request rates when fed rates), so the bands carry whatever unit the
    // observations did. Guarantees, pinned by randomized invariant tests:
    //  * step 1's center is *exactly* current_estimate() — the horizon API
    //    cannot drift from the one-step code path;
    //  * half-widths are monotonically non-tightening in the step index;
    //  * every field is finite, whatever (validated, finite) telemetry the
    //    filter was fed — non-finite intermediate arithmetic falls back to
    //    the previous step's values.
    // const: forecasting never perturbs the filter state.
    [[nodiscard]] std::vector<forecast_band> forecast_horizon(
        int k, const horizon_options& horizon = {}) const;

    // β chosen at the last observe() (0 until two observations exist).
    [[nodiscard]] double last_beta() const { return beta_; }

    // Full estimate/measurement history (aligned: estimate[j] was the
    // prediction in force when measurement[j] arrived), for accuracy plots
    // like Fig. 6.
    [[nodiscard]] const std::vector<seconds>& measurements() const { return all_measured_; }
    [[nodiscard]] const std::vector<seconds>& estimates() const { return all_estimates_; }

    // Mean absolute percentage error of the predictions so far (skips the
    // first observation, which had no informed estimate).
    [[nodiscard]] double mape_percent() const;

    // --- divergence guard -------------------------------------------------

    // False while the CUSUM detector holds a hard alarm; a controller should
    // not trust interval predictions (and, per the fallback ladder, should
    // hold its configuration) until this recovers.
    [[nodiscard]] bool trusted() const { return trusted_; }

    // ≥ 1; how much the workload bands should be widened right now. Exactly
    // 1.0 while the accumulated drift is below the soft threshold.
    [[nodiscard]] double band_multiplier() const;

    // Current accumulated drift (0 when the guard is disabled).
    [[nodiscard]] double drift() const { return cusum_; }

    // Times the guard transitioned trusted → untrusted.
    [[nodiscard]] int divergence_count() const { return divergence_count_; }

    // Re-estimation bookkeeping since the last hard alarm.
    [[nodiscard]] int reestimation_attempts() const { return fit_attempts_; }
    [[nodiscard]] bool reestimation_exhausted() const;
    [[nodiscard]] bool reestimation_active() const { return fit_valid_; }

private:
    void update_guard(seconds measured);
    void attempt_reestimate();
    [[nodiscard]] bool fit_ar();  // least squares over recent history
    [[nodiscard]] seconds ar_predict() const;

    arma_options options_;
    seconds estimate_;
    double beta_ = 0.0;
    std::deque<seconds> recent_measured_;  // last k measurements
    std::deque<double> recent_errors_;     // last k smoothed errors
    std::vector<seconds> all_measured_;
    std::vector<seconds> all_estimates_;

    // Guard state.
    double cusum_ = 0.0;
    bool trusted_ = true;
    int divergence_count_ = 0;
    int fit_attempts_ = 0;
    std::size_t next_fit_at_ = 0;      // observation count gating the next try
    bool fit_valid_ = false;
    std::vector<double> fit_coeffs_;   // AR coefficients, then intercept
};

}  // namespace mistral::predict
