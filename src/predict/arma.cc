#include "predict/arma.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mistral::predict {

stability_predictor::stability_predictor(arma_options options)
    : options_(options), estimate_(options.initial_estimate) {
    MISTRAL_CHECK(options_.history >= 1);
    MISTRAL_CHECK(options_.gamma >= 0.0 && options_.gamma <= 1.0);
    MISTRAL_CHECK(options_.initial_estimate > 0.0);
}

seconds stability_predictor::observe(seconds measured) {
    MISTRAL_CHECK(measured >= 0.0);
    all_estimates_.push_back(estimate_);
    all_measured_.push_back(measured);

    // Smoothed error ε_j from the prediction that was in force.
    const double current_error = std::abs(estimate_ - measured);
    double hist_error = 0.0;
    if (!recent_errors_.empty()) {
        for (double e : recent_errors_) hist_error += e;
        hist_error /= static_cast<double>(recent_errors_.size());
    }
    const double epsilon = recent_errors_.empty()
                               ? current_error
                               : (1.0 - options_.gamma) * current_error +
                                     options_.gamma * hist_error;

    // β = 1 − ε_j / max over the last k+1 errors (including ε_j itself).
    double max_error = epsilon;
    for (double e : recent_errors_) max_error = std::max(max_error, e);
    beta_ = max_error > 0.0 ? 1.0 - epsilon / max_error : 0.0;

    recent_errors_.push_back(epsilon);
    if (recent_errors_.size() > static_cast<std::size_t>(options_.history)) {
        recent_errors_.pop_front();
    }

    // Next estimate: blend of the current measurement and the mean of the k
    // *previous* measurements (not including this one).
    double hist_measured = measured;  // fallback when no history exists yet
    if (!recent_measured_.empty()) {
        hist_measured = 0.0;
        for (double m : recent_measured_) hist_measured += m;
        hist_measured /= static_cast<double>(recent_measured_.size());
    }
    estimate_ = (1.0 - beta_) * measured + beta_ * hist_measured;

    recent_measured_.push_back(measured);
    if (recent_measured_.size() > static_cast<std::size_t>(options_.history)) {
        recent_measured_.pop_front();
    }
    return estimate_;
}

double stability_predictor::mape_percent() const {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t j = 1; j < all_measured_.size(); ++j) {
        if (all_measured_[j] <= 0.0) continue;
        sum += std::abs(all_estimates_[j] - all_measured_[j]) / all_measured_[j];
        ++n;
    }
    return n ? 100.0 * sum / static_cast<double>(n) : 0.0;
}

}  // namespace mistral::predict
