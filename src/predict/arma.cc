#include "predict/arma.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mistral::predict {

stability_predictor::stability_predictor(arma_options options)
    : options_(options), estimate_(options.initial_estimate) {
    MISTRAL_CHECK(options_.history >= 1);
    MISTRAL_CHECK(options_.gamma >= 0.0 && options_.gamma <= 1.0);
    MISTRAL_CHECK(options_.initial_estimate > 0.0);
    const divergence_options& d = options_.divergence;
    MISTRAL_CHECK(d.slack >= 0.0);
    MISTRAL_CHECK(d.error_cap > d.slack);
    MISTRAL_CHECK(d.error_floor > 0.0);
    MISTRAL_CHECK(d.soft_threshold > 0.0);
    MISTRAL_CHECK(d.hard_threshold > d.soft_threshold);
    MISTRAL_CHECK(d.max_band_scale >= 1.0);
    MISTRAL_CHECK(d.drift_ceiling_factor >= 1.0);
    MISTRAL_CHECK(d.reestimate_order >= 1);
    MISTRAL_CHECK(d.reestimate_min_observations > d.reestimate_order + 1);
    MISTRAL_CHECK(d.reestimate_window >= d.reestimate_min_observations);
    MISTRAL_CHECK(d.reestimate_max_retries >= 0);
    MISTRAL_CHECK(d.reestimate_backoff >= 1);
    MISTRAL_CHECK(d.min_pivot > 0.0);
}

seconds stability_predictor::observe(seconds measured) {
    MISTRAL_CHECK(measured >= 0.0);
    all_estimates_.push_back(estimate_);
    all_measured_.push_back(measured);

    // Smoothed error ε_j from the prediction that was in force.
    const double current_error = std::abs(estimate_ - measured);
    double hist_error = 0.0;
    if (!recent_errors_.empty()) {
        for (double e : recent_errors_) hist_error += e;
        hist_error /= static_cast<double>(recent_errors_.size());
    }
    const double epsilon = recent_errors_.empty()
                               ? current_error
                               : (1.0 - options_.gamma) * current_error +
                                     options_.gamma * hist_error;

    // β = 1 − ε_j / max over the last k+1 errors (including ε_j itself).
    double max_error = epsilon;
    for (double e : recent_errors_) max_error = std::max(max_error, e);
    beta_ = max_error > 0.0 ? 1.0 - epsilon / max_error : 0.0;

    recent_errors_.push_back(epsilon);
    if (recent_errors_.size() > static_cast<std::size_t>(options_.history)) {
        recent_errors_.pop_front();
    }

    // Next estimate: blend of the current measurement and the mean of the k
    // *previous* measurements (not including this one).
    double hist_measured = measured;  // fallback when no history exists yet
    if (!recent_measured_.empty()) {
        hist_measured = 0.0;
        for (double m : recent_measured_) hist_measured += m;
        hist_measured /= static_cast<double>(recent_measured_.size());
    }
    estimate_ = (1.0 - beta_) * measured + beta_ * hist_measured;

    recent_measured_.push_back(measured);
    if (recent_measured_.size() > static_cast<std::size_t>(options_.history)) {
        recent_measured_.pop_front();
    }

    // The guard runs after (and never alters) the blend above; it can only
    // replace estimate_ once a hard alarm has declared the blend untrusted.
    if (options_.divergence.enabled) update_guard(measured);
    return estimate_;
}

std::vector<forecast_band> stability_predictor::forecast_horizon(
    int k, const horizon_options& horizon) const {
    MISTRAL_CHECK(k >= 1);
    MISTRAL_CHECK(horizon.width_growth >= 1.0);
    MISTRAL_CHECK(horizon.trend_damping >= 0.0 && horizon.trend_damping <= 1.0);
    MISTRAL_CHECK(horizon.min_width_fraction >= 0.0);

    // Step 1 is the one-step prediction, bit-for-bit. (estimate_ is finite by
    // construction — observe() rejects non-finite input via its range check —
    // but the fallback keeps the API total under any future caller.)
    double center = std::isfinite(estimate_) ? estimate_ : options_.initial_estimate;

    // Step-1 uncertainty: the smoothed recent prediction errors, floored so a
    // perfectly tracking filter still reports nonzero spread, scaled by the
    // divergence guard's band multiplier (a drifting filter is less certain).
    double base_width = 0.0;
    if (!recent_errors_.empty()) {
        for (double e : recent_errors_) base_width += e;
        base_width /= static_cast<double>(recent_errors_.size());
    }
    const double floor =
        horizon.min_width_fraction * std::max(std::abs(center), 1.0);
    double width = std::max(base_width, floor) * band_multiplier();
    if (!std::isfinite(width)) width = floor;

    // Damped trend over the history window's endpoints: the mean successive
    // difference of the last k measurements.
    double slope = 0.0;
    if (recent_measured_.size() >= 2) {
        slope = (recent_measured_.back() - recent_measured_.front()) /
                static_cast<double>(recent_measured_.size() - 1);
    }
    if (!std::isfinite(slope)) slope = 0.0;

    std::vector<forecast_band> out;
    out.reserve(static_cast<std::size_t>(k));
    double damp = 1.0;
    for (int i = 0; i < k; ++i) {
        if (i > 0) {
            // Non-finite arithmetic (overflow from extreme-but-finite state)
            // keeps the previous step's values: centers stay finite, widths
            // stay non-decreasing (equal counts as non-tightening).
            const double next_center = center + slope * damp;
            if (std::isfinite(next_center)) center = std::max(0.0, next_center);
            damp *= horizon.trend_damping;
            const double next_width = width * horizon.width_growth;
            if (std::isfinite(next_width)) width = next_width;
        }
        out.push_back({center, width});
    }
    return out;
}

double stability_predictor::mape_percent() const {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t j = 1; j < all_measured_.size(); ++j) {
        if (all_measured_[j] <= 0.0) continue;
        sum += std::abs(all_estimates_[j] - all_measured_[j]) / all_measured_[j];
        ++n;
    }
    return n ? 100.0 * sum / static_cast<double>(n) : 0.0;
}

// --- divergence guard -------------------------------------------------------

double stability_predictor::band_multiplier() const {
    const divergence_options& d = options_.divergence;
    if (!d.enabled || cusum_ <= d.soft_threshold) return 1.0;
    const double t = std::min(
        1.0, (cusum_ - d.soft_threshold) / (d.hard_threshold - d.soft_threshold));
    return 1.0 + t * (d.max_band_scale - 1.0);
}

bool stability_predictor::reestimation_exhausted() const {
    return !trusted_ && !fit_valid_ &&
           fit_attempts_ >= options_.divergence.reestimate_max_retries;
}

void stability_predictor::update_guard(seconds measured) {
    const divergence_options& d = options_.divergence;
    // Skip the first observation: its "prediction" is the cold-start
    // constant, not something the filter produced (same reasoning as
    // mape_percent skipping j = 0).
    if (all_measured_.size() < 2) return;
    const double in_force = all_estimates_.back();
    const double norm_error =
        std::min(std::abs(in_force - measured) / std::max(measured, d.error_floor),
                 d.error_cap);
    cusum_ = std::max(0.0, cusum_ + norm_error - d.slack);
    cusum_ = std::min(cusum_, d.hard_threshold * d.drift_ceiling_factor);

    if (trusted_ && cusum_ >= d.hard_threshold) {
        trusted_ = false;
        ++divergence_count_;
        fit_attempts_ = 0;
        fit_valid_ = false;
        next_fit_at_ = all_measured_.size();  // eligible immediately
    } else if (!trusted_ && cusum_ < d.soft_threshold) {
        // Predictions track again; return to the paper's blend.
        trusted_ = true;
        fit_valid_ = false;
        fit_coeffs_.clear();
    }

    if (!trusted_) attempt_reestimate();
}

void stability_predictor::attempt_reestimate() {
    const divergence_options& d = options_.divergence;
    if (fit_valid_) {
        estimate_ = ar_predict();
        return;
    }
    if (fit_attempts_ >= d.reestimate_max_retries) return;  // exhausted: keep blend
    if (all_measured_.size() < next_fit_at_) return;        // backing off
    ++fit_attempts_;
    if (fit_ar()) {
        fit_valid_ = true;
        estimate_ = ar_predict();
    } else {
        // Ill-conditioned (or not enough history): wait for more data, with
        // the wait doubling on every further failure.
        const std::size_t backoff = static_cast<std::size_t>(d.reestimate_backoff)
                                    << (fit_attempts_ - 1);
        next_fit_at_ = all_measured_.size() + backoff;
    }
}

bool stability_predictor::fit_ar() {
    const divergence_options& d = options_.divergence;
    const int p = d.reestimate_order;
    const std::size_t total = all_measured_.size();
    if (total < static_cast<std::size_t>(d.reestimate_min_observations)) {
        return false;
    }
    const std::size_t window =
        std::min(total, static_cast<std::size_t>(d.reestimate_window));
    const std::size_t first = total - window;

    // Least squares for y_t = Σ_i c_i·y_{t−1−i} + intercept over the window,
    // via the (p+1)×(p+1) normal equations.
    const int m = p + 1;
    std::vector<double> ata(static_cast<std::size_t>(m) * m, 0.0);
    std::vector<double> atb(m, 0.0);
    std::size_t rows = 0;
    for (std::size_t t = first + static_cast<std::size_t>(p); t < total; ++t) {
        std::vector<double> x(m, 1.0);  // x[p] stays 1 (intercept)
        for (int i = 0; i < p; ++i) {
            x[static_cast<std::size_t>(i)] = all_measured_[t - 1 - static_cast<std::size_t>(i)];
        }
        const double y = all_measured_[t];
        for (int r = 0; r < m; ++r) {
            for (int c = 0; c < m; ++c) {
                ata[static_cast<std::size_t>(r) * m + c] += x[r] * x[c];
            }
            atb[static_cast<std::size_t>(r)] += x[r] * y;
        }
        ++rows;
    }
    if (rows < static_cast<std::size_t>(2 * m)) return false;

    // Gaussian elimination with partial pivoting; a pivot below
    // min_pivot × (largest diagonal magnitude) marks the system singular —
    // e.g. a constant history makes the lag columns collinear with the
    // intercept.
    double scale = 0.0;
    for (int i = 0; i < m; ++i) {
        scale = std::max(scale, std::abs(ata[static_cast<std::size_t>(i) * m + i]));
    }
    if (scale <= 0.0) return false;
    for (int col = 0; col < m; ++col) {
        int pivot_row = col;
        double pivot = std::abs(ata[static_cast<std::size_t>(col) * m + col]);
        for (int r = col + 1; r < m; ++r) {
            const double v = std::abs(ata[static_cast<std::size_t>(r) * m + col]);
            if (v > pivot) {
                pivot = v;
                pivot_row = r;
            }
        }
        if (pivot < d.min_pivot * scale) return false;  // singular
        if (pivot_row != col) {
            for (int c = 0; c < m; ++c) {
                std::swap(ata[static_cast<std::size_t>(col) * m + c],
                          ata[static_cast<std::size_t>(pivot_row) * m + c]);
            }
            std::swap(atb[static_cast<std::size_t>(col)],
                      atb[static_cast<std::size_t>(pivot_row)]);
        }
        const double diag = ata[static_cast<std::size_t>(col) * m + col];
        for (int r = col + 1; r < m; ++r) {
            const double factor = ata[static_cast<std::size_t>(r) * m + col] / diag;
            if (factor == 0.0) continue;
            for (int c = col; c < m; ++c) {
                ata[static_cast<std::size_t>(r) * m + c] -=
                    factor * ata[static_cast<std::size_t>(col) * m + c];
            }
            atb[static_cast<std::size_t>(r)] -= factor * atb[static_cast<std::size_t>(col)];
        }
    }
    std::vector<double> coeffs(m, 0.0);
    for (int r = m - 1; r >= 0; --r) {
        double v = atb[static_cast<std::size_t>(r)];
        for (int c = r + 1; c < m; ++c) {
            v -= ata[static_cast<std::size_t>(r) * m + c] * coeffs[static_cast<std::size_t>(c)];
        }
        v /= ata[static_cast<std::size_t>(r) * m + r];
        if (!std::isfinite(v)) return false;
        coeffs[static_cast<std::size_t>(r)] = v;
    }
    fit_coeffs_ = std::move(coeffs);
    return true;
}

seconds stability_predictor::ar_predict() const {
    const int p = options_.divergence.reestimate_order;
    MISTRAL_CHECK(fit_coeffs_.size() == static_cast<std::size_t>(p) + 1);
    MISTRAL_CHECK(all_measured_.size() >= static_cast<std::size_t>(p));
    double out = fit_coeffs_.back();  // intercept
    const std::size_t total = all_measured_.size();
    for (int i = 0; i < p; ++i) {
        out += fit_coeffs_[static_cast<std::size_t>(i)] *
               all_measured_[total - 1 - static_cast<std::size_t>(i)];
    }
    // A stability interval is a duration: clamp the regression output to a
    // strictly positive floor so downstream CW clamping stays well-defined.
    return std::max(out, 1.0);
}

}  // namespace mistral::predict
