// Ablation: the adaptation-benefit horizon (control window).
//
// Mistral predicts the stability interval with the adaptive ARMA filter and
// uses it as the horizon CW in Eq. 3. This sweep replaces the prediction
// with fixed horizons — too-short horizons make every adaptation look
// unprofitable, too-long ones overcommit during volatile phases — and
// compares against the ARMA-driven default.
#include <iostream>

#include "bench_util.h"

using namespace mistral;

int main() {
    bench::print_header("Ablation — control-window horizon",
                        "ARMA-predicted vs. fixed CW; utility and actions");

    auto scn = core::make_rubis_scenario({.host_count = 4, .app_count = 2});
    const auto& costs = bench::measured_costs();

    table_printer t({"horizon", "invocations", "actions", "mean power (W)",
                     "cumulative utility"});

    auto run_with = [&](const std::string& label, core::controller_options opts) {
        core::mistral_strategy s(scn.model, costs, opts);
        const auto r = core::run_scenario(scn, s);
        t.add_row({label, std::to_string(r.invocations),
                   std::to_string(r.total_actions),
                   table_printer::fmt(r.mean_power, 1),
                   table_printer::fmt(r.cumulative_utility, 1)});
    };

    run_with("ARMA (paper)", {});
    for (const double fixed : {120.0, 360.0, 720.0, 1800.0}) {
        core::controller_options opts;
        opts.min_control_window = fixed;
        opts.max_control_window = fixed;
        run_with("fixed " + std::to_string(static_cast<int>(fixed)) + "s", opts);
    }
    t.print(std::cout);
    std::cout << "\nReading: a very short fixed horizon suppresses profitable\n"
                 "consolidations (migration costs never repay); a very long one\n"
                 "over-adapts at flash-crowd onsets. The ARMA horizon tracks\n"
                 "the workload's actual stability.\n";
    return 0;
}
