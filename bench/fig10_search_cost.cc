// Fig. 10: the cost of search.
//
// Demonstrates the controller's self-awareness: (a) the search draws real
// power on the controller host (the paper measures up to 12 % over a 60 W
// idle), (b) the naive A* takes up to ~4× longer than the self-aware search
// on intensive invocations, and (c) self-awareness improves cumulative
// utility (paper: 135.3 naive vs. 152.3 self-aware).
#include <iostream>

#include "bench_util.h"
#include "common/time_series.h"

using namespace mistral;

int main() {
    bench::print_header("Fig. 10 — cost of search",
                        "search power, duration, and utility: naive vs. "
                        "self-aware A*");

    auto scn = core::make_rubis_scenario({.host_count = 4, .app_count = 2});
    const auto& costs = bench::measured_costs();

    core::controller_options self_aware;
    core::controller_options naive;
    naive.search.self_aware = false;

    core::mistral_strategy sa(scn.model, costs, self_aware);
    core::mistral_strategy nv(scn.model, costs, naive);
    const auto ra = core::run_scenario(scn, sa);
    const auto rn = core::run_scenario(scn, nv);

    // (a) Search power: the meter draws 7.2 W over a 60 W idle host while
    // searching — the paper's "up to 12 %".
    std::cout << "\n(a) Controller-host power during search\n";
    std::cout << "  idle draw: 60 W; extra draw while searching: 7.2 W (+"
              << table_printer::fmt(100.0 * 7.2 / 60.0, 0) << "%)\n"
              << "  total search energy cost over the run: self-aware $"
              << table_printer::fmt(ra.total_search_cost, 3) << ", naive $"
              << table_printer::fmt(rn.total_search_cost, 3) << "\n";

    // (b) Search durations per invocation, over the day.
    std::cout << "\n(b) Search time (ms) per invocation (12-minute samples)\n";
    series_bundle durations;
    const auto* dsa = ra.series.find("search_ms");
    const auto* dnv = rn.series.find("search_ms");
    for (std::size_t i = 0; i < dsa->size(); i += 6) {
        const double hours = (scn.traces[0].start_time() +
                              dsa->samples()[i].time) / 3600.0;
        durations.series("Self-aware").add(hours, dsa->samples()[i].value);
        durations.series("Naive").add(hours, dnv->samples()[i].value);
    }
    durations.print(std::cout, 12, 0);

    table_printer d({"search", "mean (s)", "max (s)"});
    d.add_row({"Self-aware", table_printer::fmt(ra.search_duration.mean(), 2),
               table_printer::fmt(ra.search_duration.max(), 2)});
    d.add_row({"Naive", table_printer::fmt(rn.search_duration.mean(), 2),
               table_printer::fmt(rn.search_duration.max(), 2)});
    d.print(std::cout);
    std::cout << "(paper: naive up to ~24 s vs. ~5.5 s self-aware on intensive "
                 "searches)\n";

    // (c) Utility comparison.
    std::cout << "\n(c) Cumulative utility (paper: naive 135.3 vs. self-aware "
                 "152.3)\n";
    table_printer u({"search", "cumulative utility ($)", "actions"});
    u.add_row({"Self-aware", table_printer::fmt(ra.cumulative_utility, 1),
               std::to_string(ra.total_actions)});
    u.add_row({"Naive", table_printer::fmt(rn.cumulative_utility, 1),
               std::to_string(rn.total_actions)});
    u.print(std::cout);
    std::cout << "\nShape check: self-aware searches are several times faster"
              << (ra.cumulative_utility >= rn.cumulative_utility
                      ? " and utility is at least as high (matches the paper).\n"
                      : "; utility ordering did not reproduce on this seed.\n");
    return 0;
}
