// Ablation: the self-aware pruning fraction.
//
// Section IV-B prunes expansions to the top 5 % of children by distance to
// the ideal configuration. This sweep varies the kept fraction (0.02–1.0)
// and reports search effort and achieved utility on the 2-app day — the
// design question being how much optimality the beam narrowing costs.
#include <iostream>

#include "bench_util.h"

using namespace mistral;

int main() {
    bench::print_header("Ablation — pruning fraction",
                        "prune_keep_fraction sweep; search effort vs. utility");

    auto scn = core::make_rubis_scenario({.host_count = 4, .app_count = 2});
    const auto& costs = bench::measured_costs();

    table_printer t({"keep fraction", "mean search (s)", "max search (s)",
                     "actions", "cumulative utility"});
    for (const double keep : {0.02, 0.05, 0.10, 0.25, 1.0}) {
        core::controller_options opts;
        opts.search.prune_keep_fraction = keep;
        core::mistral_strategy s(scn.model, costs, opts);
        const auto r = core::run_scenario(scn, s);
        t.add_row({table_printer::fmt(keep, 2),
                   table_printer::fmt(r.search_duration.mean(), 2),
                   table_printer::fmt(r.search_duration.max(), 2),
                   std::to_string(r.total_actions),
                   table_printer::fmt(r.cumulative_utility, 1)});
    }
    t.print(std::cout);
    std::cout << "\nReading: the paper's 5% keeps utility within noise of wider\n"
                 "beams while holding search time near the delay threshold.\n";
    return 0;
}
