// Pre-provision vs. react: the receding-horizon lookahead planner on a
// flash-crowd World-Cup scenario.
//
// The single-interval controller is purely reactive — it pays the adaptation
// transient *during* the crowd, when every lost request-second is at peak
// rate. The lookahead planner rolls the ARMA forecast K intervals forward;
// when the discounted multi-interval value of booting the hosts the forecast
// peak wants (on top of the reactive plan) beats staying reactive, it
// commits those boosts early and replans next window. This bench sweeps the
// horizon and prints the pre-provision-vs-reactive table EXPERIMENTS.md
// records.
#include <iostream>

#include "bench_util.h"

using namespace mistral;

int main() {
    bench::print_header(
        "Lookahead — pre-provision vs. react on a flash crowd",
        "receding-horizon planner, K in {1..4}, vs. the reactive controller");

    // The scenario lives in bench_util.h: micro_search's smoke gate runs the
    // same one, so the table printed here is the table CI pins.
    const auto scn = bench::lookahead_crowd_scenario();
    const auto costs = cost::cost_table::paper_defaults();

    table_printer t({"planner", "invocations", "actions", "preprovisions",
                     "mean power (W)", "cumulative utility", "delta vs react"});

    double reactive_utility = 0.0;
    auto run_with = [&](const std::string& label,
                        core::controller_options opts, bool is_baseline) {
        opts.sink = bench::journal_from_env();
        core::mistral_strategy s(scn.model, costs, opts);
        const auto r = core::run_scenario(scn, s);
        if (is_baseline) reactive_utility = r.cumulative_utility;
        const auto& ls = s.controller().lookahead();
        t.add_row({label, std::to_string(r.invocations),
                   std::to_string(r.total_actions),
                   std::to_string(ls.preprovision_commits),
                   table_printer::fmt(r.mean_power, 1),
                   table_printer::fmt(r.cumulative_utility, 1),
                   is_baseline
                       ? std::string("--")
                       : table_printer::fmt(
                             r.cumulative_utility - reactive_utility, 1)});
    };

    run_with("reactive (single-interval)", {}, true);
    for (const int k : {1, 2, 3, 4}) {
        core::controller_options opts;
        opts.lookahead.enabled = true;
        opts.lookahead.horizon = k;
        run_with("lookahead K=" + std::to_string(k), opts, false);
    }
    t.print(std::cout);
    std::cout <<
        "\nReading: K=1 is the differential anchor — bit-identical to the\n"
        "reactive controller (delta exactly 0). For K>=2 the planner watches\n"
        "the forecast peak; when it rises past today's demand and the\n"
        "reactive plan leaves a healthy host dark, it boots those hosts\n"
        "early (augmenting — never replacing — the reactive plan), paying\n"
        "the boot transient at baseline rate instead of peak rate. Deeper\n"
        "horizons see the ramp sooner but discount it harder (geometric x\n"
        "band confidence); away from the commit the planner's own modeled\n"
        "search time is screened to near zero, so deltas off the crowd are\n"
        "trajectory noise around the same single commit.\n";
    return 0;
}
