// Fig. 6: accuracy of stability-interval estimation.
//
// The ARMA filter of Section III-D predicts how long the workload stays
// within its band; the paper reports ~14 % average error over ~95 control
// windows using RUBiS-1 and RUBiS-2.
#include <iostream>

#include "bench_util.h"
#include "common/time_series.h"
#include "predict/arma.h"
#include "workload/generators.h"
#include "workload/monitor.h"

using namespace mistral;

int main() {
    bench::print_header("Fig. 6 — accuracy of stability interval estimation",
                        "measured vs. estimated stability interval (ms) per "
                        "control window, RUBiS-1/2, band 8 req/s");

    // Real request streams jitter by a few req/s in absolute terms at every
    // load level (that is what exits an 8 req/s band even at night); the
    // additive AR(1) noise transform supplies that texture on top of the
    // Fig. 4 shapes.
    wl::generator_options gen;
    std::vector<wl::trace> traces = {
        wl::world_cup_trace(gen, 0).scaled_to_range(0.0, 100.0)
            .with_additive_noise(3.0, 77),
        wl::world_cup_trace(gen, 1).scaled_to_range(0.0, 100.0)
            .with_additive_noise(3.0, 78)};
    wl::workload_monitor monitor(2, 8.0);
    // Per-application predictors, as in Section III-D.
    predict::stability_predictor p0, p1;

    series_bundle bundle;
    auto& experiment = bundle.series("Experiment");
    auto& estimated = bundle.series("Model");

    int window = 0;
    double abs_err = 0.0, measured_sum = 0.0;
    const seconds start = traces[0].start_time();
    const seconds end = traces[0].end_time();
    for (seconds t = start; t <= end; t += 120.0) {
        const std::vector<req_per_sec> rates = {traces[0].rate_at(t),
                                                traces[1].rate_at(t)};
        const auto event = monitor.observe(t, rates);
        if (!event.any_exceeded) continue;
        for (std::size_t i = 0; i < event.exceeded.size(); ++i) {
            auto& p = event.exceeded[i] == 0 ? p0 : p1;
            const seconds measured = event.completed_intervals[i];
            ++window;
            experiment.add(window, measured * 1000.0);
            estimated.add(window, p.current_estimate() * 1000.0);
            abs_err += std::abs(p.current_estimate() - measured);
            measured_sum += measured;
            p.observe(measured);
        }
        monitor.recenter(t, rates);
    }

    std::cout << "\n(one row per control window; values in ms)\n";
    bundle.print(std::cout, 12, 0);
    std::cout << "\nControl windows observed: " << window << "\n"
              << "Per-window MAPE: RUBiS-1 "
              << table_printer::fmt(p0.mape_percent(), 1) << "%, RUBiS-2 "
              << table_printer::fmt(p1.mape_percent(), 1) << "%\n"
              << "Magnitude-weighted error (sum |err| / sum measured): "
              << table_printer::fmt(100.0 * abs_err / measured_sum, 1) << "%\n"
              << "\nNote: the paper reports ~14% average error. Our synthetic\n"
                 "traces yield a heavier-tailed interval distribution than the\n"
                 "authors' testbed traces, so the k=3 ARMA's relative error is\n"
                 "larger here; the qualitative behaviour (estimates tracking\n"
                 "the measured regime, fast recovery after shocks via the\n"
                 "adaptive beta) is what this figure checks.\n";
    return 0;
}
