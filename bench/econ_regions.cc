// Two-region cell: carbon/region-aware pod scheduling.
//
// Six hosts split into two pods, each pinned to an electricity region:
// pod 0 in "cheap" ($0.01/W·interval, 250 gCO2/Wh), pod 1 in "expensive"
// ($0.04, 550 g). Both applications start packed into the expensive pod —
// the shape the region-aware migration broker exists to fix. Two sharded
// coordinators step the same decision loop:
//
//   * region-blind — no region map: the broker only donates above the 0.85
//     pressure watermark, which the packed pod never reaches, so the load
//     stays where it was placed;
//   * region-aware — the region map biases the broker (donate sooner from
//     expensive regions, bid lower on them) and weights budget headroom by
//     cheapest/price, so the apps drain toward the cheap/green region.
//
// Reported per strategy: the share of deployed VMs in the cheap region at
// start and end, brokered region moves, and the modeled steady $ and gCO2
// per interval of the final placement (host power model at the deployed
// caps, priced per region).
//
// `--smoke` is the CI gate: the region-aware run must actually shift load
// (≥ 1 move strictly toward the cheaper region, cheap share up, final $
// down vs region-blind). The full run appends its cells to
// BENCH_search.json (key "econ_regions_cells").
#include <algorithm>

#include "bench_util.h"
#include "core/coordinator.h"

using namespace mistral;

namespace {

constexpr double kCheapPrice = 0.01;
constexpr double kExpensivePrice = 0.04;

cluster::cluster_model make_model() {
    std::vector<apps::application_spec> specs;
    for (int a = 0; a < 2; ++a) {
        specs.push_back(apps::rubis_browsing("R" + std::to_string(a)));
    }
    return cluster::cluster_model(cluster::uniform_hosts(6), std::move(specs));
}

// Both applications packed into pod 1 (hosts 3–5, the expensive region);
// pod 0 powered but empty.
cluster::configuration packed_expensive(const cluster::cluster_model& model) {
    cluster::configuration c(model.vm_count(), model.host_count());
    for (std::int32_t h = 0; h < 6; ++h) c.set_host_power(host_id{h}, true);
    for (std::size_t t = 0; t < 3; ++t) {
        c.deploy(model.tier_vms(app_id{0}, t)[0],
                 host_id{static_cast<std::int32_t>(3 + t)}, 0.38);
        c.deploy(model.tier_vms(app_id{1}, t)[0],
                 host_id{static_cast<std::int32_t>(3 + t)}, 0.30);
    }
    return c;
}

// Fraction of deployed VMs sitting in the cheap region (hosts 0–2).
double cheap_share(const cluster::cluster_model& model,
                   const cluster::configuration& cfg) {
    std::size_t deployed = 0, cheap = 0;
    for (const auto& vm : model.vms()) {
        const auto& p = cfg.placement(vm.vm);
        if (!p) continue;
        ++deployed;
        if (p->host.index() < 3) ++cheap;
    }
    return deployed == 0 ? 0.0
                         : static_cast<double>(cheap) / static_cast<double>(deployed);
}

// Modeled steady cost of a configuration: per-host power at the deployed cap
// sum, priced (and carbon-weighted) per region, per monitoring interval.
struct steady_cost {
    double dollars_per_interval = 0.0;
    double grams_per_interval = 0.0;
};

steady_cost cost_of(const cluster::cluster_model& model,
                    const cluster::configuration& cfg,
                    const econ::region_map& regions, seconds interval) {
    steady_cost out;
    for (std::size_t h = 0; h < model.host_count(); ++h) {
        const host_id host{static_cast<std::int32_t>(h)};
        if (!cfg.host_on(host)) continue;
        const std::size_t pod = h < 3 ? 0 : 1;
        const watts w = model.hosts()[h].power.power(
            std::min(1.0, cfg.cap_sum(host)));
        out.dollars_per_interval += w * regions.price_of_pod(pod, 0.0);
        out.grams_per_interval += w * interval / 3600.0 *
                                  regions.carbon_of_pod(pod, 0.0);
    }
    return out;
}

struct cell {
    std::string name;
    double share_start = 0.0;
    double share_end = 0.0;
    std::int64_t region_moves = 0;
    steady_cost final_cost;
};

cell run_cell(const std::string& name, bool region_aware) {
    const auto model = make_model();
    const auto regions =
        econ::region_map(wl::two_region_spread(kCheapPrice, kExpensivePrice),
                         {0, 1});

    obs::metrics_registry registry;
    obs::memory_sink sink(&registry);
    core::controller_builder builder;
    builder.sink(&sink);
    core::coordinator_options opts;
    if (region_aware) opts.regions = regions;
    std::vector<core::pod_spec> pods(2);
    pods[0].id = 0;
    pods[0].hosts = {0, 1, 2};
    pods[1].id = 1;
    pods[1].hosts = {3, 4, 5};
    core::global_coordinator coord(model, bench::measured_costs(),
                                   core::partition(model, std::move(pods)),
                                   builder, opts);

    auto cfg = packed_expensive(model);
    cell out;
    out.name = name;
    out.share_start = cheap_share(model, cfg);
    seconds t = 0.0;
    for (int i = 0; i < 10; ++i) {
        const auto decision = coord.decide({t, {40.0, 30.0}, cfg, 1.0});
        for (const auto& a : decision.actions) cfg = apply(model, cfg, a);
        t += 120.0;
    }
    out.share_end = cheap_share(model, cfg);
    out.region_moves = region_aware
                           ? registry.counter_value("mistral_econ_region_moves_total")
                           : coord.brokered_migrations();
    out.final_cost = cost_of(model, cfg, regions, 120.0);
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";

    const auto blind = run_cell("region-blind", false);
    const auto aware = run_cell("region-aware", true);

    if (!smoke) {
        bench::print_header(
            "Two regions: region-aware migration brokering",
            "Economics subsystem, DESIGN.md §15; cheap $" +
                std::to_string(kCheapPrice) + " vs expensive $" +
                std::to_string(kExpensivePrice) + " per W·interval");
        table_printer t({"strategy", "cheap share start", "cheap share end",
                         "region moves", "$ / interval", "gCO2 / interval"});
        for (const auto* c : {&blind, &aware}) {
            t.add_row({c->name, table_printer::fmt(c->share_start, 2),
                       table_printer::fmt(c->share_end, 2),
                       std::to_string(c->region_moves),
                       table_printer::fmt(c->final_cost.dollars_per_interval, 3),
                       table_printer::fmt(c->final_cost.grams_per_interval, 0)});
        }
        t.print(std::cout);
        std::cout << "\nThe region-aware broker drains the packed expensive "
                     "pod into the\ncheap/green region; blind brokering "
                     "leaves the placement alone.\n";

        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "[\n    {\"strategy\": \"region-blind\", \"cheap_share_end\": %.4f, "
            "\"region_moves\": %lld, \"dollars_per_interval\": %.6f, "
            "\"grams_per_interval\": %.1f},\n"
            "    {\"strategy\": \"region-aware\", \"cheap_share_end\": %.4f, "
            "\"region_moves\": %lld, \"dollars_per_interval\": %.6f, "
            "\"grams_per_interval\": %.1f}\n  ]",
            blind.share_end, static_cast<long long>(blind.region_moves),
            blind.final_cost.dollars_per_interval,
            blind.final_cost.grams_per_interval, aware.share_end,
            static_cast<long long>(aware.region_moves),
            aware.final_cost.dollars_per_interval,
            aware.final_cost.grams_per_interval);
        if (bench::append_bench_section("BENCH_search.json",
                                        "econ_regions_cells", buf)) {
            std::cout << "appended econ_regions_cells to BENCH_search.json\n";
        }
        return 0;
    }

    // --- CI gate ---------------------------------------------------------
    int failures = 0;
    auto fail = [&](const char* what) {
        std::fprintf(stderr, "smoke FAILED: %s\n", what);
        ++failures;
    };
    std::printf("smoke: region-aware cheap share %.2f -> %.2f (%lld moves), "
                "$%.3f/interval vs blind $%.3f\n",
                aware.share_start, aware.share_end,
                static_cast<long long>(aware.region_moves),
                aware.final_cost.dollars_per_interval,
                blind.final_cost.dollars_per_interval);
    if (aware.region_moves < 1) {
        fail("region-aware broker made no moves toward the cheaper region");
    }
    if (!(aware.share_end > aware.share_start)) {
        fail("cheap-region share did not increase under region-aware brokering");
    }
    if (!(aware.share_end > blind.share_end)) {
        fail("region-aware run holds no more load in the cheap region than blind");
    }
    if (!(aware.final_cost.dollars_per_interval <
          blind.final_cost.dollars_per_interval)) {
        fail("region-aware final placement is not cheaper than region-blind");
    }
    if (failures == 0) std::printf("smoke OK\n");
    return failures == 0 ? 0 : 1;
}
