// Micro-benchmarks for the observability hot path.
//
// The disabled-path numbers are the acceptance criterion: a default
// (null-sink) build pays one predictable branch per hook — no mutex, no
// allocation, no virtual call — so instrumenting the A* inner loop and the
// LQN solver costs nothing when observability is off. The enabled paths
// quantify what a live registry costs (one relaxed atomic add) and what a
// journal line costs (string formatting; only paid on controller decisions,
// never per expansion).
#include <benchmark/benchmark.h>

#include <sstream>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/profile.h"

using namespace mistral;

namespace {

void BM_obs_counter_disabled(benchmark::State& state) {
    const obs::counter c;  // default-constructed: the null-sink path
    for (auto _ : state) {
        c.add();
        benchmark::DoNotOptimize(&c);
    }
}
BENCHMARK(BM_obs_counter_disabled);

void BM_obs_counter_enabled(benchmark::State& state) {
    obs::metrics_registry reg;
    const obs::counter c = reg.register_counter("bench_expansions_total");
    for (auto _ : state) {
        c.add();
        benchmark::DoNotOptimize(&c);
    }
}
BENCHMARK(BM_obs_counter_enabled);

void BM_obs_histogram_disabled(benchmark::State& state) {
    const obs::histogram h;
    double v = 0.0;
    for (auto _ : state) {
        h.observe(v);
        v += 0.1;
        benchmark::DoNotOptimize(&h);
    }
}
BENCHMARK(BM_obs_histogram_disabled);

void BM_obs_histogram_enabled(benchmark::State& state) {
    obs::metrics_registry reg;
    const obs::histogram h = reg.register_histogram(
        "bench_duration_seconds", {0.1, 0.5, 1.0, 2.5, 5.0, 10.0});
    double v = 0.0;
    for (auto _ : state) {
        h.observe(v);
        v += 0.1;
        if (v > 12.0) v = 0.0;
        benchmark::DoNotOptimize(&h);
    }
}
BENCHMARK(BM_obs_histogram_enabled);

void BM_obs_journaling_guard_off(benchmark::State& state) {
    obs::sink* sink = nullptr;  // the default in every options struct
    for (auto _ : state) {
        benchmark::DoNotOptimize(obs::journaling(sink));
    }
}
BENCHMARK(BM_obs_journaling_guard_off);

void BM_obs_decision_event(benchmark::State& state) {
    // The full journal cost of one controller decision record: build the
    // event, format it as a JSON line, write it to an in-memory stream.
    std::ostringstream out;
    obs::jsonl_sink sink(out);
    for (auto _ : state) {
        out.str("");
        obs::event e("decision", 1234.5);
        e.text("trigger", "band")
            .boolean("invoked", true)
            .num("cw", 300.0)
            .num("expected_utility", 12.5)
            .text_list("actions", {"migrate vm3 -> host2", "power_off host1"})
            .integer("expansions", 842)
            .num("search_duration", 1.7);
        sink.record(e);
        benchmark::DoNotOptimize(&out);
    }
}
BENCHMARK(BM_obs_decision_event);

}  // namespace
