// Table I: search durations and utilities at increasing scale.
//
// Three scenarios — 2 apps / 10 VMs / 4 hosts, 3 apps / 15 VMs / 6 hosts,
// 4 apps / 20 VMs / 8 hosts — run under the two-level hierarchical Mistral
// (level 1: band 0, CPU tuning + intra-group migration; level 2: band
// 8 req/s, full action set). Reported per scenario, as in the paper:
//   * mean search duration of the self-aware search, overall and per level;
//   * mean search duration of the naive search on the same scenario;
//   * Mistral's total utility vs. the *ideal* utility (the simulated
//     Perf-Pwr optimum integrated over the run, ignoring adaptation costs).
// The paper's shape: naive durations blow up super-linearly with scale while
// self-aware durations grow roughly linearly, and the gap between achieved
// and ideal utility stays approximately constant.
#include <iostream>

#include "bench_util.h"
#include "core/coordinator.h"
#include "core/perf_pwr.h"
#include "obs/journal.h"

using namespace mistral;

namespace {

struct scenario_row {
    std::size_t apps;
    std::size_t hosts;
    std::vector<std::vector<std::size_t>> groups;
};

std::vector<std::vector<std::size_t>> split_hosts(std::size_t hosts,
                                                  std::size_t groups) {
    std::vector<std::vector<std::size_t>> out(groups);
    for (std::size_t h = 0; h < hosts; ++h) out[h * groups / hosts].push_back(h);
    return out;
}

// Journal off, metrics on: the pods register their per-pod histograms in
// `registry` without perturbing decisions.
class metrics_sink final : public mistral::obs::sink {
public:
    explicit metrics_sink(mistral::obs::metrics_registry* r) : registry_(r) {}
    [[nodiscard]] bool enabled() const override { return false; }
    void record(const mistral::obs::event&) override {}
    [[nodiscard]] mistral::obs::metrics_registry* metrics() override {
        return registry_;
    }

private:
    mistral::obs::metrics_registry* registry_;
};

const std::vector<double> kSearchBounds = {0.05, 0.1,  0.25, 0.5, 1.0,
                                           2.5,  5.0,  10.0, 30.0};

double histo_mean(mistral::obs::metrics_registry& registry,
                  const std::string& name) {
    auto h = registry.register_histogram(name, kSearchBounds);
    return h.count() > 0 ? h.sum() / static_cast<double>(h.count()) : 0.0;
}

double level1_mean(mistral::obs::metrics_registry& registry,
                   std::size_t pods) {
    std::int64_t count = 0;
    double sum = 0.0;
    for (std::size_t i = 0; i < pods; ++i) {
        auto h = registry.register_histogram(
            "mistral_pod_" + std::to_string(i) + "_search_seconds",
            kSearchBounds);
        count += h.count();
        sum += h.sum();
    }
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace

int main() {
    bench::print_header("Table I — search durations and utilities",
                        "2/3/4-app scenarios; self-aware vs. naive search; "
                        "Mistral vs. ideal utility");

    const auto& costs = bench::measured_costs();
    // The paper's groups: one level-1 controller for the 2-app scenario,
    // two level-1 controllers for 3- and 4-app scenarios.
    const std::vector<scenario_row> rows = {
        {2, 4, split_hosts(4, 1)},
        {3, 6, split_hosts(6, 2)},
        {4, 8, split_hosts(8, 2)},
    };

    table_printer t({"scenario", "#VMs/#hosts", "self-aware avg (s)", "- 1st level",
                     "- 2nd level", "naive avg (s)", "Mistral utility",
                     "ideal utility"});

    for (const auto& row : rows) {
        auto scn = core::make_rubis_scenario(
            {.host_count = row.hosts, .app_count = row.apps});

        // Self-aware hierarchical run over the full day.
        obs::metrics_registry registry;
        metrics_sink sink(&registry);
        core::controller_builder builder;
        builder.sink(&sink);
        core::global_coordinator mistral(scn.model, costs,
                                         core::level1_pods(row.groups),
                                         builder);
        const auto r = core::run_scenario(scn, mistral);

        // Naive variant: same hierarchy, pruning and early stop disabled.
        // Measured over a shortened window — the naive search's cost per
        // invocation is exactly what scales badly.
        core::controller_builder naive_builder;
        naive_builder.self_aware(false).tweak([](core::controller_options& o) {
            o.search.max_expansions = 1500;
        });
        core::global_coordinator naive(scn.model, costs,
                                       core::level1_pods(row.groups),
                                       naive_builder);
        auto short_scn = scn;
        const seconds t0 = scn.traces[0].start_time();
        std::vector<wl::trace> short_traces;
        for (const auto& tr : scn.traces) {
            std::vector<wl::trace_sample> cut;
            for (const auto& s : tr.samples()) {
                if (s.time <= t0 + 7200.0) cut.push_back(s);
            }
            short_traces.push_back(wl::trace(tr.name(), std::move(cut)));
        }
        short_scn.traces = short_traces;
        const auto rn = core::run_scenario(short_scn, naive);

        // Ideal utility: the simulated Perf-Pwr optimizer per interval,
        // adaptation costs ignored (Section V-E's "Ideal (total utility)").
        core::perf_pwr_optimizer ideal_opt(scn.model, core::utility_model{});
        double ideal_total = 0.0;
        const seconds interval = scn.options.monitoring_interval;
        for (seconds t2 = scn.traces[0].start_time();
             t2 + interval <= scn.traces[0].end_time() + 1e-9; t2 += interval) {
            std::vector<req_per_sec> rates;
            for (const auto& tr : scn.traces) {
                rates.push_back(tr.mean_rate(t2, t2 + interval));
            }
            const auto ideal = ideal_opt.optimize(rates);
            if (ideal.feasible) ideal_total += ideal.utility_rate * interval;
        }

        t.add_row({std::to_string(row.apps) + "-app",
                   std::to_string(scn.model.vm_count()) + " / " +
                       std::to_string(row.hosts),
                   table_printer::fmt(r.search_duration.mean(), 2),
                   table_printer::fmt(level1_mean(registry, row.groups.size()), 2),
                   table_printer::fmt(
                       histo_mean(registry, "mistral_pod_global_search_seconds"), 2),
                   table_printer::fmt(rn.search_duration.mean(), 2),
                   table_printer::fmt(r.cumulative_utility, 1),
                   table_printer::fmt(ideal_total, 1)});
    }
    t.print(std::cout);
    std::cout
        << "\nShape check vs. paper: the naive search's duration grows much\n"
           "faster with scale than the self-aware search's (paper: 4.3 s ->\n"
           "35.2 s avg vs. 3.8 s -> 7.5 s), and the achieved-vs-ideal utility\n"
           "gap stays roughly constant across scenarios. Ideal utilities\n"
           "ignore every adaptation cost, so they upper-bound any controller.\n";
    return 0;
}
