// Ablation: workload-band width.
//
// Section II-C: wider bands mean longer stability intervals and less
// frequent — but more potent — adaptation. This sweep varies the single
// controller's band width and reports invocation counts, actions, and
// utility, exposing the stability/responsiveness tradeoff the hierarchy is
// built on.
#include <iostream>

#include "bench_util.h"

using namespace mistral;

int main() {
    bench::print_header("Ablation — workload band width",
                        "band sweep; invocation frequency vs. utility");

    auto scn = core::make_rubis_scenario({.host_count = 4, .app_count = 2});
    const auto& costs = bench::measured_costs();

    table_printer t({"band (req/s)", "invocations", "actions", "mean power (W)",
                     "viol %", "cumulative utility"});
    for (const double band : {0.0, 4.0, 8.0, 16.0, 32.0}) {
        core::controller_options opts;
        opts.band_width = band;
        core::mistral_strategy s(scn.model, costs, opts);
        const auto r = core::run_scenario(scn, s);
        const double viol =
            50.0 * (r.violation_fraction[0] + r.violation_fraction[1]);
        t.add_row({table_printer::fmt(band, 0), std::to_string(r.invocations),
                   std::to_string(r.total_actions),
                   table_printer::fmt(r.mean_power, 1),
                   table_printer::fmt(viol, 1),
                   table_printer::fmt(r.cumulative_utility, 1)});
    }
    t.print(std::cout);
    std::cout << "\nReading: narrow bands react faster (fewer violations) but\n"
                 "spend more on adaptation and search; wide bands sleep through\n"
                 "workload moves. The paper's two-level design takes both ends.\n";
    return 0;
}
