// Fig. 5: model accuracy — response times, utilizations, power.
//
// The paper validates the LQN performance models and the power model against
// testbed measurements over the first flash crowd (16:52–17:14), restarting
// per time point to remove adaptation noise; estimation error is ~5 %.
// Here the "experiment" is the perturbed-ground-truth testbed and the
// "model" is the controller's nominal prediction for the same configuration
// and workload.
#include <iostream>

#include "bench_util.h"
#include "cluster/translate.h"
#include "common/stats.h"
#include "common/time_series.h"
#include "sim/testbed.h"
#include "workload/generators.h"

using namespace mistral;

int main() {
    bench::print_header("Fig. 5 — model accuracy",
                        "RT / utilization / power: experiment vs. model, "
                        "16:52-17:14 flash-crowd window");

    auto scn = core::make_rubis_scenario({.host_count = 4, .app_count = 2});
    const auto& model = scn.model;

    // The paper's protocol: "While the Performance Manager generates a
    // series of configurations using models for given request rates, we
    // record estimated response times and CPU utilizations ... we restart
    // Mistral to measure values at each time point separately for each
    // configuration and request rate to remove any noise caused by
    // adaptations." Per point: pick the model-generated configuration for
    // that rate, run a fresh testbed on it (warm-up + measurement window),
    // and compare against the model's prediction.
    const core::perf_pwr_optimizer optimizer(model, core::utility_model{});

    series_bundle rt, util, power;
    std::vector<double> exp_rt, mod_rt, exp_util, mod_util, exp_pwr, mod_pwr;
    const seconds window_start = 16.0 * 3600.0 + 52.0 * 60.0;
    const seconds window_end = 17.0 * 3600.0 + 14.0 * 60.0;
    for (seconds t = window_start; t <= window_end; t += 120.0) {
        std::vector<req_per_sec> rates = {scn.traces[0].rate_at(t),
                                          scn.traces[1].rate_at(t)};
        const auto ideal = optimizer.optimize(rates);
        if (!ideal.feasible) continue;
        const cluster::configuration& config = ideal.ideal;

        sim::testbed tb(model, config, scn.options.testbed);
        tb.advance(60.0, rates);  // warm-up, as in the campaign protocol
        const auto obs = tb.advance(120.0, rates);
        const auto pred = cluster::predict(model, config, rates);

        const double minutes = t / 60.0;
        rt.series("Exp.").add(minutes, obs.response_time[0] * 1000.0);
        rt.series("Model").add(minutes,
                               pred.perf.apps[0].mean_response_time * 1000.0);
        exp_rt.push_back(obs.response_time[0]);
        mod_rt.push_back(pred.perf.apps[0].mean_response_time);

        // Utilization: total physical CPUs consumed by RUBiS-1 (the paper's
        // 0.6–1.8 "utilization" axis is CPU use across tiers).
        double model_usage = 0.0;
        for (const auto& tier : pred.perf.apps[0].tiers) model_usage += tier.cpu_usage;
        util.series("Exp.").add(minutes, obs.app_cpu_usage[0]);
        util.series("Model").add(minutes, model_usage);
        exp_util.push_back(obs.app_cpu_usage[0]);
        mod_util.push_back(model_usage);

        power.series("Exp.").add(minutes, obs.power);
        power.series("Model").add(minutes, pred.power);
        exp_pwr.push_back(obs.power);
        mod_pwr.push_back(pred.power);
    }

    std::cout << "\n(a) Response times (ms), RUBiS-1 (time in minutes of day)\n";
    rt.print(std::cout, 10, 1);
    std::cout << "\n(b) Utilization (physical CPUs consumed by RUBiS-1)\n";
    util.print(std::cout, 10, 3);
    std::cout << "\n(c) Power consumption (W)\n";
    power.print(std::cout, 10, 1);

    std::cout << "\nEstimation error (paper: ~5% for RT/utilization):\n";
    table_printer t({"signal", "MAPE %"});
    t.add_row({"response time", table_printer::fmt(mape_percent(exp_rt, mod_rt), 1)});
    t.add_row({"utilization", table_printer::fmt(mape_percent(exp_util, mod_util), 1)});
    t.add_row({"power", table_printer::fmt(mape_percent(exp_pwr, mod_pwr), 1)});
    t.print(std::cout);
    return 0;
}
