// Fig. 9: cumulative utility.
//
// The same four-strategy run as Fig. 8, scored by measured utility (Eq. 1 +
// Eq. 2 from metered response times and watts, minus the controllers' own
// decision power). The paper's totals — Mistral 152.3, Pwr-Cost 93.9,
// Perf-Cost 26.3, Perf-Pwr −47.1 — define the *ordering* this reproduction
// checks: Mistral > Pwr-Cost > Perf-Cost ≳ Perf-Pwr.
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/time_series.h"

using namespace mistral;

int main() {
    bench::print_header("Fig. 9 — cumulative utility",
                        "cumulative utility ($) vs. time; four strategies");

    auto scn = core::make_rubis_scenario({.host_count = 4, .app_count = 2});
    const auto& costs = bench::measured_costs();

    std::vector<std::unique_ptr<core::strategy>> strategies;
    strategies.push_back(std::make_unique<core::perf_pwr_strategy>(scn.model));
    strategies.push_back(std::make_unique<core::perf_cost_strategy>(scn.model, costs));
    strategies.push_back(std::make_unique<core::pwr_cost_strategy>(scn.model, costs));
    strategies.push_back(std::make_unique<core::mistral_strategy>(scn.model, costs));

    series_bundle cumulative;
    std::vector<std::pair<std::string, double>> totals;
    for (auto& s : strategies) {
        const auto r = core::run_scenario(scn, *s);
        const auto* cum = r.series.find("cum_utility");
        for (std::size_t i = 0; i < cum->size(); i += 6) {
            const double hours = (scn.traces[0].start_time() +
                                  cum->samples()[i].time) / 3600.0;
            cumulative.series(r.strategy_name).add(hours, cum->samples()[i].value);
        }
        totals.push_back({r.strategy_name, r.cumulative_utility});
    }

    std::cout << "\nCumulative utility ($); time in hours of day\n";
    cumulative.print(std::cout, 10, 1);

    std::cout << "\nFinal cumulative utilities (paper: Mistral 152.3, Pwr-Cost "
                 "93.9,\nPerf-Cost 26.3, Perf-Pwr -47.1):\n";
    table_printer t({"strategy", "cumulative utility ($)"});
    for (const auto& [name, total] : totals) {
        t.add_row({name, table_printer::fmt(total, 1)});
    }
    t.print(std::cout);

    const double mistral = totals[3].second;
    bool best = true;
    for (std::size_t i = 0; i + 1 < totals.size(); ++i) {
        if (totals[i].second >= mistral) best = false;
    }
    std::cout << "\nShape check: Mistral "
              << (best ? "achieves the highest utility (matches the paper)."
                       : "did NOT rank first on this seed — investigate.")
              << "\n";
    return 0;
}
