// Fig. 9: cumulative utility.
//
// The same four-strategy run as Fig. 8, scored by measured utility (Eq. 1 +
// Eq. 2 from metered response times and watts, minus the controllers' own
// decision power). The paper's totals — Mistral 152.3, Pwr-Cost 93.9,
// Perf-Cost 26.3, Perf-Pwr −47.1 — define the *ordering* this reproduction
// checks: Mistral > Pwr-Cost > Perf-Cost ≳ Perf-Pwr.
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/time_series.h"

using namespace mistral;

int main() {
    bench::print_header("Fig. 9 — cumulative utility",
                        "cumulative utility ($) vs. time; four strategies");

    auto scn = core::make_rubis_scenario({.host_count = 4, .app_count = 2});
    const auto& costs = bench::measured_costs();

    std::vector<std::unique_ptr<core::strategy>> strategies;
    strategies.push_back(std::make_unique<core::perf_pwr_strategy>(scn.model));
    strategies.push_back(std::make_unique<core::perf_cost_strategy>(scn.model, costs));
    strategies.push_back(std::make_unique<core::pwr_cost_strategy>(scn.model, costs));
    strategies.push_back(std::make_unique<core::mistral_strategy>(scn.model, costs));

    series_bundle cumulative;
    std::vector<std::pair<std::string, double>> totals;
    for (auto& s : strategies) {
        const auto r = core::run_scenario(scn, *s);
        const auto* cum = r.series.find("cum_utility");
        for (std::size_t i = 0; i < cum->size(); i += 6) {
            const double hours = (scn.traces[0].start_time() +
                                  cum->samples()[i].time) / 3600.0;
            cumulative.series(r.strategy_name).add(hours, cum->samples()[i].value);
        }
        totals.push_back({r.strategy_name, r.cumulative_utility});
    }

    std::cout << "\nCumulative utility ($); time in hours of day\n";
    cumulative.print(std::cout, 10, 1);

    std::cout << "\nFinal cumulative utilities (paper: Mistral 152.3, Pwr-Cost "
                 "93.9,\nPerf-Cost 26.3, Perf-Pwr -47.1):\n";
    table_printer t({"strategy", "cumulative utility ($)"});
    for (const auto& [name, total] : totals) {
        t.add_row({name, table_printer::fmt(total, 1)});
    }
    t.print(std::cout);

    const double mistral = totals[3].second;
    bool best = true;
    for (std::size_t i = 0; i + 1 < totals.size(); ++i) {
        if (totals[i].second >= mistral) best = false;
    }
    std::cout << "\nShape check: Mistral "
              << (best ? "achieves the highest utility (matches the paper)."
                       : "did NOT rank first on this seed — investigate.")
              << "\n";

    // Beyond the paper: the same run under fault injection, surfacing the
    // wasted-adaptation accounting — how much cumulative utility survives
    // when a fifth of the actions abort and a host crashes mid-run.
    std::cout << "\nUnder fault injection (20% aborts, 20% stragglers, one "
                 "host crash):\n";
    core::scenario_options fopts;
    fopts.host_count = 4;
    fopts.app_count = 2;
    fopts.testbed.faults = sim::fault_options::uniform(0.2, 0.2);
    fopts.testbed.faults.host_crashes.push_back(
        {.at = 1800.0, .host = 3, .recover_after = 1200.0});
    fopts.sink = bench::journal_from_env();
    auto fscn = core::make_rubis_scenario(fopts);
    core::mistral_strategy faulty(fscn.model, costs);
    const auto fr = core::run_scenario(fscn, faulty);
    const seconds span = fscn.traces[0].end_time() - fscn.traces[0].start_time();
    const auto& ledger = faulty.controller().reconciliation();

    table_printer ft({"measure", "value"});
    ft.add_row({"cumulative utility ($)", table_printer::fmt(fr.cumulative_utility, 1)});
    ft.add_row({"utility kept vs fault-free (%)",
                table_printer::fmt(100.0 * fr.cumulative_utility / mistral, 1)});
    ft.add_row({"actions submitted", std::to_string(fr.total_actions)});
    ft.add_row({"actions aborted", std::to_string(fr.total_failed_actions)});
    ft.add_row({"wasted adaptation time (s)",
                table_printer::fmt(fr.total_wasted_seconds, 1)});
    ft.add_row({"wasted fraction of run (%)",
                table_printer::fmt(100.0 * fr.total_wasted_seconds / span, 2)});
    ft.add_row({"ledger: wasted time est. (s)",
                table_printer::fmt(ledger.wasted_adaptation_time, 1)});
    ft.add_row({"ledger: wasted transient cost ($)",
                table_printer::fmt(ledger.wasted_transient_cost, 3)});
    ft.add_row({"fault-triggered replans", std::to_string(ledger.fault_replans)});
    ft.add_row({"structural repairs", std::to_string(ledger.repairs)});
    ft.print(std::cout);
    return 0;
}
