// Shared setup for the figure/table reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (Section V) against the testbed simulator, printing the same
// rows/series the paper plots. Benches share the scenario construction and
// the measured cost table so that every figure comes from the same system.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "apps/rubis.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "cost/table.h"
#include "obs/journal.h"
#include "sim/cost_campaign.h"
#include "workload/generators.h"

namespace mistral::bench {

// Observability: set MISTRAL_JOURNAL=<path> and any bench that passes this
// into its scenario_options.sink streams the run's journal (decision /
// search / interval / fault events) to that JSONL file. Returns nullptr when
// the variable is unset, which is the zero-overhead null sink — bench output
// is byte-identical either way.
inline obs::sink* journal_from_env() {
    static const std::unique_ptr<obs::jsonl_file_sink> sink = [] {
        const char* path = std::getenv("MISTRAL_JOURNAL");
        return path ? std::make_unique<obs::jsonl_file_sink>(path) : nullptr;
    }();
    return sink.get();
}

// The offline-measured cost table used by all controller benches (Fig. 7's
// campaign at moderate resolution). Cached across calls within a binary.
inline const cost::cost_table& measured_costs() {
    static const cost::cost_table table = [] {
        sim::campaign_options opts;
        opts.trials = 3;
        return sim::run_cost_campaign(apps::rubis_browsing("campaign"), opts);
    }();
    return table;
}

// The flash-crowd World-Cup scenario the lookahead planner is evaluated on:
// app "wc" carries the paper's World-Cup shape scaled so the crowd peak
// saturates the small cluster, app "crowd" a flash crowd whose ramp spans
// ten monitoring intervals — long enough for the forecast trend to see it
// coming, sharp enough that reacting late is expensive. Shared between
// bench/lookahead_flash_crowd (the EXPERIMENTS.md table) and micro_search's
// lookahead smoke gate / sweep cells so the CI gate pins the published
// numbers.
inline core::scenario lookahead_crowd_scenario() {
    core::scenario_options opts;
    opts.host_count = 4;
    opts.app_count = 2;
    wl::generator_options gen;
    gen.duration = 2.0 * 3600.0;  // 60 monitoring intervals
    gen.seed = 5;
    gen.noise = 0.02;
    auto wc = wl::world_cup_trace(gen, 0).scaled_to_range(10.0, 80.0);
    opts.traces = {wc.renamed("wc"),
                   wl::flash_crowd_trace("crowd", 15.0, 95.0, 2400.0, 1200.0,
                                         1800.0, gen)};
    opts.sink = journal_from_env();
    return core::make_rubis_scenario(opts);
}

// Merges one top-level section ("key": <value_json>) into the JSON results
// file micro_search's sweep owns (BENCH_search.json). The file is treated as
// an object: a missing file is created, an existing one has the section
// spliced in before the final '}'. A file that already carries the key is
// left untouched (returns false) so re-running one bench never duplicates or
// clobbers another's cells — delete the file to regenerate everything.
inline bool append_bench_section(const std::string& path, const std::string& key,
                                 const std::string& value_json) {
    std::string text;
    {
        std::ifstream in(path);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            text = ss.str();
        }
    }
    if (text.find('"' + key + '"') != std::string::npos) return false;
    const auto brace = text.rfind('}');
    if (brace == std::string::npos) {
        text = "{\n  \"" + key + "\": " + value_json + "\n}\n";
    } else {
        std::string head = text.substr(0, brace);
        while (!head.empty() &&
               std::isspace(static_cast<unsigned char>(head.back()))) {
            head.pop_back();
        }
        const bool empty_object = !head.empty() && head.back() == '{';
        text = head + (empty_object ? "\n  \"" : ",\n  \"") + key + "\": " +
               value_json + "\n" + text.substr(brace);
    }
    std::ofstream out(path);
    out << text;
    return true;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
    std::cout << "==================================================================\n"
              << title << "\n(" << paper_ref << ")\n"
              << "==================================================================\n";
}

// Formats an absolute trace timestamp as hh:mm (the paper's x-axis labels).
inline std::string clock_label(double t) {
    const int h = static_cast<int>(t / 3600.0);
    const int m = static_cast<int>(t / 60.0) % 60;
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%02d:%02d", h, m);
    return buf;
}

}  // namespace mistral::bench
