// Fig. 3: the performance utility function.
//
// Reward for meeting the target response time and penalty for missing it, as
// functions of the request rate: the reward increases and the penalty
// decreases (in magnitude) as the workload grows, reflecting the
// increasingly best-effort nature of heavy load (Section V-A).
#include <iostream>

#include "bench_util.h"
#include "core/utility.h"

using namespace mistral;

int main() {
    bench::print_header("Fig. 3 — performance utility function",
                        "reward / penalty ($ per monitoring interval) vs. "
                        "request rate");

    const core::utility_model u;
    table_printer t({"req/s", "reward", "penalty"});
    for (int rate = 0; rate <= 100; rate += 10) {
        t.add_row({std::to_string(rate), table_printer::fmt(u.reward(rate), 2),
                   table_printer::fmt(u.penalty(rate), 2)});
    }
    t.print(std::cout);

    std::cout << "\nSizing check (Section V-A: rewards yield ~20% net profit over\n"
                 "the default configuration's power cost):\n";
    const double reward_at_50 = 2.0 * u.reward(50.0);  // two applications
    const double default_power_cost =
        190.0 * u.params().power_cost_per_watt_interval;  // ~2.5 hosts
    std::cout << "  2 apps at 50 req/s reward/interval: $"
              << table_printer::fmt(reward_at_50, 2) << "\n"
              << "  default-config power cost/interval: $"
              << table_printer::fmt(default_power_cost, 2) << "\n"
              << "  net profit margin: "
              << table_printer::fmt(
                     100.0 * (reward_at_50 - default_power_cost) / default_power_cost,
                     0)
              << "%\n";
    return 0;
}
