// Microbenchmark: the LQN solver.
//
// The solver runs inside every UtilityEst call of the A* search, so its
// latency bounds how many configurations a controller can evaluate per
// second of decision time.
#include <benchmark/benchmark.h>

#include "apps/rubis.h"
#include "cluster/translate.h"
#include "core/experiment.h"
#include "lqn/solver.h"

namespace {

using namespace mistral;

void bm_lqn_solve(benchmark::State& state) {
    const auto apps = static_cast<std::size_t>(state.range(0));
    auto scn = core::make_rubis_scenario(
        {.host_count = 2 * apps, .app_count = apps});
    std::vector<req_per_sec> rates(apps, 50.0);
    const auto deps = cluster::to_lqn(scn.model, scn.initial, rates);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lqn::solve(deps, scn.model.host_count()));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_lqn_solve)->Arg(1)->Arg(2)->Arg(4);

void bm_full_prediction(benchmark::State& state) {
    auto scn = core::make_rubis_scenario({.host_count = 4, .app_count = 2});
    const std::vector<req_per_sec> rates = {50.0, 50.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(cluster::predict(scn.model, scn.initial, rates));
    }
}
BENCHMARK(bm_full_prediction);

}  // namespace
