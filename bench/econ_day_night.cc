// Day/night tariff cell: time-of-use economics for the controller.
//
// The same flash-crowd afternoon (15:00–21:30, so the run crosses the 20:00
// day→night price step) is run twice under identical *measured* economics —
// the harness prices every interval's power at the tariff in force:
//
//   * price-blind — the plain controller planning at the paper's constant
//     $0.01/W·interval, never told the tariff moved;
//   * econ-aware  — the same controller with the day/night tariff bound:
//     every search prices power at the block in force, and the 20:00 price
//     step itself forces a replan (trigger "tariff").
//
// The econ-aware controller consolidates harder while daytime power is
// expensive and relaxes when the night block arrives, which is worth real
// dollars under the measured tariff. A third flat-tariff cell pins the
// differential contract: an all-default econ binding is byte-identical to
// the plain controller.
//
// `--smoke` is the CI gate: flat-cell bit-identity plus econ-aware ≥
// price-blind measured dollars. The full run also appends its cells to
// BENCH_search.json (key "econ_day_night_cells").
#include <cstdint>
#include <cstring>

#include "bench_util.h"
#include "core/strategies.h"

using namespace mistral;

namespace {

constexpr double kDayPrice = 0.05;     // $/W·interval, 08:00–20:00
constexpr double kNightPrice = 0.004;  // $/W·interval, 20:00–08:00

core::econ_profile day_night_profile() {
    core::econ_profile p;
    p.enabled = true;
    p.tariff = wl::day_night_tariff(kDayPrice, kNightPrice);
    p.carbon_price_per_kg = 0.0;  // carbon is *reported*, not priced, here
    return p;
}

// The paper's afternoon window with workloads that actually move, measured
// under the day/night tariff regardless of what the controller believes.
core::scenario day_night_scenario() {
    core::scenario_options opts;
    opts.host_count = 4;
    opts.app_count = 2;
    wl::generator_options gen;  // 15:00–21:30 defaults
    gen.seed = 7;
    gen.noise = 0.02;
    auto wc = wl::world_cup_trace(gen, 0).scaled_to_range(10.0, 70.0);
    opts.traces = {wc.renamed("wc"),
                   wl::flash_crowd_trace("crowd", 15.0, 80.0, 2.0 * 3600.0,
                                         1200.0, 1800.0, gen)};
    opts.econ = day_night_profile();
    opts.sink = bench::journal_from_env();
    return core::make_rubis_scenario(opts);
}

struct cell {
    std::string name;
    core::run_result result;
};

cell run_cell(const core::scenario& scn, const std::string& name,
              bool econ_aware) {
    core::controller_options opts;
    if (econ_aware) opts.econ = day_night_profile();
    core::mistral_strategy strat(scn.model, bench::measured_costs(), opts);
    return {name, core::run_scenario(scn, strat)};
}

std::uint64_t bits_of(double v) {
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

// Flat-tariff differential: an all-default econ binding must reproduce the
// plain controller's run byte for byte. Returns the number of mismatches.
int check_flat_identity() {
    core::scenario scn = day_night_scenario();
    scn.options.econ = {};  // measure both at the paper's constant price

    core::controller_options plain;
    core::mistral_strategy a(scn.model, bench::measured_costs(), plain);
    core::controller_options flat;
    flat.econ.enabled = true;  // all defaults: flat tariff, flat pricing
    core::mistral_strategy b(scn.model, bench::measured_costs(), flat);

    const auto ra = core::run_scenario(scn, a);
    const auto rb = core::run_scenario(scn, b);
    int failures = 0;
    if (bits_of(ra.cumulative_utility) != bits_of(rb.cumulative_utility)) {
        std::fprintf(stderr,
                     "smoke FAILED: flat-econ utility %.17g != plain %.17g\n",
                     rb.cumulative_utility, ra.cumulative_utility);
        ++failures;
    }
    if (ra.invocations != rb.invocations || ra.total_actions != rb.total_actions) {
        std::fprintf(stderr, "smoke FAILED: flat-econ decision stream diverged "
                             "(%zu/%zu invocations, %zu/%zu actions)\n",
                     rb.invocations, ra.invocations, rb.total_actions,
                     ra.total_actions);
        ++failures;
    }
    if (failures == 0) {
        std::printf("smoke: flat-econ == plain controller ($%.6f, %zu actions)\n",
                    ra.cumulative_utility, ra.total_actions);
    }
    return failures;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";

    const auto scn = day_night_scenario();
    const auto blind = run_cell(scn, "price-blind", false);
    const auto aware = run_cell(scn, "econ-aware", true);

    if (!smoke) {
        bench::print_header(
            "Day/night tariff: econ-aware vs price-blind control",
            "Economics subsystem, DESIGN.md §15; day $" +
                std::to_string(kDayPrice) + " / night $" +
                std::to_string(kNightPrice) + " per W·interval");
        table_printer t({"strategy", "utility ($)", "energy ($)", "carbon (g)",
                         "revenue ($)", "mean W", "invocations", "actions"});
        for (const auto* c : {&blind, &aware}) {
            t.add_row({c->name, table_printer::fmt(c->result.cumulative_utility, 2),
                       table_printer::fmt(c->result.energy_dollars, 2),
                       table_printer::fmt(c->result.carbon_grams, 0),
                       table_printer::fmt(c->result.revenue_dollars, 2),
                       table_printer::fmt(c->result.mean_power, 1),
                       std::to_string(c->result.invocations),
                       std::to_string(c->result.total_actions)});
        }
        t.print(std::cout);
        std::cout << "\nThe econ-aware controller prices each search at the "
                     "block in force;\nthe tariff step at 20:00 itself "
                     "triggers a replan.\n";

        std::string cells = "[\n";
        for (const auto* c : {&blind, &aware}) {
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "    {\"strategy\": \"%s\", \"utility_dollars\": %.6f, "
                          "\"energy_dollars\": %.6f, \"carbon_grams\": %.1f, "
                          "\"mean_watts\": %.2f}%s\n",
                          c->name.c_str(), c->result.cumulative_utility,
                          c->result.energy_dollars, c->result.carbon_grams,
                          c->result.mean_power, c == &aware ? "" : ",");
            cells += buf;
        }
        cells += "  ]";
        if (bench::append_bench_section("BENCH_search.json",
                                        "econ_day_night_cells", cells)) {
            std::cout << "appended econ_day_night_cells to BENCH_search.json\n";
        }
        return 0;
    }

    // --- CI gate ---------------------------------------------------------
    int failures = check_flat_identity();
    std::printf("smoke: price-blind $%.2f | econ-aware $%.2f (day/night tariff)\n",
                blind.result.cumulative_utility, aware.result.cumulative_utility);
    if (!(aware.result.cumulative_utility >= blind.result.cumulative_utility)) {
        std::fprintf(stderr, "smoke FAILED: econ-aware ($%.4f) worse than "
                             "price-blind ($%.4f) under the day/night tariff\n",
                     aware.result.cumulative_utility,
                     blind.result.cumulative_utility);
        ++failures;
    }
    if (failures == 0) std::printf("smoke OK\n");
    return failures == 0 ? 0 : 1;
}
