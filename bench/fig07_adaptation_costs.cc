// Fig. 7: adaptation costs.
//
// The offline measurement campaign of Section III-C, reproduced end to end:
// random placements of a target + background application on the testbed,
// steady-state measurement, one adaptation action, measurement during the
// adaptation, deltas averaged per workload and encoded in the cost table.
// Printed exactly as the figure's three panels: delta power (% of the
// affected hosts' draw), delta response time (ms) and adaptation delay (ms)
// vs. concurrent sessions, plus the host power-cycle constants.
#include <iostream>

#include "bench_util.h"
#include "common/time_series.h"
#include "workload/session_map.h"

using namespace mistral;

int main() {
    bench::print_header("Fig. 7 — adaptation costs",
                        "deltas vs. concurrent sessions, measured offline");

    const auto& table = bench::measured_costs();
    const wl::session_map sessions;

    struct row_spec {
        const char* label;
        cluster::action_kind kind;
        std::size_t tier;
    };
    const std::vector<row_spec> series = {
        {"Migration (MySQL)", cluster::action_kind::migrate, 2},
        {"Migration (Tomcat)", cluster::action_kind::migrate, 1},
        {"Migration (Apache)", cluster::action_kind::migrate, 0},
        {"Add replica (MySQL)", cluster::action_kind::add_replica, 2},
        {"Remove replica (MySQL)", cluster::action_kind::remove_replica, 2},
    };

    auto print_panel = [&](const char* title, auto value, int precision) {
        std::cout << "\n" << title << "\n";
        std::vector<std::string> headers = {"sessions"};
        for (const auto& s : series) headers.push_back(s.label);
        table_printer t(headers);
        for (int n = 100; n <= 800; n += 100) {
            const req_per_sec w = sessions.rate_for_sessions(n);
            std::vector<std::string> row = {std::to_string(n)};
            for (const auto& s : series) {
                row.push_back(table_printer::fmt(
                    value(table.lookup(s.kind, s.tier, w)), precision));
            }
            t.add_row(std::move(row));
        }
        t.print(std::cout);
    };

    // Delta power as % of the nominal affected-host draw (~150 W), matching
    // the figure's 8–17 % axis.
    print_panel("(a) Delta power consumption (% of affected hosts)",
                [](const cost::cost_entry& e) { return 100.0 * e.delta_power / 150.0; },
                1);
    print_panel("(b) Delta response times (ms)",
                [](const cost::cost_entry& e) { return e.delta_rt_target * 1000.0; },
                0);
    print_panel("(c) Adaptation delay (ms)",
                [](const cost::cost_entry& e) { return e.duration * 1000.0; }, 0);

    std::cout << "\nHost power cycling (Section V-B: boot ~90 s / ~80 W, "
                 "shutdown ~30 s / ~20 W draw):\n";
    table_printer t({"action", "duration (s)", "delta power (W)"});
    const auto boot = table.lookup(cluster::action_kind::power_on, 0, 50.0);
    const auto down = table.lookup(cluster::action_kind::power_off, 0, 50.0);
    t.add_row({"power_on", table_printer::fmt(boot.duration, 0),
               table_printer::fmt(boot.delta_power, 0)});
    t.add_row({"power_off", table_printer::fmt(down.duration, 0),
               table_printer::fmt(down.delta_power, 0)});
    t.print(std::cout);
    std::cout << "(power_off delta is negative: the host drops from idle draw "
                 "to ~20 W while shutting down)\n";
    return 0;
}
