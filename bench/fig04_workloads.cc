// Fig. 4: the four application workloads.
//
// RUBiS-1/2 driven by the World-Cup-shaped trace and RUBiS-3/4 by the
// HP-customer-shaped trace, all scaled to 0–100 req/s over 15:00–21:30
// (Section V-A).
#include <iostream>

#include "bench_util.h"
#include "common/time_series.h"
#include "workload/generators.h"

using namespace mistral;

int main() {
    bench::print_header("Fig. 4 — application workloads",
                        "request rate (req/s) vs. time of day, 15:00-21:30");

    const auto traces = wl::paper_workloads();
    series_bundle bundle;
    for (const auto& tr : traces) {
        auto& s = bundle.series(tr.name());
        for (seconds t = tr.start_time(); t <= tr.end_time(); t += 600.0) {
            s.add(t / 3600.0, tr.rate_at(t));  // hours for readability
        }
    }
    std::cout << "\n(time column in hours of day; one row per 10 minutes)\n";
    bundle.print(std::cout, 10, 1);

    std::cout << "\nTrace statistics:\n";
    table_printer t({"trace", "min", "mean", "peak", "mean |step|"});
    for (const auto& tr : traces) {
        double mean = 0.0, rough = 0.0;
        for (const auto& s : tr.samples()) mean += s.rate;
        mean /= static_cast<double>(tr.size());
        for (std::size_t i = 1; i < tr.size(); ++i) {
            rough += std::abs(tr.samples()[i].rate - tr.samples()[i - 1].rate);
        }
        rough /= static_cast<double>(tr.size() - 1);
        t.add_row({tr.name(), table_printer::fmt(tr.min_rate(), 1),
                   table_printer::fmt(mean, 1), table_printer::fmt(tr.peak_rate(), 1),
                   table_printer::fmt(rough, 2)});
    }
    t.print(std::cout);
    std::cout << "\nShape check: the World-Cup traces (RUBiS-1/2) carry evening\n"
                 "flash crowds (large |step|); the HP traces (RUBiS-3/4) are a\n"
                 "smooth diurnal hump.\n";
    return 0;
}
