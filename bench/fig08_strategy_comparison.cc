// Fig. 8: comparison of control strategies.
//
// The headline experiment: RUBiS-1 and RUBiS-2 over the full 15:00–21:30
// day, controlled by Perf-Pwr, Perf-Cost, Pwr-Cost, and Mistral. Panels:
// per-application response times and total cluster power. The paper's
// qualitative findings to reproduce: Mistral runs slightly hotter than the
// over-provisioned baselines and briefly violates at the peaks, the cost-
// blind strategies spike during their adaptation storms, and Mistral draws
// the least power by consolidating onto fewer hosts.
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/time_series.h"

using namespace mistral;

int main() {
    bench::print_header("Fig. 8 — comparison of control strategies",
                        "response times (ms) and power (W), 15:00-21:30");

    auto scn = core::make_rubis_scenario({.host_count = 4, .app_count = 2});
    const auto& costs = bench::measured_costs();

    std::vector<std::unique_ptr<core::strategy>> strategies;
    strategies.push_back(std::make_unique<core::perf_pwr_strategy>(scn.model));
    strategies.push_back(std::make_unique<core::perf_cost_strategy>(scn.model, costs));
    strategies.push_back(std::make_unique<core::pwr_cost_strategy>(scn.model, costs));
    strategies.push_back(std::make_unique<core::mistral_strategy>(scn.model, costs));

    series_bundle rt1, rt2, power;
    std::vector<core::run_result> results;
    for (auto& s : strategies) {
        auto r = core::run_scenario(scn, *s);
        // Re-sample to 12-minute rows to keep the printed series readable.
        const auto* src1 = r.series.find("rt_RUBiS-1");
        const auto* src2 = r.series.find("rt_RUBiS-2");
        const auto* srcp = r.series.find("power");
        for (std::size_t i = 0; i < src1->size(); i += 6) {
            const double hours = (scn.traces[0].start_time() +
                                  src1->samples()[i].time) / 3600.0;
            rt1.series(r.strategy_name).add(hours, src1->samples()[i].value);
            rt2.series(r.strategy_name).add(hours, src2->samples()[i].value);
            power.series(r.strategy_name).add(hours, srcp->samples()[i].value);
        }
        results.push_back(std::move(r));
    }

    std::cout << "\n(a) RUBiS-1 response time (ms); time in hours of day\n";
    rt1.print(std::cout, 10, 0);
    std::cout << "\n(b) RUBiS-2 response time (ms)\n";
    rt2.print(std::cout, 10, 0);
    std::cout << "\n(c) Power consumption (W)\n";
    power.print(std::cout, 10, 0);

    std::cout << "\nRun summary:\n";
    table_printer t({"strategy", "mean power (W)", "viol R1 %", "viol R2 %",
                     "actions", "invocations"});
    for (const auto& r : results) {
        t.add_row({r.strategy_name, table_printer::fmt(r.mean_power, 1),
                   table_printer::fmt(100.0 * r.violation_fraction[0], 1),
                   table_printer::fmt(100.0 * r.violation_fraction[1], 1),
                   std::to_string(r.total_actions), std::to_string(r.invocations)});
    }
    t.print(std::cout);
    std::cout << "\nShape check vs. paper: Mistral has the lowest mean power\n"
                 "(fewer hosts), Perf-Cost the highest (fixed 2-host pools per\n"
                 "app, no consolidation); Perf-Pwr adapts most and fluctuates;\n"
                 "Mistral's violations cluster at the workload peaks.\n";
    return 0;
}
