// Microbenchmark: the Perf-Pwr optimizer.
//
// The ideal-configuration computation runs once per controller invocation
// (it is both the Perf-Pwr baseline and the A* heuristic), bin-packing plus
// gradient search over host counts.
#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "core/perf_pwr.h"

namespace {

using namespace mistral;

void bm_perf_pwr_optimize(benchmark::State& state) {
    const auto apps = static_cast<std::size_t>(state.range(0));
    auto scn = core::make_rubis_scenario(
        {.host_count = 2 * apps, .app_count = apps});
    const core::perf_pwr_optimizer opt(scn.model, core::utility_model{});
    std::vector<req_per_sec> rates(apps, 55.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(opt.optimize(rates));
    }
}
BENCHMARK(bm_perf_pwr_optimize)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void bm_perf_pwr_with_reference(benchmark::State& state) {
    auto scn = core::make_rubis_scenario({.host_count = 4, .app_count = 2});
    const core::perf_pwr_optimizer opt(scn.model, core::utility_model{});
    const std::vector<req_per_sec> rates = {55.0, 55.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(opt.optimize(rates, &scn.initial));
    }
}
BENCHMARK(bm_perf_pwr_with_reference)->Unit(benchmark::kMillisecond);

}  // namespace
