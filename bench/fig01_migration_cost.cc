// Fig. 1: costs of a single VM live-migration.
//
// The paper's motivating measurement: the increase in power consumption and
// end-to-end response time of a 3-tier application while one of its VMs
// live-migrates (initiated at the 25 s mark), for 100/400/800 concurrent
// sessions, sampled every 5 seconds over ~9 minutes.
#include <iomanip>
#include <iostream>

#include "bench_util.h"
#include "cluster/translate.h"
#include "common/time_series.h"
#include "sim/testbed.h"
#include "workload/session_map.h"

using namespace mistral;

int main() {
    bench::print_header("Fig. 1 — costs of a single VM live-migration",
                        "delta watt %% and delta response time %% vs. time; "
                        "migration starts at t=25s");

    std::vector<apps::application_spec> specs = {apps::rubis_browsing("RUBiS")};
    const cluster::cluster_model model(cluster::uniform_hosts(4), std::move(specs));

    const wl::session_map sessions;
    series_bundle watts_pct, rt_pct;

    for (const int n_sessions : {100, 400, 800}) {
        const req_per_sec rate = sessions.rate_for_sessions(n_sessions);

        // One tier per host with generous 80 % caps (the testbed must absorb
        // 800 sessions without saturating, as the paper's deployment does);
        // the migration target host3 idles during the baseline so the deltas
        // isolate the migration itself.
        cluster::configuration config(model.vm_count(), model.host_count());
        for (int h = 0; h < 4; ++h) config.set_host_power(host_id{h}, true);
        config.deploy(model.tier_vms(app_id{0}, 0)[0], host_id{0}, 0.4);
        config.deploy(model.tier_vms(app_id{0}, 1)[0], host_id{1}, 0.8);
        config.deploy(model.tier_vms(app_id{0}, 2)[0], host_id{2}, 0.8);

        sim::testbed tb(model, config,
                        {.seed = 42 + static_cast<std::uint64_t>(n_sessions)});
        const std::vector<req_per_sec> rates = {rate};

        // Baseline: mean of the first 5 samples (t = 0..25 s).
        double base_rt = 0.0, base_watt = 0.0;
        for (int i = 0; i < 5; ++i) {
            const auto obs = tb.advance(5.0, rates);
            base_rt += obs.response_time[0] / 5.0;
            base_watt += obs.power / 5.0;
        }
        // Migrate the Tomcat VM to the idle host (the paper migrates one of
        // the application's Xen VMs at the 25 s mark).
        tb.submit({cluster::migrate{model.tier_vms(app_id{0}, 1)[0], host_id{3}}});

        auto& w = watts_pct.series(std::to_string(n_sessions));
        auto& r = rt_pct.series(std::to_string(n_sessions));
        for (int i = 5; i <= 110; ++i) {
            const auto obs = tb.advance(5.0, rates);
            w.add(i * 5.0, 100.0 * (obs.power - base_watt) / base_watt);
            r.add(i * 5.0, 100.0 * (obs.response_time[0] - base_rt) / base_rt);
        }
    }

    std::cout << "\n(a) Power consumption — delta watt (%) by session count\n";
    watts_pct.print(std::cout, 10, 1);
    std::cout << "\n(b) Response time — delta response time (%) by session count\n";
    rt_pct.print(std::cout, 10, 1);

    // Summary rows: peak impact and recovery, per workload.
    std::cout << "\nSummary (shape check vs. paper: impact grows with workload,\n"
                 "persists for tens of seconds, then returns to baseline):\n";
    table_printer t({"sessions", "peak dW%", "peak dRT%", "settled dRT% (t>400s)"});
    for (const int n : {100, 400, 800}) {
        const auto* w = watts_pct.find(std::to_string(n));
        const auto* r = rt_pct.find(std::to_string(n));
        double peak_w = 0.0, peak_r = 0.0, settled = 0.0;
        int settled_n = 0;
        for (const auto& s : w->samples()) peak_w = std::max(peak_w, s.value);
        for (const auto& s : r->samples()) {
            peak_r = std::max(peak_r, s.value);
            if (s.time > 400.0) {
                settled += s.value;
                ++settled_n;
            }
        }
        t.add_row({std::to_string(n), table_printer::fmt(peak_w, 1),
                   table_printer::fmt(peak_r, 1),
                   table_printer::fmt(settled / settled_n, 1)});
    }
    t.print(std::cout);
    return 0;
}
