// Microbenchmark: one adaptation-search invocation.
//
// Two modes:
//
//  * Default: a threads ∈ {1,2,4,8} × cluster-size sweep of full self-aware
//    decisions, written to BENCH_search.json. Per cell: measured wall-clock
//    decision latency, the meter-modeled latency, and the eval cache hit
//    rate. The meter prices decision *work* identically in every cell (the
//    model-clock contract), so all cells of one size perform bit-identical
//    decisions; the modeled latency then applies the meter's batched
//    concurrency accounting — a charge of n evaluations on w workers
//    occupies ⌈n/w⌉ wall slots — to that fixed work. The wall-clock column
//    only reflects parallel execution when the host actually has cores to
//    run the workers on (host_cpus is recorded alongside for that reason);
//    the modeled column is hardware-independent and is what later PRs
//    regress against.
//
//  * With any --benchmark* flag: the registered google-benchmark
//    microbenchmarks run instead (e.g. --benchmark_filter=search).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/search.h"
#include "cost/table.h"

namespace {

using namespace mistral;

void bm_self_aware_search(benchmark::State& state) {
    const auto apps = static_cast<std::size_t>(state.range(0));
    auto scn = core::make_rubis_scenario(
        {.host_count = 2 * apps, .app_count = apps});
    const core::adaptation_search search(scn.model, core::utility_model{},
                                         cost::cost_table::paper_defaults(), {});
    std::vector<req_per_sec> rates(apps, 60.0);
    for (auto _ : state) {
        search.evaluator().reset_memo();  // cold cache: full decision cost
        core::model_clock_meter meter;
        benchmark::DoNotOptimize(
            search.find(scn.initial, rates, 600.0, 0.0, meter));
    }
}
BENCHMARK(bm_self_aware_search)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void bm_enumerate_actions(benchmark::State& state) {
    const auto apps = static_cast<std::size_t>(state.range(0));
    auto scn = core::make_rubis_scenario(
        {.host_count = 2 * apps, .app_count = apps});
    for (auto _ : state) {
        benchmark::DoNotOptimize(enumerate_actions(scn.model, scn.initial));
    }
}
BENCHMARK(bm_enumerate_actions)->Arg(2)->Arg(4);

// A model-clock meter that additionally records the batched concurrency
// accounting: `charges` is the work (evaluations priced), `slots` the
// serialized wall slots those charges occupy at the evaluator's parallelism
// (⌈n/w⌉ per batch). elapsed() prices charges, exactly like
// model_clock_meter, so the *decision logic* is identical in every cell and
// charges agree across the threads axis; slots/charges is then the meter's
// modeled concurrency of the evaluation-dominated portion.
class slot_meter final : public core::search_meter {
public:
    void begin() override { charges_ = slots_ = 0; }
    void charge(std::size_t evaluations, std::size_t workers) override {
        charges_ += evaluations;
        slots_ += (evaluations + workers - 1) / workers;
    }
    [[nodiscard]] seconds elapsed() const override {
        return 0.002 * static_cast<double>(charges_);
    }
    [[nodiscard]] watts search_power() const override { return 7.2; }

    [[nodiscard]] std::size_t charges() const { return charges_; }
    [[nodiscard]] std::size_t slots() const { return slots_; }

private:
    std::size_t charges_ = 0;
    std::size_t slots_ = 0;
};

struct sweep_cell {
    std::size_t hosts = 0;
    std::size_t apps = 0;
    std::size_t threads = 0;
    double mean_ms = 0.0;     // measured wall clock
    double modeled_ms = 0.0;  // serial wall time × slots / charges
    double hit_rate = 0.0;
    std::size_t charges = 0;
    std::size_t slots = 0;
};

sweep_cell run_cell(std::size_t apps, std::size_t threads, int reps) {
    auto scn = core::make_rubis_scenario(
        {.host_count = 2 * apps, .app_count = apps});
    core::search_options opts;
    opts.evaluation.with_threads(threads);
    const core::adaptation_search search(scn.model, core::utility_model{},
                                         cost::cost_table::paper_defaults(),
                                         opts);
    std::vector<req_per_sec> rates(apps, 60.0);

    sweep_cell cell{2 * apps, apps, threads, 0.0, 0.0, 0.0, 0, 0};
    double total_ms = 0.0;
    for (int r = -1; r < reps; ++r) {  // rep −1 warms everything but the memo
        search.evaluator().reset_memo();
        slot_meter meter;
        const auto t0 = std::chrono::steady_clock::now();
        const auto result = search.find(scn.initial, rates, 600.0, 0.0, meter);
        const auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(result);
        if (r < 0) continue;
        total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
        cell.hit_rate = search.evaluator().stats().hit_rate();
        cell.charges = meter.charges();
        cell.slots = meter.slots();
    }
    cell.mean_ms = total_ms / reps;
    return cell;
}

int run_sweep(const char* path) {
    constexpr int kReps = 3;
    std::vector<sweep_cell> cells;
    for (const std::size_t apps : {2, 4}) {
        double serial_ms = 0.0;
        for (const std::size_t threads : {1, 2, 4, 8}) {
            cells.push_back(run_cell(apps, threads, kReps));
            auto& c = cells.back();
            if (threads == 1) serial_ms = c.mean_ms;
            // All cells of one size charge identical work; the modeled
            // latency spreads the serial cell's measured time over this
            // cell's wall slots.
            c.modeled_ms = serial_ms * static_cast<double>(c.slots) /
                           static_cast<double>(c.charges);
            std::printf(
                "hosts=%zu apps=%zu threads=%zu  wall %8.2f ms  modeled "
                "%8.2f ms (x%.2f)  hit_rate=%.3f\n",
                c.hosts, c.apps, c.threads, c.mean_ms, c.modeled_ms,
                static_cast<double>(c.charges) / static_cast<double>(c.slots),
                c.hit_rate);
        }
    }

    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"self_aware_search_decision\",\n");
    std::fprintf(f, "  \"host_cpus\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"reps\": %d,\n  \"cells\": [\n", kReps);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto& c = cells[i];
        std::fprintf(f,
                     "    {\"hosts\": %zu, \"apps\": %zu, \"threads\": %zu, "
                     "\"mean_decision_ms\": %.3f, \"modeled_decision_ms\": %.3f, "
                     "\"modeled_speedup\": %.3f, \"eval_charges\": %zu, "
                     "\"eval_slots\": %zu, \"cache_hit_rate\": %.4f}%s\n",
                     c.hosts, c.apps, c.threads, c.mean_ms, c.modeled_ms,
                     static_cast<double>(c.charges) / static_cast<double>(c.slots),
                     c.charges, c.slots, c.hit_rate,
                     i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--benchmark", 0) == 0) {
            benchmark::Initialize(&argc, argv);
            benchmark::RunSpecifiedBenchmarks();
            return 0;
        }
    }
    return run_sweep(argc > 1 ? argv[1] : "BENCH_search.json");
}
