// Microbenchmark: one adaptation-search invocation.
//
// Three modes:
//
//  * Default: a delta-evaluation {on, off} × threads ∈ {1,2,4,8} ×
//    cluster-size sweep of full self-aware decisions, written to
//    BENCH_search.json. Per cell: measured wall-clock decision latency, the
//    meter-modeled latency, the eval cache hit rate, the per-app sub-solve
//    cache hit rate, and the LQN sub-solves actually paid per decision. The
//    meter prices decision *work* identically in every cell (the model-clock
//    contract), so all cells of one size perform bit-identical decisions —
//    including across the delta on/off axis, which is the benchmark's A/B
//    column: same decision, fewer sub-solves. The modeled latency applies
//    the meter's batched concurrency accounting — a charge of n evaluations
//    on w workers occupies ⌈n/w⌉ wall slots — to that fixed work. The
//    wall-clock column only reflects parallel execution when the host
//    actually has cores to run the workers on (host_cpus is recorded
//    alongside for that reason); the modeled column is hardware-independent
//    and is what later PRs regress against.
//
//  * --smoke: the CI gate. Runs the 8-host/4-app cell with delta evaluation
//    on and off, fails if the chosen plans or utilities differ bit-wise, if
//    the decision utility deviates from the committed golden value, or if
//    delta evaluation does not cut LQN sub-solves by at least 2×; then the
//    pod gates — a single-pod coordinator must match the flat controller
//    bit-for-bit (which transitively pins the single-pod utility to the
//    golden value above), and the 256-host/64-app sharded refinement must
//    stay under 1 s modeled. Perf numbers are printed but never gated (CI
//    hardware varies).
//
//  * With any --benchmark* flag: the registered google-benchmark
//    microbenchmarks run instead (e.g. --benchmark_filter=search).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/coordinator.h"
#include "core/experiment.h"
#include "core/search.h"
#include "cost/table.h"

namespace {

using namespace mistral;

void bm_self_aware_search(benchmark::State& state) {
    const auto apps = static_cast<std::size_t>(state.range(0));
    auto scn = core::make_rubis_scenario(
        {.host_count = 2 * apps, .app_count = apps});
    const core::adaptation_search search(scn.model, core::utility_model{},
                                         cost::cost_table::paper_defaults(), {});
    std::vector<req_per_sec> rates(apps, 60.0);
    for (auto _ : state) {
        search.evaluator().reset_memo();  // cold cache: full decision cost
        core::model_clock_meter meter;
        benchmark::DoNotOptimize(
            search.find(scn.initial, rates, 600.0, 0.0, meter));
    }
}
BENCHMARK(bm_self_aware_search)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void bm_enumerate_actions(benchmark::State& state) {
    const auto apps = static_cast<std::size_t>(state.range(0));
    auto scn = core::make_rubis_scenario(
        {.host_count = 2 * apps, .app_count = apps});
    for (auto _ : state) {
        benchmark::DoNotOptimize(enumerate_actions(scn.model, scn.initial));
    }
}
BENCHMARK(bm_enumerate_actions)->Arg(2)->Arg(4);

// A model-clock meter that additionally records the batched concurrency
// accounting: `charges` is the work (evaluations priced), `slots` the
// serialized wall slots those charges occupy at the evaluator's parallelism
// (⌈n/w⌉ per batch). elapsed() prices charges, exactly like
// model_clock_meter, so the *decision logic* is identical in every cell and
// charges agree across the threads axis; slots/charges is then the meter's
// modeled concurrency of the evaluation-dominated portion.
class slot_meter final : public core::search_meter {
public:
    void begin() override { charges_ = slots_ = 0; }
    void charge(std::size_t evaluations, std::size_t workers) override {
        charges_ += evaluations;
        slots_ += (evaluations + workers - 1) / workers;
    }
    [[nodiscard]] seconds elapsed() const override {
        return 0.002 * static_cast<double>(charges_);
    }
    [[nodiscard]] watts search_power() const override { return 7.2; }

    [[nodiscard]] std::size_t charges() const { return charges_; }
    [[nodiscard]] std::size_t slots() const { return slots_; }

private:
    std::size_t charges_ = 0;
    std::size_t slots_ = 0;
};

struct sweep_cell {
    std::size_t hosts = 0;
    std::size_t apps = 0;
    std::size_t threads = 0;
    bool delta = true;
    double mean_ms = 0.0;     // measured wall clock
    double modeled_ms = 0.0;  // serial wall time × slots / charges
    double hit_rate = 0.0;
    double app_hit_rate = 0.0;
    std::size_t lqn_solves = 0;  // per-app sub-solves paid per decision
    std::size_t charges = 0;
    std::size_t slots = 0;
};

sweep_cell run_cell(std::size_t apps, std::size_t threads, bool delta, int reps) {
    auto scn = core::make_rubis_scenario(
        {.host_count = 2 * apps, .app_count = apps});
    core::search_options opts;
    opts.evaluation.with_threads(threads).with_delta_eval(delta);
    const core::adaptation_search search(scn.model, core::utility_model{},
                                         cost::cost_table::paper_defaults(),
                                         opts);
    std::vector<req_per_sec> rates(apps, 60.0);

    sweep_cell cell;
    cell.hosts = 2 * apps;
    cell.apps = apps;
    cell.threads = threads;
    cell.delta = delta;
    double total_ms = 0.0;
    for (int r = -1; r < reps; ++r) {  // rep −1 warms everything but the memo
        search.evaluator().reset_memo();  // clears memo AND the app cache
        slot_meter meter;
        const auto t0 = std::chrono::steady_clock::now();
        const auto result = search.find(scn.initial, rates, 600.0, 0.0, meter);
        const auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(result);
        if (r < 0) continue;
        total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
        const auto& es = search.evaluator().stats();
        cell.hit_rate = es.hit_rate();
        cell.app_hit_rate = es.app_hit_rate();
        cell.lqn_solves = es.app_solves;
        cell.charges = meter.charges();
        cell.slots = meter.slots();
    }
    cell.mean_ms = total_ms / reps;
    return cell;
}

// One pods×hosts cell: a sharded coordinator over `hosts` hosts in pods of
// `hosts / pods`, measuring the cold (first, full reconfiguration) and warm
// (steady refinement after a 12 req/s drift) decisions. The modeled latency
// is the meter's max-over-pods — pods decide concurrently in the model — and
// is hardware-independent; wall clock is recorded alongside.
struct pod_cell {
    std::size_t hosts = 0;
    std::size_t apps = 0;
    std::size_t pods = 0;
    std::size_t pod_hosts = 0;
    double cold_modeled_s = 0.0;
    double warm_modeled_s = 0.0;
    double cold_wall_ms = 0.0;
    double warm_wall_ms = 0.0;
    std::size_t warm_expansions = 0;
};

pod_cell run_pod_cell(std::size_t hosts, std::size_t pods) {
    const std::size_t apps = hosts / 4;
    auto scn = core::make_rubis_scenario(
        {.host_count = hosts, .app_count = apps});
    core::coordinator_options copts;
    copts.parallel_pods = true;  // wall-clock only; the model is unaffected
    core::global_coordinator coord(scn.model,
                                   cost::cost_table::paper_defaults(),
                                   core::uniform_partition(scn.model, pods),
                                   {}, copts);

    pod_cell cell;
    cell.hosts = hosts;
    cell.apps = apps;
    cell.pods = pods;
    cell.pod_hosts = hosts / pods;

    auto cfg = scn.initial;
    const std::vector<req_per_sec> base_rates(apps, 60.0);
    auto t0 = std::chrono::steady_clock::now();
    const auto cold = coord.decide({0.0, base_rates, cfg, 1.0});
    auto t1 = std::chrono::steady_clock::now();
    cell.cold_modeled_s = cold.decision_delay;
    cell.cold_wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    for (const auto& a : cold.actions) cfg = cluster::apply(scn.model, cfg, a);

    // The recurring case a controller lives in: the cluster already adapted,
    // the workload drifts past the band, every pod refines.
    const std::vector<req_per_sec> drifted(apps, 72.0);
    t0 = std::chrono::steady_clock::now();
    const auto warm = coord.decide({120.0, drifted, cfg, 1.0});
    t1 = std::chrono::steady_clock::now();
    cell.warm_modeled_s = warm.decision_delay;
    cell.warm_wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    cell.warm_expansions = warm.stats.expansions;
    return cell;
}

// One planning-mode cell of the flash-crowd scenario (bench_util.h's
// lookahead_crowd_scenario): the reactive single-interval controller
// (horizon 0) or the lookahead planner at horizon K. Utility and the
// meter-modeled per-decision latency are deterministic, so the smoke gate
// can pin them hardware-independently.
struct lookahead_cell {
    int horizon = 0;  // 0 = reactive single-interval baseline
    std::size_t invocations = 0;
    std::size_t actions = 0;
    std::size_t preprovisions = 0;
    double utility = 0.0;
    double mean_decision_s = 0.0;
    double max_decision_s = 0.0;
    double wall_ms = 0.0;
};

lookahead_cell run_lookahead_cell(const core::scenario& scn, int horizon) {
    core::controller_options opts;
    if (horizon > 0) {
        opts.lookahead.enabled = true;
        opts.lookahead.horizon = horizon;
    }
    core::mistral_strategy s(scn.model, cost::cost_table::paper_defaults(),
                             opts);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = core::run_scenario(scn, s);
    const auto t1 = std::chrono::steady_clock::now();
    lookahead_cell cell;
    cell.horizon = horizon;
    cell.invocations = r.invocations;
    cell.actions = r.total_actions;
    cell.preprovisions = static_cast<std::size_t>(
        s.controller().lookahead().preprovision_commits);
    cell.utility = r.cumulative_utility;
    cell.mean_decision_s = r.search_duration.mean();
    cell.max_decision_s = r.search_duration.max();
    cell.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    return cell;
}

std::vector<pod_cell> run_pod_sweep() {
    std::vector<pod_cell> cells;
    // Fixed 4-host pods while the cluster octuples (the scaling claim: the
    // modeled decision cost tracks pod size, not cluster size), plus the
    // pod-size axis at 256 hosts (what growing a pod costs).
    const std::size_t grid[][2] = {
        {32, 8}, {64, 16}, {128, 32}, {256, 64}, {256, 32}, {256, 16}};
    for (const auto& [hosts, pods] : grid) {
        cells.push_back(run_pod_cell(hosts, pods));
        const auto& c = cells.back();
        std::printf(
            "pods: hosts=%3zu apps=%2zu pods=%2zu (%2zu hosts/pod)  "
            "cold %8.3f s modeled / %8.1f ms wall   warm %7.3f s modeled / "
            "%7.1f ms wall\n",
            c.hosts, c.apps, c.pods, c.pod_hosts, c.cold_modeled_s,
            c.cold_wall_ms, c.warm_modeled_s, c.warm_wall_ms);
    }
    return cells;
}

int run_sweep(const char* path) {
    constexpr int kReps = 3;
    std::vector<sweep_cell> cells;
    for (const std::size_t apps : {2, 4}) {
        for (const bool delta : {true, false}) {
            double serial_ms = 0.0;
            for (const std::size_t threads : {1, 2, 4, 8}) {
                cells.push_back(run_cell(apps, threads, delta, kReps));
                auto& c = cells.back();
                if (threads == 1) serial_ms = c.mean_ms;
                // All cells of one size charge identical work; the modeled
                // latency spreads the serial cell's measured time over this
                // cell's wall slots.
                c.modeled_ms = serial_ms * static_cast<double>(c.slots) /
                               static_cast<double>(c.charges);
                std::printf(
                    "hosts=%zu apps=%zu threads=%zu delta=%d  wall %8.2f ms  "
                    "modeled %8.2f ms (x%.2f)  hit_rate=%.3f  "
                    "app_hit_rate=%.3f  lqn_solves=%zu\n",
                    c.hosts, c.apps, c.threads, c.delta ? 1 : 0, c.mean_ms,
                    c.modeled_ms,
                    static_cast<double>(c.charges) / static_cast<double>(c.slots),
                    c.hit_rate, c.app_hit_rate, c.lqn_solves);
            }
        }
    }

    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"self_aware_search_decision\",\n");
    std::fprintf(f, "  \"host_cpus\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"reps\": %d,\n  \"cells\": [\n", kReps);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto& c = cells[i];
        std::fprintf(f,
                     "    {\"hosts\": %zu, \"apps\": %zu, \"threads\": %zu, "
                     "\"delta_eval\": %s, "
                     "\"mean_decision_ms\": %.3f, \"modeled_decision_ms\": %.3f, "
                     "\"modeled_speedup\": %.3f, \"eval_charges\": %zu, "
                     "\"eval_slots\": %zu, \"cache_hit_rate\": %.4f, "
                     "\"app_cache_hit_rate\": %.4f, \"lqn_solves\": %zu}%s\n",
                     c.hosts, c.apps, c.threads, c.delta ? "true" : "false",
                     c.mean_ms, c.modeled_ms,
                     static_cast<double>(c.charges) / static_cast<double>(c.slots),
                     c.charges, c.slots, c.hit_rate, c.app_hit_rate,
                     c.lqn_solves, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"pod_cells\": [\n");
    const auto pod_cells = run_pod_sweep();
    for (std::size_t i = 0; i < pod_cells.size(); ++i) {
        const auto& c = pod_cells[i];
        std::fprintf(f,
                     "    {\"hosts\": %zu, \"apps\": %zu, \"pods\": %zu, "
                     "\"pod_hosts\": %zu, \"cold_modeled_s\": %.3f, "
                     "\"warm_modeled_s\": %.3f, \"cold_wall_ms\": %.1f, "
                     "\"warm_wall_ms\": %.1f, \"warm_expansions\": %zu}%s\n",
                     c.hosts, c.apps, c.pods, c.pod_hosts, c.cold_modeled_s,
                     c.warm_modeled_s, c.cold_wall_ms, c.warm_wall_ms,
                     c.warm_expansions, i + 1 < pod_cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"lookahead_cells\": [\n");
    // Planning-mode axis on the flash-crowd scenario: reactive baseline
    // (horizon 0), the K=1 differential anchor (identical numbers by
    // construction), and the default K=3 planner. Utility and modeled
    // latency are deterministic; delta is relative to the horizon-0 row.
    const auto la_scn = bench::lookahead_crowd_scenario();
    std::vector<lookahead_cell> la_cells;
    for (const int k : {0, 1, 3}) {
        la_cells.push_back(run_lookahead_cell(la_scn, k));
        const auto& c = la_cells.back();
        std::printf(
            "lookahead: K=%d  utility %8.2f  preprovisions=%zu  "
            "decision %6.2f s mean / %6.2f s max modeled  %7.1f ms wall\n",
            c.horizon, c.utility, c.preprovisions, c.mean_decision_s,
            c.max_decision_s, c.wall_ms);
    }
    for (std::size_t i = 0; i < la_cells.size(); ++i) {
        const auto& c = la_cells[i];
        std::fprintf(f,
                     "    {\"horizon\": %d, \"invocations\": %zu, "
                     "\"actions\": %zu, \"preprovisions\": %zu, "
                     "\"utility\": %.3f, \"delta_vs_reactive\": %.3f, "
                     "\"mean_decision_s\": %.3f, \"max_decision_s\": %.3f, "
                     "\"wall_ms\": %.1f}%s\n",
                     c.horizon, c.invocations, c.actions, c.preprovisions,
                     c.utility, c.utility - la_cells[0].utility,
                     c.mean_decision_s, c.max_decision_s, c.wall_ms,
                     i + 1 < la_cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return 0;
}

// CI bench-smoke gate. Decision correctness is asserted bit-wise; timings
// are printed for the log but never gated.
int run_smoke() {
    // Golden expected utility of the 8-host / 4-app / 60 req/s self-aware
    // decision (deterministic; independent of threads and delta_eval). Update
    // only when a PR deliberately changes decision semantics.
    constexpr double kGoldenUtility = 20.293492001125777;
    constexpr double kTolerance = 1e-9;  // relative

    auto scn = core::make_rubis_scenario({.host_count = 8, .app_count = 4});
    const std::vector<req_per_sec> rates(4, 60.0);

    struct outcome {
        core::search_result result;
        std::size_t lqn_solves = 0;
        double wall_ms = 0.0;
    };
    auto run = [&](bool delta) {
        core::search_options opts;
        opts.evaluation.with_delta_eval(delta);
        const core::adaptation_search search(scn.model, core::utility_model{},
                                             cost::cost_table::paper_defaults(),
                                             opts);
        core::model_clock_meter meter;
        const auto t0 = std::chrono::steady_clock::now();
        outcome o;
        o.result = search.find(scn.initial, rates, 600.0, 0.0, meter);
        const auto t1 = std::chrono::steady_clock::now();
        o.lqn_solves = search.evaluator().stats().app_solves;
        o.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        return o;
    };

    const auto on = run(true);
    const auto off = run(false);
    std::printf("smoke: delta=on  %8.2f ms  lqn_solves=%zu  eu=%.17g\n",
                on.wall_ms, on.lqn_solves, on.result.expected_utility);
    std::printf("smoke: delta=off %8.2f ms  lqn_solves=%zu  eu=%.17g\n",
                off.wall_ms, off.lqn_solves, off.result.expected_utility);

    int failures = 0;
    auto fail = [&](const char* what) {
        std::fprintf(stderr, "smoke FAILED: %s\n", what);
        ++failures;
    };
    if (on.result.actions != off.result.actions) {
        fail("chosen plans differ between delta on and off");
    }
    if (on.result.expected_utility != off.result.expected_utility) {
        fail("expected utility is not bit-identical between delta on and off");
    }
    if (on.result.target != off.result.target) {
        fail("target configurations differ between delta on and off");
    }
    const double deviation =
        std::abs(on.result.expected_utility - kGoldenUtility) /
        std::abs(kGoldenUtility);
    if (!(deviation <= kTolerance)) {
        std::fprintf(stderr, "smoke FAILED: utility %.17g deviates from golden "
                             "%.17g (rel %.3g > %.1g)\n",
                     on.result.expected_utility, kGoldenUtility, deviation,
                     kTolerance);
        ++failures;
    }
    if (on.lqn_solves * 2 > off.lqn_solves) {
        fail("delta evaluation saved less than 2x in LQN sub-solves");
    }

    // Degraded-guard overhead gate: on clean telemetry the degraded-mode
    // subsystem (validator, divergence guard, fallback ladder) must leave
    // decisions bit-identical and cost < 2 % in modeled decision latency —
    // the hardware-independent metric the sweep regresses against. Wall
    // clock is printed for the log but, as everywhere here, never gated.
    {
        core::controller_options guard_off;
        guard_off.degraded.enabled = false;
        guard_off.arma.divergence.enabled = false;
        core::mistral_controller guarded(scn.model,
                                         cost::cost_table::paper_defaults(), {});
        core::mistral_controller bare(scn.model,
                                      cost::cost_table::paper_defaults(),
                                      guard_off);
        double on_modeled = 0.0, off_modeled = 0.0;
        double on_wall = 0.0, off_wall = 0.0;
        bool identical = true;
        for (int i = 0; i < 20; ++i) {
            const seconds t = i * 120.0;
            const std::vector<req_per_sec> step_rates(
                4, 40.0 + 20.0 * static_cast<double>(i % 3));
            auto t0 = std::chrono::steady_clock::now();
            const auto da = guarded.step({t, step_rates, scn.initial, 1.0});
            auto t1 = std::chrono::steady_clock::now();
            const auto db = bare.step({t, step_rates, scn.initial, 1.0});
            auto t2 = std::chrono::steady_clock::now();
            on_wall += std::chrono::duration<double, std::milli>(t1 - t0).count();
            off_wall += std::chrono::duration<double, std::milli>(t2 - t1).count();
            on_modeled += da.stats.duration;
            off_modeled += db.stats.duration;
            identical = identical && da.invoked == db.invoked &&
                        da.actions == db.actions &&
                        da.expected_utility == db.expected_utility;
        }
        std::printf("smoke: guard=on  wall %8.2f ms  modeled %10.4f s\n",
                    on_wall, on_modeled);
        std::printf("smoke: guard=off wall %8.2f ms  modeled %10.4f s\n",
                    off_wall, off_modeled);
        if (!identical) {
            fail("degraded guard changed healthy-path decisions");
        }
        if (off_modeled > 0.0 && on_modeled > 1.02 * off_modeled) {
            fail("degraded guard adds >2% modeled decision latency on the "
                 "healthy path");
        }
    }
    // Pod gate 1: a single-pod coordinator is the flat controller, bit for
    // bit — same invocations, same plans, same modeled stats. Together with
    // the golden-utility gate above this pins the single-pod path's utility.
    {
        core::global_coordinator single(scn.model,
                                        cost::cost_table::paper_defaults(),
                                        core::uniform_partition(scn.model, 1));
        core::mistral_strategy flat(scn.model,
                                    cost::cost_table::paper_defaults());
        auto cfg = scn.initial;
        bool identical = true;
        for (int i = 0; i < 3; ++i) {
            const seconds t = i * 120.0;
            const std::vector<req_per_sec> step_rates(4, 60.0 + 12.0 * i);
            const auto a = single.decide({t, step_rates, cfg, 1.0});
            const auto b = flat.decide({t, step_rates, cfg, 1.0});
            identical = identical && a.invoked == b.invoked &&
                        a.actions == b.actions &&
                        a.decision_delay == b.decision_delay &&
                        a.stats.expansions == b.stats.expansions &&
                        a.stats.generated == b.stats.generated;
            for (const auto& act : a.actions) {
                cfg = cluster::apply(scn.model, cfg, act);
            }
        }
        if (!identical) {
            fail("single-pod coordinator diverged from the flat controller");
        } else {
            std::printf("smoke: single-pod == flat controller (3 decisions)\n");
        }
    }

    // Pod gate 2: the headline scale point — 256 hosts / 64 apps in 4-host
    // pods must decide in under a second of modeled latency, both the cold
    // full reconfiguration and the post-drift refinement. The modeled number
    // is deterministic (model-clock meter), so this gate is
    // hardware-independent.
    {
        const auto c = run_pod_cell(256, 64);
        std::printf(
            "smoke: 256 hosts / 64 apps / 64 pods  cold %0.3f s / warm "
            "%0.3f s modeled, %0.1f ms / %0.1f ms wall\n",
            c.cold_modeled_s, c.warm_modeled_s, c.cold_wall_ms, c.warm_wall_ms);
        if (!(c.cold_modeled_s < 1.0 && c.warm_modeled_s < 1.0)) {
            fail("256-host sharded decision exceeds 1 s modeled latency");
        }
    }

    // Lookahead gate 1: the K=1 differential anchor. An *enabled* lookahead
    // planner at horizon 1 must step bit-identically to the flat controller
    // — same invocations, plans, utilities, and modeled latencies. Together
    // with the golden-utility gate above this pins the K=1 path's utility.
    {
        core::controller_options la1;
        la1.lookahead.enabled = true;
        la1.lookahead.horizon = 1;
        core::mistral_controller planning(scn.model,
                                          cost::cost_table::paper_defaults(),
                                          la1);
        core::mistral_controller flat(scn.model,
                                      cost::cost_table::paper_defaults(), {});
        bool identical = true;
        for (int i = 0; i < 20; ++i) {
            const seconds t = i * 120.0;
            const std::vector<req_per_sec> step_rates(
                4, 40.0 + 20.0 * static_cast<double>(i % 3));
            const auto da = planning.step({t, step_rates, scn.initial, 1.0});
            const auto db = flat.step({t, step_rates, scn.initial, 1.0});
            identical = identical && da.invoked == db.invoked &&
                        da.actions == db.actions &&
                        da.expected_utility == db.expected_utility &&
                        da.stats.duration == db.stats.duration;
        }
        if (!identical) {
            fail("lookahead K=1 diverged from the flat controller");
        } else {
            std::printf("smoke: lookahead K=1 == flat controller (20 steps)\n");
        }
    }

    // Lookahead gate 2: the flash-crowd payoff. On the World-Cup scenario the
    // K=3 planner must not lose utility to the reactive controller, and its
    // mean modeled decision latency must stay within 4x reactive — the
    // planner's self-cost (peak + tail searches) is real decision delay, and
    // the screens in lookahead.cc exist to keep it near zero off the crowd.
    // Both numbers are deterministic (model-clock meter), so this gate is
    // hardware-independent.
    {
        const auto la_scn = bench::lookahead_crowd_scenario();
        const auto reactive = run_lookahead_cell(la_scn, 0);
        const auto k3 = run_lookahead_cell(la_scn, 3);
        std::printf(
            "smoke: flash crowd  reactive %0.2f  K=3 %0.2f (delta %+0.2f, "
            "%zu preprovision)  decision %0.2f s vs %0.2f s mean modeled\n",
            reactive.utility, k3.utility, k3.utility - reactive.utility,
            k3.preprovisions, k3.mean_decision_s, reactive.mean_decision_s);
        if (!(k3.utility >= reactive.utility)) {
            fail("lookahead K=3 lost utility to the reactive controller on "
                 "the flash crowd");
        }
        if (!(k3.mean_decision_s <= 4.0 * reactive.mean_decision_s)) {
            fail("lookahead K=3 mean modeled decision latency exceeds 4x "
                 "the single-interval controller");
        }
    }
    if (failures == 0) std::printf("smoke OK\n");
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg == "--smoke") return run_smoke();
        if (arg.rfind("--benchmark", 0) == 0) {
            benchmark::Initialize(&argc, argv);
            benchmark::RunSpecifiedBenchmarks();
            return 0;
        }
    }
    return run_sweep(argc > 1 ? argv[1] : "BENCH_search.json");
}
