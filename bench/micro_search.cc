// Microbenchmark: one adaptation-search invocation.
//
// Wall-clock cost of a full self-aware A* decision at increasing scale; the
// model-clock meter keeps the *decision logic* deterministic while this
// measures real CPU time.
#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "core/search.h"
#include "cost/table.h"

namespace {

using namespace mistral;

void bm_self_aware_search(benchmark::State& state) {
    const auto apps = static_cast<std::size_t>(state.range(0));
    auto scn = core::make_rubis_scenario(
        {.host_count = 2 * apps, .app_count = apps});
    const core::adaptation_search search(scn.model, core::utility_model{},
                                         cost::cost_table::paper_defaults(), {});
    std::vector<req_per_sec> rates(apps, 60.0);
    for (auto _ : state) {
        core::model_clock_meter meter;
        benchmark::DoNotOptimize(
            search.find(scn.initial, rates, 600.0, 0.0, meter));
    }
}
BENCHMARK(bm_self_aware_search)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void bm_enumerate_actions(benchmark::State& state) {
    const auto apps = static_cast<std::size_t>(state.range(0));
    auto scn = core::make_rubis_scenario(
        {.host_count = 2 * apps, .app_count = apps});
    for (auto _ : state) {
        benchmark::DoNotOptimize(enumerate_actions(scn.model, scn.initial));
    }
}
BENCHMARK(bm_enumerate_actions)->Arg(2)->Arg(4);

}  // namespace
