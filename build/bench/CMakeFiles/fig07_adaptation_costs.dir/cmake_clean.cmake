file(REMOVE_RECURSE
  "CMakeFiles/fig07_adaptation_costs.dir/fig07_adaptation_costs.cc.o"
  "CMakeFiles/fig07_adaptation_costs.dir/fig07_adaptation_costs.cc.o.d"
  "fig07_adaptation_costs"
  "fig07_adaptation_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_adaptation_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
