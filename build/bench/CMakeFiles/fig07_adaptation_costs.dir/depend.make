# Empty dependencies file for fig07_adaptation_costs.
# This may be replaced when dependencies are built.
