file(REMOVE_RECURSE
  "CMakeFiles/fig05_model_accuracy.dir/fig05_model_accuracy.cc.o"
  "CMakeFiles/fig05_model_accuracy.dir/fig05_model_accuracy.cc.o.d"
  "fig05_model_accuracy"
  "fig05_model_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
