file(REMOVE_RECURSE
  "CMakeFiles/fig01_migration_cost.dir/fig01_migration_cost.cc.o"
  "CMakeFiles/fig01_migration_cost.dir/fig01_migration_cost.cc.o.d"
  "fig01_migration_cost"
  "fig01_migration_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_migration_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
