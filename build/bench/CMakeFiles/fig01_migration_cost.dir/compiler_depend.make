# Empty compiler generated dependencies file for fig01_migration_cost.
# This may be replaced when dependencies are built.
