# Empty compiler generated dependencies file for fig03_utility_function.
# This may be replaced when dependencies are built.
