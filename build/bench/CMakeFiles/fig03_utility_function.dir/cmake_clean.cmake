file(REMOVE_RECURSE
  "CMakeFiles/fig03_utility_function.dir/fig03_utility_function.cc.o"
  "CMakeFiles/fig03_utility_function.dir/fig03_utility_function.cc.o.d"
  "fig03_utility_function"
  "fig03_utility_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_utility_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
