# Empty compiler generated dependencies file for fig04_workloads.
# This may be replaced when dependencies are built.
