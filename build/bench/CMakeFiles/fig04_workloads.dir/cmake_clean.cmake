file(REMOVE_RECURSE
  "CMakeFiles/fig04_workloads.dir/fig04_workloads.cc.o"
  "CMakeFiles/fig04_workloads.dir/fig04_workloads.cc.o.d"
  "fig04_workloads"
  "fig04_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
