# Empty dependencies file for fig08_strategy_comparison.
# This may be replaced when dependencies are built.
