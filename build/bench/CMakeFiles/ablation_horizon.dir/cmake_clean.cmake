file(REMOVE_RECURSE
  "CMakeFiles/ablation_horizon.dir/ablation_horizon.cc.o"
  "CMakeFiles/ablation_horizon.dir/ablation_horizon.cc.o.d"
  "ablation_horizon"
  "ablation_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
