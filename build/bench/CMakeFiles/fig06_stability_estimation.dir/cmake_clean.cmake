file(REMOVE_RECURSE
  "CMakeFiles/fig06_stability_estimation.dir/fig06_stability_estimation.cc.o"
  "CMakeFiles/fig06_stability_estimation.dir/fig06_stability_estimation.cc.o.d"
  "fig06_stability_estimation"
  "fig06_stability_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_stability_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
