# Empty compiler generated dependencies file for fig06_stability_estimation.
# This may be replaced when dependencies are built.
