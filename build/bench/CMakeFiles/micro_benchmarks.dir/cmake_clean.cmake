file(REMOVE_RECURSE
  "CMakeFiles/micro_benchmarks.dir/micro_binpack.cc.o"
  "CMakeFiles/micro_benchmarks.dir/micro_binpack.cc.o.d"
  "CMakeFiles/micro_benchmarks.dir/micro_lqn.cc.o"
  "CMakeFiles/micro_benchmarks.dir/micro_lqn.cc.o.d"
  "CMakeFiles/micro_benchmarks.dir/micro_search.cc.o"
  "CMakeFiles/micro_benchmarks.dir/micro_search.cc.o.d"
  "micro_benchmarks"
  "micro_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
