file(REMOVE_RECURSE
  "CMakeFiles/fig09_cumulative_utility.dir/fig09_cumulative_utility.cc.o"
  "CMakeFiles/fig09_cumulative_utility.dir/fig09_cumulative_utility.cc.o.d"
  "fig09_cumulative_utility"
  "fig09_cumulative_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cumulative_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
