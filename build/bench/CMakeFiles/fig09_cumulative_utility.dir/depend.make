# Empty dependencies file for fig09_cumulative_utility.
# This may be replaced when dependencies are built.
