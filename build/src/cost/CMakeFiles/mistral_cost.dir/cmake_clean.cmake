file(REMOVE_RECURSE
  "CMakeFiles/mistral_cost.dir/table.cc.o"
  "CMakeFiles/mistral_cost.dir/table.cc.o.d"
  "CMakeFiles/mistral_cost.dir/table_io.cc.o"
  "CMakeFiles/mistral_cost.dir/table_io.cc.o.d"
  "libmistral_cost.a"
  "libmistral_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mistral_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
