file(REMOVE_RECURSE
  "libmistral_cost.a"
)
