# Empty compiler generated dependencies file for mistral_cost.
# This may be replaced when dependencies are built.
