
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/mistral_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/mistral_core.dir/controller.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/mistral_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/mistral_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/hierarchy.cc" "src/core/CMakeFiles/mistral_core.dir/hierarchy.cc.o" "gcc" "src/core/CMakeFiles/mistral_core.dir/hierarchy.cc.o.d"
  "/root/repo/src/core/perf_pwr.cc" "src/core/CMakeFiles/mistral_core.dir/perf_pwr.cc.o" "gcc" "src/core/CMakeFiles/mistral_core.dir/perf_pwr.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/core/CMakeFiles/mistral_core.dir/planner.cc.o" "gcc" "src/core/CMakeFiles/mistral_core.dir/planner.cc.o.d"
  "/root/repo/src/core/search.cc" "src/core/CMakeFiles/mistral_core.dir/search.cc.o" "gcc" "src/core/CMakeFiles/mistral_core.dir/search.cc.o.d"
  "/root/repo/src/core/search_meter.cc" "src/core/CMakeFiles/mistral_core.dir/search_meter.cc.o" "gcc" "src/core/CMakeFiles/mistral_core.dir/search_meter.cc.o.d"
  "/root/repo/src/core/strategies.cc" "src/core/CMakeFiles/mistral_core.dir/strategies.cc.o" "gcc" "src/core/CMakeFiles/mistral_core.dir/strategies.cc.o.d"
  "/root/repo/src/core/utility.cc" "src/core/CMakeFiles/mistral_core.dir/utility.cc.o" "gcc" "src/core/CMakeFiles/mistral_core.dir/utility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mistral_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mistral_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/lqn/CMakeFiles/mistral_lqn.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mistral_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/mistral_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/mistral_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mistral_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mistral_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mistral_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
