file(REMOVE_RECURSE
  "libmistral_core.a"
)
