file(REMOVE_RECURSE
  "CMakeFiles/mistral_core.dir/controller.cc.o"
  "CMakeFiles/mistral_core.dir/controller.cc.o.d"
  "CMakeFiles/mistral_core.dir/experiment.cc.o"
  "CMakeFiles/mistral_core.dir/experiment.cc.o.d"
  "CMakeFiles/mistral_core.dir/hierarchy.cc.o"
  "CMakeFiles/mistral_core.dir/hierarchy.cc.o.d"
  "CMakeFiles/mistral_core.dir/perf_pwr.cc.o"
  "CMakeFiles/mistral_core.dir/perf_pwr.cc.o.d"
  "CMakeFiles/mistral_core.dir/planner.cc.o"
  "CMakeFiles/mistral_core.dir/planner.cc.o.d"
  "CMakeFiles/mistral_core.dir/search.cc.o"
  "CMakeFiles/mistral_core.dir/search.cc.o.d"
  "CMakeFiles/mistral_core.dir/search_meter.cc.o"
  "CMakeFiles/mistral_core.dir/search_meter.cc.o.d"
  "CMakeFiles/mistral_core.dir/strategies.cc.o"
  "CMakeFiles/mistral_core.dir/strategies.cc.o.d"
  "CMakeFiles/mistral_core.dir/utility.cc.o"
  "CMakeFiles/mistral_core.dir/utility.cc.o.d"
  "libmistral_core.a"
  "libmistral_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mistral_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
