# Empty compiler generated dependencies file for mistral_core.
# This may be replaced when dependencies are built.
