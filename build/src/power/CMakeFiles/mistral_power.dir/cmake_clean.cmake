file(REMOVE_RECURSE
  "CMakeFiles/mistral_power.dir/calibration.cc.o"
  "CMakeFiles/mistral_power.dir/calibration.cc.o.d"
  "CMakeFiles/mistral_power.dir/model.cc.o"
  "CMakeFiles/mistral_power.dir/model.cc.o.d"
  "libmistral_power.a"
  "libmistral_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mistral_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
