# Empty dependencies file for mistral_power.
# This may be replaced when dependencies are built.
