file(REMOVE_RECURSE
  "libmistral_power.a"
)
