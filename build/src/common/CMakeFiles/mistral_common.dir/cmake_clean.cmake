file(REMOVE_RECURSE
  "CMakeFiles/mistral_common.dir/lookup_table.cc.o"
  "CMakeFiles/mistral_common.dir/lookup_table.cc.o.d"
  "CMakeFiles/mistral_common.dir/rng.cc.o"
  "CMakeFiles/mistral_common.dir/rng.cc.o.d"
  "CMakeFiles/mistral_common.dir/stats.cc.o"
  "CMakeFiles/mistral_common.dir/stats.cc.o.d"
  "CMakeFiles/mistral_common.dir/table_printer.cc.o"
  "CMakeFiles/mistral_common.dir/table_printer.cc.o.d"
  "CMakeFiles/mistral_common.dir/time_series.cc.o"
  "CMakeFiles/mistral_common.dir/time_series.cc.o.d"
  "libmistral_common.a"
  "libmistral_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mistral_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
