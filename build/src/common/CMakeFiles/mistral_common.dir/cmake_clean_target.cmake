file(REMOVE_RECURSE
  "libmistral_common.a"
)
