# Empty compiler generated dependencies file for mistral_common.
# This may be replaced when dependencies are built.
