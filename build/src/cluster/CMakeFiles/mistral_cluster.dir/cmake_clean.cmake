file(REMOVE_RECURSE
  "CMakeFiles/mistral_cluster.dir/action.cc.o"
  "CMakeFiles/mistral_cluster.dir/action.cc.o.d"
  "CMakeFiles/mistral_cluster.dir/configuration.cc.o"
  "CMakeFiles/mistral_cluster.dir/configuration.cc.o.d"
  "CMakeFiles/mistral_cluster.dir/model.cc.o"
  "CMakeFiles/mistral_cluster.dir/model.cc.o.d"
  "CMakeFiles/mistral_cluster.dir/translate.cc.o"
  "CMakeFiles/mistral_cluster.dir/translate.cc.o.d"
  "libmistral_cluster.a"
  "libmistral_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mistral_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
