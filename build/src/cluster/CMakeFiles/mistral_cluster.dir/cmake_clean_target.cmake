file(REMOVE_RECURSE
  "libmistral_cluster.a"
)
