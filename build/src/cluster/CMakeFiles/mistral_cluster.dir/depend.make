# Empty dependencies file for mistral_cluster.
# This may be replaced when dependencies are built.
