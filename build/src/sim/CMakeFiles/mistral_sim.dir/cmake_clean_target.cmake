file(REMOVE_RECURSE
  "libmistral_sim.a"
)
