file(REMOVE_RECURSE
  "CMakeFiles/mistral_sim.dir/cost_campaign.cc.o"
  "CMakeFiles/mistral_sim.dir/cost_campaign.cc.o.d"
  "CMakeFiles/mistral_sim.dir/perturb.cc.o"
  "CMakeFiles/mistral_sim.dir/perturb.cc.o.d"
  "CMakeFiles/mistral_sim.dir/testbed.cc.o"
  "CMakeFiles/mistral_sim.dir/testbed.cc.o.d"
  "CMakeFiles/mistral_sim.dir/transients.cc.o"
  "CMakeFiles/mistral_sim.dir/transients.cc.o.d"
  "libmistral_sim.a"
  "libmistral_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mistral_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
