# Empty dependencies file for mistral_sim.
# This may be replaced when dependencies are built.
