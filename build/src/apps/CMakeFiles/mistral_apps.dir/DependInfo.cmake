
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/application.cc" "src/apps/CMakeFiles/mistral_apps.dir/application.cc.o" "gcc" "src/apps/CMakeFiles/mistral_apps.dir/application.cc.o.d"
  "/root/repo/src/apps/rubis.cc" "src/apps/CMakeFiles/mistral_apps.dir/rubis.cc.o" "gcc" "src/apps/CMakeFiles/mistral_apps.dir/rubis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mistral_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
