file(REMOVE_RECURSE
  "libmistral_apps.a"
)
