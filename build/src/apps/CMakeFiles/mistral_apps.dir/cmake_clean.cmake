file(REMOVE_RECURSE
  "CMakeFiles/mistral_apps.dir/application.cc.o"
  "CMakeFiles/mistral_apps.dir/application.cc.o.d"
  "CMakeFiles/mistral_apps.dir/rubis.cc.o"
  "CMakeFiles/mistral_apps.dir/rubis.cc.o.d"
  "libmistral_apps.a"
  "libmistral_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mistral_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
