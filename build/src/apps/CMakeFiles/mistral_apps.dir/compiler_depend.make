# Empty compiler generated dependencies file for mistral_apps.
# This may be replaced when dependencies are built.
