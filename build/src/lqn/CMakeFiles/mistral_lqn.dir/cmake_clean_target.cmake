file(REMOVE_RECURSE
  "libmistral_lqn.a"
)
