file(REMOVE_RECURSE
  "CMakeFiles/mistral_lqn.dir/erlang.cc.o"
  "CMakeFiles/mistral_lqn.dir/erlang.cc.o.d"
  "CMakeFiles/mistral_lqn.dir/model.cc.o"
  "CMakeFiles/mistral_lqn.dir/model.cc.o.d"
  "CMakeFiles/mistral_lqn.dir/solver.cc.o"
  "CMakeFiles/mistral_lqn.dir/solver.cc.o.d"
  "libmistral_lqn.a"
  "libmistral_lqn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mistral_lqn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
