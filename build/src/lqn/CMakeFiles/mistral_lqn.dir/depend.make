# Empty dependencies file for mistral_lqn.
# This may be replaced when dependencies are built.
