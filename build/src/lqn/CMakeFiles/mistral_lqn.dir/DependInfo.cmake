
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lqn/erlang.cc" "src/lqn/CMakeFiles/mistral_lqn.dir/erlang.cc.o" "gcc" "src/lqn/CMakeFiles/mistral_lqn.dir/erlang.cc.o.d"
  "/root/repo/src/lqn/model.cc" "src/lqn/CMakeFiles/mistral_lqn.dir/model.cc.o" "gcc" "src/lqn/CMakeFiles/mistral_lqn.dir/model.cc.o.d"
  "/root/repo/src/lqn/solver.cc" "src/lqn/CMakeFiles/mistral_lqn.dir/solver.cc.o" "gcc" "src/lqn/CMakeFiles/mistral_lqn.dir/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mistral_common.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mistral_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
