# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("workload")
subdirs("power")
subdirs("apps")
subdirs("lqn")
subdirs("cluster")
subdirs("predict")
subdirs("cost")
subdirs("sim")
subdirs("core")
