
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generators.cc" "src/workload/CMakeFiles/mistral_workload.dir/generators.cc.o" "gcc" "src/workload/CMakeFiles/mistral_workload.dir/generators.cc.o.d"
  "/root/repo/src/workload/monitor.cc" "src/workload/CMakeFiles/mistral_workload.dir/monitor.cc.o" "gcc" "src/workload/CMakeFiles/mistral_workload.dir/monitor.cc.o.d"
  "/root/repo/src/workload/session_map.cc" "src/workload/CMakeFiles/mistral_workload.dir/session_map.cc.o" "gcc" "src/workload/CMakeFiles/mistral_workload.dir/session_map.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/mistral_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/mistral_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/workload/CMakeFiles/mistral_workload.dir/trace_io.cc.o" "gcc" "src/workload/CMakeFiles/mistral_workload.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mistral_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
