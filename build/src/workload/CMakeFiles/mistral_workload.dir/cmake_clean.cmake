file(REMOVE_RECURSE
  "CMakeFiles/mistral_workload.dir/generators.cc.o"
  "CMakeFiles/mistral_workload.dir/generators.cc.o.d"
  "CMakeFiles/mistral_workload.dir/monitor.cc.o"
  "CMakeFiles/mistral_workload.dir/monitor.cc.o.d"
  "CMakeFiles/mistral_workload.dir/session_map.cc.o"
  "CMakeFiles/mistral_workload.dir/session_map.cc.o.d"
  "CMakeFiles/mistral_workload.dir/trace.cc.o"
  "CMakeFiles/mistral_workload.dir/trace.cc.o.d"
  "CMakeFiles/mistral_workload.dir/trace_io.cc.o"
  "CMakeFiles/mistral_workload.dir/trace_io.cc.o.d"
  "libmistral_workload.a"
  "libmistral_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mistral_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
