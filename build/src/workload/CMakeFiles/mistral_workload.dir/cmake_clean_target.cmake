file(REMOVE_RECURSE
  "libmistral_workload.a"
)
