# Empty dependencies file for mistral_workload.
# This may be replaced when dependencies are built.
