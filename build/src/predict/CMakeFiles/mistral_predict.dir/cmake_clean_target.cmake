file(REMOVE_RECURSE
  "libmistral_predict.a"
)
