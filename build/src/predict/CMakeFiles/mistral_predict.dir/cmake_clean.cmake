file(REMOVE_RECURSE
  "CMakeFiles/mistral_predict.dir/arma.cc.o"
  "CMakeFiles/mistral_predict.dir/arma.cc.o.d"
  "libmistral_predict.a"
  "libmistral_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mistral_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
