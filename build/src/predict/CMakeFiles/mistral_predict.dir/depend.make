# Empty dependencies file for mistral_predict.
# This may be replaced when dependencies are built.
