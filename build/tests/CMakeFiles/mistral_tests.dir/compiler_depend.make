# Empty compiler generated dependencies file for mistral_tests.
# This may be replaced when dependencies are built.
