
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/application_test.cc" "tests/CMakeFiles/mistral_tests.dir/apps/application_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/apps/application_test.cc.o.d"
  "/root/repo/tests/cluster/action_test.cc" "tests/CMakeFiles/mistral_tests.dir/cluster/action_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/cluster/action_test.cc.o.d"
  "/root/repo/tests/cluster/configuration_test.cc" "tests/CMakeFiles/mistral_tests.dir/cluster/configuration_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/cluster/configuration_test.cc.o.d"
  "/root/repo/tests/cluster/model_test.cc" "tests/CMakeFiles/mistral_tests.dir/cluster/model_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/cluster/model_test.cc.o.d"
  "/root/repo/tests/cluster/translate_test.cc" "tests/CMakeFiles/mistral_tests.dir/cluster/translate_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/cluster/translate_test.cc.o.d"
  "/root/repo/tests/common/check_test.cc" "tests/CMakeFiles/mistral_tests.dir/common/check_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/common/check_test.cc.o.d"
  "/root/repo/tests/common/ids_test.cc" "tests/CMakeFiles/mistral_tests.dir/common/ids_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/common/ids_test.cc.o.d"
  "/root/repo/tests/common/lookup_table_test.cc" "tests/CMakeFiles/mistral_tests.dir/common/lookup_table_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/common/lookup_table_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/mistral_tests.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/stats_test.cc" "tests/CMakeFiles/mistral_tests.dir/common/stats_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/common/stats_test.cc.o.d"
  "/root/repo/tests/common/table_printer_test.cc" "tests/CMakeFiles/mistral_tests.dir/common/table_printer_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/common/table_printer_test.cc.o.d"
  "/root/repo/tests/common/time_series_test.cc" "tests/CMakeFiles/mistral_tests.dir/common/time_series_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/common/time_series_test.cc.o.d"
  "/root/repo/tests/core/controller_test.cc" "tests/CMakeFiles/mistral_tests.dir/core/controller_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/core/controller_test.cc.o.d"
  "/root/repo/tests/core/experiment_test.cc" "tests/CMakeFiles/mistral_tests.dir/core/experiment_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/core/experiment_test.cc.o.d"
  "/root/repo/tests/core/hierarchy_test.cc" "tests/CMakeFiles/mistral_tests.dir/core/hierarchy_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/core/hierarchy_test.cc.o.d"
  "/root/repo/tests/core/perf_pwr_test.cc" "tests/CMakeFiles/mistral_tests.dir/core/perf_pwr_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/core/perf_pwr_test.cc.o.d"
  "/root/repo/tests/core/planner_test.cc" "tests/CMakeFiles/mistral_tests.dir/core/planner_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/core/planner_test.cc.o.d"
  "/root/repo/tests/core/search_meter_test.cc" "tests/CMakeFiles/mistral_tests.dir/core/search_meter_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/core/search_meter_test.cc.o.d"
  "/root/repo/tests/core/search_test.cc" "tests/CMakeFiles/mistral_tests.dir/core/search_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/core/search_test.cc.o.d"
  "/root/repo/tests/core/strategies_test.cc" "tests/CMakeFiles/mistral_tests.dir/core/strategies_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/core/strategies_test.cc.o.d"
  "/root/repo/tests/core/utility_test.cc" "tests/CMakeFiles/mistral_tests.dir/core/utility_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/core/utility_test.cc.o.d"
  "/root/repo/tests/cost/table_io_test.cc" "tests/CMakeFiles/mistral_tests.dir/cost/table_io_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/cost/table_io_test.cc.o.d"
  "/root/repo/tests/cost/table_test.cc" "tests/CMakeFiles/mistral_tests.dir/cost/table_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/cost/table_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/mistral_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/property_test.cc" "tests/CMakeFiles/mistral_tests.dir/integration/property_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/integration/property_test.cc.o.d"
  "/root/repo/tests/lqn/erlang_test.cc" "tests/CMakeFiles/mistral_tests.dir/lqn/erlang_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/lqn/erlang_test.cc.o.d"
  "/root/repo/tests/lqn/solver_test.cc" "tests/CMakeFiles/mistral_tests.dir/lqn/solver_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/lqn/solver_test.cc.o.d"
  "/root/repo/tests/power/power_test.cc" "tests/CMakeFiles/mistral_tests.dir/power/power_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/power/power_test.cc.o.d"
  "/root/repo/tests/predict/arma_test.cc" "tests/CMakeFiles/mistral_tests.dir/predict/arma_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/predict/arma_test.cc.o.d"
  "/root/repo/tests/sim/campaign_test.cc" "tests/CMakeFiles/mistral_tests.dir/sim/campaign_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/sim/campaign_test.cc.o.d"
  "/root/repo/tests/sim/perturb_test.cc" "tests/CMakeFiles/mistral_tests.dir/sim/perturb_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/sim/perturb_test.cc.o.d"
  "/root/repo/tests/sim/testbed_test.cc" "tests/CMakeFiles/mistral_tests.dir/sim/testbed_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/sim/testbed_test.cc.o.d"
  "/root/repo/tests/sim/transients_test.cc" "tests/CMakeFiles/mistral_tests.dir/sim/transients_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/sim/transients_test.cc.o.d"
  "/root/repo/tests/workload/generators_test.cc" "tests/CMakeFiles/mistral_tests.dir/workload/generators_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/workload/generators_test.cc.o.d"
  "/root/repo/tests/workload/monitor_test.cc" "tests/CMakeFiles/mistral_tests.dir/workload/monitor_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/workload/monitor_test.cc.o.d"
  "/root/repo/tests/workload/session_map_test.cc" "tests/CMakeFiles/mistral_tests.dir/workload/session_map_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/workload/session_map_test.cc.o.d"
  "/root/repo/tests/workload/trace_io_test.cc" "tests/CMakeFiles/mistral_tests.dir/workload/trace_io_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/workload/trace_io_test.cc.o.d"
  "/root/repo/tests/workload/trace_test.cc" "tests/CMakeFiles/mistral_tests.dir/workload/trace_test.cc.o" "gcc" "tests/CMakeFiles/mistral_tests.dir/workload/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mistral_core.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/mistral_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mistral_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mistral_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/mistral_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mistral_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/lqn/CMakeFiles/mistral_lqn.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mistral_power.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mistral_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mistral_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
