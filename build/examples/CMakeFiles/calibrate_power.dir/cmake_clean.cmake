file(REMOVE_RECURSE
  "CMakeFiles/calibrate_power.dir/calibrate_power.cpp.o"
  "CMakeFiles/calibrate_power.dir/calibrate_power.cpp.o.d"
  "calibrate_power"
  "calibrate_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
