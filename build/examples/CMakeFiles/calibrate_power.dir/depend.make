# Empty dependencies file for calibrate_power.
# This may be replaced when dependencies are built.
