
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/flash_crowd.cpp" "examples/CMakeFiles/flash_crowd.dir/flash_crowd.cpp.o" "gcc" "examples/CMakeFiles/flash_crowd.dir/flash_crowd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mistral_core.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/mistral_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mistral_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mistral_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/mistral_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mistral_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/lqn/CMakeFiles/mistral_lqn.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mistral_power.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mistral_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mistral_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
