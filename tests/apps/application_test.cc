#include "apps/application.h"

#include <gtest/gtest.h>

#include "apps/rubis.h"
#include "common/check.h"

namespace mistral::apps {
namespace {

TEST(ApplicationSpec, RejectsMixNotSummingToOne) {
    std::vector<tier_spec> tiers = {{.name = "web"}};
    std::vector<transaction_type> txs = {
        {.name = "a", .mix = 0.5, .visits = {1.0}, .demand = {0.001}}};
    EXPECT_THROW(application_spec("x", tiers, txs, 0.4), invariant_error);
}

TEST(ApplicationSpec, RejectsVisitDemandSizeMismatch) {
    std::vector<tier_spec> tiers = {{.name = "web"}, {.name = "db"}};
    std::vector<transaction_type> txs = {
        {.name = "a", .mix = 1.0, .visits = {1.0}, .demand = {0.001, 0.002}}};
    EXPECT_THROW(application_spec("x", tiers, txs, 0.4), invariant_error);
}

TEST(ApplicationSpec, RejectsBadTierBounds) {
    std::vector<tier_spec> tiers = {
        {.name = "web", .min_replicas = 2, .max_replicas = 1}};
    std::vector<transaction_type> txs = {
        {.name = "a", .mix = 1.0, .visits = {1.0}, .demand = {0.001}}};
    EXPECT_THROW(application_spec("x", tiers, txs, 0.4), invariant_error);
}

TEST(ApplicationSpec, MeanTierDemandWeighsMixAndVisits) {
    std::vector<tier_spec> tiers = {{.name = "web"}, {.name = "db", .max_replicas = 2}};
    std::vector<transaction_type> txs = {
        {.name = "light", .mix = 0.75, .visits = {1.0, 1.0}, .demand = {0.002, 0.004}},
        {.name = "heavy", .mix = 0.25, .visits = {1.0, 3.0}, .demand = {0.002, 0.004}},
    };
    application_spec app("x", tiers, txs, 0.4);
    EXPECT_NEAR(app.mean_tier_demand(0), 0.002, 1e-12);
    // db: 0.75·1·0.004 + 0.25·3·0.004 = 0.006
    EXPECT_NEAR(app.mean_tier_demand(1), 0.006, 1e-12);
    EXPECT_NEAR(app.mean_tier_visits(1), 1.5, 1e-12);
}

TEST(Rubis, HasPaperStructure) {
    const auto app = rubis_browsing("RUBiS-1");
    EXPECT_EQ(app.name(), "RUBiS-1");
    ASSERT_EQ(app.tier_count(), 3u);
    EXPECT_EQ(app.tiers()[0].name, "web");
    EXPECT_EQ(app.tiers()[1].name, "app");
    EXPECT_EQ(app.tiers()[2].name, "db");
    // Browsing-only mix: 9 read-only transaction types.
    EXPECT_EQ(app.transactions().size(), 9u);
    // Replication limits: single Apache, up to two Tomcat/MySQL replicas.
    EXPECT_EQ(app.tiers()[0].max_replicas, 1);
    EXPECT_EQ(app.tiers()[1].max_replicas, 2);
    EXPECT_EQ(app.tiers()[2].max_replicas, 2);
}

TEST(Rubis, TargetResponseTimeIs400ms) {
    const auto app = rubis_browsing("r");
    EXPECT_DOUBLE_EQ(app.target_response_time(0.0), 0.4);
    EXPECT_DOUBLE_EQ(app.target_response_time(100.0), 0.4);
}

TEST(Rubis, VmFootprintAndCapWindowMatchPaper) {
    const auto app = rubis_browsing("r");
    for (const auto& tier : app.tiers()) {
        EXPECT_DOUBLE_EQ(tier.memory_mb, 200.0);
        EXPECT_DOUBLE_EQ(tier.min_cpu_cap, 0.2);
        EXPECT_DOUBLE_EQ(tier.max_cpu_cap, 0.8);
    }
}

TEST(Rubis, EveryTransactionPassesThroughTheWebTier) {
    const auto app = rubis_browsing("r");
    for (const auto& tx : app.transactions()) {
        EXPECT_GT(tx.visits[0], 0.0) << tx.name;
    }
}

TEST(Rubis, DemandScaleSupportsPaperPeakRates) {
    // At 100 req/s the db tier must be servable by two replicas at 80 % caps:
    // total demand < 1.6 CPU.
    const auto app = rubis_browsing("r");
    EXPECT_LT(100.0 * app.mean_tier_demand(2), 1.6);
    // And a single replica at 40 % handles the 50 req/s default comfortably
    // enough to be near (not wildly under) the target.
    EXPECT_LT(50.0 * app.mean_tier_demand(2), 0.4);
}

TEST(TwoTierDemo, IsValidAndSmaller) {
    const auto app = two_tier_demo("demo");
    EXPECT_EQ(app.tier_count(), 2u);
    EXPECT_EQ(app.transactions().size(), 2u);
}

}  // namespace
}  // namespace mistral::apps
