#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "workload/generators.h"

namespace mistral::wl {
namespace {

TEST(TraceIo, ParsesPlainCsv) {
    std::istringstream in("0,10\n60,20\n120,15\n");
    const auto t = read_trace_csv(in, "x");
    ASSERT_EQ(t.size(), 3u);
    EXPECT_DOUBLE_EQ(t.rate_at(60.0), 20.0);
    EXPECT_EQ(t.name(), "x");
}

TEST(TraceIo, ToleratesHeaderCommentsAndBlankLines) {
    std::istringstream in(
        "time,rate\n"
        "# a comment\n"
        "\n"
        "0,5\n"
        "60,6  # trailing comment\n");
    const auto t = read_trace_csv(in, "x");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_DOUBLE_EQ(t.rate_at(60.0), 6.0);
}

TEST(TraceIo, RejectsMalformedRows) {
    std::istringstream missing("0\n");
    EXPECT_THROW(read_trace_csv(missing, "x"), invariant_error);
    std::istringstream not_numeric("0,abc\n");
    EXPECT_THROW(read_trace_csv(not_numeric, "x"), invariant_error);
    std::istringstream empty("# nothing\n");
    EXPECT_THROW(read_trace_csv(empty, "x"), invariant_error);
    std::istringstream unsorted("60,1\n0,2\n");
    EXPECT_THROW(read_trace_csv(unsorted, "x"), invariant_error);
    std::istringstream negative("0,-5\n");
    EXPECT_THROW(read_trace_csv(negative, "x"), invariant_error);
}

TEST(TraceIo, RoundTripsGeneratedTrace) {
    generator_options opts;
    opts.duration = 1800.0;
    const auto original = world_cup_trace(opts).scaled_to_range(0.0, 100.0);
    std::ostringstream out;
    write_trace_csv(out, original);
    std::istringstream in(out.str());
    const auto restored = read_trace_csv(in, original.name());
    ASSERT_EQ(restored.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_NEAR(restored.samples()[i].time, original.samples()[i].time, 1e-6);
        EXPECT_NEAR(restored.samples()[i].rate, original.samples()[i].rate, 1e-6);
    }
}

TEST(TraceIo, FileRoundTripAndNaming) {
    generator_options opts;
    opts.duration = 600.0;
    const auto t = hp_trace(opts);
    const std::string path = ::testing::TempDir() + "/mistral_trace_io.csv";
    save_trace_csv(path, t);
    const auto loaded = load_trace_csv(path);
    EXPECT_EQ(loaded.name(), "mistral_trace_io");
    EXPECT_EQ(loaded.size(), t.size());
}

TEST(TraceIo, MissingFileThrows) {
    EXPECT_THROW(load_trace_csv("/nonexistent/trace.csv"), invariant_error);
}

}  // namespace
}  // namespace mistral::wl
