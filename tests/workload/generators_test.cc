#include "workload/generators.h"

#include <gtest/gtest.h>

namespace mistral::wl {
namespace {

generator_options quiet() {
    generator_options o;
    o.noise = 0.0;
    return o;
}

TEST(Generators, WorldCupCoversRequestedWindow) {
    const auto t = world_cup_trace({});
    EXPECT_DOUBLE_EQ(t.start_time(), 15.0 * 3600.0);
    EXPECT_NEAR(t.end_time(), 21.5 * 3600.0, 60.0);
}

TEST(Generators, WorldCupDeterministicPerSeed) {
    const auto a = world_cup_trace({});
    const auto b = world_cup_trace({});
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.samples()[i].rate, b.samples()[i].rate);
    }
}

TEST(Generators, WorldCupSeedChangesTrace) {
    generator_options o;
    o.seed = 2;
    const auto a = world_cup_trace({});
    const auto b = world_cup_trace(o);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a.samples()[i].rate != b.samples()[i].rate) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Generators, WorldCupHasFlashCrowdStructure) {
    const auto t = world_cup_trace(quiet());
    // Peak well above the early-baseline level.
    const double early = t.rate_at(t.start_time() + 600.0);
    EXPECT_GT(t.peak_rate(), 3.0 * early);
}

TEST(Generators, WorldCupVariantsDecorrelate) {
    const auto a = world_cup_trace(quiet(), 0);
    const auto b = world_cup_trace(quiet(), 1);
    double max_diff = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        max_diff = std::max(max_diff,
                            std::abs(a.samples()[i].rate - b.samples()[i].rate));
    }
    EXPECT_GT(max_diff, 0.05);
}

TEST(Generators, HpTraceIsSmootherThanWorldCup) {
    const auto hp = hp_trace(quiet());
    const auto wc = world_cup_trace(quiet());
    auto roughness = [](const trace& t) {
        double sum = 0.0;
        for (std::size_t i = 1; i < t.size(); ++i) {
            sum += std::abs(t.samples()[i].rate - t.samples()[i - 1].rate);
        }
        return sum / static_cast<double>(t.size());
    };
    EXPECT_LT(roughness(hp), roughness(wc));
}

TEST(Generators, ConstantTraceHoldsLevelWithoutNoise) {
    const auto t = constant_trace("c", 42.0, quiet());
    EXPECT_DOUBLE_EQ(t.min_rate(), 42.0);
    EXPECT_DOUBLE_EQ(t.peak_rate(), 42.0);
}

TEST(Generators, StepTraceSwitchesAtStepTime) {
    generator_options o = quiet();
    const auto t = step_trace("s", 10.0, 50.0, 3600.0, o);
    EXPECT_DOUBLE_EQ(t.rate_at(o.start + 1800.0), 10.0);
    EXPECT_DOUBLE_EQ(t.rate_at(o.start + 3660.0), 50.0);
}

TEST(Generators, FlashCrowdRampsAndDecays) {
    generator_options o = quiet();
    const auto t = flash_crowd_trace("f", 10.0, 90.0, 3600.0, 600.0, 1200.0, o);
    EXPECT_NEAR(t.rate_at(o.start + 1800.0), 10.0, 1e-6);       // before
    EXPECT_NEAR(t.rate_at(o.start + 3600.0 + 900.0), 90.0, 1e-6);  // hold
    EXPECT_LT(t.rate_at(o.start + 3600.0 + 3000.0), 60.0);      // decaying
    EXPECT_GT(t.rate_at(o.start + 3600.0 + 300.0), 10.0);       // ramping
}

TEST(Generators, RandomWalkStaysInBounds) {
    const auto t = random_walk_trace("w", 20.0, 80.0, 0.1, {});
    EXPECT_GE(t.min_rate(), 20.0 - 1e-9);
    EXPECT_LE(t.peak_rate(), 80.0 + 1e-9);
}

TEST(Generators, PaperWorkloadsMatchFig4Setup) {
    const auto traces = paper_workloads();
    ASSERT_EQ(traces.size(), 4u);
    EXPECT_EQ(traces[0].name(), "RUBiS-1");
    EXPECT_EQ(traces[3].name(), "RUBiS-4");
    for (const auto& t : traces) {
        EXPECT_NEAR(t.min_rate(), 0.0, 1e-9);
        EXPECT_NEAR(t.peak_rate(), 100.0, 1e-9);
        EXPECT_DOUBLE_EQ(t.start_time(), 15.0 * 3600.0);
    }
}

TEST(Generators, RatesAreNeverNegativeEvenWithHeavyNoise) {
    generator_options o;
    o.noise = 0.5;
    const auto t = world_cup_trace(o);
    EXPECT_GE(t.min_rate(), 0.0);
}

}  // namespace
}  // namespace mistral::wl
