#include "workload/trace.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace mistral::wl {
namespace {

trace make_trace() {
    return trace("t", {{0.0, 10.0}, {10.0, 20.0}, {20.0, 5.0}});
}

TEST(Trace, RequiresSortedSamples) {
    EXPECT_THROW(trace("bad", {{10.0, 1.0}, {0.0, 2.0}}), invariant_error);
}

TEST(Trace, RejectsNegativeRates) {
    EXPECT_THROW(trace("bad", {{0.0, -1.0}}), invariant_error);
}

TEST(Trace, StartEndTimes) {
    const auto t = make_trace();
    EXPECT_DOUBLE_EQ(t.start_time(), 0.0);
    EXPECT_DOUBLE_EQ(t.end_time(), 20.0);
}

TEST(Trace, RateAtUsesStepInterpolation) {
    const auto t = make_trace();
    EXPECT_DOUBLE_EQ(t.rate_at(0.0), 10.0);
    EXPECT_DOUBLE_EQ(t.rate_at(5.0), 10.0);
    EXPECT_DOUBLE_EQ(t.rate_at(10.0), 20.0);
    EXPECT_DOUBLE_EQ(t.rate_at(19.9), 20.0);
    EXPECT_DOUBLE_EQ(t.rate_at(20.0), 5.0);
}

TEST(Trace, RateAtClampsOutsideRange) {
    const auto t = make_trace();
    EXPECT_DOUBLE_EQ(t.rate_at(-5.0), 10.0);
    EXPECT_DOUBLE_EQ(t.rate_at(100.0), 5.0);
}

TEST(Trace, MeanRateOverSegments) {
    const auto t = make_trace();
    EXPECT_DOUBLE_EQ(t.mean_rate(0.0, 10.0), 10.0);
    EXPECT_DOUBLE_EQ(t.mean_rate(0.0, 20.0), 15.0);
    EXPECT_DOUBLE_EQ(t.mean_rate(5.0, 15.0), 15.0);
}

TEST(Trace, MeanRateOfInstantEqualsRateAt) {
    const auto t = make_trace();
    EXPECT_DOUBLE_EQ(t.mean_rate(5.0, 5.0), 10.0);
}

TEST(Trace, MeanRatePastEndUsesLastRate) {
    const auto t = make_trace();
    EXPECT_DOUBLE_EQ(t.mean_rate(20.0, 30.0), 5.0);
}

TEST(Trace, PeakAndMin) {
    const auto t = make_trace();
    EXPECT_DOUBLE_EQ(t.peak_rate(), 20.0);
    EXPECT_DOUBLE_EQ(t.min_rate(), 5.0);
}

TEST(Trace, ScaledToRangeMapsExtremes) {
    const auto t = make_trace().scaled_to_range(0.0, 100.0);
    EXPECT_DOUBLE_EQ(t.min_rate(), 0.0);
    EXPECT_DOUBLE_EQ(t.peak_rate(), 100.0);
    // 10 is 1/3 of the way from 5 to 20.
    EXPECT_NEAR(t.rate_at(0.0), 100.0 / 3.0, 1e-9);
}

TEST(Trace, ScaledConstantTraceMapsToLow) {
    trace c("c", {{0.0, 7.0}, {1.0, 7.0}});
    const auto s = c.scaled_to_range(10.0, 90.0);
    EXPECT_DOUBLE_EQ(s.rate_at(0.0), 10.0);
}

TEST(Trace, ShiftedToStartTranslatesTimes) {
    const auto t = make_trace().shifted_to_start(100.0);
    EXPECT_DOUBLE_EQ(t.start_time(), 100.0);
    EXPECT_DOUBLE_EQ(t.end_time(), 120.0);
    EXPECT_DOUBLE_EQ(t.rate_at(105.0), 10.0);
}

TEST(Trace, ResampledUniformGrid) {
    const auto t = make_trace().resampled(5.0);
    ASSERT_EQ(t.size(), 5u);
    EXPECT_DOUBLE_EQ(t.samples()[1].time, 5.0);
    EXPECT_DOUBLE_EQ(t.samples()[1].rate, 10.0);
    EXPECT_DOUBLE_EQ(t.samples()[4].rate, 5.0);
}

TEST(Trace, SmoothedReducesVariance) {
    std::vector<trace_sample> samples;
    for (int i = 0; i < 100; ++i) {
        samples.push_back({static_cast<double>(i), i % 2 ? 10.0 : 0.0});
    }
    const trace raw("saw", samples);
    const auto smooth = raw.smoothed(5);
    // Interior points should be near the mean of 5.
    EXPECT_NEAR(smooth.samples()[50].rate, 5.0, 2.01);
    EXPECT_LT(smooth.peak_rate(), raw.peak_rate());
}

TEST(Trace, SmoothedWindowOneIsIdentity) {
    const auto t = make_trace();
    const auto s = t.smoothed(1);
    EXPECT_EQ(s.samples().size(), t.samples().size());
    EXPECT_DOUBLE_EQ(s.rate_at(0.0), t.rate_at(0.0));
}

TEST(Trace, RenamedKeepsSamples) {
    const auto t = make_trace().renamed("other");
    EXPECT_EQ(t.name(), "other");
    EXPECT_DOUBLE_EQ(t.rate_at(0.0), 10.0);
}

}  // namespace
}  // namespace mistral::wl
