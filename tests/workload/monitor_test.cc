#include "workload/monitor.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace mistral::wl {
namespace {

TEST(Band, ContainsWithinHalfWidth) {
    band b{50.0, 8.0};
    EXPECT_TRUE(b.contains(50.0));
    EXPECT_TRUE(b.contains(54.0));
    EXPECT_TRUE(b.contains(46.0));
    EXPECT_FALSE(b.contains(54.1));
    EXPECT_FALSE(b.contains(45.9));
}

TEST(Band, ZeroWidthContainsOnlyCenter) {
    band b{50.0, 0.0};
    EXPECT_TRUE(b.contains(50.0));
    EXPECT_FALSE(b.contains(50.001));
}

TEST(Monitor, FirstObservationInitializesBands) {
    workload_monitor m(2, 8.0);
    const auto e = m.observe(0.0, {10.0, 20.0});
    EXPECT_FALSE(e.any_exceeded);
    EXPECT_DOUBLE_EQ(m.band_of(0).center, 10.0);
    EXPECT_DOUBLE_EQ(m.band_of(1).center, 20.0);
}

TEST(Monitor, StaysQuietWithinBand) {
    workload_monitor m(1, 8.0);
    m.observe(0.0, {50.0});
    const auto e = m.observe(120.0, {53.0});
    EXPECT_FALSE(e.any_exceeded);
    EXPECT_TRUE(e.exceeded.empty());
}

TEST(Monitor, ReportsExceededAppAndInterval) {
    workload_monitor m(2, 8.0);
    m.observe(0.0, {50.0, 50.0});
    const auto e = m.observe(240.0, {60.0, 51.0});
    ASSERT_TRUE(e.any_exceeded);
    ASSERT_EQ(e.exceeded.size(), 1u);
    EXPECT_EQ(e.exceeded[0], 0u);
    ASSERT_EQ(e.completed_intervals.size(), 1u);
    EXPECT_DOUBLE_EQ(e.completed_intervals[0], 240.0);
}

TEST(Monitor, MeasuredIntervalsAccumulatePerApp) {
    workload_monitor m(1, 4.0);
    m.observe(0.0, {10.0});
    m.observe(100.0, {20.0});   // exit 1 at t=100
    m.recenter(100.0, {20.0});
    m.observe(400.0, {40.0});   // exit 2, interval 300
    const auto& hist = m.measured_intervals(0);
    ASSERT_EQ(hist.size(), 2u);
    EXPECT_DOUBLE_EQ(hist[0], 100.0);
    EXPECT_DOUBLE_EQ(hist[1], 300.0);
}

TEST(Monitor, WithoutRecenterBandStaysPut) {
    workload_monitor m(1, 4.0);
    m.observe(0.0, {10.0});
    m.observe(100.0, {20.0});
    // Band still centered at 10, so 20 keeps exceeding.
    const auto e = m.observe(200.0, {20.0});
    EXPECT_TRUE(e.any_exceeded);
    EXPECT_DOUBLE_EQ(m.band_of(0).center, 10.0);
}

TEST(Monitor, RecenterMovesAllBands) {
    workload_monitor m(2, 8.0);
    m.observe(0.0, {10.0, 20.0});
    m.recenter(50.0, {30.0, 40.0});
    EXPECT_DOUBLE_EQ(m.band_of(0).center, 30.0);
    EXPECT_DOUBLE_EQ(m.band_of(1).center, 40.0);
    const auto e = m.observe(100.0, {30.0, 40.0});
    EXPECT_FALSE(e.any_exceeded);
}

TEST(Monitor, ZeroBandTriggersOnAnyChange) {
    workload_monitor m(1, 0.0);
    m.observe(0.0, {50.0});
    EXPECT_TRUE(m.observe(1.0, {50.0001}).any_exceeded);
}

TEST(Monitor, MultipleAppsExceedSimultaneously) {
    workload_monitor m(3, 8.0);
    m.observe(0.0, {10.0, 20.0, 30.0});
    const auto e = m.observe(60.0, {30.0, 20.0, 50.0});
    ASSERT_EQ(e.exceeded.size(), 2u);
    EXPECT_EQ(e.exceeded[0], 0u);
    EXPECT_EQ(e.exceeded[1], 2u);
}

TEST(Monitor, RejectsWrongRateCount) {
    workload_monitor m(2, 8.0);
    EXPECT_THROW(m.observe(0.0, {1.0}), invariant_error);
}

TEST(Monitor, RejectsZeroApps) {
    EXPECT_THROW(workload_monitor(0, 8.0), invariant_error);
}

}  // namespace
}  // namespace mistral::wl
