#include "workload/monitor.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/check.h"

namespace mistral::wl {
namespace {

TEST(Band, ContainsWithinHalfWidth) {
    band b{50.0, 8.0};
    EXPECT_TRUE(b.contains(50.0));
    EXPECT_TRUE(b.contains(54.0));
    EXPECT_TRUE(b.contains(46.0));
    EXPECT_FALSE(b.contains(54.1));
    EXPECT_FALSE(b.contains(45.9));
}

TEST(Band, ZeroWidthContainsOnlyCenter) {
    band b{50.0, 0.0};
    EXPECT_TRUE(b.contains(50.0));
    EXPECT_FALSE(b.contains(50.001));
}

TEST(Monitor, FirstObservationInitializesBands) {
    workload_monitor m(2, 8.0);
    const auto e = m.observe(0.0, {10.0, 20.0});
    EXPECT_FALSE(e.any_exceeded);
    EXPECT_DOUBLE_EQ(m.band_of(0).center, 10.0);
    EXPECT_DOUBLE_EQ(m.band_of(1).center, 20.0);
}

TEST(Monitor, StaysQuietWithinBand) {
    workload_monitor m(1, 8.0);
    m.observe(0.0, {50.0});
    const auto e = m.observe(120.0, {53.0});
    EXPECT_FALSE(e.any_exceeded);
    EXPECT_TRUE(e.exceeded.empty());
}

TEST(Monitor, ReportsExceededAppAndInterval) {
    workload_monitor m(2, 8.0);
    m.observe(0.0, {50.0, 50.0});
    const auto e = m.observe(240.0, {60.0, 51.0});
    ASSERT_TRUE(e.any_exceeded);
    ASSERT_EQ(e.exceeded.size(), 1u);
    EXPECT_EQ(e.exceeded[0], 0u);
    ASSERT_EQ(e.completed_intervals.size(), 1u);
    EXPECT_DOUBLE_EQ(e.completed_intervals[0], 240.0);
}

TEST(Monitor, MeasuredIntervalsAccumulatePerApp) {
    workload_monitor m(1, 4.0);
    m.observe(0.0, {10.0});
    m.observe(100.0, {20.0});   // exit 1 at t=100
    m.recenter(100.0, {20.0});
    m.observe(400.0, {40.0});   // exit 2, interval 300
    const auto& hist = m.measured_intervals(0);
    ASSERT_EQ(hist.size(), 2u);
    EXPECT_DOUBLE_EQ(hist[0], 100.0);
    EXPECT_DOUBLE_EQ(hist[1], 300.0);
}

TEST(Monitor, WithoutRecenterBandStaysPut) {
    workload_monitor m(1, 4.0);
    m.observe(0.0, {10.0});
    m.observe(100.0, {20.0});
    // Band still centered at 10, so 20 keeps exceeding.
    const auto e = m.observe(200.0, {20.0});
    EXPECT_TRUE(e.any_exceeded);
    EXPECT_DOUBLE_EQ(m.band_of(0).center, 10.0);
}

TEST(Monitor, RecenterMovesAllBands) {
    workload_monitor m(2, 8.0);
    m.observe(0.0, {10.0, 20.0});
    m.recenter(50.0, {30.0, 40.0});
    EXPECT_DOUBLE_EQ(m.band_of(0).center, 30.0);
    EXPECT_DOUBLE_EQ(m.band_of(1).center, 40.0);
    const auto e = m.observe(100.0, {30.0, 40.0});
    EXPECT_FALSE(e.any_exceeded);
}

TEST(Monitor, ZeroBandTriggersOnAnyChange) {
    workload_monitor m(1, 0.0);
    m.observe(0.0, {50.0});
    EXPECT_TRUE(m.observe(1.0, {50.0001}).any_exceeded);
}

TEST(Monitor, MultipleAppsExceedSimultaneously) {
    workload_monitor m(3, 8.0);
    m.observe(0.0, {10.0, 20.0, 30.0});
    const auto e = m.observe(60.0, {30.0, 20.0, 50.0});
    ASSERT_EQ(e.exceeded.size(), 2u);
    EXPECT_EQ(e.exceeded[0], 0u);
    EXPECT_EQ(e.exceeded[1], 2u);
}

TEST(Monitor, RejectsWrongRateCount) {
    workload_monitor m(2, 8.0);
    EXPECT_THROW(m.observe(0.0, {1.0}), invariant_error);
}

TEST(Monitor, RejectsZeroApps) {
    EXPECT_THROW(workload_monitor(0, 8.0), invariant_error);
}

TEST(Monitor, BandScaleWidensContainmentWithoutMovingTheBand) {
    workload_monitor m(1, 8.0);
    m.observe(0.0, {50.0});
    EXPECT_TRUE(m.observe(60.0, {55.0}).any_exceeded);  // outside ±4
    m.set_band_scale(3.0);
    EXPECT_FALSE(m.observe(120.0, {55.0}).any_exceeded);  // inside ±12
    EXPECT_TRUE(m.observe(180.0, {63.0}).any_exceeded);
    EXPECT_DOUBLE_EQ(m.band_of(0).center, 50.0);
    EXPECT_DOUBLE_EQ(m.band_of(0).width, 8.0);  // stored width unscaled
    EXPECT_THROW(m.set_band_scale(0.5), invariant_error);
}

// ---- telemetry_validator ---------------------------------------------------

telemetry_window window_of(std::vector<req_per_sec> rates) {
    telemetry_window w;
    w.rates = std::move(rates);
    return w;
}

TEST(Validator, HealthyWindowPassesRatesThroughBitIdentically) {
    telemetry_validator v(2);
    const auto verdict = v.validate(window_of({40.0, 55.5}));
    EXPECT_TRUE(verdict.healthy());
    EXPECT_EQ(verdict.flags, quality_ok);
    EXPECT_EQ(verdict.rates, (std::vector<req_per_sec>{40.0, 55.5}));
}

TEST(Validator, NonFiniteRateIsGarbageAndSubstituted) {
    telemetry_validator v(1);
    v.validate(window_of({40.0}));
    const auto verdict =
        v.validate(window_of({std::numeric_limits<double>::quiet_NaN()}));
    EXPECT_EQ(verdict.quality, window_quality::garbage);
    EXPECT_TRUE(verdict.flags & quality_nonfinite);
    EXPECT_EQ(verdict.rates[0], 40.0);  // last healthy value
    // Same for a negative reading (no sensor measures a negative rate).
    const auto neg = v.validate(window_of({-3.0}));
    EXPECT_EQ(neg.quality, window_quality::garbage);
    EXPECT_EQ(neg.rates[0], 40.0);
}

TEST(Validator, GarbageBeforeAnyHealthyValueFallsBackToZero) {
    telemetry_validator v(1);
    const auto verdict =
        v.validate(window_of({std::numeric_limits<double>::infinity()}));
    EXPECT_EQ(verdict.quality, window_quality::garbage);
    EXPECT_EQ(verdict.rates[0], 0.0);
}

TEST(Validator, EmptyWindowIsDegradedAndSubstituted) {
    telemetry_validator v(1);
    telemetry_window w = window_of({40.0});
    w.samples = {4800.0};
    EXPECT_TRUE(v.validate(w).healthy());
    // Zero completed requests: the reported rate is undefined, never NaN.
    telemetry_window empty = window_of({0.0});
    empty.samples = {0.0};
    const auto verdict = v.validate(empty);
    EXPECT_EQ(verdict.quality, window_quality::degraded);
    EXPECT_TRUE(verdict.flags & quality_empty);
    EXPECT_EQ(verdict.rates[0], 40.0);
}

TEST(Validator, OutOfRangeRateIsClampedAndFlagged) {
    validator_options opts;
    opts.max_rate = 1000.0;
    telemetry_validator v(1, opts);
    const auto verdict = v.validate(window_of({5000.0}));
    EXPECT_EQ(verdict.quality, window_quality::degraded);
    EXPECT_TRUE(verdict.flags & quality_out_of_range);
    EXPECT_EQ(verdict.rates[0], 1000.0);
}

TEST(Validator, JumpCheckIsOptInAndKeepsTheValue) {
    // Default: disabled — a 100× move is graded healthy.
    telemetry_validator lax(1);
    lax.validate(window_of({10.0}));
    EXPECT_TRUE(lax.validate(window_of({1000.0})).healthy());

    validator_options opts;
    opts.max_jump_factor = 4.0;
    opts.jump_slack = 0.0;
    telemetry_validator strict(1, opts);
    strict.validate(window_of({10.0}));
    const auto up = strict.validate(window_of({100.0}));
    EXPECT_EQ(up.quality, window_quality::degraded);
    EXPECT_TRUE(up.flags & quality_jump);
    EXPECT_EQ(up.rates[0], 100.0);  // flagged, not substituted
    // The jumped value becomes the new reference: staying there is healthy.
    EXPECT_TRUE(strict.validate(window_of({110.0})).healthy());
    // And a symmetric drop trips too.
    const auto down = strict.validate(window_of({5.0}));
    EXPECT_TRUE(down.flags & quality_jump);
}

TEST(Validator, StuckDetectionIsOptInAndCountsBitIdenticalRepeats) {
    validator_options opts;
    opts.max_stuck_windows = 3;
    telemetry_validator v(1, opts);
    EXPECT_TRUE(v.validate(window_of({50.0})).healthy());
    EXPECT_TRUE(v.validate(window_of({50.0})).healthy());
    EXPECT_TRUE(v.validate(window_of({50.0})).healthy());
    const auto verdict = v.validate(window_of({50.0}));  // 4th identical read
    EXPECT_EQ(verdict.quality, window_quality::degraded);
    EXPECT_TRUE(verdict.flags & quality_stale);
    // A fresh value clears the streak.
    EXPECT_TRUE(v.validate(window_of({51.0})).healthy());

    // Default options never flag constant telemetry.
    telemetry_validator relaxed(1);
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(relaxed.validate(window_of({50.0})).healthy());
    }
}

TEST(Validator, ResponseTimeChannelIsValidatedWhenPresent) {
    telemetry_validator v(1);
    telemetry_window w = window_of({40.0});
    w.response_times = {std::numeric_limits<double>::quiet_NaN()};
    const auto verdict = v.validate(w);
    EXPECT_EQ(verdict.quality, window_quality::garbage);
    // The rate itself was fine and stays the reference for substitution.
    telemetry_window slow = window_of({41.0});
    slow.response_times = {7200.0};
    EXPECT_EQ(v.validate(slow).quality, window_quality::degraded);
}

TEST(Validator, PerAppFlagsAreIndependent) {
    telemetry_validator v(2);
    v.validate(window_of({40.0, 60.0}));
    const auto verdict =
        v.validate(window_of({std::numeric_limits<double>::quiet_NaN(), 61.0}));
    EXPECT_TRUE(verdict.app_flags[0] & quality_nonfinite);
    EXPECT_EQ(verdict.app_flags[1], quality_ok);
    EXPECT_EQ(verdict.rates[0], 40.0);
    EXPECT_EQ(verdict.rates[1], 61.0);
}

TEST(Validator, DescribeFlagsNamesEveryBit) {
    EXPECT_EQ(describe_flags(quality_ok), "ok");
    EXPECT_EQ(describe_flags(quality_nonfinite | quality_jump), "nonfinite|jump");
    EXPECT_EQ(std::string(to_string(window_quality::degraded)), "degraded");
}

TEST(Validator, RejectsInvalidOptions) {
    EXPECT_THROW(telemetry_validator(0), invariant_error);
    validator_options bad;
    bad.max_jump_factor = 0.5;  // neither disabled (0) nor a valid factor (>1)
    EXPECT_THROW(telemetry_validator(1, bad), invariant_error);
}

}  // namespace
}  // namespace mistral::wl
