#include "workload/session_map.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace mistral::wl {
namespace {

TEST(SessionMap, DefaultCycleMatchesPaperScale) {
    // 100 req/s should correspond to the paper's heavy ~800-session load.
    session_map m;
    EXPECT_NEAR(m.sessions_for_rate(100.0), 800.0, 1.0);
}

TEST(SessionMap, RoundTripsRateAndSessions) {
    session_map m(7.0, 0.5);
    const double sessions = m.sessions_for_rate(42.0);
    EXPECT_NEAR(m.rate_for_sessions(sessions), 42.0, 1e-9);
}

TEST(SessionMap, LittleLawProportionality) {
    session_map m(4.0, 1.0);
    EXPECT_DOUBLE_EQ(m.sessions_for_rate(10.0), 50.0);
    EXPECT_DOUBLE_EQ(m.cycle_time(), 5.0);
}

TEST(SessionMap, ZeroRateMapsToZeroSessions) {
    session_map m;
    EXPECT_DOUBLE_EQ(m.sessions_for_rate(0.0), 0.0);
}

TEST(SessionMap, RejectsInvalidInputs) {
    session_map m;
    EXPECT_THROW(m.sessions_for_rate(-1.0), invariant_error);
    EXPECT_THROW(m.rate_for_sessions(-1.0), invariant_error);
    EXPECT_THROW(session_map(0.0, 0.0), invariant_error);
}

}  // namespace
}  // namespace mistral::wl
