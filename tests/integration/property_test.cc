// Property tests: randomized sweeps over the state space.
//
// These tests exercise invariants that must hold for *every* reachable
// state, not just the handful of hand-built fixtures: action closure
// (applicable actions keep configurations structurally valid), planner
// connectivity (any two reachable configurations are connected by an
// executable plan), queueing monotonicity over a parameter grid, and the
// testbed's accounting identities.
#include <gtest/gtest.h>

#include "apps/rubis.h"
#include "cluster/translate.h"
#include "common/rng.h"
#include "core/planner.h"
#include "sim/testbed.h"

namespace mistral {
namespace {

cluster::cluster_model make_model(std::size_t hosts, std::size_t apps) {
    std::vector<apps::application_spec> specs;
    for (std::size_t a = 0; a < apps; ++a) {
        specs.push_back(apps::rubis_browsing("R" + std::to_string(a)));
    }
    return cluster::cluster_model(cluster::uniform_hosts(hosts), std::move(specs));
}

cluster::configuration base_config(const cluster::cluster_model& model) {
    cluster::configuration c(model.vm_count(), model.host_count());
    for (std::size_t h = 0; h < model.host_count(); ++h) {
        c.set_host_power(host_id{static_cast<std::int32_t>(h)}, true);
    }
    const std::size_t per_app =
        std::max<std::size_t>(1, model.host_count() / model.app_count());
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        const app_id app{static_cast<std::int32_t>(a)};
        for (std::size_t t = 0; t < model.app(app).tier_count(); ++t) {
            const std::size_t h = (a * per_app + t % per_app) % model.host_count();
            c.deploy(model.tier_vms(app, t)[0],
                     host_id{static_cast<std::int32_t>(h)}, 0.4);
        }
    }
    return c;
}

// Random walk over enumerated actions; every visited configuration must be
// structurally valid, and exact replay must reproduce it.
TEST(Property, RandomActionWalksPreserveStructuralValidity) {
    const auto model = make_model(4, 2);
    rng r(2026);
    for (int walk = 0; walk < 10; ++walk) {
        auto config = base_config(model);
        for (int step = 0; step < 40; ++step) {
            const auto actions = enumerate_actions(model, config);
            ASSERT_FALSE(actions.empty());
            const auto& a = actions[r.uniform_index(actions.size())];
            config = apply(model, config, a);
            std::string why;
            ASSERT_TRUE(structurally_valid(model, config, &why))
                << "walk " << walk << " step " << step << " after "
                << to_string(model, a) << ": " << why;
        }
    }
}

TEST(Property, ApplyIsDeterministicAndHashConsistent) {
    const auto model = make_model(4, 2);
    rng r(7);
    auto config = base_config(model);
    for (int step = 0; step < 60; ++step) {
        const auto actions = enumerate_actions(model, config);
        const auto& a = actions[r.uniform_index(actions.size())];
        const auto once = apply(model, config, a);
        const auto twice = apply(model, config, a);
        ASSERT_EQ(once, twice);
        ASSERT_EQ(once.hash(), twice.hash());
        config = once;
    }
}

// The planner must connect any two configurations reached by random walks,
// with every prefix applicable and the goal's per-tier replica counts and
// host set realized.
TEST(Property, PlannerConnectsRandomReachableConfigurations) {
    const auto model = make_model(4, 2);
    rng r(99);
    for (int trial = 0; trial < 8; ++trial) {
        auto from = base_config(model);
        auto to = base_config(model);
        for (int step = 0; step < 25; ++step) {
            const auto af = enumerate_actions(model, from);
            from = apply(model, from, af[r.uniform_index(af.size())]);
            const auto at = enumerate_actions(model, to);
            to = apply(model, to, at[r.uniform_index(at.size())]);
        }
        const auto plan = core::plan_transition(model, from, to);
        cluster::configuration cur = from;
        for (const auto& a : plan) {
            std::string why;
            ASSERT_TRUE(applicable(model, cur, a, &why))
                << trial << ": " << to_string(model, a) << ": " << why;
            cur = apply(model, cur, a);
        }
        std::string why;
        EXPECT_TRUE(structurally_valid(model, cur, &why)) << why;
    }
}

// LQN monotonicity over a (rate, cap) grid: response time rises with rate
// and falls with cap, everywhere.
class LqnGrid : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LqnGrid, ResponseMonotoneInRateAndCap) {
    const auto [rate, cap] = GetParam();
    const auto spec = apps::rubis_browsing("r");
    auto deploy = [&](double rr, double cc) {
        lqn::app_deployment dep;
        dep.spec = &spec;
        dep.rate = rr;
        dep.tiers.resize(3);
        for (std::size_t t = 0; t < 3; ++t) dep.tiers[t].replicas.push_back({t, cc});
        return lqn::solve({dep}, 3).apps[0].mean_response_time;
    };
    const double here = deploy(rate, cap);
    EXPECT_LE(deploy(rate * 0.8, cap), here + 1e-9);
    EXPECT_GE(deploy(rate * 1.2, cap), here - 1e-9);
    EXPECT_GE(deploy(rate, std::max(0.2, cap - 0.1)), here - 1e-9);
    EXPECT_LE(deploy(rate, std::min(0.8, cap + 0.1)), here + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LqnGrid,
    ::testing::Combine(::testing::Values(10.0, 25.0, 40.0, 55.0, 70.0),
                       ::testing::Values(0.3, 0.4, 0.6, 0.8)));

// Power model monotonicity across calibration exponents. On the physical
// calibration range r ∈ [1, 2] the curve 2ρ − ρ^r is monotone and stays
// within [idle, busy]; outside it the empirical form legitimately
// misbehaves — r > 2 overshoots `busy` mid-range and r < 1 dips below
// `idle` at low load — so the bounded property is asserted on [1, 2] only
// and the edge behaviours are pinned separately.
class PowerGrid : public ::testing::TestWithParam<double> {};

TEST_P(PowerGrid, PowerMonotoneAndBounded) {
    pwr::host_power_model m;
    m.r = GetParam();
    double prev = m.idle - 1.0;
    for (double rho = 0.0; rho <= 1.0 + 1e-9; rho += 0.05) {
        const double p = m.power(rho);
        EXPECT_GT(p, prev);
        EXPECT_GE(p, m.idle - 1e-9);
        EXPECT_LE(p, m.busy + 1e-9);
        prev = p;
    }
}

INSTANTIATE_TEST_SUITE_P(Exponents, PowerGrid,
                         ::testing::Values(1.0, 1.2, 1.4, 1.7, 2.0));

TEST(PowerGridEdge, LargeExponentOvershootsBusyMidRange) {
    pwr::host_power_model m;
    m.r = 3.5;
    double peak = 0.0;
    for (double rho = 0.0; rho <= 1.0 + 1e-9; rho += 0.01) {
        peak = std::max(peak, m.power(rho));
    }
    EXPECT_GT(peak, m.busy);                 // the documented overshoot
    EXPECT_NEAR(m.power(1.0), m.busy, 1e-9);  // but it lands back on busy
}

// Testbed accounting identities: observation windows tile time exactly and
// adapting fractions stay in [0, 1].
TEST(Property, TestbedObservationAccounting) {
    const auto model = make_model(3, 1);
    auto config = base_config(model);
    sim::testbed tb(model, config, {});
    tb.submit({cluster::migrate{model.tier_vms(app_id{0}, 2)[0], host_id{0}}});
    seconds clock = 0.0;
    rng r(5);
    for (int i = 0; i < 30; ++i) {
        const seconds dt = r.uniform(5.0, 180.0);
        const auto obs = tb.advance(dt, {40.0});
        clock += dt;
        ASSERT_NEAR(obs.time, clock, 1e-9);
        ASSERT_NEAR(obs.window, dt, 1e-9);
        ASSERT_GE(obs.adapting_fraction, 0.0);
        ASSERT_LE(obs.adapting_fraction, 1.0 + 1e-9);
        ASSERT_GT(obs.power, 0.0);
        for (double rt : obs.response_time) ASSERT_GE(rt, 0.0);
    }
    EXPECT_FALSE(tb.busy());
}

// Prediction consistency: the translate-layer power equals re-applying the
// host power models to the solver's utilizations, for random configurations.
TEST(Property, PredictionPowerConsistency) {
    const auto model = make_model(4, 2);
    rng r(31);
    auto config = base_config(model);
    for (int step = 0; step < 20; ++step) {
        const auto actions = enumerate_actions(model, config);
        config = apply(model, config, actions[r.uniform_index(actions.size())]);
        const std::vector<req_per_sec> rates = {r.uniform(0.0, 90.0),
                                                r.uniform(0.0, 90.0)};
        const auto pred = cluster::predict(model, config, rates);
        EXPECT_NEAR(pred.power,
                    predicted_power(model, config, pred.perf.host_utilization),
                    1e-9);
    }
}

}  // namespace
}  // namespace mistral
