// Integration tests: the full pipeline — traces → testbed → controllers —
// at reduced scale, checking the paper's qualitative claims end to end.
#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "core/experiment.h"
#include "obs/journal.h"
#include "sim/cost_campaign.h"
#include "workload/generators.h"

namespace mistral::core {
namespace {

// A 2-hour slice of the Fig. 4 workloads (covering the first flash crowd)
// keeps runtime test-sized while exercising real dynamics.
scenario crowd_scenario() {
    scenario_options opts;
    opts.host_count = 4;
    opts.app_count = 2;
    wl::generator_options gen;
    gen.duration = 2.0 * 3600.0;
    gen.seed = 1;
    auto wc0 = wl::world_cup_trace(gen, 0).scaled_to_range(0.0, 100.0);
    auto wc1 = wl::world_cup_trace(gen, 1).scaled_to_range(0.0, 100.0);
    opts.traces = {wc0.renamed("RUBiS-1"), wc1.renamed("RUBiS-2")};
    return make_rubis_scenario(opts);
}

class EndToEnd : public ::testing::Test {
protected:
    static const scenario& scn() {
        static const scenario s = crowd_scenario();
        return s;
    }
    static const cost::cost_table& costs() {
        static const cost::cost_table t = cost::cost_table::paper_defaults();
        return t;
    }
};

TEST_F(EndToEnd, MistralBeatsPerfPwrOnUtility) {
    mistral_strategy m(scn().model, costs());
    perf_pwr_strategy pp(scn().model);
    const auto rm = run_scenario(scn(), m);
    const auto rp = run_scenario(scn(), pp);
    EXPECT_GT(rm.cumulative_utility, rp.cumulative_utility);
}

TEST_F(EndToEnd, MistralUsesLessPowerThanPerfCost) {
    mistral_strategy m(scn().model, costs());
    perf_cost_strategy pc(scn().model, costs());
    const auto rm = run_scenario(scn(), m);
    const auto rc = run_scenario(scn(), pc);
    EXPECT_LT(rm.mean_power, rc.mean_power);
}

TEST_F(EndToEnd, MistralConsolidatesDuringLull) {
    mistral_strategy m(scn().model, costs());
    const auto r = run_scenario(scn(), m);
    const auto* hosts = r.series.find("hosts");
    ASSERT_NE(hosts, nullptr);
    double min_hosts = 99.0;
    for (const auto& s : hosts->samples()) min_hosts = std::min(min_hosts, s.value);
    EXPECT_LE(min_hosts, 3.0);  // shuts at least one host at some point
}

TEST_F(EndToEnd, ControllersSurviveFullCampaignTable) {
    // Run Mistral with a *measured* (campaign) cost table instead of the
    // published defaults; the pipeline must hold together identically.
    sim::campaign_options copt;
    copt.workloads = {12.5, 50.0, 100.0};
    copt.trials = 1;
    const auto table = sim::run_cost_campaign(
        scn().model.applications().front(), copt);
    mistral_strategy m(scn().model, table);
    const auto r = run_scenario(scn(), m);
    EXPECT_GT(r.invocations, 0u);
    EXPECT_GT(r.total_actions, 0u);
}

TEST_F(EndToEnd, HierarchicalControllerRunsTheScenario) {
    obs::metrics_registry registry;
    obs::memory_sink sink(&registry);
    controller_builder builder;
    builder.sink(&sink);
    global_coordinator h(scn().model, costs(), level1_pods({{0, 1, 2, 3}}),
                         builder);
    const auto r = run_scenario(scn(), h);
    EXPECT_EQ(r.strategy_name, "Mistral-2L");
    EXPECT_GT(r.invocations, 10u);   // level-1 runs every interval
    EXPECT_GT(registry.counter_value("mistral_pod_0_decisions_total"), 0);
}

TEST_F(EndToEnd, SearchSelfAwarenessImprovesOrMatchesUtility) {
    controller_options self_aware;
    controller_options naive;
    naive.search.self_aware = false;
    mistral_strategy sa(scn().model, costs(), self_aware);
    mistral_strategy nv(scn().model, costs(), naive);
    const auto ra = run_scenario(scn(), sa);
    const auto rn = run_scenario(scn(), nv);
    // Fig. 10: self-aware search is much faster; utility over this short
    // 2-hour slice is noisy, so only a loose floor is asserted here (the
    // fig10 bench runs the full-day comparison).
    EXPECT_LT(ra.search_duration.mean(), rn.search_duration.mean());
    EXPECT_GT(ra.cumulative_utility, rn.cumulative_utility - 50.0);
}

TEST_F(EndToEnd, ViolationsConcentrateAroundTheCrowd) {
    mistral_strategy m(scn().model, costs());
    const auto r = run_scenario(scn(), m);
    // The run must not violate in more than a third of intervals overall
    // (the crowd is a minority of the window).
    EXPECT_LT(r.violation_fraction[0], 0.34);
    EXPECT_LT(r.violation_fraction[1], 0.34);
}

}  // namespace
}  // namespace mistral::core
