// The identity-lens proof: a single-pod global_coordinator must be
// *byte-identical* to the flat mistral_strategy — same invocations, same
// actions, same modeled delays, same accrued utility — at evaluator thread
// counts 1 and 4 alike. This is what licenses "the two-level scheme is a
// special case of pod_controller + global_coordinator": the sharding
// machinery costs nothing when there is one shard.
#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "core/experiment.h"
#include "workload/generators.h"

namespace mistral::core {
namespace {

scenario small_scenario() {
    scenario_options opts;
    opts.host_count = 4;
    opts.app_count = 2;
    wl::generator_options gen;
    gen.duration = 1.5 * 3600.0;
    gen.seed = 7;
    auto w0 = wl::world_cup_trace(gen, 0).scaled_to_range(0.0, 90.0);
    auto w1 = wl::world_cup_trace(gen, 1).scaled_to_range(0.0, 90.0);
    opts.traces = {w0.renamed("A"), w1.renamed("B")};
    return make_rubis_scenario(opts);
}

void expect_byte_identical(std::size_t threads) {
    const auto scn = small_scenario();
    const auto costs = cost::cost_table::paper_defaults();

    controller_builder builder;
    builder.threads(threads);
    global_coordinator pods(scn.model, costs,
                            uniform_partition(scn.model, 1), builder);

    controller_options flat_opts;
    flat_opts.search.evaluation.threads = threads;
    mistral_strategy flat(scn.model, costs, flat_opts);

    const auto rp = run_scenario(scn, pods);
    const auto rf = run_scenario(scn, flat);

    // Exact floating-point equality, not tolerances: the identity lens hands
    // the flat controller's own inputs through untouched, so every derived
    // number must match to the last bit.
    EXPECT_EQ(rp.cumulative_utility, rf.cumulative_utility);
    EXPECT_EQ(rp.mean_power, rf.mean_power);
    EXPECT_EQ(rp.invocations, rf.invocations);
    EXPECT_EQ(rp.total_actions, rf.total_actions);
    EXPECT_EQ(rp.search_duration.mean(), rf.search_duration.mean());
    EXPECT_EQ(rp.search_duration.max(), rf.search_duration.max());
    EXPECT_EQ(rp.violation_fraction, rf.violation_fraction);
}

TEST(PodEquivalence, SinglePodMatchesFlatControllerSingleThread) {
    expect_byte_identical(1);
}

TEST(PodEquivalence, SinglePodMatchesFlatControllerFourThreads) {
    expect_byte_identical(4);
}

// The per-decision trace, compared action-for-action: stronger than the
// aggregate run comparison because it catches compensating differences.
TEST(PodEquivalence, DecisionTraceIsIdenticalStepByStep) {
    const auto scn = small_scenario();
    const auto costs = cost::cost_table::paper_defaults();
    global_coordinator pods(scn.model, costs,
                            uniform_partition(scn.model, 1));
    mistral_strategy flat(scn.model, costs);

    auto cfg_p = scn.initial;
    auto cfg_f = scn.initial;
    seconds t = 0.0;
    for (const double rate : {40.0, 44.0, 60.0, 85.0, 30.0, 12.0}) {
        const auto op = pods.decide({t, {rate, rate * 0.8}, cfg_p, 1.0});
        const auto of = flat.decide({t, {rate, rate * 0.8}, cfg_f, 1.0});
        ASSERT_EQ(op.invoked, of.invoked) << "t=" << t;
        ASSERT_EQ(op.actions, of.actions) << "t=" << t;
        EXPECT_EQ(op.decision_delay, of.decision_delay);
        EXPECT_EQ(op.decision_power_cost, of.decision_power_cost);
        EXPECT_EQ(op.stats.expansions, of.stats.expansions);
        EXPECT_EQ(op.stats.generated, of.stats.generated);
        for (const auto& a : op.actions) {
            cfg_p = apply(scn.model, cfg_p, a);
            cfg_f = apply(scn.model, cfg_f, a);
        }
        t += 120.0;
    }
}

}  // namespace
}  // namespace mistral::core
