// Randomized fault-injection invariant harness.
//
// Each episode derives a random fault schedule (per-kind failure and
// straggler probabilities, host crashes with optional recovery) from its
// seed, then drives the full Mistral controller against a fault-injecting
// testbed for a dozen monitoring intervals. Invariants checked every
// interval:
//
//  * every action the controller emits is applicable, in sequence, from the
//    configuration the testbed actually reports;
//  * the actual configuration stays structurally valid (degraded validity —
//    replica minimums excepted — while hosts are crashed; full validity when
//    the schedule contains no crashes, because a failed action leaves the
//    configuration in its pre-action state);
//  * metered wasted time stays within the adapting time, and the
//    controller's wasted-adaptation ledger agrees with the failure notices
//    it received;
//  * accrued utility stays finite and the online cumulative sum matches an
//    independent re-accumulation of the interval ledger.
//
// The episode count is a CMake knob (-DMISTRAL_FAULT_EPISODES=N, default
// 200) so CI can dial coverage against wall-clock.
//
// The harness also proves it can catch a broken controller: the documented
// mutation `reconcile.plan_against_actual = false` (plan from the intended
// configuration instead of the observed one) must produce illegal action
// sequences under a hostile fault schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/rubis.h"
#include "common/rng.h"
#include "core/controller.h"
#include "sim/testbed.h"

#ifndef MISTRAL_FAULT_EPISODES
#define MISTRAL_FAULT_EPISODES 200
#endif

namespace mistral {
namespace {

cluster::cluster_model make_model(std::size_t hosts, std::size_t apps) {
    std::vector<apps::application_spec> specs;
    for (std::size_t a = 0; a < apps; ++a) {
        specs.push_back(apps::rubis_browsing("R" + std::to_string(a)));
    }
    return cluster::cluster_model(cluster::uniform_hosts(hosts), std::move(specs));
}

cluster::configuration base_config(const cluster::cluster_model& model) {
    cluster::configuration c(model.vm_count(), model.host_count());
    for (std::size_t h = 0; h < model.host_count(); ++h) {
        c.set_host_power(host_id{static_cast<std::int32_t>(h)}, true);
    }
    const std::size_t per_app =
        std::max<std::size_t>(1, model.host_count() / model.app_count());
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        const app_id app{static_cast<std::int32_t>(a)};
        for (std::size_t t = 0; t < model.app(app).tier_count(); ++t) {
            const std::size_t h = (a * per_app + t % per_app) % model.host_count();
            c.deploy(model.tier_vms(app, t)[0],
                     host_id{static_cast<std::int32_t>(h)}, 0.4);
        }
    }
    return c;
}

constexpr seconds kInterval = 120.0;
constexpr int kIntervals = 12;

// Random fault schedule for one episode, derived entirely from the seed.
sim::fault_options random_faults(rng& r, bool with_crashes) {
    sim::fault_options f;
    for (std::size_t k = 0; k < sim::action_kind_count; ++k) {
        f.failure_probability[k] = r.uniform(0.0, 0.25);
        f.straggler_probability[k] = r.uniform(0.0, 0.25);
    }
    f.straggler_multiplier = r.uniform(1.5, 4.0);
    f.failure_duration_fraction = r.uniform(0.1, 0.9);
    if (with_crashes) {
        const std::size_t crashes = r.uniform_index(3);  // 0, 1 or 2
        for (std::size_t i = 0; i < crashes; ++i) {
            sim::host_crash_event e;
            e.at = r.uniform(60.0, 0.7 * kIntervals * kInterval);
            e.host = static_cast<std::int32_t>(r.uniform_index(3));
            // Half the crashes recover, half are permanent.
            e.recover_after = r.uniform() < 0.5 ? r.uniform(100.0, 500.0) : 0.0;
            f.host_crashes.push_back(e);
        }
    }
    return f;
}

// Cheap but real search settings: the invariants concern legality and
// accounting, not plan quality, and the harness runs hundreds of episodes.
core::controller_options episode_controller_options() {
    core::controller_options opts;
    opts.search.max_expansions = 60;
    opts.search.stop_factor = 1.2;
    opts.band_width = 12.0;
    return opts;
}

struct episode_tally {
    std::int64_t notices_delivered = 0;  // failure notices handed to step()
    std::int64_t violations = 0;         // illegal emitted sequences
};

// Runs one controller-vs-testbed episode. With `expect_legal`, any illegal
// emitted action fails the test; otherwise (the mutation check) illegal
// sequences are counted and dropped.
episode_tally run_episode(const cluster::cluster_model& model,
                          std::uint64_t seed, const sim::fault_options& faults,
                          core::reconcile_options rec, bool expect_legal) {
    sim::testbed_options tb_opts;
    tb_opts.seed = seed;
    tb_opts.faults = faults;
    sim::testbed tb(model, base_config(model), tb_opts);

    auto ctl_opts = episode_controller_options();
    ctl_opts.reconcile = rec;
    core::mistral_controller ctl(model, cost::cost_table::paper_defaults(),
                                 ctl_opts);
    const core::utility_model util{ctl_opts.utility};

    rng workload(seed ^ 0xabcdULL);
    const bool crash_free = faults.host_crashes.empty();

    episode_tally tally;
    std::vector<cluster::action> pending_failed;
    std::vector<std::int32_t> pending_down, pending_up;
    std::int64_t failures_seen = 0;  // delivered + still pending
    double metered_wasted = 0.0;
    dollars cumulative = 0.0;
    std::vector<dollars> ledger;  // per-interval utilities
    dollars last_utility = 0.0;
    req_per_sec rate = 45.0;

    for (int i = 0; i < kIntervals; ++i) {
        const seconds t = i * kInterval;
        rate = std::clamp(rate + workload.uniform(-18.0, 18.0), 15.0, 75.0);
        const std::vector<req_per_sec> rates(model.app_count(), rate);

        if (!tb.busy()) {
            core::decision_input din{t, rates, tb.config(), last_utility};
            din.failed = pending_failed;
            din.hosts_failed = pending_down;
            din.hosts_recovered = pending_up;
            tally.notices_delivered +=
                static_cast<std::int64_t>(pending_failed.size());
            pending_failed.clear();
            pending_down.clear();
            pending_up.clear();

            const auto d = ctl.step(din);
            if (!d.actions.empty()) {
                // Legality against the *actual* configuration, in sequence.
                auto cfg = tb.config();
                bool legal = true;
                for (const auto& a : d.actions) {
                    std::string why;
                    if (!applicable(model, cfg, a, &why)) {
                        legal = false;
                        if (expect_legal) {
                            ADD_FAILURE()
                                << "seed " << seed << " t=" << t << ": illegal "
                                << to_string(model, a) << ": " << why;
                        }
                        break;
                    }
                    cfg = apply(model, cfg, a);
                }
                if (legal) {
                    tb.submit(d.actions, d.stats.duration);
                } else {
                    ++tally.violations;
                }
            }
        }

        const auto obs = tb.advance(kInterval, rates);
        pending_failed.insert(pending_failed.end(), obs.failed.begin(),
                              obs.failed.end());
        pending_down.insert(pending_down.end(), obs.hosts_failed.begin(),
                            obs.hosts_failed.end());
        pending_up.insert(pending_up.end(), obs.hosts_recovered.begin(),
                          obs.hosts_recovered.end());
        failures_seen += static_cast<std::int64_t>(obs.failed.size());

        // Structural invariants on the actual configuration.
        std::string why;
        EXPECT_TRUE(cluster::structurally_valid_degraded(model, tb.config(), &why))
            << "seed " << seed << " t=" << obs.time << ": " << why;
        if (crash_free) {
            EXPECT_TRUE(cluster::structurally_valid(model, tb.config(), &why))
                << "seed " << seed << " t=" << obs.time << ": " << why;
        }

        // Metering invariants.
        EXPECT_GE(obs.wasted_fraction, 0.0);
        EXPECT_LE(obs.wasted_fraction, obs.adapting_fraction + 1e-9)
            << "seed " << seed << " t=" << obs.time;
        metered_wasted += obs.wasted_fraction * obs.window;

        std::vector<seconds> targets(model.app_count());
        for (std::size_t a = 0; a < model.app_count(); ++a) {
            targets[a] = model.app(app_id{static_cast<std::int32_t>(a)})
                             .target_response_time(rates[a]);
        }
        const dollars u =
            util.interval_utility(rates, obs.response_time, targets, obs.power);
        EXPECT_TRUE(std::isfinite(u)) << "seed " << seed << " t=" << obs.time;
        cumulative += u;
        ledger.push_back(u);
        last_utility = u;
    }

    // The controller's failure ledger is exactly the notices delivered to it.
    const auto& rs = ctl.reconciliation();
    EXPECT_EQ(rs.failed_actions, tally.notices_delivered) << "seed " << seed;
    EXPECT_GE(rs.wasted_adaptation_time, 0.0);
    EXPECT_GE(rs.wasted_transient_cost, 0.0);
    if (tally.notices_delivered == 0) {
        EXPECT_EQ(rs.wasted_adaptation_time, 0.0) << "seed " << seed;
        EXPECT_EQ(rs.wasted_transient_cost, 0.0) << "seed " << seed;
    } else {
        EXPECT_GT(rs.wasted_adaptation_time, 0.0) << "seed " << seed;
    }
    // Wasted execution time can only come from failures or crashes.
    if (failures_seen == 0 && crash_free) {
        EXPECT_EQ(metered_wasted, 0.0) << "seed " << seed;
    }

    // Accrued utility matches an independent re-accumulation of the ledger.
    dollars replay = 0.0;
    for (const dollars u : ledger) replay += u;
    EXPECT_NEAR(replay, cumulative, 1e-9 * (1.0 + std::abs(cumulative)))
        << "seed " << seed;

    return tally;
}

const cluster::cluster_model& shared_model() {
    static const cluster::cluster_model model = make_model(3, 1);
    return model;
}

// The headline harness: MISTRAL_FAULT_EPISODES random fault schedules, zero
// invariant violations.
TEST(FaultProperty, RandomEpisodesPreserveInvariants) {
    const auto& model = shared_model();
    std::int64_t failures_total = 0;
    for (int ep = 0; ep < MISTRAL_FAULT_EPISODES; ++ep) {
        const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(ep);
        rng r(seed ^ 0x5eedULL);
        const auto faults = random_faults(r, /*with_crashes=*/true);
        const auto tally =
            run_episode(model, seed, faults, {}, /*expect_legal=*/true);
        EXPECT_EQ(tally.violations, 0) << "episode " << ep;
        failures_total += tally.notices_delivered;
        if (::testing::Test::HasFailure()) break;  // first bad episode is enough
    }
    // The schedules must actually bite: across all episodes some actions fail.
    EXPECT_GT(failures_total, 0);
}

// With the injector disabled the controller must see no fault signals and
// the reconciliation ledger must stay all-zero.
TEST(FaultProperty, InertScheduleLeavesLedgerUntouched) {
    const auto& model = shared_model();
    for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
        const auto tally =
            run_episode(model, seed, {}, {}, /*expect_legal=*/true);
        EXPECT_EQ(tally.notices_delivered, 0);
        EXPECT_EQ(tally.violations, 0);
    }
}

// Mutation check: a reconciler that plans from what it *intended* instead of
// what the testbed reports must be caught by this harness — under a hostile
// schedule it emits action sequences that are illegal against reality.
TEST(FaultProperty, BrokenReconcilerIsCaught) {
    const auto& model = shared_model();
    core::reconcile_options broken;
    broken.plan_against_actual = false;  // the documented mutation
    auto faults = sim::fault_options::uniform(0.5, 0.0);

    std::int64_t violations = 0;
    for (int ep = 0; ep < 30 && violations == 0; ++ep) {
        const std::uint64_t seed = 5000 + static_cast<std::uint64_t>(ep);
        const auto tally =
            run_episode(model, seed, faults, broken, /*expect_legal=*/false);
        violations += tally.violations;
    }
    EXPECT_GT(violations, 0)
        << "the mutated controller was never caught planning against stale state";
}

}  // namespace
}  // namespace mistral
