// Differential correctness of delta evaluation.
//
// The per-app sub-solve cache and the incremental configuration hash must be
// invisible in every decision: the same seed, workload, and fault schedule
// must produce a byte-identical decision-and-measurement trace with delta
// evaluation on or off, serial or parallel — across randomized action
// sequences that include fault-injected host crashes. Runs under the
// `sanitize` CTest label so the thread-sanitizer build covers the staged
// parallel delta path too.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "apps/rubis.h"
#include "common/rng.h"
#include "core/controller.h"
#include "sim/testbed.h"

namespace mistral {
namespace {

cluster::cluster_model make_model(std::size_t hosts, std::size_t apps) {
    std::vector<apps::application_spec> specs;
    for (std::size_t a = 0; a < apps; ++a) {
        specs.push_back(apps::rubis_browsing("R" + std::to_string(a)));
    }
    return cluster::cluster_model(cluster::uniform_hosts(hosts), std::move(specs));
}

cluster::configuration base_config(const cluster::cluster_model& model) {
    cluster::configuration c(model.vm_count(), model.host_count());
    for (std::size_t h = 0; h < model.host_count(); ++h) {
        c.set_host_power(host_id{static_cast<std::int32_t>(h)}, true);
    }
    const std::size_t per_app =
        std::max<std::size_t>(1, model.host_count() / model.app_count());
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        const app_id app{static_cast<std::int32_t>(a)};
        for (std::size_t t = 0; t < model.app(app).tier_count(); ++t) {
            const std::size_t h = (a * per_app + t % per_app) % model.host_count();
            c.deploy(model.tier_vms(app, t)[0],
                     host_id{static_cast<std::int32_t>(h)}, 0.4);
        }
    }
    return c;
}

// One line per interval capturing everything delta evaluation could perturb:
// decision flags, exact action strings, the bit pattern of the expected
// utility, and the configuration hash after actuation and faults.
std::string run_trace(const cluster::cluster_model& model, std::uint64_t seed,
                      std::size_t threads, bool delta_eval) {
    sim::testbed_options tb_opts;
    tb_opts.seed = seed;
    auto& f = tb_opts.faults;
    for (std::size_t k = 0; k < sim::action_kind_count; ++k) {
        f.failure_probability[k] = 0.25;
        f.straggler_probability[k] = 0.25;
    }
    f.host_crashes.push_back({.at = 400.0, .host = 2, .recover_after = 300.0});
    sim::testbed tb(model, base_config(model), tb_opts);

    core::controller_options opts;
    opts.search.max_expansions = 80;
    opts.search.evaluation.with_threads(threads).with_delta_eval(delta_eval);
    core::mistral_controller ctl(model, cost::cost_table::paper_defaults(), opts);

    rng workload(seed ^ 0x5a5aULL);
    std::ostringstream trace;
    trace.precision(17);
    std::vector<cluster::action> pending_failed;
    std::vector<std::int32_t> pending_down, pending_up;
    dollars last_utility = 0.0;

    for (int i = 0; i < 10; ++i) {
        const seconds t = i * 120.0;
        const std::vector<req_per_sec> rates(model.app_count(),
                                             workload.uniform(20.0, 70.0));
        if (!tb.busy()) {
            core::decision_input din{t, rates, tb.config(), last_utility};
            din.failed = pending_failed;
            din.hosts_failed = pending_down;
            din.hosts_recovered = pending_up;
            pending_failed.clear();
            pending_down.clear();
            pending_up.clear();
            const auto d = ctl.step(din);
            trace << i << " invoked=" << d.invoked << " repair=" << d.repair
                  << " reconciled=" << d.reconciled;
            for (const auto& a : d.actions) trace << " [" << to_string(model, a) << "]";
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(d.expected_utility));
            std::memcpy(&bits, &d.expected_utility, sizeof(bits));
            trace << " eu=" << bits << "\n";
            if (!d.actions.empty()) tb.submit(d.actions, d.stats.duration);
        } else {
            trace << i << " busy\n";
        }

        const auto obs = tb.advance(120.0, rates);
        pending_failed.insert(pending_failed.end(), obs.failed.begin(),
                              obs.failed.end());
        pending_down.insert(pending_down.end(), obs.hosts_failed.begin(),
                            obs.hosts_failed.end());
        pending_up.insert(pending_up.end(), obs.hosts_recovered.begin(),
                          obs.hosts_recovered.end());
        trace << "  hash=" << tb.config().hash()
              << " failed=" << obs.failed.size()
              << " down=" << obs.hosts_failed.size()
              << " up=" << obs.hosts_recovered.size() << " power=" << obs.power;
        for (const double rt : obs.response_time) trace << " rt=" << rt;
        trace << "\n";
        last_utility = obs.power;
    }
    return trace.str();
}

TEST(DeltaEval, TraceIsByteIdenticalWithDeltaOnOrOff) {
    const auto model = make_model(4, 2);
    for (const std::uint64_t seed : {5ull, 6ull}) {
        const auto off = run_trace(model, seed, 1, false);
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            const auto on = run_trace(model, seed, threads, true);
            EXPECT_EQ(off, on) << "seed " << seed << " threads " << threads;
        }
        // The schedule must actually exercise faults (host crash included)
        // for the comparison to mean anything.
        EXPECT_NE(off.find("down=1"), std::string::npos) << "seed " << seed;
    }
}

// Replays of the same delta-on run are bit-identical — the app cache's LRU
// state is a deterministic function of the action sequence.
TEST(DeltaEval, DeltaOnReplaysBitIdentically) {
    const auto model = make_model(4, 2);
    EXPECT_EQ(run_trace(model, 9, 4, true), run_trace(model, 9, 4, true));
}

}  // namespace
}  // namespace mistral
