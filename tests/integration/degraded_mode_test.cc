// Differential integration tests for degraded-mode operation.
//
// Two contracts from the degraded-mode design:
//
//  * Inertness — the subsystem is compiled in and enabled by default, yet a
//    sensor-fault-free run is byte-identical to a run with every degraded
//    knob switched off: the validator passes clean windows through with
//    identical bits, the ladder never leaves the full rung, and the
//    divergence guard never fires on realistic traces.
//
//  * Damage control — under spiked telemetry (sensor faults corrupting what
//    the controller observes while the testbed's ground truth stays true),
//    the guarded controller demotes down the ladder, journals the
//    transitions, and lands near the fault-free utility, while the same
//    controller with the guard off pays measurably more for the phantom
//    load.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "core/experiment.h"
#include "obs/journal.h"
#include "workload/generators.h"

namespace mistral::core {
namespace {

std::uint64_t bits_of(double v) {
    std::uint64_t b;
    static_assert(sizeof b == sizeof v);
    std::memcpy(&b, &v, sizeof b);
    return b;
}

// A two-hour scenario whose workloads actually move (a step and a random
// walk), so band exits, predictions, and adaptation all get exercised.
scenario moving_scenario(sim::sensor_fault_options sensors = {},
                         obs::sink* sink = nullptr) {
    scenario_options opts;
    opts.host_count = 4;
    opts.app_count = 2;
    wl::generator_options gen;
    gen.duration = 2.0 * 3600.0;  // 60 monitoring intervals
    gen.noise = 0.02;
    opts.traces = {wl::step_trace("a", 30.0, 60.0, 3600.0, gen),
                   wl::random_walk_trace("b", 30.0, 70.0, 0.08, gen)};
    opts.sensor_faults = sensors;
    opts.sink = sink;
    return make_rubis_scenario(opts);
}

controller_options all_degraded_machinery_off() {
    controller_options opts;
    opts.degraded.enabled = false;
    opts.arma.divergence.enabled = false;
    return opts;
}

TEST(DegradedMode, SubsystemIsByteInertOnFaultFreeTraces) {
    const auto scn = moving_scenario();
    mistral_strategy guarded(scn.model, cost::cost_table::paper_defaults());
    mistral_strategy bare(scn.model, cost::cost_table::paper_defaults(),
                          all_degraded_machinery_off());
    const auto ra = run_scenario(scn, guarded);
    const auto rb = run_scenario(scn, bare);

    EXPECT_EQ(bits_of(ra.cumulative_utility), bits_of(rb.cumulative_utility));
    EXPECT_EQ(bits_of(ra.mean_power), bits_of(rb.mean_power));
    EXPECT_EQ(ra.total_actions, rb.total_actions);
    EXPECT_EQ(ra.invocations, rb.invocations);
    const auto* ua = ra.series.find("utility");
    const auto* ub = rb.series.find("utility");
    ASSERT_NE(ua, nullptr);
    ASSERT_NE(ub, nullptr);
    ASSERT_EQ(ua->size(), ub->size());
    for (std::size_t i = 0; i < ua->size(); ++i) {
        ASSERT_EQ(bits_of(ua->samples()[i].value), bits_of(ub->samples()[i].value))
            << "interval " << i;
    }

    // And the guarded run never engaged any of the machinery.
    EXPECT_EQ(guarded.controller().mode(), control_mode::full);
    EXPECT_EQ(guarded.controller().degraded().degraded_windows, 0);
    EXPECT_EQ(guarded.controller().degraded().demotions, 0);
    for (const auto& p : guarded.controller().predictors()) {
        EXPECT_TRUE(p.trusted());
        EXPECT_EQ(p.divergence_count(), 0);
    }
}

TEST(DegradedMode, SpikedTelemetryDemotesJournalsAndLimitsTheDamage) {
    sim::sensor_fault_options sensors;
    sensors.spike_probability = 0.15;

    // Ground truth: the same scenario with clean sensors.
    const auto clean = moving_scenario();
    mistral_strategy baseline(clean.model, cost::cost_table::paper_defaults());
    const auto fault_free = run_scenario(clean, baseline);

    // Guarded: the opt-in jump check grades spiked windows degraded (spikes
    // multiply the true rate by at least 2), demoting the ladder to greedy.
    obs::memory_sink journal;
    const auto faulted = moving_scenario(sensors, &journal);
    controller_options guarded_opts;
    guarded_opts.degraded.validator.max_jump_factor = 1.8;
    guarded_opts.degraded.validator.jump_slack = 10.0;
    guarded_opts.sink = &journal;
    mistral_strategy guarded(faulted.model, cost::cost_table::paper_defaults(),
                             guarded_opts);
    const auto with_guard = run_scenario(faulted, guarded);

    // Naive: identical corrupted observations, guard compiled out of the
    // decision path.
    const auto faulted_again = moving_scenario(sensors);
    mistral_strategy naive(faulted_again.model, cost::cost_table::paper_defaults(),
                           all_degraded_machinery_off());
    const auto without_guard = run_scenario(faulted_again, naive);

    // The scenario injected faults and the ladder reacted — and said so.
    EXPECT_GE(journal.count("telemetry_fault"), 1u);
    EXPECT_GE(journal.count("ladder_transition"), 1u);
    EXPECT_GE(guarded.controller().degraded().degraded_windows, 1);
    EXPECT_GE(guarded.controller().degraded().demotions, 1);
    EXPECT_GE(guarded.controller().degraded().greedy_decisions, 1);

    // Damage control: within 5 % of the fault-free utility with the guard,
    // strictly worse without it.
    EXPECT_GE(with_guard.cumulative_utility,
              fault_free.cumulative_utility -
                  0.05 * std::abs(fault_free.cumulative_utility));
    EXPECT_GT(with_guard.cumulative_utility, without_guard.cumulative_utility);
}

}  // namespace
}  // namespace mistral::core
