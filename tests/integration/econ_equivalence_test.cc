// Differential harness pinning the economics subsystem to the pre-econ
// controller.
//
// Two contracts from the econ design (DESIGN.md §15):
//
//  * flat identity — a controller bound to an all-default econ profile
//    (flat tariff at the paper's $0.01/W·interval, flat pricing, no carbon
//    price, no cap schedule) is byte-identical to the plain controller:
//    same decision trace, same modeled delays, same utility series to the
//    last bit, at evaluator thread counts 1 and 4, fault-injected and
//    fault-free, and under the sharded coordinator. Only the extra
//    "econ_decision" journal events may differ. This licenses everything
//    the econ layer adds: the flat path *is* the original arithmetic.
//
//  * tariff reactivity — a price-block change re-prices every layer through
//    the shared econ state, forces a replan (trigger "tariff"), journals a
//    tariff_change, and a power-cap schedule tracks into the searches'
//    terminal gate step by step.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/coordinator.h"
#include "core/experiment.h"
#include "obs/journal.h"
#include "workload/generators.h"

namespace mistral::core {
namespace {

std::uint64_t bits_of(double v) {
    std::uint64_t b;
    static_assert(sizeof b == sizeof v);
    std::memcpy(&b, &v, sizeof b);
    return b;
}

// All-default econ profile: flat tariff at the paper's price, flat pricing.
econ_profile flat_profile() {
    econ_profile p;
    p.enabled = true;
    return p;
}

// A flash-crowd scenario whose workloads actually move, so band exits,
// forecasts, and adaptation all get exercised.
scenario moving_scenario(sim::sensor_fault_options sensors = {},
                         sim::fault_options testbed_faults = {},
                         obs::sink* sink = nullptr) {
    scenario_options opts;
    opts.host_count = 4;
    opts.app_count = 2;
    wl::generator_options gen;
    gen.duration = 1.5 * 3600.0;
    gen.seed = 23;
    gen.noise = 0.02;
    opts.traces = {wl::flash_crowd_trace("a", 25.0, 85.0, 2400.0, 600.0,
                                         1200.0, gen),
                   wl::step_trace("b", 30.0, 55.0, 3000.0, gen)};
    opts.sensor_faults = sensors;
    opts.testbed.faults = testbed_faults;
    opts.sink = sink;
    return make_rubis_scenario(opts);
}

controller_options econ_options(std::size_t threads = 1) {
    controller_options opts;
    opts.econ = flat_profile();
    opts.search.evaluation.threads = threads;
    return opts;
}

controller_options plain_options(std::size_t threads = 1) {
    controller_options opts;
    opts.search.evaluation.threads = threads;
    return opts;
}

void expect_identical_runs(const run_result& a, const run_result& b) {
    EXPECT_EQ(bits_of(a.cumulative_utility), bits_of(b.cumulative_utility));
    EXPECT_EQ(bits_of(a.mean_power), bits_of(b.mean_power));
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.total_actions, b.total_actions);
    EXPECT_EQ(a.total_failed_actions, b.total_failed_actions);
    EXPECT_EQ(bits_of(a.search_duration.mean()),
              bits_of(b.search_duration.mean()));
    EXPECT_EQ(bits_of(a.search_duration.max()),
              bits_of(b.search_duration.max()));
    EXPECT_EQ(a.violation_fraction, b.violation_fraction);
    const auto* ua = a.series.find("utility");
    const auto* ub = b.series.find("utility");
    ASSERT_NE(ua, nullptr);
    ASSERT_NE(ub, nullptr);
    ASSERT_EQ(ua->size(), ub->size());
    for (std::size_t i = 0; i < ua->size(); ++i) {
        ASSERT_EQ(bits_of(ua->samples()[i].value),
                  bits_of(ub->samples()[i].value))
            << "interval " << i;
    }
}

void expect_flat_econ_matches_plain(std::size_t threads,
                                    sim::sensor_fault_options sensors = {},
                                    sim::fault_options testbed_faults = {}) {
    const auto scn = moving_scenario(sensors, testbed_faults);
    const auto costs = cost::cost_table::paper_defaults();
    mistral_strategy econ(scn.model, costs, econ_options(threads));
    mistral_strategy plain(scn.model, costs, plain_options(threads));
    expect_identical_runs(run_scenario(scn, econ), run_scenario(scn, plain));
}

TEST(EconEquivalence, FlatEconMatchesPlainFaultFreeSingleThread) {
    expect_flat_econ_matches_plain(1);
}

TEST(EconEquivalence, FlatEconMatchesPlainFaultFreeFourThreads) {
    expect_flat_econ_matches_plain(4);
}

TEST(EconEquivalence, FlatEconMatchesPlainUnderSensorFaults) {
    // Sensor corruption exercises the validator/ladder interplay on both
    // sides — the econ binding must not perturb the fail-safe machinery.
    expect_flat_econ_matches_plain(1, sim::sensor_fault_options::uniform(0.06));
    expect_flat_econ_matches_plain(4, sim::sensor_fault_options::uniform(0.06));
}

TEST(EconEquivalence, FlatEconMatchesPlainUnderTestbedFaults) {
    // Aborting/straggling actions change the measured state both controllers
    // replan from; divergence here would mean the econ path leaks state.
    expect_flat_econ_matches_plain(1, {}, sim::fault_options::uniform(0.2, 0.1));
    expect_flat_econ_matches_plain(4, {}, sim::fault_options::uniform(0.2, 0.1));
}

// The per-decision trace compared action-for-action: stronger than the
// aggregate run comparison because it catches compensating differences.
TEST(EconEquivalence, FlatEconDecisionTraceIsIdenticalStepByStep) {
    const auto scn = moving_scenario();
    const auto costs = cost::cost_table::paper_defaults();
    mistral_strategy econ(scn.model, costs, econ_options());
    mistral_strategy plain(scn.model, costs, plain_options());

    auto cfg_e = scn.initial;
    auto cfg_p = scn.initial;
    seconds t = 0.0;
    for (const double rate : {40.0, 44.0, 60.0, 85.0, 30.0, 12.0, 70.0}) {
        const auto oe = econ.decide({t, {rate, rate * 0.8}, cfg_e, 1.0});
        const auto op = plain.decide({t, {rate, rate * 0.8}, cfg_p, 1.0});
        ASSERT_EQ(oe.invoked, op.invoked) << "t=" << t;
        ASSERT_EQ(oe.actions, op.actions) << "t=" << t;
        EXPECT_EQ(bits_of(oe.decision_delay), bits_of(op.decision_delay));
        EXPECT_EQ(bits_of(oe.decision_power_cost),
                  bits_of(op.decision_power_cost));
        EXPECT_EQ(oe.stats.expansions, op.stats.expansions);
        EXPECT_EQ(oe.stats.generated, op.stats.generated);
        EXPECT_EQ(oe.stats.eval_cache_hits, op.stats.eval_cache_hits);
        EXPECT_EQ(oe.stats.eval_cache_misses, op.stats.eval_cache_misses);
        for (const auto& a : oe.actions) {
            cfg_e = apply(scn.model, cfg_e, a);
            cfg_p = apply(scn.model, cfg_p, a);
        }
        t += 120.0;
    }
}

// Sharded coordinator: a single-pod coordinator whose builder binds the flat
// profile must still match the plain flat controller — the pod lens and the
// flat-econ identity compose.
TEST(EconEquivalence, FlatEconMatchesPlainUnderShardedCoordinator) {
    const auto scn = moving_scenario();
    const auto costs = cost::cost_table::paper_defaults();

    controller_builder builder;
    builder.econ(flat_profile());
    global_coordinator pods(scn.model, costs, uniform_partition(scn.model, 1),
                            builder);
    mistral_strategy plain(scn.model, costs, plain_options());

    expect_identical_runs(run_scenario(scn, pods), run_scenario(scn, plain));
}

// The measured-utility side of the flat identity: with the harness's own
// econ accounting on (flat profile), cumulative utility is bit-identical and
// the new $ / gCO2 decomposition is internally consistent.
TEST(EconEquivalence, FlatEconHarnessAccountingIsConsistent) {
    auto scn_plain = moving_scenario();
    auto scn_econ = scn_plain;
    scn_econ.options.econ = flat_profile();

    const auto costs = cost::cost_table::paper_defaults();
    mistral_strategy a(scn_plain.model, costs, plain_options());
    mistral_strategy b(scn_econ.model, costs, plain_options());
    const auto rp = run_scenario(scn_plain, a);
    const auto re = run_scenario(scn_econ, b);

    EXPECT_EQ(bits_of(rp.cumulative_utility), bits_of(re.cumulative_utility));
    EXPECT_EQ(rp.energy_dollars, 0.0);   // plain harness: no econ accounting
    EXPECT_GT(re.energy_dollars, 0.0);   // the cluster burned tariffed watts
    EXPECT_EQ(re.carbon_grams, 0.0);     // flat profile has zero intensity
    // revenue − energy − search cost = measured utility, up to summation
    // order (separate accumulators).
    EXPECT_NEAR(re.revenue_dollars - re.energy_dollars - re.total_search_cost,
                re.cumulative_utility, 1e-6);
}

// A moving tariff forces a replan on the block boundary even with perfectly
// steady workloads, and journals both the change and the econ context.
TEST(EconEquivalence, TariffChangeTriggersReplanAndJournals) {
    const auto scn = moving_scenario();
    const auto costs = cost::cost_table::paper_defaults();

    obs::memory_sink journal;
    controller_options opts;
    opts.sink = &journal;
    opts.econ.enabled = true;
    // Price triples at t=300 s; steady rates keep the workload bands quiet.
    opts.econ.tariff.price = econ::step_series({{0.0, 0.01}, {300.0, 0.03}});
    mistral_strategy strat(scn.model, costs, opts);

    auto cfg = scn.initial;
    std::vector<std::string> triggers;
    for (seconds t = 0.0; t < 600.0; t += 120.0) {
        const auto out = strat.decide({t, {40.0, 40.0}, cfg, 1.0});
        for (const auto& a : out.actions) cfg = apply(scn.model, cfg, a);
    }
    for (const auto& e : journal.events()) {
        if (e.type == "decision") triggers.push_back(e.find("trigger")->text);
    }
    ASSERT_EQ(triggers.size(), 5u);
    EXPECT_EQ(triggers[0], "first");
    // t=360 is the first step on the expensive block.
    EXPECT_EQ(triggers[3], "tariff");

    ASSERT_EQ(journal.count("tariff_change"), 1u);
    for (const auto& e : journal.events()) {
        if (e.type != "tariff_change") continue;
        EXPECT_DOUBLE_EQ(e.find("price")->num, 0.03);
        EXPECT_DOUBLE_EQ(e.find("prev_price")->num, 0.01);
    }
    // Every invoked econ decision journals its pricing context.
    EXPECT_GE(journal.count("econ_decision"), 2u);
    EXPECT_DOUBLE_EQ(strat.controller().utility().econ_now().power_price, 0.03);
}

// A stepped power-cap schedule tracks into the searches' terminal gate:
// normal cap, emergency cap, back to normal.
TEST(EconEquivalence, PowerCapScheduleTracksTheSchedule) {
    const auto scn = moving_scenario();
    const auto costs = cost::cost_table::paper_defaults();

    controller_options opts;
    opts.econ.enabled = true;
    opts.econ.power_cap_schedule = wl::stepped_power_cap(2000.0, 700.0, 240.0, 240.0);
    mistral_strategy strat(scn.model, costs, opts);

    auto cfg = scn.initial;
    auto cap_at = [&](seconds t, req_per_sec rate) {
        const auto out = strat.decide({t, {rate, rate}, cfg, 1.0});
        for (const auto& a : out.actions) cfg = apply(scn.model, cfg, a);
        return strat.controller().search().options().power_cap;
    };
    EXPECT_DOUBLE_EQ(cap_at(0.0, 40.0), 2000.0);
    EXPECT_DOUBLE_EQ(cap_at(120.0, 40.0), 2000.0);
    EXPECT_DOUBLE_EQ(cap_at(240.0, 45.0), 700.0);   // emergency window
    EXPECT_DOUBLE_EQ(cap_at(360.0, 45.0), 700.0);
    EXPECT_DOUBLE_EQ(cap_at(480.0, 50.0), 2000.0);  // recovered
}

}  // namespace
}  // namespace mistral::core
