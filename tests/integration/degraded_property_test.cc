// Randomized degraded-mode invariant harness.
//
// Each episode derives a corrupted telemetry stream from its seed (NaN
// windows, spikes, empty windows layered over a random-walk workload) and
// drives the full controller with a strict divergence guard. Invariants
// checked every step:
//
//  * fail-safe — while the ladder holds (predictor untrusted), the
//    controller never emits an adaptation plan; only fenced structural
//    repairs may act;
//  * bounded greed — on the greedy rung every non-repair plan carries at
//    most one action;
//  * containment — no NaN ever reaches the workload monitor: band centers
//    stay finite no matter what the sensors reported.
//
// A separate differential check re-runs a sensor-fault-free trace with the
// degraded subsystem enabled at evaluation thread counts {1, 4} and demands
// byte-identical decision traces: the machinery must be deterministic and
// scheduling-blind, exactly like the action-fault injector it extends.
//
// Episode count shares the MISTRAL_FAULT_EPISODES CMake knob with the
// action-fault harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "apps/rubis.h"
#include "common/rng.h"
#include "core/controller.h"

#ifndef MISTRAL_FAULT_EPISODES
#define MISTRAL_FAULT_EPISODES 25
#endif

namespace mistral {
namespace {

cluster::cluster_model make_model(std::size_t hosts, std::size_t apps) {
    std::vector<apps::application_spec> specs;
    for (std::size_t a = 0; a < apps; ++a) {
        specs.push_back(apps::rubis_browsing("R" + std::to_string(a)));
    }
    return cluster::cluster_model(cluster::uniform_hosts(hosts), std::move(specs));
}

cluster::configuration base_config(const cluster::cluster_model& model) {
    cluster::configuration c(model.vm_count(), model.host_count());
    for (std::size_t h = 0; h < model.host_count(); ++h) {
        c.set_host_power(host_id{static_cast<std::int32_t>(h)}, true);
    }
    const std::size_t per_app =
        std::max<std::size_t>(1, model.host_count() / model.app_count());
    for (std::size_t a = 0; a < model.app_count(); ++a) {
        const app_id app{static_cast<std::int32_t>(a)};
        for (std::size_t t = 0; t < model.app(app).tier_count(); ++t) {
            const std::size_t h = (a * per_app + t % per_app) % model.host_count();
            c.deploy(model.tier_vms(app, t)[0],
                     host_id{static_cast<std::int32_t>(h)}, 0.4);
        }
    }
    return c;
}

constexpr seconds kInterval = 120.0;
constexpr int kSteps = 40;

// Strict guard thresholds so episodes actually reach the hold rung.
core::controller_options episode_options() {
    core::controller_options opts;
    opts.search.max_expansions = 60;
    opts.arma.divergence.slack = 0.2;
    opts.arma.divergence.soft_threshold = 0.5;
    opts.arma.divergence.hard_threshold = 1.0;
    opts.arma.divergence.error_floor = 1.0;
    return opts;
}

TEST(DegradedProperty, LadderNeverPlansWhileUntrustedAcrossEpisodes) {
    const auto model = make_model(4, 2);
    const auto cfg = base_config(model);
    std::int64_t held_total = 0;
    std::int64_t degraded_total = 0;
    for (int episode = 0; episode < MISTRAL_FAULT_EPISODES; ++episode) {
        rng r(0x0de6'0000ULL + static_cast<std::uint64_t>(episode));
        core::mistral_controller ctl(model, cost::cost_table::paper_defaults(),
                                     episode_options());
        std::vector<req_per_sec> level(model.app_count(), 50.0);
        for (int i = 0; i < kSteps; ++i) {
            const seconds t = i * kInterval;
            core::decision_input in{t, level, cfg, 1.0};
            in.samples.reserve(model.app_count());
            for (auto& rate : in.rates) {
                // Random-walk ground truth, then per-app sensor corruption.
                rate = std::clamp(rate + r.uniform(-25.0, 25.0), 5.0, 120.0);
                double samples = rate * kInterval;
                const double roll = r.uniform(0.0, 1.0);
                if (roll < 0.10) {
                    rate = std::numeric_limits<double>::quiet_NaN();
                } else if (roll < 0.25) {
                    rate *= r.uniform(2.0, 10.0);
                } else if (roll < 0.32) {
                    rate = 0.0;
                    samples = 0.0;
                }
                in.samples.push_back(samples);
            }
            // The walk continues from the *true* level, not the corruption.
            for (std::size_t a = 0; a < level.size(); ++a) {
                if (std::isfinite(in.rates[a]) && in.rates[a] > 0.0 &&
                    in.samples[a] > 0.0 && in.rates[a] <= 120.0) {
                    level[a] = in.rates[a];
                }
            }
            const auto d = ctl.step(in);

            if (d.mode == core::control_mode::hold && !d.repair) {
                ASSERT_FALSE(d.invoked)
                    << "episode " << episode << " step " << i
                    << ": plan emitted while holding";
                ASSERT_TRUE(d.actions.empty());
            }
            if (d.mode == core::control_mode::greedy && !d.repair) {
                ASSERT_LE(d.actions.size(), 1u)
                    << "episode " << episode << " step " << i;
            }
            for (std::size_t a = 0; a < model.app_count(); ++a) {
                ASSERT_TRUE(std::isfinite(ctl.monitor().band_of(a).center))
                    << "episode " << episode << " step " << i;
            }
        }
        held_total += ctl.degraded().held_triggers;
        degraded_total += ctl.degraded().degraded_windows;
    }
    // The invariants above are vacuous unless the episodes actually reached
    // the rungs they guard.
    EXPECT_GT(degraded_total, 0);
    EXPECT_GT(held_total, 0);
}

// One decision trace with everything a scheduling difference could perturb,
// including the new mode/quality channels.
std::string run_trace(const cluster::cluster_model& model, std::uint64_t seed,
                      std::size_t threads) {
    core::controller_options opts;  // degraded machinery at defaults: enabled
    opts.search.max_expansions = 80;
    opts.search.evaluation.with_threads(threads);
    core::mistral_controller ctl(model, cost::cost_table::paper_defaults(), opts);
    const auto cfg = base_config(model);

    rng workload(seed);
    std::ostringstream trace;
    trace.precision(17);
    for (int i = 0; i < 12; ++i) {
        const seconds t = i * kInterval;
        const std::vector<req_per_sec> rates(model.app_count(),
                                             workload.uniform(20.0, 70.0));
        const auto d = ctl.step({t, rates, cfg, 1.0});
        trace << i << " invoked=" << d.invoked
              << " mode=" << core::to_string(d.mode)
              << " quality=" << wl::to_string(d.telemetry_quality);
        for (const auto& a : d.actions) trace << " [" << to_string(model, a) << "]";
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d.expected_utility));
        std::memcpy(&bits, &d.expected_utility, sizeof(bits));
        trace << " eu=" << bits << " cw=" << d.control_window << "\n";
    }
    trace << "degraded=" << ctl.degraded().degraded_windows
          << " demotions=" << ctl.degraded().demotions << "\n";
    return trace.str();
}

TEST(DegradedProperty, FaultFreeTraceIsByteIdenticalAcrossThreadCounts) {
    const auto model = make_model(4, 2);
    for (const std::uint64_t seed : {31ull, 32ull}) {
        const auto serial = run_trace(model, seed, 1);
        const auto parallel = run_trace(model, seed, 4);
        EXPECT_EQ(serial, parallel) << "seed " << seed;
        // Clean telemetry: the subsystem graded every window healthy.
        EXPECT_NE(serial.find("degraded=0 demotions=0"), std::string::npos);
    }
}

}  // namespace
}  // namespace mistral
