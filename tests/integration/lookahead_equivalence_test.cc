// Differential harness pinning the receding-horizon lookahead planner to the
// single-interval controller.
//
// Two contracts from the lookahead design (DESIGN.md §14):
//
//  * K = 1 identity — a controller with lookahead enabled at horizon 1 is
//    byte-identical to the flat single-interval controller: same decision
//    trace, same modeled delays, same utility series to the last bit, at
//    evaluator thread counts 1 and 4, fault-injected and fault-free, and
//    under the sharded coordinator. Only the reported control mode and the
//    extra "lookahead" journal events may differ. This is the anchor that
//    licenses everything K > 1 does: the planner's first interval *is* the
//    flat controller's search, on the same search object and memo.
//
//  * K > 1 determinism — multi-interval planning is a pure function of the
//    scenario: repeated runs and different evaluator thread counts produce
//    bit-identical results (no wall clocks, no thread-order dependence).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/coordinator.h"
#include "core/experiment.h"
#include "obs/journal.h"
#include "workload/generators.h"

namespace mistral::core {
namespace {

std::uint64_t bits_of(double v) {
    std::uint64_t b;
    static_assert(sizeof b == sizeof v);
    std::memcpy(&b, &v, sizeof b);
    return b;
}

// A flash-crowd scenario whose workloads actually move, so band exits,
// forecasts, and adaptation all get exercised.
scenario moving_scenario(sim::sensor_fault_options sensors = {},
                         sim::fault_options testbed_faults = {},
                         obs::sink* sink = nullptr) {
    scenario_options opts;
    opts.host_count = 4;
    opts.app_count = 2;
    wl::generator_options gen;
    gen.duration = 1.5 * 3600.0;
    gen.seed = 11;
    gen.noise = 0.02;
    opts.traces = {wl::flash_crowd_trace("a", 25.0, 85.0, 2400.0, 600.0,
                                         1200.0, gen),
                   wl::step_trace("b", 30.0, 55.0, 3000.0, gen)};
    opts.sensor_faults = sensors;
    opts.testbed.faults = testbed_faults;
    opts.sink = sink;
    return make_rubis_scenario(opts);
}

controller_options with_lookahead(int horizon, std::size_t threads = 1) {
    controller_options opts;
    opts.lookahead.enabled = true;
    opts.lookahead.horizon = horizon;
    opts.search.evaluation.threads = threads;
    return opts;
}

controller_options flat_options(std::size_t threads = 1) {
    controller_options opts;
    opts.search.evaluation.threads = threads;
    return opts;
}

void expect_identical_runs(const run_result& a, const run_result& b) {
    EXPECT_EQ(bits_of(a.cumulative_utility), bits_of(b.cumulative_utility));
    EXPECT_EQ(bits_of(a.mean_power), bits_of(b.mean_power));
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.total_actions, b.total_actions);
    EXPECT_EQ(a.total_failed_actions, b.total_failed_actions);
    EXPECT_EQ(bits_of(a.search_duration.mean()),
              bits_of(b.search_duration.mean()));
    EXPECT_EQ(bits_of(a.search_duration.max()),
              bits_of(b.search_duration.max()));
    EXPECT_EQ(a.violation_fraction, b.violation_fraction);
    const auto* ua = a.series.find("utility");
    const auto* ub = b.series.find("utility");
    ASSERT_NE(ua, nullptr);
    ASSERT_NE(ub, nullptr);
    ASSERT_EQ(ua->size(), ub->size());
    for (std::size_t i = 0; i < ua->size(); ++i) {
        ASSERT_EQ(bits_of(ua->samples()[i].value),
                  bits_of(ub->samples()[i].value))
            << "interval " << i;
    }
}

void expect_k1_matches_flat(std::size_t threads,
                            sim::sensor_fault_options sensors = {},
                            sim::fault_options testbed_faults = {}) {
    const auto scn = moving_scenario(sensors, testbed_faults);
    const auto costs = cost::cost_table::paper_defaults();
    mistral_strategy lookahead(scn.model, costs, with_lookahead(1, threads));
    mistral_strategy flat(scn.model, costs, flat_options(threads));
    expect_identical_runs(run_scenario(scn, lookahead),
                          run_scenario(scn, flat));
}

TEST(LookaheadEquivalence, K1MatchesFlatFaultFreeSingleThread) {
    expect_k1_matches_flat(1);
}

TEST(LookaheadEquivalence, K1MatchesFlatFaultFreeFourThreads) {
    expect_k1_matches_flat(4);
}

TEST(LookaheadEquivalence, K1MatchesFlatUnderSensorFaults) {
    // Sensor corruption exercises the validator/ladder interplay on both
    // sides — the lookahead rung must demote and recover exactly like full.
    expect_k1_matches_flat(1, sim::sensor_fault_options::uniform(0.06));
    expect_k1_matches_flat(4, sim::sensor_fault_options::uniform(0.06));
}

TEST(LookaheadEquivalence, K1MatchesFlatUnderTestbedFaults) {
    // Aborting/straggling actions change the measured state both controllers
    // replan from; divergence here would mean K=1 leaks planner state.
    expect_k1_matches_flat(1, {}, sim::fault_options::uniform(0.2, 0.1));
    expect_k1_matches_flat(4, {}, sim::fault_options::uniform(0.2, 0.1));
}

// The per-decision trace compared action-for-action: stronger than the
// aggregate run comparison because it catches compensating differences.
// The control-mode label is intentionally excluded — it is the one
// observable allowed to differ (lookahead vs full).
TEST(LookaheadEquivalence, K1DecisionTraceIsIdenticalStepByStep) {
    const auto scn = moving_scenario();
    const auto costs = cost::cost_table::paper_defaults();
    mistral_strategy look(scn.model, costs, with_lookahead(1));
    mistral_strategy flat(scn.model, costs, flat_options());

    auto cfg_l = scn.initial;
    auto cfg_f = scn.initial;
    seconds t = 0.0;
    for (const double rate : {40.0, 44.0, 60.0, 85.0, 30.0, 12.0, 70.0}) {
        const auto ol = look.decide({t, {rate, rate * 0.8}, cfg_l, 1.0});
        const auto of = flat.decide({t, {rate, rate * 0.8}, cfg_f, 1.0});
        ASSERT_EQ(ol.invoked, of.invoked) << "t=" << t;
        ASSERT_EQ(ol.actions, of.actions) << "t=" << t;
        EXPECT_EQ(bits_of(ol.decision_delay), bits_of(of.decision_delay));
        EXPECT_EQ(bits_of(ol.decision_power_cost),
                  bits_of(of.decision_power_cost));
        EXPECT_EQ(ol.stats.expansions, of.stats.expansions);
        EXPECT_EQ(ol.stats.generated, of.stats.generated);
        EXPECT_EQ(ol.stats.eval_cache_hits, of.stats.eval_cache_hits);
        EXPECT_EQ(ol.stats.eval_cache_misses, of.stats.eval_cache_misses);
        for (const auto& a : ol.actions) {
            cfg_l = apply(scn.model, cfg_l, a);
            cfg_f = apply(scn.model, cfg_f, a);
        }
        t += 120.0;
    }
    // The planner ran every invoked decision, and at K=1 every one committed
    // as "reactive" — no pre-provisioning is possible with no future bands.
    EXPECT_GE(look.controller().lookahead().lookahead_decisions, 1);
    EXPECT_EQ(look.controller().lookahead().preprovision_commits, 0);
}

// Sharded coordinator: a single-pod coordinator with per-pod lookahead at
// K=1 must still match the flat single-interval controller — the pod lens
// and the planner identity compose.
TEST(LookaheadEquivalence, K1MatchesFlatUnderShardedCoordinator) {
    const auto scn = moving_scenario();
    const auto costs = cost::cost_table::paper_defaults();

    controller_builder builder;
    builder.lookahead(1);
    global_coordinator pods(scn.model, costs, uniform_partition(scn.model, 1),
                            builder);
    mistral_strategy flat(scn.model, costs, flat_options());

    expect_identical_runs(run_scenario(scn, pods), run_scenario(scn, flat));
}

// K > 1 has no flat twin, but it must be a pure function of the scenario:
// bit-identical across repeated runs and across evaluator thread counts.
TEST(LookaheadEquivalence, K3DeterministicAcrossRunsAndThreads) {
    const auto scn = moving_scenario();
    const auto costs = cost::cost_table::paper_defaults();

    mistral_strategy first(scn.model, costs, with_lookahead(3, 1));
    mistral_strategy again(scn.model, costs, with_lookahead(3, 1));
    mistral_strategy wide(scn.model, costs, with_lookahead(3, 4));

    const auto ra = run_scenario(scn, first);
    const auto rb = run_scenario(scn, again);
    const auto rc = run_scenario(scn, wide);
    expect_identical_runs(ra, rb);
    expect_identical_runs(ra, rc);
    EXPECT_GE(first.controller().lookahead().lookahead_decisions, 1);
}

// K > 1 journals its planning: every lookahead event carries the configured
// horizon and a commit reason, and fault-free the ladder stays on the
// lookahead rung.
TEST(LookaheadEquivalence, K3JournalsPlansAndHoldsTheTopRung) {
    obs::memory_sink journal;
    const auto scn = moving_scenario({}, {}, &journal);
    const auto costs = cost::cost_table::paper_defaults();
    controller_options opts = with_lookahead(3);
    opts.sink = &journal;
    mistral_strategy strat(scn.model, costs, opts);
    (void)run_scenario(scn, strat);

    EXPECT_EQ(strat.controller().mode(), control_mode::lookahead);
    ASSERT_GE(journal.count("lookahead"), 1u);
    for (const auto& e : journal.events()) {
        if (e.type != "lookahead") continue;
        ASSERT_NE(e.find("horizon"), nullptr);
        EXPECT_EQ(e.find("horizon")->integer, 3);
        ASSERT_NE(e.find("commit"), nullptr);
        const auto& reason = e.find("commit")->text;
        EXPECT_TRUE(reason == "reactive" || reason == "preprovision" ||
                    reason == "converged")
            << reason;
        ASSERT_NE(e.find("step_utilities"), nullptr);
        EXPECT_EQ(e.find("step_utilities")->numbers.size(), 3u);
    }
}

}  // namespace
}  // namespace mistral::core
