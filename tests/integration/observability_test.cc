// Observability invariants over a full fault-injected run.
//
// Two properties make the obs subsystem trustworthy:
//
//  1. Attaching a sink must not perturb a single decision or measurement —
//     a run with a memory sink and metrics registry wired through every hook
//     is bit-identical to the null-sink run (the ISSUE's byte-identity
//     acceptance, proven at the strongest level: the numbers themselves).
//  2. The journal is the run's accounting, not a lossy log: interval records
//     sum to the final cumulative utility, decision records match the
//     controller's invocation count and wasted-adaptation ledger, search
//     profiles' per-depth attributions sum back to their own totals, and the
//     metrics registry agrees with the journal it was filled alongside.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "cost/table.h"
#include "obs/json.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "workload/generators.h"

namespace mistral {
namespace {

core::scenario faulty_scenario(obs::sink* sink) {
    wl::generator_options gen;
    gen.duration = 3000.0;
    gen.noise = 0.02;
    core::scenario_options opts;
    opts.host_count = 3;
    opts.app_count = 1;
    opts.traces = {wl::flash_crowd_trace("crowd", 15.0, 70.0,
                                         /*crowd_at=*/600.0, /*ramp=*/300.0,
                                         /*hold=*/900.0, gen)};
    opts.testbed.faults = sim::fault_options::uniform(/*fail=*/0.25,
                                                      /*straggle=*/0.2);
    opts.testbed.faults.host_crashes.push_back(
        {.at = 900.0, .host = 2, .recover_after = 600.0});
    opts.sink = sink;
    return core::make_rubis_scenario(opts);
}

struct instrumented_run {
    core::run_result result;
    core::reconcile_stats ledger;
};

instrumented_run run_with(obs::sink* sink) {
    auto scn = faulty_scenario(sink);
    core::controller_options copts;
    copts.sink = sink;
    core::mistral_strategy strat(scn.model, cost::cost_table::paper_defaults(),
                                 copts);
    instrumented_run out{core::run_scenario(scn, strat),
                         strat.controller().reconciliation()};
    return out;
}

bool bits_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(Observability, AttachedSinkDoesNotPerturbTheRun) {
    const instrumented_run plain = run_with(nullptr);

    obs::metrics_registry registry;
    obs::memory_sink sink(&registry);
    const instrumented_run observed = run_with(&sink);

    EXPECT_TRUE(bits_equal(plain.result.cumulative_utility,
                           observed.result.cumulative_utility));
    EXPECT_TRUE(bits_equal(plain.result.mean_power, observed.result.mean_power));
    EXPECT_EQ(plain.result.total_actions, observed.result.total_actions);
    EXPECT_EQ(plain.result.total_failed_actions,
              observed.result.total_failed_actions);
    EXPECT_EQ(plain.result.invocations, observed.result.invocations);
    EXPECT_TRUE(bits_equal(plain.result.total_wasted_seconds,
                           observed.result.total_wasted_seconds));
    EXPECT_EQ(plain.ledger.failed_actions, observed.ledger.failed_actions);
    EXPECT_EQ(plain.ledger.fault_replans, observed.ledger.fault_replans);
    EXPECT_EQ(plain.ledger.repairs, observed.ledger.repairs);

    // Every series, every sample, bit-for-bit.
    for (const auto& s : plain.result.series.all()) {
        const auto* o = observed.result.series.find(s.name());
        ASSERT_NE(o, nullptr) << s.name();
        ASSERT_EQ(s.size(), o->size()) << s.name();
        for (std::size_t i = 0; i < s.size(); ++i) {
            EXPECT_TRUE(bits_equal(s.samples()[i].value, o->samples()[i].value))
                << s.name() << "[" << i << "]";
        }
    }
    EXPECT_GT(sink.events().size(), 0u);
}

TEST(Observability, JournalReconcilesWithRunAccounting) {
    obs::metrics_registry registry;
    obs::memory_sink sink(&registry);
    const instrumented_run run = run_with(&sink);

    double utility_sum = 0.0;
    double last_cum = 0.0;
    std::size_t invoked = 0;
    std::size_t repairs = 0;
    double last_wasted_seconds = 0.0;
    double last_wasted_dollars = 0.0;
    std::int64_t journal_expansions = 0;
    for (const auto& e : sink.events()) {
        if (e.type == "interval") {
            utility_sum += e.find("utility")->num;
            last_cum = e.find("cum_utility")->num;
        } else if (e.type == "decision") {
            if (e.find("invoked")->boolean) ++invoked;
            if (e.find("repair")->boolean) ++repairs;
            last_wasted_seconds = e.find("wasted_seconds")->num;
            last_wasted_dollars = e.find("wasted_dollars")->num;
        } else if (e.type == "search") {
            journal_expansions += e.find("expansions")->integer;
        }
    }

    EXPECT_NEAR(utility_sum, run.result.cumulative_utility, 1e-9);
    EXPECT_NEAR(last_cum, run.result.cumulative_utility, 1e-9);
    EXPECT_EQ(invoked, run.result.invocations);
    EXPECT_NEAR(last_wasted_seconds, run.ledger.wasted_adaptation_time, 1e-9);
    EXPECT_NEAR(last_wasted_dollars, run.ledger.wasted_transient_cost, 1e-9);
    EXPECT_EQ(static_cast<std::int64_t>(repairs), run.ledger.repairs);
    // Repairs bypass the optimizer, so search profiles cover exactly the
    // non-repair invocations.
    EXPECT_EQ(sink.count("search"), run.result.invocations - repairs);
    // This schedule injects faults, and the journal must show them.
    EXPECT_GT(sink.count("action_fail"), 0u);
    EXPECT_EQ(sink.count("host_crash"), 1u);
    EXPECT_EQ(sink.count("host_recover"), 1u);

    // The metrics registry was filled alongside the journal; they agree.
    EXPECT_EQ(registry.counter_value("mistral_search_expansions_total"),
              journal_expansions);
    EXPECT_EQ(registry.counter_value("mistral_controller_decisions_total"),
              static_cast<std::int64_t>(run.result.invocations));
    EXPECT_EQ(registry.counter_value("mistral_controller_repairs_total"),
              static_cast<std::int64_t>(repairs));
    EXPECT_EQ(registry.counter_value("mistral_testbed_host_crashes_total"), 1);
    EXPECT_EQ(
        registry.counter_value("mistral_testbed_actions_failed_total"),
        static_cast<std::int64_t>(run.result.total_failed_actions));
    EXPECT_NEAR(registry.gauge_value("mistral_controller_wasted_adaptation_seconds"),
                run.ledger.wasted_adaptation_time, 1e-9);
}

TEST(Observability, SearchProfilesAreInternallyConsistent) {
    obs::memory_sink sink;
    (void)run_with(&sink);

    std::size_t searches = 0;
    for (const auto& e : sink.events()) {
        if (e.type != "search") continue;
        ++searches;
        const auto* depth_exp = e.find("depth_expansions");
        const auto* depth_time = e.find("depth_meter_time");
        ASSERT_NE(depth_exp, nullptr);
        ASSERT_NE(depth_time, nullptr);
        ASSERT_EQ(depth_exp->numbers.size(), depth_time->numbers.size());
        double expanded = 0.0;
        double attributed = 0.0;
        for (const double n : depth_exp->numbers) expanded += n;
        for (const double t : depth_time->numbers) attributed += t;
        // Per-depth expansion counts sum back to the profile's own total...
        EXPECT_EQ(expanded, static_cast<double>(e.find("expansions")->integer));
        // ...and under the deterministic model-clock meter every charged
        // second is attributed to some depth.
        EXPECT_NEAR(attributed, e.find("duration")->num, 1e-9);
        EXPECT_EQ(e.find("meter")->text, "model_clock");
        const double hits = static_cast<double>(e.find("eval_hits")->integer);
        const double misses =
            static_cast<double>(e.find("eval_misses")->integer);
        const double rate = e.find("memo_hit_rate")->num;
        if (hits + misses > 0.0) {
            EXPECT_NEAR(rate, hits / (hits + misses), 1e-12);
        } else {
            EXPECT_EQ(rate, 0.0);
        }
    }
    EXPECT_GT(searches, 0u);
}

TEST(Observability, JournalLinesRoundTripAsStrings) {
    obs::memory_sink sink;
    (void)run_with(&sink);
    ASSERT_GT(sink.events().size(), 0u);
    for (const auto& e : sink.events()) {
        const std::string line = obs::to_json_line(e);
        EXPECT_EQ(obs::json::value::parse(line).dump(), line);
    }
}

}  // namespace
}  // namespace mistral
