#include "cost/table_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"

namespace mistral::cost {
namespace {

using cluster::action_kind;

TEST(CostTableIo, ParseActionKindRoundTripsAllKinds) {
    for (const auto kind :
         {action_kind::increase_cpu, action_kind::decrease_cpu,
          action_kind::add_replica, action_kind::remove_replica,
          action_kind::migrate, action_kind::power_on, action_kind::power_off}) {
        EXPECT_EQ(parse_action_kind(cluster::to_string(kind)), kind);
    }
    EXPECT_THROW(parse_action_kind("teleport"), invariant_error);
}

TEST(CostTableIo, RoundTripsPaperDefaults) {
    const auto original = cost_table::paper_defaults();
    std::ostringstream out;
    write_cost_table_csv(out, original);
    std::istringstream in(out.str());
    const auto restored = read_cost_table_csv(in);

    // Every lookup the controller could make must agree exactly.
    for (const auto kind : {action_kind::migrate, action_kind::add_replica,
                            action_kind::remove_replica, action_kind::increase_cpu}) {
        for (std::size_t tier = 0; tier < 3; ++tier) {
            if (!original.has(kind, tier)) continue;
            for (double w : {5.0, 30.0, 60.0, 95.0}) {
                const auto a = original.lookup(kind, tier, w);
                const auto b = restored.lookup(kind, tier, w);
                EXPECT_DOUBLE_EQ(a.duration, b.duration);
                EXPECT_DOUBLE_EQ(a.delta_rt_target, b.delta_rt_target);
                EXPECT_DOUBLE_EQ(a.delta_rt_colocated, b.delta_rt_colocated);
                EXPECT_DOUBLE_EQ(a.delta_power, b.delta_power);
            }
        }
    }
    EXPECT_DOUBLE_EQ(original.lookup(action_kind::power_on, 0, 0.0).duration,
                     restored.lookup(action_kind::power_on, 0, 0.0).duration);
}

TEST(CostTableIo, ToleratesCommentsAndHeader) {
    std::istringstream in(
        "kind,tier,workload,duration,delta_rt_target,delta_rt_colocated,delta_power\n"
        "# hand-added entry\n"
        "migrate,2,50,39.5,0.35,0.07,21\n");
    const auto t = read_cost_table_csv(in);
    ASSERT_TRUE(t.has(action_kind::migrate, 2));
    EXPECT_DOUBLE_EQ(t.lookup(action_kind::migrate, 2, 50.0).duration, 39.5);
}

TEST(CostTableIo, RejectsMalformedRows) {
    std::istringstream short_row("migrate,2,50,39.5\n");
    EXPECT_THROW(read_cost_table_csv(short_row), invariant_error);
    std::istringstream bad_kind("teleport,2,50,1,0,0,0\n");
    EXPECT_THROW(read_cost_table_csv(bad_kind), invariant_error);
    std::istringstream bad_number("migrate,2,50,abc,0,0,0\n");
    EXPECT_THROW(read_cost_table_csv(bad_number), invariant_error);
    std::istringstream negative_duration("migrate,2,50,-1,0,0,0\n");
    EXPECT_THROW(read_cost_table_csv(negative_duration), invariant_error);
}

TEST(CostTableIo, FileRoundTrip) {
    const auto original = cost_table::paper_defaults();
    const std::string path = ::testing::TempDir() + "/mistral_costs.csv";
    save_cost_table_csv(path, original);
    const auto restored = load_cost_table_csv(path);
    EXPECT_DOUBLE_EQ(original.lookup(action_kind::migrate, 2, 50.0).delta_power,
                     restored.lookup(action_kind::migrate, 2, 50.0).delta_power);
    EXPECT_THROW(load_cost_table_csv("/nonexistent/costs.csv"), invariant_error);
}

TEST(CostTableIo, EmptyTableWritesHeaderOnly) {
    std::ostringstream out;
    write_cost_table_csv(out, cost_table{});
    EXPECT_EQ(out.str(),
              "kind,tier,workload,duration,delta_rt_target,delta_rt_colocated,"
              "delta_power\n");
}

}  // namespace
}  // namespace mistral::cost
