#include "cost/table.h"

#include <gtest/gtest.h>

#include "apps/rubis.h"
#include "common/check.h"

namespace mistral::cost {
namespace {

using cluster::action_kind;

cluster::cluster_model make_model() {
    std::vector<apps::application_spec> specs;
    specs.push_back(apps::rubis_browsing("R0"));
    specs.push_back(apps::rubis_browsing("R1"));
    return cluster::cluster_model(cluster::uniform_hosts(4), std::move(specs));
}

TEST(CostTable, EmptyHasNothing) {
    cost_table t;
    EXPECT_FALSE(t.has(action_kind::migrate, 0));
    EXPECT_THROW(t.lookup(action_kind::migrate, 0, 10.0), invariant_error);
}

TEST(CostTable, NearestWorkloadLookup) {
    cost_table t;
    t.add_measurement(action_kind::migrate, 0, 10.0, {5.0, 0.1, 0.05, 10.0});
    t.add_measurement(action_kind::migrate, 0, 50.0, {25.0, 0.5, 0.25, 20.0});
    EXPECT_DOUBLE_EQ(t.lookup(action_kind::migrate, 0, 12.0).duration, 5.0);
    EXPECT_DOUBLE_EQ(t.lookup(action_kind::migrate, 0, 45.0).duration, 25.0);
    // Ties and out-of-range clamp to nearest measured key.
    EXPECT_DOUBLE_EQ(t.lookup(action_kind::migrate, 0, 500.0).duration, 25.0);
}

TEST(CostTable, SamplesAtSameKeyAverage) {
    cost_table t;
    t.add_measurement(action_kind::migrate, 1, 20.0, {10.0, 0.2, 0.1, 10.0});
    t.add_measurement(action_kind::migrate, 1, 20.0, {20.0, 0.4, 0.3, 30.0});
    const auto e = t.lookup(action_kind::migrate, 1, 20.0);
    EXPECT_DOUBLE_EQ(e.duration, 15.0);
    EXPECT_DOUBLE_EQ(e.delta_rt_target, 0.3);
    EXPECT_DOUBLE_EQ(e.delta_rt_colocated, 0.2);
    EXPECT_DOUBLE_EQ(e.delta_power, 20.0);
}

TEST(CostTable, MissingTierFallsBackToTierZero) {
    cost_table t;
    t.add_measurement(action_kind::increase_cpu, 0, 10.0, {1.0, 0.0, 0.0, 0.5});
    EXPECT_DOUBLE_EQ(t.lookup(action_kind::increase_cpu, 2, 10.0).duration, 1.0);
}

TEST(CostTable, ActionLookupResolvesAppAndTier) {
    const auto model = make_model();
    cost_table t;
    t.add_measurement(action_kind::migrate, 2, 30.0, {33.0, 0.3, 0.1, 15.0});
    t.add_measurement(action_kind::migrate, 2, 60.0, {66.0, 0.6, 0.2, 25.0});
    const auto db_vm = model.tier_vms(app_id{1}, 2)[0];
    // App 1's rate (60) selects the second entry even though app 0 is at 30.
    const cluster::action a = cluster::migrate{db_vm, host_id{0}};
    EXPECT_DOUBLE_EQ(t.lookup(model, a, {30.0, 60.0}).duration, 66.0);
}

TEST(CostTable, HostPowerUsesTotalWorkload) {
    const auto model = make_model();
    cost_table t;
    t.add_measurement(action_kind::power_on, 0, 0.0, {90.0, 0.0, 0.0, 80.0});
    t.add_measurement(action_kind::power_on, 0, 100.0, {90.0, 0.0, 0.0, 85.0});
    const cluster::action a = cluster::power_on{host_id{3}};
    // 60 + 50 = 110 → nearest key 100.
    EXPECT_DOUBLE_EQ(t.lookup(model, a, {60.0, 50.0}).delta_power, 85.0);
}

TEST(CostTable, WorkloadsReportsSortedDistinctKeys) {
    cost_table t;
    t.add_measurement(action_kind::migrate, 0, 50.0, {1.0, 0.0, 0.0, 0.0});
    t.add_measurement(action_kind::migrate, 0, 10.0, {1.0, 0.0, 0.0, 0.0});
    t.add_measurement(action_kind::migrate, 0, 50.0, {2.0, 0.0, 0.0, 0.0});
    const auto keys = t.workloads(action_kind::migrate, 0);
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_DOUBLE_EQ(keys[0], 10.0);
    EXPECT_DOUBLE_EQ(keys[1], 50.0);
}

TEST(CostTable, PaperDefaultsCoverAllRubisActions) {
    const auto t = cost_table::paper_defaults();
    for (std::size_t tier = 0; tier < 3; ++tier) {
        EXPECT_TRUE(t.has(action_kind::migrate, tier));
        EXPECT_TRUE(t.has(action_kind::increase_cpu, tier));
        EXPECT_TRUE(t.has(action_kind::decrease_cpu, tier));
    }
    EXPECT_TRUE(t.has(action_kind::add_replica, 2));
    EXPECT_TRUE(t.has(action_kind::remove_replica, 2));
    EXPECT_TRUE(t.has(action_kind::power_on, 0));
    EXPECT_TRUE(t.has(action_kind::power_off, 0));
}

TEST(CostTable, PaperDefaultsMatchFig7Shape) {
    const auto t = cost_table::paper_defaults();
    // Costs grow with workload (Fig. 7): compare 100 vs 800 sessions.
    const auto lo = t.lookup(action_kind::migrate, 2, 12.5);
    const auto hi = t.lookup(action_kind::migrate, 2, 100.0);
    EXPECT_GT(hi.duration, 3.0 * lo.duration);
    EXPECT_GT(hi.delta_rt_target, 3.0 * lo.delta_rt_target);
    EXPECT_GT(hi.delta_power, lo.delta_power);
    // MySQL migration hurts more than Apache migration (Fig. 7b ordering).
    EXPECT_GT(t.lookup(action_kind::migrate, 2, 50.0).delta_rt_target,
              t.lookup(action_kind::migrate, 0, 50.0).delta_rt_target);
}

TEST(CostTable, PaperDefaultsHostCycleConstants) {
    const auto t = cost_table::paper_defaults();
    const auto boot = t.lookup(action_kind::power_on, 0, 0.0);
    EXPECT_DOUBLE_EQ(boot.duration, 90.0);
    EXPECT_DOUBLE_EQ(boot.delta_power, 80.0);
    EXPECT_DOUBLE_EQ(boot.delta_rt_target, 0.0);
    const auto down = t.lookup(action_kind::power_off, 0, 0.0);
    EXPECT_DOUBLE_EQ(down.duration, 30.0);
}

TEST(CostTable, RejectsNegativeInputs) {
    cost_table t;
    EXPECT_THROW(t.add_measurement(action_kind::migrate, 0, -1.0, {}),
                 invariant_error);
    cost_entry bad;
    bad.duration = -5.0;
    EXPECT_THROW(t.add_measurement(action_kind::migrate, 0, 1.0, bad),
                 invariant_error);
}

}  // namespace
}  // namespace mistral::cost
